"""Figure 3: EBS traffic share and I/O request rates over a week.

Paper: (a) EBS accounts for ~63% of a compute server's TX traffic (~51%
of all traffic) across a week of fleet telemetry; (b) WRITE I/O requests
run 3-4x READ in rate, with a visible diurnal/weekly pattern.
"""

from __future__ import annotations

import pytest
from common import format_table, once, save_output

from repro.workloads import EBS_TX_SHARE, synthesize_week


def run_fig3() -> str:
    samples = synthesize_week(seed=7)
    ebs_tx = sum(s.ebs_tx_gbps for s in samples)
    all_tx = sum(s.all_tx_gbps for s in samples)
    ebs_rx = sum(s.ebs_rx_gbps for s in samples)
    all_rx = sum(s.all_rx_gbps for s in samples)
    writes = sum(s.write_iops for s in samples)
    reads = sum(s.read_iops for s in samples)

    tx_share = ebs_tx / all_tx
    overall_share = (ebs_tx + ebs_rx) / (all_tx + all_rx)
    wr_ratio = writes / reads

    daily = []
    per_day = len(samples) // 7
    for day in range(7):
        chunk = samples[day * per_day : (day + 1) * per_day]
        daily.append([
            f"Day-{day + 1}",
            f"{sum(s.ebs_tx_gbps for s in chunk) / per_day:.3f}",
            f"{sum(s.ebs_rx_gbps for s in chunk) / per_day:.3f}",
            f"{sum(s.write_iops for s in chunk) / per_day / 1000:.1f}K",
            f"{sum(s.read_iops for s in chunk) / per_day / 1000:.1f}K",
        ])
    table = format_table(
        ["", "EBS TX (Gbps)", "EBS RX (Gbps)", "Write IOPS", "Read IOPS"], daily
    )
    summary = (
        f"EBS share of TX traffic: {tx_share:.1%} (paper: 63%)\n"
        f"EBS share of all traffic: {overall_share:.1%} (paper: 51%)\n"
        f"WRITE:READ request ratio: {wr_ratio:.2f} (paper: 3-4x)\n"
    )
    # Shape assertions.
    assert tx_share == pytest.approx(EBS_TX_SHARE, abs=0.02)
    assert 0.40 < overall_share < 0.62
    assert 2.5 < wr_ratio < 4.5
    return f"Figure 3 (week of fleet-average per-server traffic):\n{table}\n{summary}"


def test_fig3(benchmark):
    text = once(benchmark, run_fig3)
    print("\n" + text)
    save_output("fig3_traffic_share", text)
