"""Ablation: integrity-check placement (§4.5's design discussion).

Three designs compete:

* ``fpga_only`` — trust the FPGA's CRC; zero CPU cost, but an FPGA fault
  can corrupt data *and* pass its own check (escapes);
* ``cpu_full`` — recompute every block's CRC in software: catches all
  faults but pays the full per-byte CPU cost the offload was meant to
  remove;
* ``aggregation`` (SOLAR) — XOR-fold of per-block CRCs verified on the
  CPU: catches (1 - 2^-32) of faults at near-zero CPU cost.

We measure detection rate under injected faults and the CPU nanoseconds
per 64KB I/O each design charges.
"""

from __future__ import annotations

import random

from common import format_table, once, save_output

from repro.core.crc_agg import CrcAggregator
from repro.faults.fpga_errors import flip_bit
from repro.storage.crc import crc32

BLOCKS_PER_IO = 16  # 64KB I/O
BLOCK = 4096
TRIALS = 300


def simulate_design(design: str, seed: int = 17) -> dict:
    rng = random.Random(seed)
    agg = CrcAggregator()
    detected = 0
    injected = 0
    cpu_ns_total = 0
    for _ in range(TRIALS):
        blocks = [rng.randbytes(BLOCK) for _ in range(BLOCKS_PER_IO)]
        true_crcs = [crc32(b) for b in blocks]
        # The FPGA computes CRCs; a fault flips a bit in one block's
        # payload *after* the guest handed it over (so the true CRC is
        # known) but the FPGA's own check uses its possibly-garbled state.
        fault = rng.random() < 0.5
        fpga_blocks = list(blocks)
        fpga_crcs = list(true_crcs)
        if fault:
            injected += 1
            victim = rng.randrange(BLOCKS_PER_IO)
            fpga_blocks[victim] = flip_bit(blocks[victim], rng.randrange(BLOCK * 8))
            if rng.random() < 0.5:
                # The corruption hit before the CRC engine: the FPGA's CRC
                # matches its own corrupted data — self-consistent garbage.
                fpga_crcs[victim] = crc32(fpga_blocks[victim])
            # else: data corrupted after CRC; fpga_crcs keeps the true value.

        if design == "fpga_only":
            # FPGA compares its computed CRC against its own data: the
            # self-consistent case escapes.
            caught = fault and crc32(fpga_blocks[victim]) != fpga_crcs[victim]
            cpu_ns_total += 0
        elif design == "cpu_full":
            sw_crcs = [crc32(b) for b in fpga_blocks]
            caught = sw_crcs != true_crcs
            cpu_ns_total += agg.recompute_cost_ns(BLOCKS_PER_IO * BLOCK)
        elif design == "aggregation":
            # CPU compares the XOR-fold of FPGA-reported CRCs of the data
            # as persisted (recomputed at the verifying chunk boundary)
            # against the fold of the expected CRCs.
            observed = [crc32(b) for b in fpga_blocks]
            caught = not agg.check(observed, true_crcs).ok
            cpu_ns_total += agg.check_cost_ns(BLOCKS_PER_IO)
        else:
            raise ValueError(design)
        if fault and caught:
            detected += 1
    return {
        "detection": detected / max(1, injected),
        "cpu_ns_per_io": cpu_ns_total / TRIALS,
        "injected": injected,
    }


def run_ablation() -> str:
    designs = ("fpga_only", "cpu_full", "aggregation")
    results = {d: simulate_design(d) for d in designs}
    rows = [
        [d, f"{results[d]['detection']:.0%}", f"{results[d]['cpu_ns_per_io']:.0f}"]
        for d in designs
    ]
    table = format_table(["design", "fault detection", "CPU ns / 64KB I/O"], rows)

    # Shape: FPGA-only misses the self-consistent corruption class;
    # full-CPU and aggregation catch everything; aggregation is >20x
    # cheaper than full recompute.
    assert results["fpga_only"]["detection"] < 0.75
    assert results["cpu_full"]["detection"] == 1.0
    assert results["aggregation"]["detection"] == 1.0
    assert results["aggregation"]["cpu_ns_per_io"] * 20 < results["cpu_full"]["cpu_ns_per_io"]
    return ("Ablation: integrity-check placement "
            "(SOLAR picks CPU-side CRC aggregation, §4.5):\n" + table)


def test_ablation_crc(benchmark):
    text = once(benchmark, run_ablation)
    print("\n" + text)
    save_output("ablation_crc", text)
