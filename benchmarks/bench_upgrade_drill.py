"""Rolling hot-upgrade drill: Figure 7's rollout as a control-plane run.

Where ``bench_fig7_evolution`` blends per-stack steady states through the
*analytic* quarterly rollout table, this bench actually performs the
rollout: a simulated fleet starts on the kernel stack and the
``repro.control`` plane live-migrates it to LUNA and then SOLAR in waves,
under live paced load.  Every number in the table below is measured
inside the one shared simulation — stack mix, fleet-average latency,
per-server IOPS and availability per wave.

Shape assertions (the paper's operational claims):

* the rollout finishes with the whole fleet on SOLAR;
* fleet-average latency improves monotonically wave over wave, matching
  the analytic ``DEFAULT_ROLLOUT`` trend;
* no guest I/O fails or hangs >= 1s during any migration (the Table 2
  yardstick) — guests see brief deferrals, never errors;
* availability never drops below 97% of fleet-time in any wave.
"""

from __future__ import annotations

from common import format_table, once, save_output

from repro.control import check_rollout_consistency, execute_upgrade_point
from repro.control.drill import artifact_to_result
from repro.lab.spec import ExperimentSpec, UpgradeSpec


def drill_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="bench/upgrade-drill",
        upgrade=UpgradeSpec(from_stack="kernel", to_stack="solar",
                            servers=8, waves=4),
        seeds=(42,),
        vd_size_mb=64,
    )


def run_drill() -> str:
    spec = drill_spec()
    artifact = execute_upgrade_point(spec, 42)
    result = artifact_to_result(spec, artifact)

    rows = []
    for w in result.waves:
        mix = " ".join(
            f"{stack}:{share:.0%}"
            for stack, share in sorted(w.mix.items()) if share > 0
        )
        rows.append([
            w.index, w.kind, mix, w.completed,
            f"{w.mean_latency_ns / 1000:.1f}",
            f"{w.iops_per_server:.0f}",
            f"{w.availability:.4%}",
            w.migrations,
        ])
    table = format_table(
        ["wave", "kind", "mix", "ios", "mean us", "IOPS/srv",
         "availability", "migr"],
        rows,
    )

    problems = check_rollout_consistency(result)
    assert not problems, problems
    assert result.failed == 0, f"{result.failed} guest I/Os failed"
    assert result.hangs == 0, f"{result.hangs} I/Os hung >= 1s"
    assert result.terminal_mix() == {"kernel": 0.0, "luna": 0.0, "solar": 1.0}
    assert result.availability_floor() >= 0.97
    assert result.migrations == 2 * len(result.plan.hops()) * result.plan.waves

    drains = [m["downtime_ns"] for m in artifact["migrations"]]
    first, last = result.waves[0], result.waves[-1]
    summary = (
        f"\nfleet latency: {first.mean_latency_ns / 1000:.1f}us -> "
        f"{last.mean_latency_ns / 1000:.1f}us "
        f"({1 - last.mean_latency_ns / first.mean_latency_ns:.0%} lower)\n"
        f"availability floor: {result.availability_floor():.4%}\n"
        f"per-VD downtime: max {max(drains) / 1000:.0f}us over "
        f"{result.migrations} migrations; "
        f"{result.deferred} I/Os deferred, {result.hangs} hung, "
        f"{result.failed} failed\n"
    )
    return "Rolling upgrade drill (kernel -> luna -> solar):\n" + table + summary


def test_upgrade_drill(benchmark):
    text = once(benchmark, run_drill)
    print("\n" + text)
    save_output("upgrade_drill", text)
