"""Figure 10: where the data goes — CPU and PCIe involvement per stack.

The paper's architectural argument in one diagram: under bare-metal
hosting, LUNA's datapath (a) and RDMA's (b) both haul every byte across
the ALI-DPU's internal PCIe twice and through its CPU; SOLAR (c) hands
packets between the network and storage pipelines inside the FPGA and
touches guest memory only via host-PCIe DMA.

This bench runs the same 1MB of 4KB writes + reads on each stack and
reports *measured* byte counts on each resource — a structural assertion,
not a performance one.
"""

from __future__ import annotations

from common import format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.profiles import BLOCK_SIZE

IO_BYTES = 64 * BLOCK_SIZE  # 256KB each way


def run_stack(stack: str) -> dict:
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=101, hosting="bare_metal"))
    host = dep.compute_host_names()[0]
    vd = VirtualDisk(dep, "vd0", host, 256 * 1024 * 1024)
    done = []
    for i in range(IO_BYTES // (4 * BLOCK_SIZE)):
        dep.sim.schedule(i * 100_000, vd.write, i * 4 * BLOCK_SIZE,
                         4 * BLOCK_SIZE, done.append)
    dep.run()
    for i in range(IO_BYTES // (4 * BLOCK_SIZE)):
        dep.sim.schedule(i * 100_000, vd.read, i * 4 * BLOCK_SIZE,
                         4 * BLOCK_SIZE, done.append)
    dep.run()
    assert all(io.trace.ok for io in done)
    server = dep.compute_servers[host]
    dpu = server.dpu
    moved = 2 * IO_BYTES  # total payload both directions
    return {
        "internal_pcie_bytes": dpu.internal_pcie.bytes_moved,
        "internal_per_payload": dpu.internal_pcie.bytes_moved / moved,
        "host_dma_bytes": dpu.host_pcie.bytes_moved,
        "infra_cpu_ms": server.infra_cpu.total_busy_ns() / 1e6,
        "fpga_packets": dpu.fpga.packets_processed if stack == "solar" else 0,
    }


def run_fig10() -> str:
    stacks = ("luna", "rdma", "solar_star", "solar")
    results = {s: run_stack(s) for s in stacks}
    rows = [
        [s,
         f"{r['internal_pcie_bytes'] / 1024:.0f}KB",
         f"{r['internal_per_payload']:.1f}x",
         f"{r['host_dma_bytes'] / 1024:.0f}KB",
         f"{r['infra_cpu_ms']:.2f}ms"]
        for s, r in results.items()
    ]
    table = format_table(
        ["stack", "internal PCIe", "x payload", "guest DMA", "DPU CPU busy"], rows
    )
    # Figure 10's claims, measured:
    # (a)/(b): LUNA and RDMA cross the internal PCIe twice per payload.
    for s in ("luna", "rdma", "solar_star"):
        assert results[s]["internal_per_payload"] >= 1.9, (s, results[s])
    # (c): SOLAR never touches the internal PCIe with data...
    assert results["solar"]["internal_pcie_bytes"] == 0
    # ...moves payloads via host DMA instead...
    assert results["solar"]["host_dma_bytes"] >= 2 * IO_BYTES
    # ...and burns the least DPU CPU of all stacks.
    assert results["solar"]["infra_cpu_ms"] == min(
        r["infra_cpu_ms"] for r in results.values()
    )
    return ("Figure 10 (datapath resource crossings, 512KB of 4KB I/O "
            "per direction):\n" + table)


def test_fig10(benchmark):
    text = once(benchmark, run_fig10)
    print("\n" + text)
    save_output("fig10_pcie_crossings", text)
