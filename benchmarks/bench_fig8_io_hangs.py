"""Figure 8: I/O hangs caused by network failures under LUNA, by failure
location and duration.

Paper: ~100 failure incidents over two years; hang impact (VM-minutes of
I/O hang) grows with failure duration and with the blast radius of the
failing tier — ToR failures hurt the hosts under them, spine/core/DC
router failures hurt progressively larger slices of the fleet; impacts
range from ~10 to >10,000 VM-minutes.

Method: for each tier we measure, in a live LUNA deployment, the fraction
of I/O flows a blackhole at that tier hangs; incidents sampled across
tiers and durations then scale that rate by affected-VM count x duration.
"""

from __future__ import annotations

import random

from common import format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.faults import IoHangMonitor
from repro.net.failures import switch_blackhole
from repro.sim import MS, SECOND
from repro.telemetry import SlowIoDiagnoser

#: Fleet-scale fan-out per failing tier: VMs whose traffic crosses the
#: failed device (rack ~ 40 VMs; spine ~ pod; core/DCR ~ multiple pods).
TIER_FANOUT = {"tor": 40, "spine": 640, "core": 2_560, "dc_router": 10_240}


def measure_hang_fraction(tier: str) -> float:
    """Fraction of VMs that experience >=1 I/O hang (>1s unanswered)
    while one device of the tier silently blackholes all its traffic
    (a dead line card), under LUNA."""
    dep = EbsDeployment(DeploymentSpec(stack="luna", seed=81,
                                       compute_racks=2, compute_hosts_per_rack=2))
    # The telemetry plane's diagnoser tallies the same hangs online; the
    # parity assert below holds the streaming path to the offline counts.
    diagnoser = SlowIoDiagnoser(slo_ns=1 * SECOND)
    monitors = {}
    vds = {}
    for i, host in enumerate(dep.compute_host_names()):
        vds[host] = VirtualDisk(dep, f"vd{i}", host, 256 * 1024 * 1024)
        monitors[host] = IoHangMonitor(
            dep.sim, threshold_ns=1 * SECOND,
            on_hang=lambda io, host=host: diagnoser.observe_hang(io, node=host),
        )
    scenario = switch_blackhole(tier if tier != "dc_router" else "core", 1.0)
    dep.sim.schedule_at(1 * MS, scenario.apply, dep.topology)
    counters = {host: 0 for host in vds}

    def issue(host: str) -> None:
        if dep.sim.now > 600 * MS:
            return
        io = vds[host].write((counters[host] % 1000) * 4096, 4096, lambda io: None)
        monitors[host].watch(io)
        counters[host] += 1
        dep.sim.schedule(3 * MS, issue, host)

    for host in vds:
        issue(host)
    dep.run(until_ns=2 * SECOND)
    # Online/offline parity: the streaming diagnoser saw exactly the
    # hangs the per-host monitors counted, host by host.
    for host, m in monitors.items():
        assert diagnoser.hangs_by_node.get(host, 0) == m.hangs, (
            f"{tier}/{host}: online tally {diagnoser.hangs_by_node.get(host, 0)} "
            f"!= offline {m.hangs}"
        )
    affected = sum(1 for m in monitors.values() if m.hangs > 0)
    assert diagnoser.affected_nodes() == affected
    return affected / len(monitors)


def run_fig8() -> str:
    rng = random.Random(83)
    hang_fraction = {tier: measure_hang_fraction(tier) for tier in TIER_FANOUT}
    incidents = []
    for _ in range(100):  # "around 100 network failures ... over two years"
        tier = rng.choices(list(TIER_FANOUT), weights=[50, 28, 15, 7])[0]
        duration_min = min(100.0, rng.lognormvariate(2.3, 1.0))
        affected_vms = TIER_FANOUT[tier] * hang_fraction[tier]
        vm_minutes = affected_vms * duration_min
        incidents.append((tier, duration_min, vm_minutes))

    rows = []
    for tier in TIER_FANOUT:
        tier_inc = [(d, v) for t, d, v in incidents if t == tier]
        if not tier_inc:
            continue
        rows.append([
            tier, len(tier_inc), f"{hang_fraction[tier]:.0%}",
            f"{min(v for _d, v in tier_inc):.0f}",
            f"{max(v for _d, v in tier_inc):.0f}",
        ])
    table = format_table(
        ["tier", "incidents", "hang fraction", "min VM-min", "max VM-min"], rows
    )

    # Shape: every tier hangs some LUNA I/Os; higher tiers reach larger
    # worst-case impact; the overall spread covers orders of magnitude.
    assert all(f > 0.05 for f in hang_fraction.values())
    worst = {t: max((v for tt, _d, v in incidents if tt == t), default=0)
             for t in TIER_FANOUT}
    assert worst["dc_router"] > worst["tor"]
    all_vals = [v for _t, _d, v in incidents]
    assert max(all_vals) / max(1e-9, min(all_vals)) > 100
    return "Figure 8 (I/O hang impact of ~100 incidents, LUNA era):\n" + table


def test_fig8(benchmark):
    text = once(benchmark, run_fig8)
    print("\n" + text)
    save_output("fig8_io_hangs", text)
