"""Event-kernel perf baseline: events/sec on a fixed reference workload.

ROADMAP item 1 notes the simulator has no recorded performance baseline,
so optimization PRs have nothing to demonstrate a win against.  This
bench runs one fixed, deterministic workload — a SOLAR deployment under
closed-loop fio for 200 simulated milliseconds — and records how fast the
event kernel chewed through it: total events, wall-clock seconds, and
events per wall-second.  The numbers land in two places:

* ``out/BENCH_kernel.json`` — the latest run (untracked scratch);
* ``BENCH_kernel_history.jsonl`` — the committed trajectory, one JSON
  line appended per official run, never overwritten.  This is what
  ``check_kernel_regression.py`` (and the CI smoke step) compares fresh
  runs against: a >20% events/sec drop versus the last committed entry
  fails the build.

The *simulated* side is asserted exactly (event count and completed I/Os
are pure functions of the workload); the *wall-clock* side is recorded,
not asserted — machine speed is not a correctness property.

To profile the kernel on this exact workload, run this file as a script
under cProfile (see :func:`common.profile_once` for the in-process
variant)::

    cd benchmarks && PYTHONPATH=../src:. \
        python -m cProfile -s cumtime bench_kernel_events.py | head -40
"""

from __future__ import annotations

import json
import os
import time

from common import OUT_DIR, format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.sim import MS
from repro.workloads import FioJob, FioSpec

#: Bump when the reference workload changes — baselines only compare
#: within one workload version.
WORKLOAD_VERSION = 1
RUNTIME_NS = 200 * MS
SEED = 42

#: Committed events/sec trajectory (append-mode: one JSON line per run).
HISTORY_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_kernel_history.jsonl"
)


def run_reference_workload() -> dict:
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=SEED))
    vd = VirtualDisk(
        dep, "bench-vd", dep.compute_host_names()[0], 64 * 1024 * 1024
    )
    job = FioJob(
        dep.sim,
        vd,
        FioSpec(
            block_sizes=(4096, 16384),
            iodepth=8,
            read_fraction=0.5,
            runtime_ns=RUNTIME_NS,
            name="kernel-baseline",
        ),
    )
    job.start()
    wall_start = time.perf_counter()
    dep.run(until_ns=RUNTIME_NS + 10 * MS)
    wall_s = time.perf_counter() - wall_start
    return {
        "workload_version": WORKLOAD_VERSION,
        "stack": "solar",
        "seed": SEED,
        "runtime_ns": RUNTIME_NS,
        "sim_ns": dep.sim.now,
        "events": dep.sim.events_processed,
        "ios_completed": job.completed,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(dep.sim.events_processed / wall_s, 1),
        "sim_time_ratio": round((dep.sim.now / 1e9) / wall_s, 4),
    }


def run_baseline() -> str:
    result = run_reference_workload()

    # The simulated side is deterministic; a drift here means the
    # reference workload changed and WORKLOAD_VERSION must bump.
    assert result["events"] > 100_000, (
        f"reference workload only produced {result['events']} events — "
        "too small to be a meaningful kernel baseline"
    )
    assert result["ios_completed"] > 1_000

    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, "BENCH_kernel.json")
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(HISTORY_PATH, "a") as handle:
        handle.write(json.dumps(result, sort_keys=True) + "\n")

    table = format_table(
        ["metric", "value"],
        [
            ["events", result["events"]],
            ["ios completed", result["ios_completed"]],
            ["simulated", f"{result['sim_ns'] / MS:.0f}ms"],
            ["wall clock", f"{result['wall_s']:.2f}s"],
            ["events/sec", f"{result['events_per_sec']:,.0f}"],
            ["sim-time ratio", f"{result['sim_time_ratio']:.4f}x"],
        ],
    )
    return (
        f"Event-kernel baseline (workload v{WORKLOAD_VERSION}, "
        f"written to {os.path.basename(path)}):\n" + table
    )


def test_kernel_events(benchmark):
    text = once(benchmark, run_baseline)
    print("\n" + text)
    save_output("kernel_events", text)


if __name__ == "__main__":
    # Script entry so `python -m cProfile -s cumtime bench_kernel_events.py`
    # profiles exactly the reference workload (no pytest frames on top).
    print(json.dumps(run_reference_workload(), indent=2, sort_keys=True))
