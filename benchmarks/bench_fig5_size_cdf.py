"""Figure 5: the distribution of I/O and FN RPC sizes.

Paper: RPC (flow) sizes stay under 128KB-256KB; about 40% of RPCs are up
to 4KB; the RPC size CDF almost coincides with the I/O size CDF because
most I/Os finish in a single RPC (segments are 2MB and contiguous, so
splitting is rare).

The reproduction samples I/Os from the fitted distribution, runs them
through the real segment table to obtain the RPC (extent) sizes the SA
would actually emit, and prints both CDFs.
"""

from __future__ import annotations

import random

import pytest
from common import format_table, once, save_output

from repro.profiles import BLOCK_SIZE
from repro.storage.segment_table import SegmentTable
from repro.workloads import SizeDistribution

KB = 1024


def run_fig5(samples: int = 20_000) -> str:
    rng = random.Random(13)
    dist = SizeDistribution()
    table = SegmentTable()
    table.provision("vd", 1024 * 1024 * 1024,
                    [f"bs{i}" for i in range(8)], [f"c{i}" for i in range(12)])
    max_block = 1024 * 1024 * 1024 // BLOCK_SIZE

    io_sizes, rpc_sizes = [], []
    split_count = 0
    for _ in range(samples):
        size = dist.sample(rng)
        blocks = size // BLOCK_SIZE
        start = rng.randint(0, max_block - blocks)
        extents = table.extents("vd", start, blocks)
        io_sizes.append(size)
        rpc_sizes.extend(e.num_blocks * BLOCK_SIZE for e in extents)
        if len(extents) > 1:
            split_count += 1

    def cdf(values, points):
        values = sorted(values)
        out = {}
        import bisect

        for p in points:
            out[p] = bisect.bisect_right(values, p) / len(values)
        return out

    points = [4 * KB, 16 * KB, 64 * KB, 256 * KB, 1024 * KB]
    io_cdf = cdf(io_sizes, points)
    rpc_cdf = cdf(rpc_sizes, points)
    rows = [
        [f"{p // KB}KB", f"{io_cdf[p]:.1%}", f"{rpc_cdf[p]:.1%}"] for p in points
    ]
    out = format_table(["Size <=", "I/O CDF", "RPC CDF"], rows)
    split_rate = split_count / samples

    # Shape: ~40% at 4KB, everything <= 256KB, RPC ~ I/O CDF, rare splits.
    assert io_cdf[4 * KB] == pytest.approx(0.40, abs=0.02)
    assert io_cdf[256 * KB] == 1.0 and rpc_cdf[256 * KB] == 1.0
    for p in points:
        assert rpc_cdf[p] >= io_cdf[p] - 0.01  # splitting only shrinks RPCs
    assert split_rate < 0.05  # §4.5: "the chance of I/O splitting is typically low"
    return (
        f"Figure 5 (I/O and RPC size CDFs, {samples} sampled I/Os):\n{out}"
        f"I/O-splitting rate across segments: {split_rate:.2%} (rare, §4.5)\n"
    )


def test_fig5(benchmark):
    text = once(benchmark, run_fig5)
    print("\n" + text)
    save_output("fig5_size_cdf", text)
