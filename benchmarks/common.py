"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper: it runs
the simulation experiment, prints the same rows/series the paper reports,
saves them under ``benchmarks/out/``, and asserts the qualitative shape
(who wins, by roughly what factor).  Timing is taken by pytest-benchmark
with a single round — these are experiment harnesses, not microbenchmarks.

Multi-point benches (one independent simulation per stack/seed/scenario
point) fan their points through :func:`fanout`, which delegates to the
experiment lab's process-pool runner.  Set ``REPRO_JOBS=N`` to run ``N``
simulations concurrently; the default (1) executes serially in-process,
and results are identical either way because every point is a pure
function of its arguments.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.lab.runner import default_jobs, map_parallel

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def fanout(fn: Callable, argslist: Sequence[Tuple], jobs: Optional[int] = None) -> List:
    """Run ``fn(*args)`` for every args tuple, ``REPRO_JOBS`` at a time.

    Results return in input order.  ``fn`` must be a module-level function
    and its arguments picklable; a crashed worker is retried once serially
    (see :func:`repro.lab.runner.map_parallel`).
    """
    return map_parallel(fn, argslist, jobs=default_jobs() if jobs is None else jobs)


def save_output(name: str, text: str) -> str:
    """Persist a rendered table/series next to the benchmarks."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    return path


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out) + "\n"


def small_deployment(stack: str, seed: int = 42, **kwargs) -> EbsDeployment:
    """A compact deployment sized for fast benchmark runs."""
    spec = DeploymentSpec(
        stack=stack,
        seed=seed,
        compute_racks=kwargs.pop("compute_racks", 1),
        compute_hosts_per_rack=kwargs.pop("compute_hosts_per_rack", 2),
        storage_racks=kwargs.pop("storage_racks", 2),
        storage_hosts_per_rack=kwargs.pop("storage_hosts_per_rack", 4),
        **kwargs,
    )
    return EbsDeployment(spec)


def provisioned_vd(dep: EbsDeployment, host_index: int = 0,
                   size_mb: int = 512, vd_id: str = "vd0") -> VirtualDisk:
    host = dep.compute_host_names()[host_index]
    return VirtualDisk(dep, vd_id, host, size_mb * 1024 * 1024)


def run_single_ios(
    dep: EbsDeployment,
    vd: VirtualDisk,
    kind: str,
    count: int,
    size_bytes: int = 4096,
    gap_ns: int = 200_000,
) -> List:
    """Issue ``count`` isolated I/Os (one at a time) and return traces."""
    done: List = []
    # Guard the offset walk: an I/O as large as the VD always lands at 0,
    # and one larger than the VD can never fit (the old modulo produced a
    # zero divisor / negative offsets for those sizes).
    span = vd.size_bytes - size_bytes
    if span < 0:
        raise ValueError(
            f"I/O size {size_bytes}B exceeds VD size {vd.size_bytes}B"
        )

    def issue(i: int) -> None:
        offset = (i * size_bytes) % span if span > 0 else 0
        offset -= offset % 4096
        if kind == "write":
            vd.write(offset, size_bytes, done.append)
        else:
            vd.read(offset, size_bytes, done.append)

    for i in range(count):
        dep.sim.schedule(i * gap_ns, issue, i)
    dep.run()
    assert len(done) == count, f"only {len(done)}/{count} I/Os completed"
    return [io.trace for io in done]


def once(benchmark, fn: Callable, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def profile_once(fn: Callable, *args, sort: str = "cumulative",
                 top: int = 30, out_path: Optional[str] = None, **kwargs):
    """Run ``fn`` under :mod:`cProfile`, print the ``top`` hottest rows.

    The in-process companion to the shell one-liner (which profiles the
    kernel reference workload with zero harness frames on top)::

        cd benchmarks && PYTHONPATH=../src:. \\
            python -m cProfile -s cumtime bench_kernel_events.py | head -40

    Pass ``out_path`` to also dump raw stats for ``pstats``/snakeviz.
    Returns ``fn``'s result, so a bench can be profiled without
    re-plumbing its assertions.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    if out_path:
        profiler.dump_stats(out_path)
    pstats.Stats(profiler).sort_stats(sort).print_stats(top)
    return result
