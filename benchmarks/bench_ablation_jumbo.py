"""Ablation: jumbo-frame block size — 4KB vs 8KB packets (§4.8).

Paper: "Large packet sizes can increase the chance of congestion in the
switch that uses store-and-forward pipelines, especially running with
multi-path exaggerates the incast scenario. ... we use 4K bytes instead
of 8K bytes for the jumbo frame to balance the congestion risk and the
benefit."

This is a pure network-level study isolating exactly that tradeoff: many
senders converge on one receiver through a shallow-buffered fabric
(incast), sending the same goodput either as 4KB-block packets or as
8KB-block packets.  Measured: per-packet delivery latency distribution,
drops, peak queue depth, and the header-amortization benefit 8KB buys.
"""

from __future__ import annotations

from common import format_table, once, save_output

from repro.core.headers import data_packet_bytes
from repro.net import ClosTopology, PodSpec
from repro.profiles import DEFAULT
from repro.sim import MS, Simulator
from repro.transport import DatagramSocket

SENDERS = 8
GOODPUT_PER_SENDER_GBPS = 6.0
DURATION_NS = 6 * MS


def run_block_size(block_bytes: int) -> dict:
    profiles = DEFAULT.with_overrides(
        network={"queue_capacity_bytes": 64 * 1024}
    )
    sim = Simulator(seed=181)
    topo = ClosTopology(
        sim, profiles.network,
        [PodSpec("cp", 2, SENDERS // 2, role="compute", spines=1),
         PodSpec("sp", 1, 1, role="storage", spines=1)],
    )
    receiver_name = "sp/r0/h0"
    receiver = DatagramSocket(sim, topo.hosts[receiver_name], "solar")
    latencies = []
    received = [0]

    def on_packet(packet):
        received[0] += 1
        latencies.append(sim.now - packet.created_ns)

    receiver.bind(7100, on_packet)

    wire_bytes = data_packet_bytes(block_bytes) + profiles.network.header_overhead_bytes
    gap_ns = int(block_bytes * 8 / GOODPUT_PER_SENDER_GBPS)
    sent = [0]
    senders = [
        DatagramSocket(sim, h, "solar")
        for name, h in sorted(topo.hosts.items()) if name.startswith("cp")
    ]

    def feed(sock: DatagramSocket, sport: int, t: int) -> None:
        if t >= DURATION_NS:
            return
        sock.send(receiver_name, sport, 7100, wire_bytes)
        sent[0] += 1
        sim.schedule(gap_ns, feed, sock, sport + 1 if sport < 40_063 else 40_000, t + gap_ns)

    for i, sock in enumerate(senders):
        # Multi-path spreading: rotate source ports like SOLAR does.
        feed(sock, 40_000 + i, 0)
    sim.run(until=DURATION_NS + 5 * MS)

    peak_queue = max(
        ch.queue.peak_bytes for link in topo.links for ch in (link.ab, link.ba)
    )
    drops = sum(
        ch.queue.dropped for link in topo.links for ch in (link.ab, link.ba)
    )
    latencies.sort()
    return {
        "sent": sent[0],
        "received": received[0],
        "loss": 1 - received[0] / max(1, sent[0]),
        "p50_us": latencies[len(latencies) // 2] / 1000,
        "p99_us": latencies[int(len(latencies) * 0.99)] / 1000,
        "peak_queue_kb": peak_queue / 1024,
        "drops": drops,
        "wire_efficiency": block_bytes / wire_bytes,
    }


def run_ablation() -> str:
    results = {b: run_block_size(b) for b in (4096, 8192)}
    rows = [
        [f"{b // 1024}KB", f"{r['wire_efficiency']:.1%}", f"{r['p50_us']:.0f}",
         f"{r['p99_us']:.0f}", f"{r['peak_queue_kb']:.0f}", r["drops"],
         f"{r['loss']:.2%}"]
        for b, r in results.items()
    ]
    table = format_table(
        ["block/packet", "wire eff.", "p50 (us)", "p99 (us)",
         "peak queue (KB)", "drops", "loss"], rows
    )
    r4, r8 = results[4096], results[8192]
    # Shape: 8KB buys ~1.5 points of header amortization but worsens the
    # incast tail / loss on shallow buffers — the paper's reason to stay
    # at 4KB.
    assert r8["wire_efficiency"] > r4["wire_efficiency"]
    assert r8["wire_efficiency"] - r4["wire_efficiency"] < 0.03
    assert r8["p99_us"] > r4["p99_us"]
    assert r8["drops"] >= r4["drops"]
    return ("Ablation: 4KB vs 8KB jumbo payload under incast "
            "(§4.8 picks 4KB):\n" + table)


def test_ablation_jumbo(benchmark):
    text = once(benchmark, run_ablation)
    print("\n" + text)
    save_output("ablation_jumbo", text)
