"""Figure 7: the 2019-2021 evolution of fleet-average IOPS and latency as
LUNA and then SOLAR roll out.

Paper: the network stacks reduced average I/O latency by 72% and roughly
tripled per-server IOPS across the window; the curves inflect as each
stack reaches scale ("Luna at scale" ~2021Q1, "Solar at scale" ~2021).

Method: measure each stack's steady state (average latency and achievable
per-server IOPS) with short production runs, then blend them through the
documented rollout schedule.
"""

from __future__ import annotations

from common import fanout, format_table, once, save_output

from repro.ebs import (
    DeploymentSpec,
    EbsDeployment,
    StackSteadyState,
    VirtualDisk,
    fleet_evolution,
)
from repro.sim import MS
from repro.workloads import FioSpec, ProductionWorkload, run_fio


def steady_state(stack: str) -> StackSteadyState:
    # Latency: production-shaped load at moderate IOPS.
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=71, encrypt_payloads=True))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 512 * 1024 * 1024)
    load = ProductionWorkload(dep.sim, vd, 40_000, 15 * MS, name=f"fig7/{stack}")
    load.start()
    dep.run(until_ns=15 * MS + 300 * MS)
    avg_us = load.latency.mean() / 1000

    # IOPS capacity: closed-loop 4KB at high depth on a fresh deployment.
    dep2 = EbsDeployment(DeploymentSpec(stack=stack, seed=72,
                                        storage_racks=2, storage_hosts_per_rack=6))
    vd2 = VirtualDisk(dep2, "vd0", dep2.compute_host_names()[0], 512 * 1024 * 1024)
    result = run_fio(dep2.sim, [vd2],
                     FioSpec(block_sizes=(4096,), iodepth=48,
                             read_fraction=0.22, runtime_ns=8 * MS))["vd0"]
    return StackSteadyState(avg_latency_us=avg_us, iops_per_server=result.iops)


def run_fig7() -> str:
    stacks = ("kernel", "luna", "solar")
    per_stack = dict(zip(stacks, fanout(steady_state, [(s,) for s in stacks])))
    points = fleet_evolution(per_stack)
    rows = [
        [p.quarter, f"{p.avg_latency_us:.0f}", f"{p.latency_vs_19q1:.2f}",
         f"{p.iops_per_server / 1000:.0f}K", f"{p.iops_vs_21q4:.2f}"]
        for p in points
    ]
    table = format_table(
        ["Quarter", "avg lat (us)", "lat vs 19Q1", "IOPS/server", "IOPS vs 21Q4"],
        rows,
    )
    reduction = 1 - points[-1].avg_latency_us / points[0].avg_latency_us
    iops_gain = points[-1].iops_per_server / points[0].iops_per_server

    # Shape: monotone improvement, large latency cut, >=2x IOPS.  The
    # paper reports 72%; the stacks alone give ~50-60% here because our
    # baseline holds the storage medium fixed (the production 72% also
    # folds in the HDD->SSD-era medium shift and BN upgrades).
    lats = [p.avg_latency_us for p in points]
    assert all(a >= b for a, b in zip(lats, lats[1:]))
    assert reduction >= 0.45
    assert iops_gain >= 2.0
    summary = (
        f"\nlatency reduction over the window: {reduction:.0%} (paper: 72%)\n"
        f"IOPS scale-up over the window: {iops_gain:.1f}x (paper: ~3x / +220%)\n"
    )
    return "Figure 7 (fleet evolution by quarter):\n" + table + summary


def test_fig7(benchmark):
    text = once(benchmark, run_fig7)
    print("\n" + text)
    save_output("fig7_evolution", text)
