"""Re-replication storm policy study: Table 2's recovery as a trade-off.

Each point kills one storage node under live fio load and rebuilds the
lost replicas as real backend-network traffic through ``repro.rebuild``,
measuring the two numbers every operator trades against each other: how
fast the fleet is back to full replication (recovery time) and what the
storm did to foreground tail latency (p99 during the storm).  The grid is
{static-cap, deadline, reactive} x {unicast, swarm}; with ``replicas=4``
one node death leaves three surviving seeds per segment, so swarm mode
streams from all three concurrently.

The knobs are deliberately contention-bound, not throttle-bound: the
40 Gbit/s cap sits between unicast's measured aggregate (~19 Gbit/s from
three sequential streams) and swarm's (~44 Gbit/s from nine), and the
2 ms deadline needs ~25 Gbit/s — infeasible for unicast, so the deadline
policy's rate clamp turns the race throughput-bound too.  That is the
regime where seeding from every survivor matters, which is the paper's
argument for swarm rebuild in the first place.

Shape assertions:

* every configuration fully recovers (balanced ledger, no stalls);
* swarm strictly beats unicast recovery time under every policy;
* artifacts are byte-identical across ``REPRO_JOBS`` values (each point
  is a pure function of (spec, seed) — re-running one point in-process
  must reproduce the fanout's bytes exactly).
"""

from __future__ import annotations

from common import fanout, format_table, once, save_output

from repro.lab.spec import (
    ExperimentSpec,
    RebuildSpec,
    WorkloadSpec,
    canonical_json,
)
from repro.rebuild.drill import execute_rebuild_point
from repro.sim import MS

SEED = 42
POLICIES = ("static", "deadline", "reactive")
MODES = ("unicast", "swarm")
#: Surviving seeds per segment after the kill (replicas - 1).
SURVIVING_SEEDS = 3


def storm_spec(policy: str, mode: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"bench/rebuild-storm/{policy}/{mode}",
        workload=WorkloadSpec(mode="fio", runtime_ns=30 * MS),
        seeds=(SEED,),
        vd_size_mb=16,
        rebuild=RebuildSpec(
            policy=policy,
            mode=mode,
            rate_gbps=40.0,
            deadline_ms=2,
            target_p99_us=500,
            replicas=SURVIVING_SEEDS + 1,
            chunk_kb=256,
            fail_at_ns=5 * MS,
            node_index=1,
        ),
    )


def storm_point(policy: str, mode: str) -> dict:
    return execute_rebuild_point(storm_spec(policy, mode), SEED)


def run_storms() -> str:
    grid = [(p, m) for p in POLICIES for m in MODES]
    artifacts = fanout(storm_point, grid)
    by_config = {cfg: art for cfg, art in zip(grid, artifacts)}

    # Determinism across REPRO_JOBS: the fanout may have computed this
    # point in a worker process; recomputing it here must be byte-equal.
    probe = ("static", "unicast")
    assert canonical_json(by_config[probe]) == canonical_json(
        storm_point(*probe)
    ), "rebuild artifact differs between fanout worker and in-process run"

    rows = []
    recovery = {}
    for (policy, mode), art in by_config.items():
        rb = art["rebuild"]
        assert rb["complete"], f"{policy}/{mode} did not fully recover: " \
            f"{rb['ledger']}"
        ledger = rb["ledger"]
        assert ledger["started"] == ledger["completed"], \
            f"{policy}/{mode} ledger unbalanced: {ledger}"
        recovery[(policy, mode)] = rb["recovery_ns"]
        fg = rb["foreground"]
        rows.append([
            policy, mode,
            f"{rb['bytes_rebuilt'] / 1e6:.1f}",
            f"{rb['recovery_ns'] / MS:.2f}",
            f"{fg['p99_ns'] / 1000:.0f}",
            f"{fg['p99_during_storm_ns'] / 1000:.0f}",
            f"{fg['max_during_storm_ns'] / 1000:.0f}",
        ])
    table = format_table(
        ["policy", "mode", "MB moved", "recovery ms", "fg p99 us",
         "storm p99 us", "storm max us"],
        rows,
    )

    # The acceptance claim: with >= 3 surviving seeds, swarm strictly
    # beats unicast under every throttle policy.
    for policy in POLICIES:
        uni, swarm = recovery[(policy, "unicast")], recovery[(policy, "swarm")]
        assert swarm < uni, (
            f"{policy}: swarm ({swarm / MS:.2f}ms) not strictly faster than "
            f"unicast ({uni / MS:.2f}ms) at {SURVIVING_SEEDS} surviving seeds"
        )

    speedups = ", ".join(
        f"{p}: {recovery[(p, 'unicast')] / recovery[(p, 'swarm')]:.2f}x"
        for p in POLICIES
    )
    summary = (
        f"\nswarm speedup over unicast ({SURVIVING_SEEDS} surviving seeds): "
        f"{speedups}\n"
    )
    return (
        "Re-replication storm: recovery time vs foreground p99 "
        "(one node killed at 5ms under fio load):\n" + table + summary
    )


def test_rebuild_storm(benchmark):
    text = once(benchmark, run_storms)
    print("\n" + text)
    save_output("rebuild_storm", text)
