"""Figure 11: root causes of corruption events mitigated by software CRC.

Paper: ~100 corruption events over two years, all caught by the software
CRC check; FPGA flapping is the top cause at 37%, followed by software
bugs, config errors and MCE errors.

Two layers are reproduced:

1. the root-cause mix of detected events (the figure itself);
2. the detection machinery: FPGA bit flips are injected into the live
   SOLAR offload datapath while writes with real payloads flow, and the
   CPU-side CRC aggregation must catch every injected flip.
"""

from __future__ import annotations

import random

from common import format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.faults import BitFlipInjector, CorruptionEventGenerator, ROOT_CAUSE_WEIGHTS


def detection_experiment(flips: str = "payload") -> dict:
    """Inject bit flips into the offload datapath during real writes."""
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=111))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
    offload = next(iter(dep.solar_offloads.values()))
    rates = {"payload_flip_rate": 0.3} if flips == "payload" else {"crc_flip_rate": 0.3}
    injector = BitFlipInjector(dep.sim.rng.stream("fig11"), **rates)
    offload.fault_injector = injector
    client = dep.solar_clients[vd.host_name]
    rng = random.Random(5)
    done = []
    for i in range(80):
        payload = rng.randbytes(4096)
        dep.sim.schedule(i * 50_000, vd.write, i * 4096, 4096, done.append, payload)
    dep.run()
    assert len(done) == 80
    return {
        "injected": injector.total_injected,
        "detected": client.integrity_events,
        "checks": client.aggregator.checks,
    }


def run_fig11() -> str:
    # (1) Root-cause mix of the ~100 production events.
    gen = CorruptionEventGenerator(random.Random(113))
    events = gen.draw_many(100)
    counts = {}
    for event in events:
        counts[event.root_cause] = counts.get(event.root_cause, 0) + 1
    rows = [
        [cause, counts.get(cause, 0), f"{ROOT_CAUSE_WEIGHTS[cause]:.0%}"]
        for cause in sorted(ROOT_CAUSE_WEIGHTS, key=ROOT_CAUSE_WEIGHTS.get,
                            reverse=True)
    ]
    table = format_table(["root cause", "events /100", "paper share"], rows)

    # Shape: FPGA flapping is the single largest cause (37% in §4.4).
    assert max(counts, key=counts.get) == "fpga_flapping"
    assert all(e.detected_by_software_crc for e in events)

    # (2) Detection machinery under live injected faults.
    payload_run = detection_experiment("payload")
    crc_run = detection_experiment("crc")
    for run in (payload_run, crc_run):
        assert run["injected"] > 0
        assert run["detected"] == run["injected"], (
            "software CRC aggregation must catch every injected flip"
        )
    detail = (
        f"\nlive-injection check (80 writes with real 4KB payloads each):\n"
        f"  payload bit flips injected={payload_run['injected']} "
        f"detected={payload_run['detected']}\n"
        f"  CRC-value bit flips injected={crc_run['injected']} "
        f"detected={crc_run['detected']}\n"
        f"  (aggregation checks run: {payload_run['checks']} + {crc_run['checks']})\n"
    )
    return "Figure 11 (corruption events mitigated by software CRC):\n" + table + detail


def test_fig11(benchmark):
    text = once(benchmark, run_fig11)
    print("\n" + text)
    save_output("fig11_corruption", text)
