"""Ablation: one-block-one-packet vs stream segmentation+reassembly.

§4.4's central design claim: making each packet a self-contained block
removes receive buffering, reordering sensitivity and per-connection
state.  We quantify two of those:

* **state held at the receiver** — bytes a stream receiver must buffer to
  reassemble in-order messages under loss, vs SOLAR's zero reassembly
  state (only the bounded Addr table on the READ initiator);
* **head-of-line blocking** — completion spread of an 8-block I/O's
  blocks under loss: a stream delivers nothing past a hole until
  retransmission fills it; SOLAR processes every surviving block on
  arrival.
"""

from __future__ import annotations

from common import format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.sim import MS


def solar_state_and_hol(drop_rate: float) -> dict:
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=171))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
    for sw in dep.topology.switches_by_tier("spine"):
        sw.set_drop_rate(drop_rate)
    offload = next(iter(dep.solar_offloads.values()))
    done = []
    for i in range(20):
        dep.sim.schedule(i * 500_000, vd.write, i * 32768, 32768, done.append)
    dep.run(until_ns=3_000 * MS)
    assert len(done) == 20
    # Receiver-side reassembly state: SOLAR has none (write path) — the
    # block server consumed each packet independently.  Peak protocol
    # state on the initiator is the Addr table (reads) — zero here.
    return {
        "peak_reassembly_bytes": 0,
        "addr_entries_peak": offload.addr_table.peak_occupancy,
        "p99_us": sorted(io.trace.total_ns for io in done)[-1] / 1000,
    }


def luna_state_and_hol(drop_rate: float) -> dict:
    dep = EbsDeployment(DeploymentSpec(stack="luna", seed=171))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
    for sw in dep.topology.switches_by_tier("spine"):
        sw.set_drop_rate(drop_rate)
    done = []
    for i in range(20):
        dep.sim.schedule(i * 500_000, vd.write, i * 32768, 32768, done.append)
    dep.run(until_ns=3_000 * MS)
    assert len(done) == 20
    # Peak bytes buffered at a receiver waiting for a hole to fill,
    # recorded by the on_data instrumentation installed by run_ablation.
    return {
        "peak_reassembly_bytes": max(_luna_peak_samples, default=0),
        "p99_us": sorted(io.trace.total_ns for io in done)[-1] / 1000,
    }


_luna_peak_samples = []


def _patch_stream_peak_tracking():
    """Record (received - deliverable) bytes on every stream data arrival."""
    from repro.transport.stream import StreamConnection

    original = StreamConnection.on_data

    def tracked(self, packet):
        original(self, packet)
        msg = packet.header("stream")["msg"]
        buffered = sum(msg.received.values()) - msg.cum_received
        if buffered > 0:
            _luna_peak_samples.append(buffered)

    StreamConnection.on_data = tracked
    return original


def run_ablation() -> str:
    original = _patch_stream_peak_tracking()
    try:
        luna = luna_state_and_hol(drop_rate=0.1)
    finally:
        from repro.transport.stream import StreamConnection

        StreamConnection.on_data = original
    solar = solar_state_and_hol(drop_rate=0.1)

    rows = [
        ["luna (stream reassembly)", luna["peak_reassembly_bytes"],
         f"{luna['p99_us']:.0f}"],
        ["solar (one-block-one-packet)", solar["peak_reassembly_bytes"],
         f"{solar['p99_us']:.0f}"],
    ]
    table = format_table(
        ["design", "peak reassembly buffer (B)", "worst 32KB write (us)"], rows
    )
    # Shape: the stream design buffers out-of-order bytes waiting for
    # retransmissions (head-of-line); SOLAR buffers nothing and its worst
    # case under the same loss is no worse.
    assert luna["peak_reassembly_bytes"] > 0
    assert solar["peak_reassembly_bytes"] == 0
    assert solar["p99_us"] <= luna["p99_us"]
    note = (
        f"\nSOLAR's only per-request hardware state is the READ Addr table "
        f"(peak {solar['addr_entries_peak']} entries here), bounded and "
        f"cleaned per packet (§4.5).\n"
    )
    return "Ablation: network-storage fusion vs stream reassembly (§4.4):\n" + table + note


def test_ablation_block_packet(benchmark):
    text = once(benchmark, run_ablation)
    print("\n" + text)
    save_output("ablation_block_packet", text)
