"""Ablation: SOLAR's multipath degrees of freedom (§4.5).

Two mechanisms give SOLAR its failure escape:

* several persistent paths per block server (the paper picks 4);
* re-keying a condemned path onto a fresh UDP source port (path
  rotation), which re-rolls its ECMP route — the antidote to the
  slow-recovery corner the paper admits ("multiple paths go through the
  same failure points").

This ablation crosses path count {1, 4} with rotation {off, on} under a
full silent ToR blackhole, and checks clean-fabric latency is unaffected
by either knob.
"""

from __future__ import annotations

from common import format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.faults import IoHangMonitor
from repro.net.failures import switch_blackhole
from repro.profiles import DEFAULT
from repro.sim import MS, SECOND


def run_variant(num_paths: int, rotate: bool, inject_failure: bool) -> dict:
    profiles = DEFAULT.with_overrides(solar={"rotate_failed_paths": rotate})
    dep = EbsDeployment(
        DeploymentSpec(stack="solar", seed=161, solar_paths=num_paths,
                       compute_racks=1, compute_hosts_per_rack=2),
        profiles=profiles,
    )
    host = dep.compute_host_names()[0]
    vd = VirtualDisk(dep, "vd0", host, 256 * 1024 * 1024)
    monitor = IoHangMonitor(dep.sim, threshold_ns=1 * SECOND)
    if inject_failure:
        scenario = switch_blackhole("tor", 1.0)
        dep.sim.schedule_at(10 * MS, scenario.apply, dep.topology)
    latencies = []
    count = [0]

    def issue() -> None:
        if dep.sim.now > 600 * MS:
            return
        io = vd.write((count[0] % 1000) * 4096, 4096,
                      lambda io: latencies.append(io.trace.total_ns))
        monitor.watch(io)
        count[0] += 1
        dep.sim.schedule(2 * MS, issue)

    issue()
    dep.run(until_ns=2 * SECOND)
    rotations = sum(
        m.path_rotations
        for client in dep.solar_clients.values()
        for m in client._paths.values()
    )
    done = len(latencies)
    return {
        "hangs": monitor.hangs,
        "issued": monitor.watched,
        "completed": done,
        "rotations": rotations,
        "p50_us": sorted(latencies)[done // 2] / 1000 if done else float("inf"),
    }


def run_ablation() -> str:
    rows = []
    results = {}
    for num_paths in (1, 4):
        for rotate in (False, True):
            clean = run_variant(num_paths, rotate, inject_failure=False)
            failed = run_variant(num_paths, rotate, inject_failure=True)
            results[(num_paths, rotate)] = (clean, failed)
            rows.append([
                num_paths, "on" if rotate else "off",
                f"{clean['p50_us']:.0f}", failed["hangs"],
                failed["rotations"],
                f"{failed['completed']}/{failed['issued']}",
            ])
    table = format_table(
        ["paths", "rotation", "clean p50 (us)", "blackhole hangs",
         "rotations", "completed"], rows
    )

    # Shapes:
    # * one static path is LUNA-equivalent: it hangs under the blackhole;
    assert results[(1, False)][1]["hangs"] > 0
    # * four static paths already recover here (they need at least one
    #   port hashing through the healthy ToR — likely, not guaranteed);
    # * rotation guarantees recovery regardless of path count;
    assert results[(1, True)][1]["hangs"] == 0
    assert results[(4, True)][1]["hangs"] == 0
    assert results[(1, True)][1]["rotations"] > 0
    # * neither knob costs anything on a clean fabric.
    p50s = [results[key][0]["p50_us"] for key in results]
    assert max(p50s) < 1.6 * min(p50s)
    return ("Ablation: path count x rotation under a silent ToR blackhole "
            "(§4.5):\n" + table)


def test_ablation_multipath(benchmark):
    text = once(benchmark, run_ablation)
    print("\n" + text)
    save_output("ablation_multipath", text)
