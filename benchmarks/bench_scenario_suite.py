"""Scenario-suite smoke: catalog SLO gates + report-digest determinism.

The scenario catalog (`repro.scenario`) is a standing behavior-envelope
regression gate: each curated scenario binds a deterministic workload to
pass/fail SLO assertions, and its report digest is a pure function of
the scenario.  This bench pins both properties on a CI-sized subset:

* **gates** — every suite scenario must pass its SLO assertions;
* **determinism** — each scenario runs twice and the two report digests
  must match exactly (asserted unconditionally, every run); the
  per-scenario digests fold into one ``combined_digest`` that
  ``check_kernel_regression.py --scenario`` compares against the
  committed trajectory;
* **ingestion** — the MSR and Alibaba sample traces import and replay
  end-to-end on both LUNA and SOLAR, and those report digests join the
  combined digest too.

Results land in two places:

* ``out/BENCH_scenario.json`` — the latest run (untracked scratch);
* ``BENCH_scenario_history.jsonl`` — the committed trajectory, one JSON
  line per official run (append via ``--update``).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time

from common import save_output

from repro.lab.spec import canonical_json
from repro.scenario import (
    SloGate,
    get_scenario,
    import_trace,
    run_scenario,
    trace_scenario,
)

#: Bump when the suite composition changes — baselines only compare
#: within one suite version.
SUITE_VERSION = 1

#: CI-sized catalog subset: the two cheapest scenarios that still cover
#: both workload kinds (trace replay and a rebuild drill).
SUITE_SCENARIOS = ("incast-burst", "rebuild-storm")

#: Sample corpora imported and replayed end-to-end each run.
DATA_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests", "data"
)
IMPORTS = (("msr", "msr_sample.csv"), ("alibaba", "alibaba_sample.csv"))
REPLAY_STACKS = ("luna", "solar")

HISTORY_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_scenario_history.jsonl"
)


def run_suite_probe() -> dict:
    """One measured pass over the suite; raises on nondeterminism."""
    wall_start = time.perf_counter()
    digests: dict = {}
    events = 0
    passes = True

    for name in SUITE_SCENARIOS:
        first = run_scenario(get_scenario(name))
        second = run_scenario(get_scenario(name))
        if first["report_digest"] != second["report_digest"]:
            raise AssertionError(
                f"{name}: report digest not deterministic — "
                f"{first['report_digest']} vs {second['report_digest']}"
            )
        digests[name] = first["report_digest"]
        passes = passes and first["pass"]
        events += sum(p["metrics"]["issued"] for p in first["points"])

    for fmt, filename in IMPORTS:
        trace = import_trace(os.path.join(DATA_DIR, filename), fmt)
        for stack in REPLAY_STACKS:
            scenario = trace_scenario(
                f"{fmt}@{stack}",
                f"imported {fmt} sample on {stack}",
                trace,
                stack=stack,
                slo=SloGate(min_completed_fraction=1.0),
            )
            report = run_scenario(scenario)
            digests[f"{fmt}@{stack}"] = report["report_digest"]
            passes = passes and report["pass"]
            events += sum(p["metrics"]["issued"] for p in report["points"])

    wall_s = time.perf_counter() - wall_start
    combined = hashlib.sha256(canonical_json(digests)).hexdigest()[:16]
    return {
        "suite_version": SUITE_VERSION,
        "digests": digests,
        "combined_digest": combined,
        "passes": passes,
        "ios_issued": events,
        "wall_s": round(wall_s, 4),
        "ios_per_sec": round(events / wall_s, 1),
    }


def main(argv=None) -> int:
    update = "--update" in (argv if argv is not None else sys.argv[1:])
    result = run_suite_probe()
    save_output("BENCH_scenario.json", json.dumps(result, indent=2, sort_keys=True))
    print(json.dumps(result, indent=2, sort_keys=True))
    if not result["passes"]:
        print("FAIL: a suite scenario violated its SLO gates", file=sys.stderr)
        return 1
    if update:
        with open(HISTORY_PATH, "a") as handle:
            handle.write(json.dumps(result, sort_keys=True) + "\n")
        print(f"appended fresh entry to {os.path.basename(HISTORY_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
