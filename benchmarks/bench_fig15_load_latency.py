"""Figure 15: latency of a single 4KB WRITE under light vs heavy
background load — LUNA vs RDMA vs SOLAR* vs SOLAR, median and 99th.

Paper shapes: under light load all hardware-path stacks sit close
together with LUNA slightly worse; under heavy load LUNA's median and
tail blow up far beyond the rest, while SOLAR stays close to RDMA
("SOLAR achieves a low I/O latency close to RDMA").
"""

from __future__ import annotations

from common import fanout, format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.metrics.stats import LatencyStats
from repro.sim import MS
from repro.workloads import FioSpec, FioJob

STACKS = ("luna", "rdma", "solar_star", "solar")


def probe_run(stack: str, background_iodepth: int) -> LatencyStats:
    """Measure isolated 4KB writes while a background job loads the host."""
    dep = EbsDeployment(DeploymentSpec(
        stack=stack, seed=151, hosting="bare_metal", stack_cores=3,
        compute_racks=1, compute_hosts_per_rack=2,
        storage_racks=2, storage_hosts_per_rack=6,
    ))
    host = dep.compute_host_names()[0]
    probe_vd = VirtualDisk(dep, "probe", host, 128 * 1024 * 1024)
    stats = LatencyStats(f"{stack}/bg{background_iodepth}")

    if background_iodepth > 0:
        bg_vd = VirtualDisk(dep, "bg", host, 1024 * 1024 * 1024)
        job = FioJob(dep.sim, bg_vd, FioSpec(
            block_sizes=(8192, 16384), iodepth=background_iodepth,
            read_fraction=0.2, runtime_ns=40 * MS, name="bg",
        ))
        job.start()

    probes = [0]

    def probe() -> None:
        if dep.sim.now > 38 * MS:
            return
        offset = (probes[0] % 1000) * 4096
        probes[0] += 1
        probe_vd.write(offset, 4096,
                       lambda io: stats.record(io.trace.total_ns))
        dep.sim.schedule(400_000, probe)

    dep.sim.schedule(2 * MS, probe)
    dep.run(until_ns=500 * MS)
    assert stats.count > 40
    return stats


def run_fig15() -> str:
    # 8 independent (stack, load) deployments — one simulation per point.
    points = [(s, 0) for s in STACKS] + [(s, 48) for s in STACKS]
    stats = dict(zip(points, fanout(probe_run, points)))
    light = {s: stats[(s, 0)] for s in STACKS}
    heavy = {s: stats[(s, 48)] for s in STACKS}
    sections = []
    for label, data in (("Light load", light), ("Heavy load", heavy)):
        rows = [
            [s, f"{data[s].p(50) / 1000:.0f}", f"{data[s].p(99) / 1000:.0f}"]
            for s in STACKS
        ]
        sections.append(f"{label} (4KB write, us):\n"
                        + format_table(["stack", "median", "99th"], rows))

    # Shapes: heavy load degrades everyone; SOLAR (full offload) is the
    # best stack under load by a wide margin over LUNA; under light load
    # all hardware-path stacks sit close together ("SOLAR achieves a low
    # I/O latency close to RDMA").  Divergence note: our SOLAR* lands
    # *worse* than LUNA under heavy load (the software per-block datapath
    # plus double PCIe crossing is charged in full), where the paper shows
    # it between LUNA and RDMA — recorded in EXPERIMENTS.md.
    for s in STACKS:
        assert heavy[s].p(99) > light[s].p(99)
    assert heavy["solar"].p(50) == min(heavy[s].p(50) for s in STACKS)
    assert heavy["solar"].p(99) == min(heavy[s].p(99) for s in STACKS)
    assert heavy["luna"].p(50) > 1.5 * heavy["solar"].p(50)
    assert light["solar"].p(50) < 1.6 * light["rdma"].p(50)
    return "Figure 15 (single 4KB write under background load):\n\n" + "\n".join(sections)


def test_fig15(benchmark):
    text = once(benchmark, run_fig15)
    print("\n" + text)
    save_output("fig15_load_latency", text)
