"""Figure 14: fio read tests on bare-metal hosting under 1-3 DPU cores —
(a) 64KB throughput, (b) 4KB IOPS — LUNA vs RDMA vs SOLAR* vs SOLAR.

Paper shapes:

* per-core 4KB IOPS rank LUNA < RDMA < SOLAR* < SOLAR (single-core IOPS
  +46% for SOLAR over LUNA; §4.8: ~150K IOPS per SOLAR core);
* 64KB throughput of LUNA/RDMA/SOLAR* saturates at the ALI-DPU internal
  "PCIe goodput bottleneck"; SOLAR bypasses PCIe and lands well above it
  (+78% single-core throughput over LUNA);
* everything scales with core count until its ceiling.
"""

from __future__ import annotations

from common import format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.profiles import DEFAULT
from repro.sim import MS
from repro.workloads import FioSpec, run_fio

STACKS = ("luna", "rdma", "solar_star", "solar")
CORES = (1, 2, 3)


def fio_run(stack: str, cores: int, block: int, iodepth: int) -> float | tuple:
    dep = EbsDeployment(DeploymentSpec(
        stack=stack, seed=141, hosting="bare_metal", stack_cores=cores,
        compute_racks=1, compute_hosts_per_rack=2,
        storage_racks=2, storage_hosts_per_rack=8,
    ))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 1024 * 1024 * 1024)
    result = run_fio(dep.sim, [vd],
                     FioSpec(block_sizes=(block,), iodepth=iodepth,
                             read_fraction=1.0, runtime_ns=8 * MS))["vd0"]
    return result


def run_fig14() -> str:
    tput = {s: [fio_run(s, c, 65536, 32).throughput_mbps for c in CORES]
            for s in STACKS}
    iops = {s: [fio_run(s, c, 4096, 64).iops for c in CORES] for s in STACKS}

    pcie_ceiling_mbps = (DEFAULT.pcie.dpu_internal_gbps / 2) * 1e9 / 8 / (1024 * 1024)
    rows_a = [[s] + [f"{v:.0f}" for v in tput[s]] for s in STACKS]
    rows_b = [[s] + [f"{v / 1000:.0f}K" for v in iops[s]] for s in STACKS]
    text = (
        "Figure 14a (fio 64KB read, MB/s, iodepth 32):\n"
        + format_table(["stack", "1 core", "2 cores", "3 cores"], rows_a)
        + f"PCIe goodput bottleneck (internal link / double crossing): "
        f"~{pcie_ceiling_mbps:.0f} MB/s\n\n"
        "Figure 14b (fio 4KB read, IOPS, iodepth 64):\n"
        + format_table(["stack", "1 core", "2 cores", "3 cores"], rows_b)
    )

    # --- shape assertions ---------------------------------------------
    # (b) single-core IOPS ordering and SOLAR's +46%-ish margin over LUNA.
    assert iops["luna"][0] < iops["rdma"][0] < iops["solar"][0]
    assert iops["solar"][0] > 1.3 * iops["luna"][0]
    assert 100_000 < iops["solar"][0] < 220_000  # ~150K/core, §4.8
    # IOPS scale with cores for every stack.
    for s in STACKS:
        assert iops[s][2] > 2.0 * iops[s][0]
    # (a) non-offloaded stacks pinned at the PCIe ceiling; SOLAR well above.
    for s in ("luna", "rdma", "solar_star"):
        assert tput[s][2] < pcie_ceiling_mbps * 1.15
    assert tput["solar"][2] > 1.3 * max(tput[s][2] for s in ("luna", "rdma", "solar_star"))
    # SOLAR's single-core 64KB throughput beats LUNA's by >=78%-ish.
    assert tput["solar"][0] > 1.5 * tput["luna"][0]
    return text


def test_fig14(benchmark):
    text = once(benchmark, run_fig14)
    print("\n" + text)
    save_output("fig14_cores", text)
