"""Table 1: FN RPC latency and CPU cores, kernel TCP vs LUNA.

Paper (Table 1a, 2x25GE): single 4KB RPC 70.1us (kernel) vs 13.1us (LUNA,
incl. 8.3us base RTT); 50Gbps stress: 1782us/4 cores vs 900us/1 core.
Table 1b repeats on 2x100GE with a 200Gbps stress test.

This is a pure-transport benchmark (the paper's Table 1 measures RPCs, not
full I/Os): client and echo server on the Clos fabric, both NIC speeds,
single-RPC latency on an idle fabric, then average RPC latency + consumed
client cores under a stress load of concurrent 4KB RPCs.
"""

from __future__ import annotations

from common import format_table, once, save_output

from repro.host.cpu import CpuComplex
from repro.net import ClosTopology, PodSpec
from repro.profiles import DEFAULT
from repro.sim import MS, Simulator
from repro.transport import KernelTcpTransport, LunaTransport

STACKS = {"kernel": KernelTcpTransport, "luna": LunaTransport}


def _pair(stack: str, gbps: float, seed: int = 42):
    sim = Simulator(seed=seed)
    profiles = DEFAULT.with_overrides(network={"access_gbps": gbps})
    topo = ClosTopology(
        sim, profiles.network,
        [PodSpec("cp", 1, 2, role="compute"), PodSpec("sp", 1, 2, role="storage")],
    )
    cls = STACKS[stack]
    client = cls(sim, topo.hosts["cp/r0/h0"], CpuComplex(sim, "c", 16), profiles)
    server = cls(sim, topo.hosts["sp/r0/h0"], CpuComplex(sim, "s", 32), profiles)
    server.register_handler(lambda payload, ex, respond: respond(128, "ack"))
    return sim, client, server


def single_rpc_latency_us(stack: str, gbps: float) -> float:
    sim, client, server = _pair(stack, gbps)
    done = []
    client.call(server, None, 4096 + 128, 128, lambda ex, ok: done.append(ex))
    sim.run()
    return done[0].rpc_latency_ns / 1000


def stress_test(stack: str, gbps: float, target_gbps: float,
                duration_ms: int = 2) -> dict:
    sim, client, server = _pair(stack, gbps)
    duration_ns = duration_ms * MS
    rpc_bytes = 4096 + 128
    target_rps = target_gbps * 1e9 / 8 / rpc_bytes
    gap_ns = max(1, int(1e9 / target_rps))
    latencies = []

    def issue(t_ns: int) -> None:
        if t_ns >= duration_ns:
            return
        client.call(server, None, rpc_bytes, 128,
                    lambda ex, ok: latencies.append(ex.rpc_latency_ns))
        sim.schedule(gap_ns, issue, t_ns + gap_ns)

    issue(0)
    sim.run(until=duration_ns + 500 * MS)
    return {
        "avg_latency_us": sum(latencies) / max(1, len(latencies)) / 1000,
        "consumed_cores": client.cpu.cores_consumed(duration_ns),
        "achieved_gbps": len(latencies) * rpc_bytes * 8 / duration_ns,
        "rpcs": len(latencies),
    }


def run_table1() -> str:
    sections = []
    for label, gbps, stress_gbps in (("2x25GE", 25.0, 45.0), ("2x100GE", 100.0, 150.0)):
        single = {s: single_rpc_latency_us(s, gbps) for s in STACKS}
        stress = {s: stress_test(s, gbps, stress_gbps) for s in STACKS}
        rows = [
            ["Single 4KB RPC (us)",
             f"{single['kernel']:.1f}", f"{single['luna']:.1f}", "-", "-"],
            [f"{stress_gbps:.0f} Gbps stress (us)",
             f"{stress['kernel']['avg_latency_us']:.0f}",
             f"{stress['luna']['avg_latency_us']:.0f}",
             f"{stress['kernel']['consumed_cores']:.1f}",
             f"{stress['luna']['consumed_cores']:.1f}"],
        ]
        table = format_table(
            ["", "Kernel lat", "Luna lat", "Kernel cores", "Luna cores"], rows
        )
        sections.append(f"Table 1 ({label}):\n{table}")
        # Shape: LUNA >=3.5x faster single-RPC; kernel needs ~4x the cores.
        assert single["kernel"] > 3.5 * single["luna"]
        assert stress["kernel"]["consumed_cores"] > 2.5 * stress["luna"]["consumed_cores"]
    return "\n".join(sections)


def test_table1(benchmark):
    text = once(benchmark, run_table1)
    print("\n" + text)
    save_output("table1_rpc_latency", text)
