"""§3.1's scalability argument, measured: why the FN could not be RDMA.

"the overall throughput of the RNIC we use went down quickly after the
number of connections was beyond 5,000, which is too low for our scale"
— while a storage node serves "tens of thousands of concurrent
connections" from compute clients, and user-space stacks like LUNA keep
per-connection state in ordinary DRAM where it is effectively free.

The bench sweeps the concurrent-connection count seen by one server NIC
and measures achieved RPC throughput per stack.  SOLAR is also shown: it
has *no* connections at all — its per-server state is four path entries
in the control plane, independent of client count.
"""

from __future__ import annotations

from common import fanout, format_table, once, save_output

from repro.host.cpu import CpuComplex
from repro.net import ClosTopology, PodSpec
from repro.profiles import DEFAULT
from repro.sim import MS, Simulator
from repro.transport import LunaTransport, RdmaTransport

CONNECTION_COUNTS = (1_000, 5_000, 20_000, 50_000)
DURATION_NS = 3 * MS


def throughput_gbps(stack_cls, extra_connections: int) -> float:
    sim = Simulator(seed=131)
    topo = ClosTopology(
        sim, DEFAULT.network,
        [PodSpec("cp", 1, 2, role="compute"), PodSpec("sp", 1, 2, role="storage")],
    )
    client = stack_cls(sim, topo.hosts["cp/r0/h0"], CpuComplex(sim, "c", 8), DEFAULT)
    server = stack_cls(sim, topo.hosts["sp/r0/h0"], CpuComplex(sim, "s", 16), DEFAULT)
    server.register_handler(lambda p, e, r: r(128, "ok"))
    if isinstance(client, RdmaTransport):
        client.extra_connections_hint = extra_connections
    moved = [0]

    def pump(_ex=None, _ok=None) -> None:
        if _ok:
            moved[0] += 64 * 1024
        if sim.now < DURATION_NS:
            client.call(server, None, 64 * 1024, 128, pump)

    for _ in range(16):  # enough parallelism to fill the pipe
        pump()
    sim.run(until=DURATION_NS + 100 * MS)
    return moved[0] * 8 / DURATION_NS  # bytes*8/ns == Gbps


def run_scalability() -> str:
    rows = []
    results: dict = {"luna": [], "rdma": []}
    points = [
        (cls, count)
        for count in CONNECTION_COUNTS
        for cls in (LunaTransport, RdmaTransport)
    ]
    measured = dict(zip(points, fanout(throughput_gbps, points)))
    for count in CONNECTION_COUNTS:
        luna = measured[(LunaTransport, count)]
        rdma = measured[(RdmaTransport, count)]
        results["luna"].append(luna)
        results["rdma"].append(rdma)
        rows.append([f"{count:,}", f"{luna:.1f}", f"{rdma:.1f}", "line-rate*"])
    table = format_table(
        ["concurrent conns", "LUNA (Gbps)", "RDMA (Gbps)", "SOLAR state"], rows
    )
    note = ("*SOLAR holds no per-connection state: per server it keeps "
            f"{DEFAULT.solar.num_paths} path entries in the DPU control plane "
            "regardless of client count (§4.4), so there is nothing to sweep.\n")

    # Shape (§3.1): LUNA's throughput is connection-count independent;
    # RDMA collapses past the ~5K cliff.
    luna_vals = results["luna"]
    assert max(luna_vals) < 1.05 * min(luna_vals)
    assert results["rdma"][0] >= results["luna"][0]  # fine when small
    assert results["rdma"][-1] < 0.5 * results["rdma"][0]  # cliff collapse
    return ("Connection scalability at one storage server (§3.1):\n"
            + table + note)


def test_scalability(benchmark):
    text = once(benchmark, run_scalability)
    print("\n" + text)
    save_output("scalability_connections", text)
