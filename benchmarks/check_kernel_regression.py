"""Bench regression smoke: kernel events/sec and sharded fleet throughput.

Two gates, both against committed append-mode trajectories:

**Kernel gate** — runs the fixed reference workload from
``bench_kernel_events.py`` once and compares it against the last
committed entry (same workload version) of ``BENCH_kernel_history.jsonl``:

* **determinism** — ``events`` and ``ios_completed`` are pure functions
  of the workload, so they must match the committed entry *exactly*; a
  drift means the workload changed and ``WORKLOAD_VERSION`` must bump;
* **throughput** — fresh ``events_per_sec`` must be within
  ``REPRO_BENCH_TOLERANCE`` (default 0.20) of the committed value.
  Wall-clock comparisons are only meaningful on comparable machines;
  on a much slower box, raise the tolerance or re-baseline with
  ``--update`` (which appends a fresh entry for committing).

**Shard gate** — runs the reference fleet from ``bench_shard_scaling.py``
once at 4 shards and compares against ``BENCH_shard_history.jsonl``: the
result digest and event count exactly (the shard plane's byte-identity
guarantee), and aggregate sharded events/sec within the same tolerance.
Skip with ``--no-shard`` when only the kernel gate is wanted.

**Scenario gate** (opt-in via ``--scenario``) — runs the CI-sized
scenario suite from ``bench_scenario_suite.py`` and compares against
``BENCH_scenario_history.jsonl``: the combined report digest exactly
(the behavior-envelope byte-identity guarantee), every SLO gate passing,
and suite throughput within the same tolerance.

CI wires this as the bench smoke step::

    cd benchmarks && PYTHONPATH=../src:. python check_kernel_regression.py

Exit status 0 on pass, 1 on regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from bench_kernel_events import HISTORY_PATH, WORKLOAD_VERSION, run_reference_workload
from bench_scenario_suite import (
    HISTORY_PATH as SCENARIO_HISTORY_PATH,
    SUITE_VERSION,
    run_suite_probe,
)
from bench_shard_scaling import (
    FLEET_VERSION,
    HISTORY_PATH as SHARD_HISTORY_PATH,
    run_sharded_probe,
)

DEFAULT_TOLERANCE = 0.20


def _load_entries(history_path: str, version_key: str, version: int,
                  bench_name: str) -> dict:
    if not os.path.exists(history_path):
        raise SystemExit(
            f"no committed trajectory at {history_path} — run "
            f"{bench_name} and commit {os.path.basename(history_path)}"
        )
    entries = []
    with open(history_path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    entries = [e for e in entries if e.get(version_key) == version]
    if not entries:
        raise SystemExit(
            f"no trajectory entry for {version_key}={version} in "
            f"{history_path} — re-baseline via {bench_name}"
        )
    return entries[-1]


def load_baseline(history_path: str = HISTORY_PATH) -> dict:
    """Latest committed trajectory entry for the current workload version."""
    return _load_entries(
        history_path, "workload_version", WORKLOAD_VERSION,
        "bench_kernel_events.py",
    )


def load_shard_baseline(history_path: str = SHARD_HISTORY_PATH) -> dict:
    """Latest committed shard-scaling entry for the current fleet version."""
    return _load_entries(
        history_path, "fleet_version", FLEET_VERSION, "bench_shard_scaling.py"
    )


def load_scenario_baseline(history_path: str = SCENARIO_HISTORY_PATH) -> dict:
    """Latest committed scenario-suite entry for the current suite version."""
    return _load_entries(
        history_path, "suite_version", SUITE_VERSION, "bench_scenario_suite.py"
    )


def check_scenario(tolerance: float) -> list:
    """The scenario-suite gate's failures (empty on pass).

    Opt-in via ``--scenario``: report digests must match the committed
    trajectory exactly (byte-identical behavior envelope), every SLO
    gate must pass, and suite throughput stays within tolerance.
    """
    baseline = load_scenario_baseline()
    fresh = run_suite_probe()
    failures = []
    if not fresh["passes"]:
        failures.append("a suite scenario violated its SLO gates")
    if fresh["combined_digest"] != baseline["combined_digest"]:
        drifted = sorted(
            name
            for name in set(fresh["digests"]) | set(baseline["digests"])
            if fresh["digests"].get(name) != baseline["digests"].get(name)
        )
        failures.append(
            f"scenario report digests drifted: committed "
            f"{baseline['combined_digest']}, fresh {fresh['combined_digest']} "
            f"(changed: {', '.join(drifted)}) — the simulated behavior "
            "envelope changed; bump SUITE_VERSION and re-baseline"
        )
    floor = baseline["ios_per_sec"] * (1.0 - tolerance)
    if fresh["ios_per_sec"] < floor:
        failures.append(
            f"scenario suite I/Os/sec regressed >{tolerance:.0%}: committed "
            f"{baseline['ios_per_sec']:,.0f}, fresh "
            f"{fresh['ios_per_sec']:,.0f} (floor {floor:,.0f})"
        )
    print(
        f"scenario bench: committed {baseline['ios_per_sec']:,.0f} io/s, "
        f"fresh {fresh['ios_per_sec']:,.0f} io/s "
        f"({fresh['ios_per_sec'] / baseline['ios_per_sec']:.2f}x, "
        f"tolerance {tolerance:.0%}), digest "
        f"{'ok' if fresh['combined_digest'] == baseline['combined_digest'] else 'DRIFTED'}"
        f", gates {'pass' if fresh['passes'] else 'FAIL'}"
    )
    return failures


def check_shard(tolerance: float) -> list:
    """The shard gate's failures (empty on pass)."""
    baseline = load_shard_baseline()
    fresh = run_sharded_probe(4)
    failures = []
    if fresh["digest"] != baseline["digest"]:
        failures.append(
            f"sharded fleet digest drifted: committed {baseline['digest']}, "
            f"fresh {fresh['digest']} — the reference fleet's simulated "
            "outcome changed; bump FLEET_VERSION and re-baseline"
        )
    if fresh["events"] != baseline["events"]:
        failures.append(
            f"sharded fleet event count drifted: committed "
            f"{baseline['events']}, fresh {fresh['events']}"
        )
    committed_eps = next(
        run["events_per_sec"] for run in baseline["runs"] if run["shards"] == 4
    )
    floor = committed_eps * (1.0 - tolerance)
    if fresh["events_per_sec"] < floor:
        failures.append(
            f"aggregate sharded events/sec regressed >{tolerance:.0%}: "
            f"committed {committed_eps:,.0f}, fresh "
            f"{fresh['events_per_sec']:,.0f} (floor {floor:,.0f})"
        )
    print(
        f"shard bench: committed {committed_eps:,.0f} ev/s @4 shards "
        f"(on {baseline['cpus']} CPUs), fresh {fresh['events_per_sec']:,.0f} "
        f"ev/s ({fresh['events_per_sec'] / committed_eps:.2f}x, "
        f"tolerance {tolerance:.0%}), digest "
        f"{'ok' if fresh['digest'] == baseline['digest'] else 'DRIFTED'}"
    )
    return failures


def check(update: bool = False, tolerance: float | None = None,
          shard: bool = True, scenario: bool = False) -> int:
    if tolerance is None:
        tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE))
    baseline = load_baseline()
    fresh = run_reference_workload()

    failures = []
    for key in ("events", "ios_completed"):
        if fresh[key] != baseline[key]:
            failures.append(
                f"deterministic field {key!r} drifted: committed "
                f"{baseline[key]}, fresh {fresh[key]} — the reference "
                "workload changed; bump WORKLOAD_VERSION and re-baseline"
            )
    floor = baseline["events_per_sec"] * (1.0 - tolerance)
    if fresh["events_per_sec"] < floor:
        failures.append(
            f"events/sec regressed >{tolerance:.0%}: committed "
            f"{baseline['events_per_sec']:,.0f}, fresh "
            f"{fresh['events_per_sec']:,.0f} (floor {floor:,.0f})"
        )

    print(
        f"kernel bench: committed {baseline['events_per_sec']:,.0f} ev/s, "
        f"fresh {fresh['events_per_sec']:,.0f} ev/s "
        f"({fresh['events_per_sec'] / baseline['events_per_sec']:.2f}x, "
        f"tolerance {tolerance:.0%})"
    )
    if shard:
        failures.extend(check_shard(tolerance))
    if scenario:
        failures.extend(check_scenario(tolerance))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)

    if update and not failures:
        with open(HISTORY_PATH, "a") as handle:
            handle.write(json.dumps(fresh, sort_keys=True) + "\n")
        print(f"appended fresh entry to {os.path.basename(HISTORY_PATH)}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="append the fresh result to the committed trajectory",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help=f"allowed events/sec drop (default {DEFAULT_TOLERANCE}, "
        "or REPRO_BENCH_TOLERANCE)",
    )
    parser.add_argument(
        "--no-shard", action="store_true",
        help="skip the sharded-fleet gate (kernel gate only)",
    )
    parser.add_argument(
        "--scenario", action="store_true",
        help="also run the scenario-suite gate (SLO gates + report-digest "
             "determinism against BENCH_scenario_history.jsonl)",
    )
    opts = parser.parse_args(argv)
    return check(update=opts.update, tolerance=opts.tolerance,
                 shard=not opts.no_shard, scenario=opts.scenario)


if __name__ == "__main__":
    sys.exit(main())
