"""Kernel-bench regression smoke: fail on a >20% events/sec drop.

Runs the fixed reference workload from ``bench_kernel_events.py`` once
and compares it against the last committed entry (same workload version)
of ``BENCH_kernel_history.jsonl`` — the append-mode events/sec
trajectory that every official bench run extends.  Two checks:

* **determinism** — ``events`` and ``ios_completed`` are pure functions
  of the workload, so they must match the committed entry *exactly*; a
  drift means the workload changed and ``WORKLOAD_VERSION`` must bump;
* **throughput** — fresh ``events_per_sec`` must be within
  ``REPRO_BENCH_TOLERANCE`` (default 0.20) of the committed value.
  Wall-clock comparisons are only meaningful on comparable machines;
  on a much slower box, raise the tolerance or re-baseline with
  ``--update`` (which appends a fresh entry for committing).

CI wires this as the kernel-bench smoke step::

    cd benchmarks && PYTHONPATH=../src:. python check_kernel_regression.py

Exit status 0 on pass, 1 on regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from bench_kernel_events import HISTORY_PATH, WORKLOAD_VERSION, run_reference_workload

DEFAULT_TOLERANCE = 0.20


def load_baseline(history_path: str = HISTORY_PATH) -> dict:
    """Latest committed trajectory entry for the current workload version."""
    if not os.path.exists(history_path):
        raise SystemExit(
            f"no committed trajectory at {history_path} — run "
            "bench_kernel_events.py and commit BENCH_kernel_history.jsonl"
        )
    entries = []
    with open(history_path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    entries = [e for e in entries if e.get("workload_version") == WORKLOAD_VERSION]
    if not entries:
        raise SystemExit(
            f"no trajectory entry for workload v{WORKLOAD_VERSION} in "
            f"{history_path} — re-baseline with --update"
        )
    return entries[-1]


def check(update: bool = False, tolerance: float | None = None) -> int:
    if tolerance is None:
        tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE))
    baseline = load_baseline()
    fresh = run_reference_workload()

    failures = []
    for key in ("events", "ios_completed"):
        if fresh[key] != baseline[key]:
            failures.append(
                f"deterministic field {key!r} drifted: committed "
                f"{baseline[key]}, fresh {fresh[key]} — the reference "
                "workload changed; bump WORKLOAD_VERSION and re-baseline"
            )
    floor = baseline["events_per_sec"] * (1.0 - tolerance)
    if fresh["events_per_sec"] < floor:
        failures.append(
            f"events/sec regressed >{tolerance:.0%}: committed "
            f"{baseline['events_per_sec']:,.0f}, fresh "
            f"{fresh['events_per_sec']:,.0f} (floor {floor:,.0f})"
        )

    print(
        f"kernel bench: committed {baseline['events_per_sec']:,.0f} ev/s, "
        f"fresh {fresh['events_per_sec']:,.0f} ev/s "
        f"({fresh['events_per_sec'] / baseline['events_per_sec']:.2f}x, "
        f"tolerance {tolerance:.0%})"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)

    if update and not failures:
        with open(HISTORY_PATH, "a") as handle:
            handle.write(json.dumps(fresh, sort_keys=True) + "\n")
        print(f"appended fresh entry to {os.path.basename(HISTORY_PATH)}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="append the fresh result to the committed trajectory",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help=f"allowed events/sec drop (default {DEFAULT_TOLERANCE}, "
        "or REPRO_BENCH_TOLERANCE)",
    )
    opts = parser.parse_args(argv)
    return check(update=opts.update, tolerance=opts.tolerance)


if __name__ == "__main__":
    sys.exit(main())
