"""Shard-plane scaling: aggregate events/sec vs shard count.

ROADMAP item 2's promise is that a fleet too large for one process can
be partitioned across workers *without changing a single artifact byte*.
This bench pins both halves of that promise on a fixed reference fleet
(4 deployments, every cross-shard event kind):

* **determinism** — the result digest at shard counts 1, 2 and 4 must be
  identical (asserted unconditionally, every run);
* **scaling** — aggregate events/sec should grow with shard count.  The
  ≥2x bar at 4 shards is asserted only when the machine has ≥4 CPUs; on
  smaller boxes (including 1-CPU dev containers, where parallel speedup
  is physically impossible) the ratio is recorded but not judged.

Results land in two places:

* ``out/BENCH_shard.json`` — the latest run (untracked scratch);
* ``BENCH_shard_history.jsonl`` — the committed trajectory, one JSON
  line per official run with the host's CPU count recorded alongside,
  so trajectory readers can tell a regression from a smaller machine.
  ``check_kernel_regression.py`` compares fresh runs against the last
  committed entry: digest and event count exactly, aggregate sharded
  events/sec within tolerance.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from common import OUT_DIR, format_table, once, save_output

from repro.dist import reference_fleet, run_fleet
from repro.sim import MS

#: Bump when the reference fleet changes — baselines only compare
#: within one fleet version.
FLEET_VERSION = 1
DEPLOYMENTS = 4
RUNTIME_NS = 10 * MS
SEED = 42
SHARD_COUNTS = (1, 2, 4)

#: Only judge the parallel-speedup bar on machines that can express it.
MIN_CPUS_FOR_SPEEDUP = 4
SPEEDUP_BAR = 2.0

#: Committed scaling trajectory (append-mode: one JSON line per run).
HISTORY_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_shard_history.jsonl"
)


def bench_fleet():
    spec = reference_fleet(
        deployments=DEPLOYMENTS, runtime_ns=RUNTIME_NS, seed=SEED,
        name="shard-bench",
    )
    return dataclasses.replace(spec, drain_ns=5 * MS)


def run_sharded_probe(shards: int) -> dict:
    """One measured run at a given shard count."""
    wall_start = time.perf_counter()
    result = run_fleet(bench_fleet(), shards=shards)
    wall_s = time.perf_counter() - wall_start
    return {
        "shards": result.shards,
        "digest": result.digest,
        "events": result.events_processed,
        "messages_routed": result.messages_routed,
        "ios_completed": result.summary["completed"],
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(result.events_processed / result.wall_s, 1),
    }


def run_scaling_workload() -> dict:
    cpus = os.cpu_count() or 1
    runs = [run_sharded_probe(shards) for shards in SHARD_COUNTS]

    digests = {run["digest"] for run in runs}
    assert len(digests) == 1, (
        f"shard counts produced different digests: "
        f"{ {run['shards']: run['digest'][:16] for run in runs} }"
    )
    events = {run["events"] for run in runs}
    assert len(events) == 1, f"event counts diverged across shard counts: {events}"

    by_shards = {run["shards"]: run for run in runs}
    speedup = by_shards[4]["events_per_sec"] / by_shards[1]["events_per_sec"]
    if cpus >= MIN_CPUS_FOR_SPEEDUP:
        assert speedup >= SPEEDUP_BAR, (
            f"aggregate events/sec at 4 shards only {speedup:.2f}x the "
            f"1-shard rate on a {cpus}-CPU machine (bar: {SPEEDUP_BAR}x)"
        )

    return {
        "fleet_version": FLEET_VERSION,
        "deployments": DEPLOYMENTS,
        "runtime_ns": RUNTIME_NS,
        "seed": SEED,
        "cpus": cpus,
        "digest": runs[0]["digest"],
        "events": runs[0]["events"],
        "runs": runs,
        "speedup_4shard": round(speedup, 3),
        "speedup_asserted": cpus >= MIN_CPUS_FOR_SPEEDUP,
    }


def run_baseline() -> str:
    entry = run_scaling_workload()

    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, "BENCH_shard.json")
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(HISTORY_PATH, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")

    rows = [
        [run["shards"], run["events"], f"{run['wall_s']:.2f}s",
         f"{run['events_per_sec']:,.0f}", run["digest"][:16]]
        for run in entry["runs"]
    ]
    table = format_table(
        ["shards", "events", "wall", "events/sec", "digest[:16]"], rows
    )
    judged = "asserted" if entry["speedup_asserted"] else (
        f"recorded only ({entry['cpus']} CPU(s) < {MIN_CPUS_FOR_SPEEDUP})"
    )
    return (
        f"Shard scaling (fleet v{FLEET_VERSION}, digests identical, "
        f"4-shard speedup {entry['speedup_4shard']:.2f}x — {judged}):\n"
        + table
    )


def test_shard_scaling(benchmark):
    text = once(benchmark, run_baseline)
    print("\n" + text)
    save_output("shard_scaling", text)


if __name__ == "__main__":
    print(json.dumps(run_scaling_workload(), indent=2, sort_keys=True))
