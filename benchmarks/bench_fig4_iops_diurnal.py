"""Figure 4: per-minute IOPS over a day for a highly-loaded compute server.

Paper: average IOPS monitored every minute swings between roughly 50-100K
at the overnight trough and ~200K at the evening peak, with minute-scale
burst noise — a single compute server can reach ~200K IOPS (§2.3).
"""

from __future__ import annotations

from common import format_table, once, save_output

from repro.workloads import synthesize_day


def run_fig4() -> str:
    series = synthesize_day(seed=11)
    by_hour = {}
    for t_hours, iops in series:
        by_hour.setdefault(int(t_hours), []).append(iops)
    rows = [
        [f"{hour:02d}:00", f"{sum(vals) / len(vals) / 1000:.0f}K",
         f"{max(vals) / 1000:.0f}K"]
        for hour, vals in sorted(by_hour.items())
    ]
    table = format_table(["Hour", "Mean IOPS", "Peak IOPS"], rows)

    peak = max(v for _t, v in series)
    trough = min(v for _t, v in series)
    # Shape: ~200K peak, pronounced day/night swing, minute-level bursts.
    assert peak > 180_000
    assert trough < 80_000
    assert peak / trough > 2.0
    minute_jumps = [
        abs(b - a) / a for (_, a), (_, b) in zip(series, series[1:])
    ]
    assert max(minute_jumps) > 0.2  # visible burstiness
    return (
        "Figure 4 (per-minute IOPS, loaded server, one day):\n"
        f"{table}\npeak={peak / 1000:.0f}K trough={trough / 1000:.0f}K "
        f"(paper: up to ~200K IOPS, §2.3)\n"
    )


def test_fig4(benchmark):
    text = once(benchmark, run_fig4)
    print("\n" + text)
    save_output("fig4_iops_diurnal", text)
