"""Figure 6: 4KB I/O latency breakdown (SA / FN / BN / SSD) in production,
median and 95th percentile, for kernel TCP vs LUNA vs SOLAR.

Paper shapes this reproduction must hold:

* Kernel-era FN dominates the end-to-end latency; "Kernel" is several
  times LUNA end to end (LUNA cuts FN latency by ~80%, §3.2);
* under LUNA, the (software, VM-hosted, encrypting) SA becomes the
  bottleneck component (§3.3);
* SOLAR cuts the SA share hard (median SA -95% for 4KB write in the
  paper) and reduces end-to-end write latency vs LUNA by 20-69%;
* reads are SSD-dominated for LUNA/SOLAR (NAND latency).

Method: each stack runs the production-shaped open-loop workload (mixed
sizes, 22% reads) with payload encryption, on its era-appropriate
deployment (kernel/LUNA: VM hosting + their BN; SOLAR: bare-metal DPU).
Only the 4KB traces feed the figure, like the paper's 4KB panels.
"""

from __future__ import annotations

from common import format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.metrics.trace import COMPONENTS
from repro.sim import MS
from repro.workloads import ProductionWorkload

STACKS = ("kernel", "luna", "solar")
LOAD_IOPS_PER_HOST = 50_000
DURATION_NS = 30 * MS


def run_stack(stack: str) -> dict:
    dep = EbsDeployment(DeploymentSpec(
        stack=stack, seed=61, encrypt_payloads=True,
        compute_racks=1, compute_hosts_per_rack=2,
        storage_racks=2, storage_hosts_per_rack=4,
    ))
    hosts = dep.compute_host_names()
    for i, host in enumerate(hosts):
        vd = VirtualDisk(dep, f"vd{i}", host, 512 * 1024 * 1024)
        ProductionWorkload(dep.sim, vd, LOAD_IOPS_PER_HOST, DURATION_NS,
                           name=f"fig6/{stack}/{i}").start()
    dep.run(until_ns=DURATION_NS + 400 * MS)

    out = {}
    for kind in ("read", "write"):
        traces = [
            t for t in dep.collector.completed(kind) if t.size_bytes == 4096
        ]
        assert len(traces) > 50, f"{stack}/{kind}: only {len(traces)} 4KB traces"
        for pct, tag in ((50, "p50"), (95, "p95")):
            from repro.metrics.stats import percentile

            totals = sorted(t.total_ns for t in traces)
            breakdown = {
                c: percentile(sorted(t.components[c] for t in traces), pct) / 1000
                for c in COMPONENTS
            }
            breakdown["total"] = percentile(totals, pct) / 1000
            out[(kind, tag)] = breakdown
    return out


def run_fig6() -> str:
    results = {stack: run_stack(stack) for stack in STACKS}
    sections = []
    for kind in ("read", "write"):
        for tag in ("p50", "p95"):
            rows = []
            for stack in STACKS:
                b = results[stack][(kind, tag)]
                rows.append([
                    stack, f"{b['sa']:.1f}", f"{b['fn']:.1f}",
                    f"{b['bn']:.1f}", f"{b['ssd']:.1f}", f"{b['total']:.1f}",
                ])
            sections.append(
                f"4KB {kind.capitalize()} ({tag}), all in us:\n"
                + format_table(["stack", "SA", "FN", "BN", "SSD", "total"], rows)
            )

    # --- shape assertions -------------------------------------------------
    w50 = {s: results[s][("write", "p50")] for s in STACKS}
    r50 = {s: results[s][("read", "p50")] for s in STACKS}
    # Kernel is the outlier, dominated by FN.
    assert w50["kernel"]["total"] > 2 * w50["luna"]["total"]
    assert w50["kernel"]["fn"] > 3 * w50["luna"]["fn"]
    # Under LUNA the SA is the largest component of the 4KB write median.
    luna_w = w50["luna"]
    assert luna_w["sa"] == max(luna_w[c] for c in COMPONENTS)
    # SOLAR crushes the SA share and beats LUNA end to end by >=20%.
    assert w50["solar"]["sa"] < 0.35 * w50["luna"]["sa"]
    assert w50["solar"]["total"] < 0.8 * w50["luna"]["total"]
    # Reads are SSD-dominated for LUNA/SOLAR.
    for s in ("luna", "solar"):
        assert r50[s]["ssd"] == max(r50[s][c] for c in COMPONENTS)
    return "Figure 6 (production 4KB latency breakdown):\n\n" + "\n".join(sections)


def test_fig6(benchmark):
    text = once(benchmark, run_fig6)
    print("\n" + text)
    save_output("fig6_latency_breakdown", text)
