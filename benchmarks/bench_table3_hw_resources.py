"""Table 3: SOLAR's FPGA resource consumption (LUT% / BRAM% per module).

Paper: Addr 5.1/8.1, Block 0.2/8.6, QoS 0.1/0.4, SEC 2.8/0.9, CRC 0.3/0.0,
Total 8.5/18.2.  The reproduction instantiates the real offload (tables +
pipelines registered against the FPGA's budget) and prints the device's
resource report; it also demonstrates the scaling model (Addr BRAM grows
with table depth) and that over-subscription is rejected.
"""

from __future__ import annotations

import pytest
from common import format_table, once, save_output

from repro.core.dpu_offload import table3_specs
from repro.ebs import DeploymentSpec, EbsDeployment
from repro.host.fpga import FpgaResourceError


def run_table3() -> str:
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=1))
    offload = next(iter(dep.solar_offloads.values()))
    report = offload.resource_report()
    rows = [
        [name, f"{vals['lut_pct']:.1f}", f"{vals['bram_pct']:.1f}"]
        for name, vals in report.items()
    ]
    table = "Table 3 (SOLAR FPGA resource consumption):\n" + format_table(
        ["Module", "LUT (%)", "BRAM (%)"], rows
    )
    # Shape: identical module set and totals as the paper.
    assert set(report) == {"Addr", "Block", "QoS", "SEC", "CRC", "Total"}
    assert report["Total"]["lut_pct"] == pytest.approx(8.5)
    assert report["Total"]["bram_pct"] == pytest.approx(18.2, abs=0.25)
    assert report["Addr"]["bram_pct"] == pytest.approx(8.1)

    # Scaling model: doubling the Addr table doubles its BRAM share.
    scaled = table3_specs(addr_capacity=32_768)
    assert scaled["Addr"].bram_pct == pytest.approx(16.2)

    # Over-subscription is a construction-time error, not a silent clip:
    # a device whose remaining slice is smaller than SOLAR's needs (the
    # FPGA is shared with other hypervisor functions, §4.4) rejects it.
    from repro.host.fpga import FpgaDevice
    from repro.sim import Simulator

    tiny = FpgaDevice(Simulator(), "tiny", bram_budget_pct=10.0)
    with pytest.raises(FpgaResourceError):
        for spec in table3_specs().values():
            tiny.register_module(spec)
    return table


def test_table3(benchmark):
    text = once(benchmark, run_table3)
    print("\n" + text)
    save_output("table3_hw_resources", text)
