"""Table 2: I/Os with no response for >=1s under failure scenarios,
LUNA vs SOLAR.

Paper (testbed: 90 compute + 82 storage servers, 4-32KB blocks, iodepth 4,
R:W 1:4): SOLAR scores 0 in every scenario; LUNA scores 0 only for
failures that fail-stop visibly (ToR port, spine switch) and hangs I/Os
under ToR switch failure, 75% packet drop, ToR reboot, and ToR/spine
blackholes.

The reproduction scales the testbed down (the mechanism, not the fleet
size, decides who hangs) and applies the same seven scenarios.
"""

from __future__ import annotations

from common import fanout, format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.faults import IoHangMonitor
from repro.net.failures import table2_scenarios
from repro.sim import MS, SECOND

BLOCKS = (4096, 8192, 16384, 32768)  # 4-32KB
RUN_NS = 1_500 * MS
FAIL_AT = 50 * MS
#: Pacing between an I/O's completion and its slot's next issue: keeps the
#: exposure window long (>1s past the failure) while bounding the event
#: count to something a Python event loop chews through quickly.
THINK_NS = 1 * MS

#: The ToR scenarios target the first compute ToR — one of the dual-homed
#: pair serving this host.
SAMPLE_HOST = "cp/r0/h0"

#: Display names for the seven rows of Table 2, aligned with the scenario
#: order of :func:`repro.net.failures.table2_scenarios`.
SCENARIO_NAMES = (
    "ToR switch port failure",
    # Data-plane death, PHYs up: the case that hung LUNA for 216 I/Os.
    "ToR switch failure",
    # Crash with links down: ECMP converges for everyone (paper: 0/0).
    "Spine switch failure",
    "Packet drop rate=75%",
    "ToR switch reboot/isolation",
    "Blackhole in a ToR switch",
    "Blackhole in a Spine switch",
)


def run_scenario(stack: str, scenario_index: int) -> int:
    """One Table 2 cell — pure in (stack, scenario_index), so cells fan
    out across worker processes via ``fanout``."""
    dep = EbsDeployment(DeploymentSpec(
        stack=stack, seed=91,
        compute_racks=1, compute_hosts_per_rack=3,
        storage_racks=2, storage_hosts_per_rack=4,
    ))
    hosts = dep.compute_host_names()
    monitor = IoHangMonitor(dep.sim, threshold_ns=1 * SECOND)
    vds = {
        host: VirtualDisk(dep, f"vd{i}", host, 256 * 1024 * 1024)
        for i, host in enumerate(hosts)
    }
    rngs = {host: dep.sim.rng.stream(f"t2/{host}") for host in hosts}
    scenario = table2_scenarios(SAMPLE_HOST)[scenario_index]
    dep.sim.schedule_at(FAIL_AT, scenario.apply, dep.topology)

    def issue(host: str, slot: int) -> None:
        """iodepth-4 closed loop per host, R:W = 1:4, 4-32KB blocks."""
        if dep.sim.now > RUN_NS:
            return
        rng = rngs[host]
        size = rng.choice(BLOCKS)
        vd = vds[host]
        max_off = (vd.size_bytes - size) // 4096
        offset = rng.randint(0, max_off) * 4096

        def done(io) -> None:
            dep.sim.schedule(THINK_NS, issue, host, slot)

        if rng.random() < 0.2:
            io = vd.read(offset, size, done)
        else:
            io = vd.write(offset, size, done)
        monitor.watch(io)

    for host in hosts:
        for slot in range(4):  # I/O depth of 4
            issue(host, slot)
    dep.run(until_ns=RUN_NS + 2 * SECOND)
    assert monitor.watched > 500, "load generator produced too few I/Os"
    return monitor.hangs


def run_table2() -> str:
    stacks = ("luna", "solar")
    points = [
        (stack, index)
        for index in range(len(SCENARIO_NAMES))
        for stack in stacks
    ]
    cells = fanout(run_scenario, points)
    hangs = {name: {} for name in SCENARIO_NAMES}
    for (stack, index), count in zip(points, cells):
        hangs[SCENARIO_NAMES[index]][stack] = count
    rows = [[name, counts["luna"], counts["solar"]] for name, counts in hangs.items()]
    table = format_table(["Failure scenario", "LUNA", "SOLAR"], rows)

    # Shape assertions (the paper's qualitative result):
    # SOLAR never hangs; LUNA hangs under silent/partial failures.
    assert all(counts["solar"] == 0 for counts in hangs.values()), hangs
    assert hangs["ToR switch port failure"]["luna"] == 0  # dual homing absorbs it
    silent = ("Packet drop rate=75%", "Blackhole in a ToR switch",
              "Blackhole in a Spine switch", "ToR switch failure")
    assert sum(hangs[s]["luna"] for s in silent) > 0, hangs
    return "Table 2 (I/Os unanswered >=1s under failure scenarios):\n" + table


def test_table2(benchmark):
    text = once(benchmark, run_table2)
    print("\n" + text)
    save_output("table2_failures", text)
