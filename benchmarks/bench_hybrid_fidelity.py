"""Hybrid-fidelity validation: fluid mode vs detailed mode on the
Figure 6 workload shape.

The hybrid kernel (``repro.sim.fluid``) simulates only detail windows —
an initial calibration window, an SLO-boundary recalibration every
100 ms, and guard windows around injected events — and synthesizes the
steady-state bulk analytically from the calibrated latency reservoirs.
This bench is the fidelity contract for that shortcut, on the same
production-shaped open-loop workload as ``bench_fig6_latency_breakdown``
(SOLAR stack, mixed sizes, 22% reads, payload encryption):

* **accuracy** — 4KB latency summaries from the hybrid run must match a
  fully detailed run of the same horizon: total p50 within 10%, total
  p95 within 20%, and every ≥1us Figure 6 component (SA/FN/BN/SSD)
  within 20% at the median;
* **cost** — the hybrid run must process ≥20x fewer simulator events
  and finish ≥20x faster in wall-clock time (detail windows are 3.5% of
  the 400 ms horizon).

Results land in ``BENCH_hybrid.json`` next to the kernel baseline.
"""

from __future__ import annotations

import json
import os
import time

from common import OUT_DIR, format_table, once, save_output

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.metrics.stats import percentile
from repro.metrics.trace import COMPONENTS
from repro.sim import MS, FidelityController, HybridRun
from repro.workloads import ProductionWorkload

SEED = 61
HORIZON_NS = 400 * MS
LOAD_IOPS_PER_HOST = 50_000
SHAPE = dict(
    stack="solar", seed=SEED, encrypt_payloads=True,
    compute_racks=1, compute_hosts_per_rack=2,
    storage_racks=2, storage_hosts_per_rack=4,
)

#: Stated tolerance of the fidelity contract.
TOL_P50 = 0.10
TOL_P95 = 0.20
TOL_COMPONENT_P50 = 0.20


def _deployment_and_vds():
    dep = EbsDeployment(DeploymentSpec(**SHAPE))
    vds = [
        VirtualDisk(dep, f"vd{i}", host, 512 * 1024 * 1024)
        for i, host in enumerate(dep.compute_host_names())
    ]
    return dep, vds


def _summarize(dep) -> dict:
    out = {}
    for kind in ("read", "write"):
        traces = [t for t in dep.collector.completed(kind) if t.size_bytes == 4096]
        totals = sorted(t.total_ns for t in traces)
        entry = {
            "n": len(traces),
            "p50_us": percentile(totals, 50) / 1000,
            "p95_us": percentile(totals, 95) / 1000,
        }
        for c in COMPONENTS:
            entry[f"{c}_p50_us"] = percentile(
                sorted(t.components[c] for t in traces), 50
            ) / 1000
        out[kind] = entry
    return out


def run_detailed() -> dict:
    dep, vds = _deployment_and_vds()
    for i, vd in enumerate(vds):
        ProductionWorkload(dep.sim, vd, LOAD_IOPS_PER_HOST, HORIZON_NS,
                           name=f"hybrid/flow{i}/0").start()
    wall = time.perf_counter()
    dep.run(until_ns=HORIZON_NS + 20 * MS)
    wall = time.perf_counter() - wall
    return {
        "mode": "detailed",
        "wall_s": round(wall, 4),
        "events": dep.sim.events_processed,
        "ios": len(dep.collector.traces),
        "summary": _summarize(dep),
    }


def run_hybrid() -> dict:
    dep, vds = _deployment_and_vds()
    fidelity = FidelityController(
        calibration_ns=8 * MS, slo_window_ns=100 * MS, recal_ns=2 * MS
    )
    run = HybridRun(dep, fidelity=fidelity)
    for i, vd in enumerate(vds):
        run.add_flow(f"flow{i}", vd, LOAD_IOPS_PER_HOST)
    wall = time.perf_counter()
    result = run.run(HORIZON_NS)
    wall = time.perf_counter() - wall
    return {
        "mode": "hybrid",
        "wall_s": round(wall, 4),
        "events": result.events_processed,
        "ios": len(dep.collector.traces),
        "detailed_ios": result.detailed_ios,
        "synthesized_ios": result.synthesized_ios,
        "detail_fraction": round(result.detail_fraction, 4),
        "summary": _summarize(dep),
    }


def run_comparison() -> str:
    detailed = run_detailed()
    hybrid = run_hybrid()

    rows = []
    for kind in ("read", "write"):
        d, h = detailed["summary"][kind], hybrid["summary"][kind]
        assert d["n"] > 500 and h["n"] > 500, (kind, d["n"], h["n"])
        for metric, tol in (("p50_us", TOL_P50), ("p95_us", TOL_P95)):
            err = abs(h[metric] - d[metric]) / d[metric]
            rows.append([
                f"4KB {kind} {metric[:-3]}", f"{d[metric]:.1f}",
                f"{h[metric]:.1f}", f"{(h[metric] - d[metric]) / d[metric]:+.1%}",
            ])
            assert err < tol, (kind, metric, d[metric], h[metric], err)
        for c in COMPONENTS:
            key = f"{c}_p50_us"
            rows.append([
                f"4KB {kind} {c.upper()} p50", f"{d[key]:.1f}",
                f"{h[key]:.1f}",
                f"{(h[key] - d[key]) / d[key]:+.1%}" if d[key] else "n/a",
            ])
            if d[key] >= 1.0:  # sub-us components are noise-dominated
                err = abs(h[key] - d[key]) / d[key]
                assert err < TOL_COMPONENT_P50, (kind, c, d[key], h[key], err)

    event_ratio = detailed["events"] / max(1, hybrid["events"])
    wall_ratio = detailed["wall_s"] / max(1e-9, hybrid["wall_s"])
    assert event_ratio >= 20, f"hybrid only {event_ratio:.1f}x fewer events"
    assert wall_ratio >= 20, f"hybrid only {wall_ratio:.1f}x faster"

    payload = {
        "workload": {
            "shape": "fig6 production mix",
            "horizon_ns": HORIZON_NS,
            "iops_per_host": LOAD_IOPS_PER_HOST,
            "seed": SEED,
        },
        "tolerance": {
            "total_p50": TOL_P50, "total_p95": TOL_P95,
            "component_p50": TOL_COMPONENT_P50,
        },
        "detailed": detailed,
        "hybrid": hybrid,
        "event_ratio": round(event_ratio, 1),
        "wall_ratio": round(wall_ratio, 1),
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "BENCH_hybrid.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    table = format_table(["metric", "detailed", "hybrid", "error"], rows)
    footer = format_table(
        ["cost", "detailed", "hybrid", "ratio"],
        [
            ["events", detailed["events"], hybrid["events"], f"{event_ratio:.1f}x"],
            ["wall (s)", detailed["wall_s"], hybrid["wall_s"], f"{wall_ratio:.1f}x"],
            ["ios", detailed["ios"], hybrid["ios"],
             f"detail {hybrid['detail_fraction']:.1%}"],
        ],
    )
    return (
        "Hybrid fidelity vs detailed (fig6 workload, 400ms horizon):\n"
        + table + "\n" + footer
    )


def test_hybrid_fidelity(benchmark):
    text = once(benchmark, run_comparison)
    print("\n" + text)
    save_output("hybrid_fidelity", text)
