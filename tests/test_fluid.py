"""Hybrid-fidelity fluid mode (repro.sim.fluid).

Pins the fidelity contract: fluid-mode latency summaries match detailed
mode within tolerance, synthesis is deterministic and clearly flagged,
detail windows cover faults and SLO boundaries, and the hybrid run is
dramatically cheaper in simulator events.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.metrics.stats import percentile
from repro.metrics.trace import COMPONENTS, IoTrace
from repro.sim import MS, Simulator
from repro.sim.fluid import (
    FidelityController,
    FluidFlow,
    HybridRun,
    LatencyReservoir,
)
from repro.workloads import ProductionWorkload

SMALL = dict(
    compute_racks=1,
    compute_hosts_per_rack=1,
    storage_racks=1,
    storage_hosts_per_rack=4,
)


# ----------------------------------------------------------------------
# FidelityController timeline
# ----------------------------------------------------------------------
class TestFidelityController:
    def test_segments_partition_horizon(self):
        fc = FidelityController(calibration_ns=8 * MS, slo_window_ns=40 * MS,
                                recal_ns=2 * MS)
        horizon = 100 * MS
        segments = fc.segments(horizon)
        assert segments[0].start_ns == 0
        assert segments[-1].end_ns == horizon
        for prev, nxt in zip(segments, segments[1:]):
            assert prev.end_ns == nxt.start_ns
        modes = [s.mode for s in segments]
        # calibration, fluid, recal@40ms, fluid, recal@80ms, fluid
        assert modes == ["detail", "fluid", "detail", "fluid", "detail", "fluid"]
        assert segments[2].start_ns == 40 * MS
        assert segments[2].reason == "slo-recal"

    def test_requested_window_merges_with_neighbors(self):
        fc = FidelityController(calibration_ns=5 * MS, slo_window_ns=None)
        fc.request_detail(4 * MS, 9 * MS, "fault")
        windows = fc.windows(50 * MS)
        assert len(windows) == 1  # overlapped the calibration window
        assert windows[0].start_ns == 0
        assert windows[0].end_ns == 9 * MS

    def test_around_applies_guard(self):
        fc = FidelityController(calibration_ns=1 * MS, slo_window_ns=None,
                                guard_ns=2 * MS)
        fc.around(30 * MS, "link-flap")
        windows = fc.windows(100 * MS)
        assert (windows[1].start_ns, windows[1].end_ns) == (28 * MS, 32 * MS)
        assert windows[1].reason == "link-flap"

    def test_windows_clip_to_horizon(self):
        fc = FidelityController(calibration_ns=5 * MS, slo_window_ns=20 * MS,
                                recal_ns=2 * MS)
        fc.request_detail(90 * MS, 120 * MS)
        windows = fc.windows(100 * MS)
        assert all(w.end_ns <= 100 * MS for w in windows)
        assert windows[-1].start_ns == 90 * MS

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            FidelityController(calibration_ns=0)
        with pytest.raises(ValueError):
            FidelityController(slo_window_ns=MS, recal_ns=2 * MS)


# ----------------------------------------------------------------------
# LatencyReservoir
# ----------------------------------------------------------------------
def _trace(kind: str, size: int, total_ns: int, ok: bool = True) -> IoTrace:
    t = IoTrace(io_id=1, kind=kind, size_bytes=size, submit_ns=0)
    for c in COMPONENTS:
        t.components[c] = total_ns // len(COMPONENTS)
    t.complete(total_ns, ok=ok)
    return t


class TestLatencyReservoir:
    def test_failed_traces_excluded(self):
        r = LatencyReservoir()
        r.add(_trace("read", 4096, 1000, ok=False))
        assert r.count("read", 4096) == 0

    def test_nearest_size_fallback(self):
        r = LatencyReservoir()
        r.add(_trace("write", 4096, 1000))
        r.add(_trace("write", 65536, 9000))
        sim = Simulator(seed=7)
        rng = sim.rng.stream("t")
        total, comps = r.sample("write", 8192, rng)
        assert total == 1000  # 8K is nearer 4K than 64K
        assert len(comps) == len(COMPONENTS)

    def test_empty_kind_raises(self):
        r = LatencyReservoir()
        r.add(_trace("write", 4096, 1000))
        sim = Simulator(seed=7)
        with pytest.raises(LookupError):
            r.sample("read", 4096, sim.rng.stream("t"))


# ----------------------------------------------------------------------
# FluidFlow synthesis
# ----------------------------------------------------------------------
class TestFluidFlow:
    def test_rejects_nonpositive_iops(self):
        sim = Simulator(seed=7)
        with pytest.raises(ValueError):
            FluidFlow(sim, "f", 0, LatencyReservoir())

    def test_synthesize_rate_and_flagging(self):
        from repro.metrics.trace import TraceCollector

        reservoir = LatencyReservoir()
        reservoir.add(_trace("read", 4096, 2000))
        reservoir.add(_trace("write", 4096, 1000))
        sim = Simulator(seed=7)
        flow = FluidFlow(sim, "f", 50_000, reservoir)
        collector = TraceCollector()
        n = flow.synthesize(0, 10 * MS, collector)
        # Poisson at 50K IOPS over 10ms -> ~500 arrivals.
        assert n == len(collector.traces) == flow.synthesized
        assert 350 < n < 650
        assert all(t.io_id < 0 and "synthetic" in t.marks
                   for t in collector.traces)
        assert all(0 <= t.submit_ns < 10 * MS for t in collector.traces)
        assert all(t.complete_ns > t.submit_ns for t in collector.traces)


# ----------------------------------------------------------------------
# Hybrid run: fidelity, determinism, cost
# ----------------------------------------------------------------------
HORIZON_NS = 60 * MS
IOPS = 20_000


def _detailed_run(seed: int):
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=seed, **SMALL))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
    wl = ProductionWorkload(dep.sim, vd, IOPS, HORIZON_NS, name="hybrid/flow0/0")
    wl.start()
    dep.run(until_ns=HORIZON_NS + 20 * MS)
    return dep


def _hybrid_run(seed: int):
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=seed, **SMALL))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
    fc = FidelityController(calibration_ns=8 * MS, slo_window_ns=25 * MS,
                            recal_ns=2 * MS)
    run = HybridRun(dep, fidelity=fc)
    run.add_flow("flow0", vd, IOPS)
    result = run.run(HORIZON_NS)
    return dep, result


class TestHybridFidelity:
    @pytest.fixture(scope="class")
    def runs(self):
        detailed = _detailed_run(seed=21)
        hybrid, result = _hybrid_run(seed=21)
        return detailed, hybrid, result

    def test_latency_summary_within_tolerance(self, runs):
        detailed, hybrid, _result = runs
        for kind in ("read", "write"):
            det = sorted(t.total_ns for t in detailed.collector.completed(kind))
            hyb = sorted(t.total_ns for t in hybrid.collector.completed(kind))
            assert len(det) > 100 and len(hyb) > 100
            p50_det, p50_hyb = percentile(det, 50), percentile(hyb, 50)
            p95_det, p95_hyb = percentile(det, 95), percentile(hyb, 95)
            assert abs(p50_hyb - p50_det) / p50_det < 0.12, (kind, p50_det, p50_hyb)
            assert abs(p95_hyb - p95_det) / p95_det < 0.25, (kind, p95_det, p95_hyb)

    def test_component_breakdown_within_tolerance(self, runs):
        detailed, hybrid, _result = runs
        for c in COMPONENTS:
            det = detailed.collector.component_percentile(c, 50, "write")
            hyb = hybrid.collector.component_percentile(c, 50, "write")
            if det > 1000:  # sub-us components are noise-dominated
                assert abs(hyb - det) / det < 0.20, (c, det, hyb)

    def test_hybrid_is_much_cheaper(self, runs):
        detailed, hybrid, result = runs
        # Detail fraction is 12ms of 60ms; events should shrink accordingly.
        assert result.events_processed < detailed.sim.events_processed / 3
        assert result.synthesized_ios > result.detailed_ios
        assert result.detail_fraction == pytest.approx(12 / 60)

    def test_synthetic_traces_flagged(self, runs):
        _detailed, hybrid, _result = runs
        synthetic = [t for t in hybrid.collector.traces if t.io_id < 0]
        real = [t for t in hybrid.collector.traces if t.io_id > 0]
        assert synthetic and real
        assert all("synthetic" in t.marks for t in synthetic)
        assert all("synthetic" not in t.marks for t in real)
        # Synthetic completions only ever land in fluid segments.
        fluid_spans = [(s.start_ns, s.end_ns) for s in _result.segments
                       if s.mode == "fluid"]
        assert all(
            any(lo <= t.submit_ns < hi for lo, hi in fluid_spans)
            for t in synthetic
        )

    def test_hybrid_deterministic(self):
        def digest(seed):
            dep, result = _hybrid_run(seed=seed)
            # io_id is excluded: IoRequest ids come from a process-global
            # counter, so they differ between runs in one process.
            blob = repr([
                (t.kind, t.size_bytes, t.submit_ns, t.complete_ns,
                 tuple(sorted(t.components.items())))
                for t in dep.collector.traces
            ]).encode()
            return hashlib.sha256(blob).hexdigest(), result.synthesized_ios

        first = digest(33)
        second = digest(33)
        assert first == second

    def test_detail_window_covers_fault(self):
        dep = EbsDeployment(DeploymentSpec(stack="solar", seed=5, **SMALL))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
        fc = FidelityController(calibration_ns=5 * MS, slo_window_ns=None,
                                guard_ns=2 * MS)
        fc.around(20 * MS, "tor-reboot")
        run = HybridRun(dep, fidelity=fc)
        run.add_flow("flow0", vd, IOPS)
        result = run.run(40 * MS)
        detail = [s for s in result.segments if s.mode == "detail"]
        assert any(s.start_ns <= 20 * MS < s.end_ns for s in detail)
        fault_seg = next(s for s in detail if s.reason == "tor-reboot")
        assert (fault_seg.start_ns, fault_seg.end_ns) == (18 * MS, 22 * MS)

    def test_run_requires_flows_and_t0(self):
        dep = EbsDeployment(DeploymentSpec(stack="solar", seed=5, **SMALL))
        run = HybridRun(dep)
        with pytest.raises(RuntimeError):
            run.run(10 * MS)
        dep.sim.run(until=MS)
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
        run.add_flow("flow0", vd, IOPS)
        with pytest.raises(RuntimeError):
            run.run(10 * MS)
