"""Tests for the repro.chaos property-based chaos harness.

Three layers:

* scenario format — digest-verified round trips, tamper detection;
* harness + invariant suite — the suite passes on the fixed control
  plane and *fails* when a known-fixed bug is re-introduced in memory
  (the suite must be able to catch what it claims to catch);
* regression scenarios — every file under ``tests/scenarios/`` replays
  with zero violations and a byte-identical report.
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.chaos import (
    ChaosAction,
    ChaosConfig,
    ChaosHarness,
    ChaosScenario,
    InvariantViolation,
    block_payload,
    replay_scenario,
)
from repro.lab.spec import canonical_json
from repro.profiles import BLOCK_SIZE

SCENARIO_DIR = Path(__file__).parent / "scenarios"
SCENARIO_FILES = sorted(SCENARIO_DIR.glob("*.json"))

#: The recipe that reproduced the mid-drain wedge before the drain
#: timeout existed: kill both storage nodes holding server 1's first
#: segment, strand writes in flight, then migrate.
DRAIN_FAULT_ACTIONS = [
    ("advance", {"ticks": 1}),
    ("fail_node", {"stack": "luna", "node": 1}),
    ("fail_node", {"stack": "luna", "node": 2}),
    *[("write", {"server": 1}) for _ in range(8)],
    ("migrate", {"server": 1}),
]


def run_actions(harness, actions):
    for rule, args in actions:
        harness.apply(rule, **args)


# ----------------------------------------------------------------------
# Scenario format
# ----------------------------------------------------------------------
class TestScenarioFormat:
    def _scenario(self):
        return ChaosScenario(
            name="fmt",
            config=ChaosConfig().to_dict(),
            actions=[
                ChaosAction("advance", {"ticks": 3}),
                ChaosAction("fail_node", {"stack": "luna", "node": 1}),
            ],
            description="format round-trip",
        )

    def test_round_trip(self, tmp_path):
        scenario = self._scenario()
        path = scenario.save(tmp_path / "fmt.json")
        loaded = ChaosScenario.load(path)
        assert loaded == scenario
        assert loaded.digest == scenario.digest

    def test_digest_fills_in_when_empty(self):
        scenario = self._scenario()
        assert len(scenario.digest) == 16

    def test_tampered_actions_detected_at_load(self, tmp_path):
        path = self._scenario().save(tmp_path / "fmt.json")
        payload = json.loads(path.read_text())
        payload["actions"][0]["args"]["ticks"] = 99  # edit without re-digesting
        with pytest.raises(ValueError, match="digest mismatch"):
            ChaosScenario.from_dict(payload)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos rule"):
            ChaosAction("explode", {})

    def test_non_scalar_arg_rejected(self):
        with pytest.raises(ValueError, match="int or str"):
            ChaosAction("advance", {"ticks": True})

    def test_unsupported_version_rejected(self):
        payload = self._scenario().to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            ChaosScenario.from_dict(payload)

    def test_config_round_trips(self):
        config = ChaosConfig(seed=9, stacks=("kernel", "solar"))
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestBlockPayload:
    def test_deterministic_full_block(self):
        a = block_payload("vd", 5, 17)
        assert len(a) == BLOCK_SIZE
        assert a == block_payload("vd", 5, 17)

    def test_distinct_per_identity(self):
        base = block_payload("vd", 5, 17)
        assert base != block_payload("vd", 6, 17)
        assert base != block_payload("vd", 5, 18)
        assert base != block_payload("other", 5, 17)


# ----------------------------------------------------------------------
# Harness + invariant suite on the fixed control plane
# ----------------------------------------------------------------------
class TestHarness:
    def test_invalid_actions_defer_not_crash(self):
        harness = ChaosHarness(ChaosConfig())
        harness.apply("fail_node", stack="nope", node=0)
        harness.apply("clear_node", stack="luna", node=7)  # nothing failed
        harness.apply("clear_tor", stack="luna", index=0)
        assert harness.deferred_actions == 3
        harness.verify()

    def test_node_fault_cap_enforced(self):
        harness = ChaosHarness(ChaosConfig())
        for node in range(4):
            harness.apply("fail_node", stack="luna", node=node)
        # Only max_node_faults_per_stack (2) land; the rest defer.
        assert len(harness.failed_nodes("luna")) == 2
        assert harness.deferred_actions == 2

    def test_drain_fault_aborts_within_budget(self):
        harness = ChaosHarness(ChaosConfig())
        run_actions(harness, DRAIN_FAULT_ACTIONS)
        harness.apply("advance", ticks=12)
        assert harness.cluster.migrator.aborted == 1
        assert harness.cluster.migrator.completed == 0
        harness.verify()
        harness.quiesce()
        harness.verify_final()

    def test_suite_catches_wedged_drain(self):
        # Re-introduce the pre-fix bug in memory: no drain timeout means
        # the stranded migration pauses the VD forever.  The budget
        # invariant must flag the wedge while it is LIVE.
        harness = ChaosHarness(ChaosConfig())
        harness.cluster.migrator.drain_timeout_ns = None
        run_actions(harness, DRAIN_FAULT_ACTIONS)
        harness.apply("advance", ticks=12)
        with pytest.raises(InvariantViolation, match="migration-budget"):
            harness.verify()

    def test_suite_catches_unresolved_incidents(self):
        # Pre-fix bug two: hang incidents never resolved on completion.
        harness = ChaosHarness(ChaosConfig())
        harness.monitor.note_io_completed = lambda io: None
        run_actions(harness, DRAIN_FAULT_ACTIONS[:-1])  # faults + writes
        harness.apply("advance", ticks=10)
        harness.apply("clear_node", stack="luna", node=1)
        harness.apply("clear_node", stack="luna", node=2)
        harness.quiesce()
        with pytest.raises(InvariantViolation, match="incident-resolution"):
            harness.verify_final()

    def test_suite_catches_provision_on_dead_node(self):
        # Pre-fix bug three: provision ignored the evacuation quarantine
        # and placed fresh segments on a node known to be dead.
        harness = ChaosHarness(ChaosConfig())
        table = harness.cluster.deployments["solar"].segment_table
        original = type(table).provision

        def provision_everywhere(*args, **kwargs):
            evacuated = table._evacuated
            table._evacuated = set()
            try:
                return original(table, *args, **kwargs)
            finally:
                table._evacuated = evacuated

        table.provision = provision_everywhere
        harness.apply("fail_node", stack="solar", node=0)
        harness.apply("advance", ticks=10)
        harness.apply("migrate", server=2)
        harness.apply("advance", ticks=4)
        with pytest.raises(InvariantViolation, match="replica-policy"):
            harness.verify()

    def test_bitflips_detected_and_durability_holds(self):
        harness = ChaosHarness(ChaosConfig())
        harness.apply("migrate", server=0)
        harness.apply("advance", ticks=1)
        harness.apply("set_bitflip", permille=200)
        for _ in range(20):
            harness.apply("write", server=0)
        harness.apply("advance", ticks=2)
        assert harness.injector.total_injected > 0
        harness.verify()
        harness.apply("set_bitflip", permille=0)
        harness.quiesce()
        harness.verify_final()

    def test_report_is_canonical_scalars(self):
        harness = ChaosHarness(ChaosConfig())
        harness.apply("advance", ticks=2)
        report = harness.report()
        canonical_json(report)  # raises if anything non-JSON leaked in


# ----------------------------------------------------------------------
# Replay + committed regression scenarios
# ----------------------------------------------------------------------
class TestReplay:
    def test_committed_scenarios_exist(self):
        assert len(SCENARIO_FILES) >= 3

    @pytest.mark.parametrize(
        "path", SCENARIO_FILES, ids=[p.stem for p in SCENARIO_FILES]
    )
    def test_regression_scenario_replays_clean(self, path):
        scenario = ChaosScenario.load(path)
        report = replay_scenario(scenario)
        assert report["violations"] == []
        assert report["steps_applied"] == len(scenario.actions)
        assert report["digest"] == scenario.digest

    def test_replay_byte_identical(self):
        scenario = ChaosScenario.load(SCENARIO_FILES[0])
        first = canonical_json(replay_scenario(scenario))
        second = canonical_json(replay_scenario(scenario))
        assert first == second

    def test_drain_fault_scenario_exercises_abort(self):
        path = SCENARIO_DIR / "migration-drain-fault.json"
        report = replay_scenario(ChaosScenario.load(path))
        assert report["migrations_aborted"] == 1
        assert report["hangs"] > 0

    def test_replay_counts_deferred_actions(self):
        # Actions that were no-ops when recorded (clearing a fault that
        # is not applied) replay as the same no-ops, not errors.
        scenario = ChaosScenario(
            name="deferred",
            config=ChaosConfig().to_dict(),
            actions=[
                ChaosAction("clear_node", {"stack": "luna", "node": 0}),
                ChaosAction("advance", {"ticks": 2}),
            ],
        )
        report = replay_scenario(scenario)
        assert report["violations"] == []
        assert report["deferred_actions"] == 1


# ----------------------------------------------------------------------
# Hypothesis state machine (derandomized smoke)
# ----------------------------------------------------------------------
class TestMachine:
    def test_derandomized_hunt_is_clean(self):
        from repro.chaos.machine import hunt

        failure = hunt(
            ChaosConfig(), max_examples=3, stateful_step_count=10,
            derandomize=True,
        )
        assert failure is None

    def test_hunt_captures_shrunken_counterexample(self, monkeypatch):
        # When the suite trips, hunt() must return the shrunken action
        # sequence as a digest-valid scenario instead of raising.  The
        # violation here is synthetic (any two applied actions trip it)
        # so the capture path is exercised deterministically.
        from repro.chaos import harness as harness_mod
        from repro.chaos.machine import hunt

        original = harness_mod.ChaosHarness.verify

        def tripping_verify(self):
            original(self)
            if len(self.log) >= 2:
                raise InvariantViolation(
                    "synthetic", "forced failure for the capture-path test"
                )

        monkeypatch.setattr(harness_mod.ChaosHarness, "verify", tripping_verify)
        failure = hunt(
            ChaosConfig(), max_examples=5, stateful_step_count=10,
            derandomize=True,
        )
        assert failure is not None
        assert len(failure.actions) >= 2
        assert ChaosScenario.from_dict(failure.to_dict()).digest == failure.digest


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestChaosCli:
    def test_replay_exit_zero_and_json(self, capsys):
        path = str(SCENARIO_FILES[0])
        assert main(["chaos", "--replay", path]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["violations"] == []

    def test_replay_deterministic_output(self, capsys):
        path = str(SCENARIO_FILES[0])
        main(["chaos", "--replay", path])
        first = capsys.readouterr().out
        main(["chaos", "--replay", path])
        assert capsys.readouterr().out == first

    def test_hunt_smoke_exit_zero(self, capsys):
        assert main([
            "chaos", "--examples", "2", "--steps", "8", "--derandomize",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["result"] == "ok"

    def test_tampered_file_rejected(self, tmp_path, capsys):
        payload = json.loads(SCENARIO_FILES[0].read_text())
        payload["actions"].append({"rule": "advance", "args": {"ticks": 1}})
        bad = tmp_path / "tampered.json"
        bad.write_text(json.dumps(payload))
        assert main(["chaos", "--replay", str(bad)]) == 2
        assert "digest mismatch" in capsys.readouterr().err

    def test_missing_file_rejected(self, tmp_path, capsys):
        assert main(["chaos", "--replay", str(tmp_path / "nope.json")]) == 2
        assert "cannot load scenario" in capsys.readouterr().err
