"""Smoke test: the quickstart example must run clean (the other examples
are exercised by their underlying APIs' tests; they run minutes-long
simulations and are validated manually / in CI's long lane)."""

import runpy
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestQuickstart:
    def test_quickstart_runs(self, capsys):
        runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "write" in out and "read" in out
        assert "FPGA resources" in out

    def test_all_examples_importable(self):
        """Every example must at least parse and import its dependencies."""
        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            compile(source, str(path), "exec")
            assert '"""' in source, f"{path.name} lacks a docstring"
            assert "def main" in source, f"{path.name} lacks main()"
