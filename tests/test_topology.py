"""Tests for the Clos topology builder, routing and failure scenarios."""

import pytest

from repro.net import (
    ClosTopology,
    Packet,
    PodSpec,
    random_drop,
    switch_blackhole,
    switch_failure,
    table2_scenarios,
    tor_port_failure,
)
from repro.profiles import DEFAULT
from repro.sim import MS, Simulator


def build(sim=None, multi_dc=False):
    sim = sim or Simulator(seed=1)
    pods = [
        PodSpec("cp", racks=2, hosts_per_rack=3, role="compute"),
        PodSpec("sp", racks=2, hosts_per_rack=3, role="storage",
                dc="dc1" if multi_dc else "dc0"),
    ]
    return sim, ClosTopology(sim, DEFAULT.network, pods)


def send_and_run(sim, topo, src, dst, sport=1234):
    got = []
    topo.hosts[dst].on_default(got.append)
    topo.hosts[src].send(Packet(src, dst, sport, 80, "udp", 1500))
    sim.run(until=sim.now + 5 * MS)
    return got


class TestConstruction:
    def test_host_and_switch_counts(self):
        _sim, topo = build()
        assert len(topo.hosts) == 12
        assert len(topo.switches_by_tier("tor")) == 8  # 2 pods * 2 racks * 2
        assert len(topo.switches_by_tier("spine")) == 4
        assert len(topo.switches_by_tier("core")) == 2
        assert topo.switches_by_tier("dc_router") == []

    def test_multi_dc_adds_routers(self):
        _sim, topo = build(multi_dc=True)
        assert len(topo.switches_by_tier("dc_router")) == 2
        assert len(topo.switches_by_tier("core")) == 4  # 2 per DC

    def test_hosts_dual_homed(self):
        _sim, topo = build()
        assert all(len(h.uplinks) == 2 for h in topo.hosts.values())

    def test_degenerate_pod_rejected(self):
        with pytest.raises(ValueError):
            PodSpec("bad", racks=0, hosts_per_rack=1)

    def test_pods_by_role(self):
        _sim, topo = build()
        assert [p.name for p in topo.pods_by_role("storage")] == ["sp"]


class TestRouting:
    def test_same_rack_delivery(self):
        sim, topo = build()
        assert send_and_run(sim, topo, "cp/r0/h0", "cp/r0/h1")

    def test_cross_rack_same_pod(self):
        sim, topo = build()
        got = send_and_run(sim, topo, "cp/r0/h0", "cp/r1/h0")
        assert got
        tiers = {r.switch.split("/")[-1][:3] for r in got[0].int_records}
        assert any("spine" in r.switch for r in got[0].int_records)

    def test_cross_pod_goes_through_core(self):
        sim, topo = build()
        got = send_and_run(sim, topo, "cp/r0/h0", "sp/r1/h2")
        assert got
        assert any("core" in r.switch for r in got[0].int_records)

    def test_cross_dc_goes_through_dc_router(self):
        sim, topo = build(multi_dc=True)
        got = send_and_run(sim, topo, "cp/r0/h0", "sp/r0/h0")
        assert got
        assert any(r.switch.startswith("dcr") for r in got[0].int_records)

    def test_unknown_destination_dropped(self):
        sim, topo = build()
        topo.hosts["cp/r0/h0"].send(Packet("cp/r0/h0", "nowhere", 1, 2, "udp", 100))
        sim.run()  # no exception; dropped at the ToR with no route
        assert any(s.dropped_no_route for s in topo.switches.values())

    def test_path_hops(self):
        _sim, topo = build()
        assert topo.path_hops("cp/r0/h0", "cp/r0/h1") == 1
        assert topo.path_hops("cp/r0/h0", "cp/r1/h0") == 3
        assert topo.path_hops("cp/r0/h0", "sp/r0/h0") == 5

    def test_different_sports_can_take_different_paths(self):
        sim, topo = build()
        paths = set()
        for sport in range(40_000, 40_032):
            got = send_and_run(sim, topo, "cp/r0/h0", "sp/r0/h0", sport=sport)
            assert got
            trail = tuple(r.switch for r in got[-1].int_records)
            paths.add(trail)
            topo.hosts["sp/r0/h0"]._handlers.clear()
            topo.hosts["sp/r0/h0"]._default_handler = None
        assert len(paths) > 1  # ECMP spreads by source port


class TestFailures:
    def test_switch_fail_stop_drops(self):
        sim, topo = build()
        for tor in topo.switches_by_tier("tor"):
            tor.set_up(False)
        got = send_and_run(sim, topo, "cp/r0/h0", "cp/r0/h1")
        assert got == []

    def test_blackhole_is_flow_selective(self):
        sim, topo = build()
        for sw in topo.switches_by_tier("tor"):
            sw.set_blackhole(0.5, "t")
        delivered = 0
        for sport in range(1000, 1040):
            if send_and_run(sim, topo, "cp/r0/h0", "sp/r0/h0", sport=sport):
                delivered += 1
            topo.hosts["sp/r0/h0"]._handlers.clear()
            topo.hosts["sp/r0/h0"]._default_handler = None
        assert 0 < delivered < 40

    def test_blackhole_consistent_per_flow(self):
        sim, topo = build()
        sw = topo.switches_by_tier("spine")[0]
        sw.set_blackhole(0.5, "x")
        p = Packet("cp/r0/h0", "sp/r0/h0", 1, 2, "udp", 100)
        assert sw._blackholes(p) == sw._blackholes(p)

    def test_reboot_recovers(self):
        sim, topo = build()
        tor = topo.switches_by_tier("tor")[0]
        tor.reboot(2 * MS)
        assert not tor.up
        sim.run(until=3 * MS)
        assert tor.up

    def test_drop_rate_validation(self):
        _sim, topo = build()
        with pytest.raises(ValueError):
            topo.switches_by_tier("tor")[0].set_drop_rate(1.5)

    def test_scenario_apply_revert(self):
        sim, topo = build()
        scenario = switch_failure("spine")
        touched = scenario.apply(topo)
        assert len(touched) == 1
        assert not topo.switches[touched[0]].up
        scenario.revert(topo)
        assert topo.switches[touched[0]].up

    def test_scenario_double_apply_rejected(self):
        sim, topo = build()
        scenario = switch_blackhole("tor", 0.3)
        scenario.apply(topo)
        with pytest.raises(RuntimeError):
            scenario.apply(topo)

    def test_tor_port_failure_leaves_other_uplink(self):
        sim, topo = build()
        scenario = tor_port_failure("cp/r0/h0")
        scenario.apply(topo)
        host = topo.hosts["cp/r0/h0"]
        assert sum(1 for ch in host.uplinks if ch.up) == 1
        # Still reachable through the surviving ToR.
        assert send_and_run(sim, topo, "cp/r0/h0", "sp/r0/h0")

    def test_random_drop_scenario(self):
        sim, topo = build()
        scenario = random_drop("tor", 0.75)
        scenario.apply(topo)
        assert any(s.drop_rate == 0.75 for s in topo.switches_by_tier("tor"))
        scenario.revert(topo)
        assert all(s.drop_rate == 0.0 for s in topo.switches_by_tier("tor"))

    def test_table2_scenarios_complete(self):
        scenarios = table2_scenarios("cp/r0/h0")
        assert len(scenarios) == 7  # the seven rows of Table 2

    def test_spine_withdraws_route_to_dead_host_port(self):
        """A ToR-port failure must not blackhole the reverse path: spines
        stop using the ToR whose host link died (route withdrawal)."""
        sim, topo = build()
        scenario = tor_port_failure("cp/r0/h0")
        scenario.apply(topo)
        dead_tor = None
        for name in ("cp/r0/tor0", "cp/r0/tor1"):
            port = topo.switches[name].ports.get("cp/r0/h0")
            if port is not None and not port.up:
                dead_tor = name
        assert dead_tor is not None
        # Traffic from another pod still reaches the host, every time.
        for sport in range(5000, 5020):
            got = send_and_run(sim, topo, "sp/r0/h0", "cp/r0/h0", sport=sport)
            assert got, f"sport {sport} blackholed after port failure"
            assert all(r.switch != dead_tor for r in got[-1].int_records)
            topo.hosts["cp/r0/h0"]._handlers.clear()
            topo.hosts["cp/r0/h0"]._default_handler = None
