"""Tests for the SOLAR core: headers, tables, pipeline, multipath, HPCC,
CRC aggregation, and the protocol engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AddrEntry,
    AddrTable,
    CrcAggregator,
    EbsHeader,
    HpccCongestionControl,
    MatchActionTable,
    MultipathManager,
    PATH_PORT_BASE,
    Pipeline,
    PipelineContext,
    RpcHeader,
    Stage,
    TableFullError,
    aggregate_payload_check,
    data_packet_bytes,
    table3_specs,
    xor_aggregate,
)
from repro.core.pipeline import MatchActionStage
from repro.net.packet import IntRecord
from repro.profiles import DEFAULT
from repro.sim import Simulator
from repro.storage.crc import crc32, crc32_raw


class TestHeaders:
    def test_one_block_packet_fits_jumbo_frame(self):
        # §4.4: 4KB block + headers must fit a 9K jumbo frame.
        total = data_packet_bytes(4096) + DEFAULT.network.header_overhead_bytes
        assert total <= DEFAULT.network.mtu_bytes
        # ...but NOT a standard 1500B frame: jumbo is a hard requirement.
        assert total > DEFAULT.network.standard_mtu_bytes

    def test_ebs_header_validation(self):
        with pytest.raises(ValueError):
            EbsHeader("format", "vd", "seg", 0, 4096)
        with pytest.raises(ValueError):
            EbsHeader("write_block", "vd", "seg", -1, 4096)

    def test_rpc_header_pkt_range(self):
        RpcHeader(1, 0, 1)
        with pytest.raises(ValueError):
            RpcHeader(1, 3, 3)


class TestMatchActionTables:
    def test_capacity_enforced(self):
        table = MatchActionTable("t", 2)
        table.insert("a", 1)
        table.insert("b", 2)
        with pytest.raises(TableFullError):
            table.insert("c", 3)

    def test_update_in_place_allowed_at_capacity(self):
        table = MatchActionTable("t", 1)
        table.insert("a", 1)
        table.insert("a", 2)
        assert table.lookup("a") == 2

    def test_hit_miss_counters(self):
        table = MatchActionTable("t", 4)
        table.insert("k", "v")
        table.lookup("k")
        table.lookup("nope")
        assert table.hits == 1 and table.misses == 1

    def test_addr_table_consume_removes(self):
        addr = AddrTable(16)
        addr.install(AddrEntry(1, 0, 0x1000, 4096, "vd", 0))
        assert addr.consume(1, 0) is not None
        assert addr.consume(1, 0) is None  # duplicates see a miss

    def test_addr_double_install_rejected(self):
        addr = AddrTable(16)
        addr.install(AddrEntry(1, 0, 0, 4096, "vd", 0))
        with pytest.raises(ValueError):
            addr.install(AddrEntry(1, 0, 0, 4096, "vd", 0))

    def test_addr_capacity_is_bram_bound(self):
        addr = AddrTable(2)
        addr.install(AddrEntry(1, 0, 0, 4096, "vd", 0))
        addr.install(AddrEntry(1, 1, 0, 4096, "vd", 1))
        with pytest.raises(TableFullError):
            addr.install(AddrEntry(1, 2, 0, 4096, "vd", 2))


class TestPipeline:
    def _pipeline(self):
        table = MatchActionTable("Block", 8)
        table.insert(("vd", 0), "segment-0")
        stages = [
            MatchActionStage(
                "Block", table, lambda c: ("vd", c.require("idx")),
                lambda c, v: c.fields.__setitem__("segment", v),
            ),
            Stage("CRC", lambda c: c.fields.__setitem__("crc", True)),
        ]
        return Pipeline("test", stages)

    def test_stages_run_in_order(self):
        p = self._pipeline()
        ctx = p.process(PipelineContext(fields={"idx": 0}))
        assert ctx.executed == ["Block", "CRC"]
        assert ctx.fields["segment"] == "segment-0"

    def test_miss_drops_and_short_circuits(self):
        p = self._pipeline()
        ctx = p.process(PipelineContext(fields={"idx": 9}))
        assert ctx.dropped is not None
        assert "CRC" not in ctx.executed
        assert p.packets_dropped == 1

    def test_missing_field_raises_with_context(self):
        p = self._pipeline()
        with pytest.raises(KeyError, match="idx"):
            p.process(PipelineContext())

    def test_duplicate_stage_names_rejected(self):
        s = Stage("X", lambda c: None)
        with pytest.raises(ValueError):
            Pipeline("p", [s, Stage("X", lambda c: None)])

    def test_table3_resource_specs(self):
        specs = table3_specs()
        # Table 3's reported numbers.
        assert specs["Addr"].lut_pct == 5.1 and specs["Addr"].bram_pct == 8.1
        assert specs["Block"].bram_pct == 8.6
        assert specs["CRC"].bram_pct == 0.0
        total_lut = sum(s.lut_pct for s in specs.values())
        total_bram = sum(s.bram_pct for s in specs.values())
        assert total_lut == pytest.approx(8.5)
        # Table 3 prints 18.2% total; its own components sum to 18.0
        # (the paper rounds) — accept either.
        assert total_bram == pytest.approx(18.2, abs=0.25)

    def test_table3_scales_with_capacity(self):
        specs = table3_specs(addr_capacity=32_768)
        assert specs["Addr"].bram_pct == pytest.approx(16.2)


class TestHpcc:
    def _cc(self):
        return HpccCongestionControl(base_rtt_ns=16_000, mtu_bytes=9000, line_gbps=25.0)

    def _record(self, ts, queue=0, tx=0, gbps=25.0, switch="s1"):
        return IntRecord(switch, ts, queue, tx, gbps)

    def test_window_starts_at_bdp(self):
        cc = self._cc()
        assert cc.window_bytes == pytest.approx(cc.bdp_bytes)

    def test_idle_path_grows_window(self):
        cc = self._cc()
        w0 = cc.window_bytes
        # Two ACKs so tx-rate deltas exist; idle link → low utilization.
        cc.on_ack([self._record(1_000, queue=0, tx=1_000)], 1_000)
        w = cc.on_ack([self._record(17_000, queue=0, tx=2_000)], 17_000)
        assert w > w0

    def test_congested_queue_shrinks_window(self):
        cc = self._cc()
        bdp = cc.bdp_bytes
        cc.on_ack([self._record(1_000, queue=0, tx=10_000)], 1_000)
        w = cc.on_ack(
            [self._record(2_000, queue=10 * bdp, tx=20_000)], 2_000
        )
        assert w < bdp

    def test_window_never_below_mtu(self):
        cc = self._cc()
        for i in range(10):
            cc.on_ack([self._record(1_000 * (i + 1), queue=10**9, tx=10**8 * i)],
                      1_000 * (i + 1))
        assert cc.window_bytes >= cc.mtu_bytes

    def test_timeout_halves(self):
        cc = self._cc()
        w0 = cc.window_bytes
        assert cc.on_timeout() == pytest.approx(max(cc.mtu_bytes, w0 / 2))

    def test_utilization_uses_max_hop(self):
        def run(b_queue):
            cc = self._cc()
            cc.on_ack([self._record(1_000, 0, 100, switch="a"),
                       self._record(1_000, 0, 100, switch="b")], 1_000)
            cc.on_ack([self._record(2_000, 0, 200, switch="a"),
                       self._record(2_000, b_queue, 200, switch="b")], 2_000)
            return cc.window_bytes

        clean = run(0)
        congested = run(20 * self._cc().bdp_bytes)
        assert congested < clean  # the worst hop governs the window


class TestMultipath:
    def _manager(self, sim=None, num_paths=4):
        sim = sim or Simulator(seed=1)
        return sim, MultipathManager(sim, DEFAULT.solar, 16_000, 9000, 25.0,
                                     num_paths=num_paths)

    def test_default_four_paths(self):
        _sim, m = self._manager(num_paths=None)
        assert len(m.paths) == DEFAULT.solar.num_paths == 4

    def test_paths_have_distinct_ports(self):
        _sim, m = self._manager()
        ports = {p.path_id for p in m.paths}
        assert len(ports) == 4 and min(ports) == PATH_PORT_BASE

    def test_pick_prefers_low_rtt(self):
        _sim, m = self._manager()
        m.paths[2].srtt_ns = 1_000.0
        assert m.pick(4096) is m.paths[2]

    def test_pick_skips_full_windows(self):
        _sim, m = self._manager()
        for p in m.paths[:3]:
            p.inflight_bytes = 10**9
        assert m.pick(4096) is m.paths[3]

    def test_pick_returns_none_when_all_windows_full(self):
        _sim, m = self._manager()
        for p in m.paths:
            p.inflight_bytes = 10**9
        assert m.pick(4096) is None

    def test_consecutive_timeouts_fail_path(self):
        sim, m = self._manager()
        path = m.paths[0]
        for _ in range(DEFAULT.solar.path_failure_timeouts - 1):
            assert m.on_timeout(path, 4096) is False
        assert m.on_timeout(path, 4096) is True
        assert not path.healthy(sim.now)
        assert m.path_shifts == 1

    def test_ack_resets_timeout_streak(self):
        sim, m = self._manager()
        path = m.paths[0]
        m.on_timeout(path, 4096)
        m.on_ack(path, sim.now, 4096, [], seq=0)
        assert path.consecutive_timeouts == 0

    def test_failed_path_recovers_after_probation(self):
        sim, m = self._manager()
        path = m.paths[0]
        for _ in range(DEFAULT.solar.path_failure_timeouts):
            m.on_timeout(path, 4096)
        assert not path.healthy(sim.now)
        sim.run(until=sim.now + DEFAULT.solar.path_probation_ns + 1)
        assert path.healthy(sim.now)

    def test_all_failed_still_returns_a_path(self):
        sim, m = self._manager()
        for path in m.paths:
            for _ in range(DEFAULT.solar.path_failure_timeouts):
                m.on_timeout(path, 4096)
        assert m.pick(4096) is not None  # probes the least-recently-failed

    def test_best_alternative_avoids_given_path(self):
        _sim, m = self._manager()
        alt = m.best_alternative(m.paths[0], 4096)
        assert alt is not m.paths[0]

    def test_srtt_ewma(self):
        sim, m = self._manager()
        path = m.paths[0]
        before = path.srtt_ns
        m.on_ack(path, sim.now - 100_000, 4096, [], seq=0)  # rtt = 100us
        assert before < path.srtt_ns < 100_000


class TestCrcAggregation:
    def test_xor_aggregate_detects_any_single_corruption(self):
        crcs = [0x11111111, 0x22222222, 0x33333333]
        agg = CrcAggregator()
        assert agg.check(crcs, list(crcs)).ok
        bad = list(crcs)
        bad[1] ^= 0x40
        assert not agg.check(bad, crcs).ok
        assert agg.mismatches == 1

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CrcAggregator().check([1, 2], [1])

    @given(st.lists(st.binary(min_size=64, max_size=64), min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_payload_identity_property(self, blocks):
        # CRC_raw(A ^ B ^ ...) == CRC_raw(A) ^ CRC_raw(B) ^ ... (§4.5)
        assert aggregate_payload_check(blocks, [crc32_raw(b) for b in blocks])

    def test_payload_identity_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            aggregate_payload_check([b"ab", b"abc"], [0, 0])

    def test_segment_level_check(self):
        import zlib

        blocks = [bytes([i]) * 256 for i in range(4)]
        agg = CrcAggregator()
        expected = zlib.crc32(b"".join(blocks))
        assert agg.check_segment([crc32(b) for b in blocks], 256, expected)
        assert not agg.check_segment([crc32(b) for b in blocks], 256, expected ^ 1)

    def test_localize_finds_corrupted_block(self):
        blocks = [bytes([i]) * 128 for i in range(4)]
        crcs = [crc32(b) for b in blocks]
        corrupted = list(blocks)
        corrupted[2] = b"\xff" + corrupted[2][1:]
        agg = CrcAggregator()
        assert agg.localize(corrupted, crcs) == [2]

    def test_check_cost_is_lightweight(self):
        agg = CrcAggregator()
        # Aggregate check over a 64-block I/O costs ~2us of CPU,
        # vs ~90us to CRC 64 x 4KB in software.
        assert agg.check_cost_ns(64) < 3_000
        assert agg.recompute_cost_ns(64 * 4096) > 50_000

    def test_xor_aggregate_helper(self):
        assert xor_aggregate([0xF0F0, 0x0F0F]) == 0xFFFF
        assert xor_aggregate([]) == 0


class TestPathRotation:
    """Path re-keying: the escape hatch for shared failure points."""

    def _manager(self):
        sim = Simulator(seed=3)
        return sim, MultipathManager(sim, DEFAULT.solar, 16_000, 9000, 25.0,
                                     num_paths=2)

    def test_rotation_assigns_fresh_port(self):
        sim, m = self._manager()
        path = m.paths[0]
        old_port = path.path_id
        for _ in range(DEFAULT.solar.path_failure_timeouts):
            m.on_timeout(path, 4096)
        assert path.path_id != old_port
        assert m.path_rotations == 1
        # Ports never collide with live paths.
        assert path.path_id not in {p.path_id for p in m.paths if p is not path}

    def test_rotation_resets_transport_state(self):
        sim, m = self._manager()
        path = m.paths[0]
        path.inflight_bytes = 99_999
        path.outstanding[7] = object()
        path.next_seq = 42
        for _ in range(DEFAULT.solar.path_failure_timeouts):
            m.on_timeout(path, 4096)
        assert path.inflight_bytes == 0
        assert path.outstanding == {}
        assert path.next_seq == 0
        assert path.srtt_ns == float(m.base_rtt_ns)

    def test_rotated_path_usable_after_brief_backoff(self):
        sim, m = self._manager()
        path = m.paths[0]
        for _ in range(DEFAULT.solar.path_failure_timeouts):
            m.on_timeout(path, 4096)
        assert not path.healthy(sim.now)
        sim.run(until=sim.now + DEFAULT.solar.min_rto_ns + 1)
        assert path.healthy(sim.now)  # far sooner than full probation

    def test_rotation_can_be_disabled(self):
        from dataclasses import replace

        sim = Simulator(seed=3)
        profile = replace(DEFAULT.solar, rotate_failed_paths=False)
        m = MultipathManager(sim, profile, 16_000, 9000, 25.0, num_paths=2)
        path = m.paths[0]
        old_port = path.path_id
        for _ in range(profile.path_failure_timeouts):
            m.on_timeout(path, 4096)
        assert path.path_id == old_port
        assert not path.healthy(sim.now)
        # Benched for the full probation window instead.
        sim.run(until=sim.now + profile.min_rto_ns + 1)
        assert not path.healthy(sim.now)
