"""Tests for the repro.control cluster control plane."""

import pytest

from repro.control import (
    ControlledCluster,
    FailoverOrchestrator,
    HEARTBEAT_LOSS,
    HealthMonitor,
    HealthPolicy,
    IO_HANG,
    LiveMigration,
    MigrationAbortedError,
    RollingUpgradeEngine,
    analytic_share_trend,
    check_rollout_consistency,
    execute_upgrade_point,
    partition_waves,
)
from repro.control.drill import artifact_to_result, build_cluster
from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.ebs.evolution import DEFAULT_ROLLOUT, QUARTERS
from repro.ebs.virtual_disk import VdStateError
from repro.faults import IoHangMonitor
from repro.lab.spec import ExperimentSpec, UpgradeSpec, canonical_json
from repro.sim import MS, SECOND, Simulator


def small_deployment(stack="luna", seed=7, **kw):
    return EbsDeployment(DeploymentSpec(stack=stack, seed=seed, **kw))


def drill_spec(**upgrade_kw) -> ExperimentSpec:
    defaults = dict(from_stack="kernel", to_stack="luna", servers=4, waves=2)
    defaults.update(upgrade_kw)
    return ExperimentSpec(
        name="test-drill", upgrade=UpgradeSpec(**defaults), seeds=(0, 1), vd_size_mb=32
    )


# ----------------------------------------------------------------------
# DEFAULT_ROLLOUT properties (the analytic table the drill validates
# against)
# ----------------------------------------------------------------------
class TestRolloutTable:
    def test_quarters_sum_to_one(self):
        for quarter in QUARTERS:
            assert sum(DEFAULT_ROLLOUT[quarter].values()) == pytest.approx(1.0)

    def test_kernel_share_monotone_non_increasing(self):
        kernel = analytic_share_trend("kernel")
        assert all(a >= b for a, b in zip(kernel, kernel[1:]))
        assert kernel[-1] == 0.0

    def test_userspace_stacks_never_regress(self):
        # LUNA+SOLAR combined only ever grows: upgrades move servers off
        # the kernel stack, never back onto it.
        luna = analytic_share_trend("luna")
        solar = analytic_share_trend("solar")
        combined = [a + b for a, b in zip(luna, solar)]
        assert all(a <= b + 1e-9 for a, b in zip(combined, combined[1:]))
        # SOLAR alone also never regresses.
        assert all(a <= b + 1e-9 for a, b in zip(solar, solar[1:]))

    def test_simulated_terminal_mix_matches_analytic_kernel_retirement(self):
        # The analytic table retires the kernel stack by 21Q1; a simulated
        # kernel->solar rollout must land on the same terminal state.
        spec = ExperimentSpec(
            name="terminal",
            upgrade=UpgradeSpec(from_stack="kernel", to_stack="solar",
                                servers=4, waves=2),
            seeds=(0,),
            vd_size_mb=32,
        )
        artifact = execute_upgrade_point(spec, 0)
        terminal = artifact["waves"][-1]["mix"]
        assert terminal["kernel"] == analytic_share_trend("kernel")[-1] == 0.0
        assert terminal["solar"] == 1.0


# ----------------------------------------------------------------------
# Health monitor
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def test_declares_after_miss_threshold(self):
        sim = Simulator(seed=1)
        policy = HealthPolicy(heartbeat_interval_ns=10 * MS, miss_threshold=3)
        monitor = HealthMonitor(sim, policy)
        alive = [True]
        monitor.register("node-a", lambda: alive[0])
        sim.schedule_at(25 * MS, lambda: alive.__setitem__(0, False))
        monitor.start(until_ns=200 * MS)
        sim.run()
        incidents = monitor.incidents_of(HEARTBEAT_LOSS)
        assert [i.node for i in incidents] == ["node-a"]
        # Dies between sweeps 2 and 3; misses at 30/40/50ms -> declared at
        # the third missed heartbeat.
        assert incidents[0].detected_ns == 50 * MS

    def test_recovery_resolves_incident(self):
        sim = Simulator(seed=1)
        monitor = HealthMonitor(
            sim, HealthPolicy(heartbeat_interval_ns=10 * MS, miss_threshold=2)
        )
        alive = [False]
        monitor.register("node-a", lambda: alive[0])
        sim.schedule_at(45 * MS, lambda: alive.__setitem__(0, True))
        monitor.start(until_ns=100 * MS)
        sim.run()
        incidents = monitor.incidents_of(HEARTBEAT_LOSS)
        assert len(incidents) == 1
        assert incidents[0].resolved_ns == 50 * MS
        assert not monitor.open_incidents()

    def test_duplicate_probe_rejected(self):
        monitor = HealthMonitor(Simulator(), HealthPolicy())
        monitor.register("n", lambda: True)
        with pytest.raises(ValueError):
            monitor.register("n", lambda: True)

    def test_double_start_rejected(self):
        sim = Simulator()
        monitor = HealthMonitor(sim, HealthPolicy())
        monitor.start(until_ns=1 * MS)
        with pytest.raises(RuntimeError):
            monitor.start(until_ns=1 * MS)

    def test_hang_reports_become_incidents(self):
        dep = small_deployment()
        monitor = HealthMonitor(dep.sim, HealthPolicy())
        hang_mon = IoHangMonitor(
            dep.sim, threshold_ns=10 * MS, on_hang=monitor.report_hang
        )
        # An I/O that never completes: watch a request we never submit.
        from repro.agent.base import IoRequest

        io = IoRequest("write", "vd0", 0, 4096, lambda io: None)
        hang_mon.watch(io)
        dep.sim.run()
        assert hang_mon.hangs == 1
        assert len(monitor.incidents_of(IO_HANG)) == 1

    def test_subscriber_sees_incident(self):
        sim = Simulator()
        monitor = HealthMonitor(
            sim, HealthPolicy(heartbeat_interval_ns=MS, miss_threshold=1)
        )
        seen = []
        monitor.subscribe(seen.append)
        monitor.register("dead", lambda: False)
        monitor.start(until_ns=5 * MS)
        sim.run()
        assert seen and seen[0].node == "dead"


# ----------------------------------------------------------------------
# Failover orchestration
# ----------------------------------------------------------------------
class TestFailover:
    def _kill(self, dep, name):
        host = dep.topology.hosts[name]
        for channel in host.uplinks:
            channel.up = False

    def test_evacuates_dead_storage_server(self):
        dep = small_deployment()
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 64 * 1024 * 1024)
        monitor = HealthMonitor(dep.sim, HealthPolicy())
        orch = FailoverOrchestrator(dep, monitor)
        orch.watch_storage()
        victim = sorted(dep.storage_servers)[0]
        before = len(dep.segment_table.segments_on(victim))
        assert before > 0
        dep.sim.schedule_at(50 * MS, self._kill, dep, victim)
        monitor.start(until_ns=1 * SECOND)
        dep.sim.run()

        assert len(orch.records) == 1
        record = orch.records[0]
        assert record.node == victim
        assert record.segments_moved == before
        assert record.recovery_ns == 50 * MS  # the reroute delay
        assert dep.segment_table.segments_on(victim) == []
        assert "vd0" in record.vds_touched

    def test_io_succeeds_after_recovery(self):
        dep = small_deployment(stack="solar")
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 64 * 1024 * 1024)
        monitor = HealthMonitor(dep.sim, HealthPolicy())
        orch = FailoverOrchestrator(dep, monitor)
        orch.watch_storage()
        victim = sorted(dep.storage_servers)[0]
        dep.sim.schedule_at(10 * MS, self._kill, dep, victim)
        monitor.start(until_ns=1 * SECOND)
        done = []

        def late_io():
            # Issued well after the evacuation completed: must route to a
            # healthy replacement even on SOLAR's hardware tables.
            for i in range(16):
                vd.write(i * 4096 * 64, 4096, done.append)

        dep.sim.schedule_at(600 * MS, late_io)
        dep.sim.run()
        assert orch.records and orch.records[0].node == victim
        assert len(done) == 16
        assert all(io.trace is not None and io.trace.ok for io in done)

    def test_ignores_non_storage_incidents(self):
        dep = small_deployment()
        monitor = HealthMonitor(dep.sim, HealthPolicy())
        orch = FailoverOrchestrator(dep, monitor)
        monitor.declare(HEARTBEAT_LOSS, "not-a-storage-server", "test")
        dep.sim.run()
        assert orch.records == []

    def test_one_evacuation_per_node(self):
        dep = small_deployment()
        monitor = HealthMonitor(dep.sim, HealthPolicy())
        orch = FailoverOrchestrator(dep, monitor)
        victim = sorted(dep.storage_servers)[0]
        self._kill(dep, victim)
        monitor.declare(HEARTBEAT_LOSS, victim, "test")
        monitor.declare(HEARTBEAT_LOSS, victim, "test again")
        dep.sim.run()
        assert len(orch.records) == 1


# ----------------------------------------------------------------------
# VD pause/drain/detach + live migration
# ----------------------------------------------------------------------
class TestVdLifecycle:
    def test_paused_vd_rejects_io(self):
        dep = small_deployment()
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 32 * 1024 * 1024)
        vd.pause()
        with pytest.raises(VdStateError):
            vd.write(0, 4096, lambda io: None)
        vd.resume()
        done = []
        vd.write(0, 4096, done.append)
        dep.sim.run()
        assert done and done[0].trace.ok

    def test_detached_vd_cannot_resume(self):
        dep = small_deployment()
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 32 * 1024 * 1024)
        vd.detach()
        with pytest.raises(VdStateError):
            vd.resume()

    def test_when_drained_waits_for_inflight(self):
        dep = small_deployment()
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 32 * 1024 * 1024)
        drained_at = []
        completions = []
        vd.write(0, 4096, completions.append)
        assert len(vd.inflight) == 1
        vd.pause()
        vd.when_drained(lambda: drained_at.append(dep.sim.now))
        dep.sim.run()
        assert len(completions) == 1
        # Drain fires only once the in-flight I/O has fully completed.
        assert len(drained_at) == 1
        assert drained_at[0] >= completions[0].trace.complete_ns
        assert not vd.inflight

    def test_when_drained_fires_immediately_if_idle(self):
        dep = small_deployment()
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 32 * 1024 * 1024)
        fired = []
        vd.when_drained(lambda: fired.append(True))
        dep.sim.run()
        assert fired == [True]


class TestLiveMigration:
    def test_cross_stack_migration_phases(self):
        sim = Simulator(seed=3)
        src = EbsDeployment(DeploymentSpec(stack="kernel", seed=3), sim=sim)
        dst = EbsDeployment(DeploymentSpec(stack="solar", seed=3), sim=sim)
        vd = VirtualDisk(src, "vd0", src.compute_host_names()[0], 32 * 1024 * 1024)
        migrator = LiveMigration(sim)
        finished = []
        vd.write(0, 4096, lambda io: None)  # in flight at pause time
        report = migrator.migrate(
            vd, dst, dst.compute_host_names()[0],
            lambda new_vd, rep: finished.append((new_vd, rep)),
        )
        assert report.inflight_at_pause == 1
        sim.run()
        assert migrator.completed == 1
        new_vd, rep = finished[0]
        assert rep.source_stack == "kernel" and rep.target_stack == "solar"
        assert rep.started_ns <= rep.drained_ns < rep.attached_ns
        assert rep.attach_ns == migrator.attach_latency_ns
        assert rep.downtime_ns == rep.drain_ns + rep.attach_ns
        assert rep.phase_ns() == {
            "pause": 0, "drain": rep.drain_ns, "attach": rep.attach_ns
        }
        # The old attachment is gone; the new one serves I/O on SOLAR.
        assert vd.detached
        done = []
        new_vd.write(4096, 4096, done.append)
        sim.run()
        assert done and done[0].trace.ok

    def test_migrating_detached_vd_rejected(self):
        dep = small_deployment()
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 32 * 1024 * 1024)
        vd.detach()
        migrator = LiveMigration(dep.sim)
        with pytest.raises(ValueError):
            migrator.migrate(vd, dep, dep.compute_host_names()[0], lambda v, r: None)

    def test_unknown_target_host_rejected(self):
        dep = small_deployment()
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 32 * 1024 * 1024)
        migrator = LiveMigration(dep.sim)
        with pytest.raises(KeyError):
            migrator.migrate(vd, dep, "no/such/host", lambda v, r: None)


# ----------------------------------------------------------------------
# Controlled cluster + rolling upgrade engine
# ----------------------------------------------------------------------
class TestPartitionWaves:
    def test_contiguous_and_exhaustive(self):
        cluster = ControlledCluster(["kernel"], servers=5, seed=0)
        groups = partition_waves(cluster.servers, 2)
        assert [len(g) for g in groups] == [3, 2]
        flat = [s.index for g in groups for s in g]
        assert flat == [0, 1, 2, 3, 4]

    def test_bad_wave_count_rejected(self):
        cluster = ControlledCluster(["kernel"], servers=2, seed=0)
        with pytest.raises(ValueError):
            partition_waves(cluster.servers, 3)


class TestUpgradeEngine:
    def test_small_drill_shape(self):
        spec = drill_spec()
        cluster = build_cluster(spec, seed=0)
        result = RollingUpgradeEngine(cluster, spec.upgrade).run()
        plan = spec.upgrade

        assert len(result.waves) == plan.total_waves
        assert [w.kind for w in result.waves] == (
            ["baseline"] + ["upgrade"] * 2 + ["settle"]
        )
        assert result.waves[0].mix == {"kernel": 1.0, "luna": 0.0}
        assert result.terminal_mix() == {"kernel": 0.0, "luna": 1.0}
        assert result.hangs == 0
        assert result.failed == 0
        assert result.migrations == plan.servers
        # Migration downtime shows up as sub-100% availability exactly in
        # the upgrade waves.
        for w in result.waves:
            if w.kind == "upgrade":
                assert w.availability < 1.0
            else:
                assert w.availability == 1.0
        assert check_rollout_consistency(result) == []

    def test_latency_improves_monotonically(self):
        spec = drill_spec(servers=6, waves=3)
        cluster = build_cluster(spec, seed=1)
        result = RollingUpgradeEngine(cluster, spec.upgrade).run()
        lats = result.latency_curve_ns()
        assert all(b <= a * 1.02 for a, b in zip(lats, lats[1:]))
        assert lats[-1] < lats[0]

    def test_engine_validates_plan_against_cluster(self):
        spec = drill_spec()
        cluster = ControlledCluster(["kernel", "luna"], servers=3, seed=0)
        with pytest.raises(ValueError):
            RollingUpgradeEngine(cluster, spec.upgrade)  # 3 != 4 servers
        cluster2 = ControlledCluster(["kernel"], servers=4, seed=0)
        with pytest.raises(ValueError):
            RollingUpgradeEngine(cluster2, spec.upgrade)  # luna missing

    def test_cluster_rejects_unknown_stack(self):
        with pytest.raises(ValueError):
            ControlledCluster(["tcp"], servers=2)

    def test_cluster_load_cannot_start_twice(self):
        cluster = ControlledCluster(["kernel"], servers=1, seed=0)
        cluster.start_load(until_ns=1 * MS)
        with pytest.raises(RuntimeError):
            cluster.start_load(until_ns=1 * MS)


class TestDrillDeterminism:
    def test_artifact_bytes_stable_across_runs(self):
        spec = drill_spec()
        a = canonical_json(execute_upgrade_point(spec, 0))
        b = canonical_json(execute_upgrade_point(spec, 0))
        assert a == b

    def test_sweep_serial_vs_parallel_identical(self, tmp_path):
        from repro.lab.runner import run_sweep
        from repro.lab.store import ResultStore

        spec = drill_spec()
        serial = ResultStore(str(tmp_path / "serial"))
        parallel = ResultStore(str(tmp_path / "parallel"))
        run_sweep(spec, jobs=1, store=serial)
        run_sweep(spec, jobs=2, store=parallel)
        for _spec, _seed, digest in spec.points():
            assert serial.get(digest) is not None
            assert serial.get(digest) == parallel.get(digest)

    def test_artifact_roundtrips_to_result(self):
        spec = drill_spec()
        artifact = execute_upgrade_point(spec, 1)
        result = artifact_to_result(spec, artifact)
        assert result.completed == artifact["completed"]
        assert len(result.waves) == spec.upgrade.total_waves
        assert check_rollout_consistency(result) == []


# ----------------------------------------------------------------------
# Migration abort: a fault mid-drain surfaces a typed error instead of
# wedging the VD in a paused state forever
# ----------------------------------------------------------------------
class TestMigrationAbort:
    def _stranded_vd(self, dep):
        """A VD with one write that can never complete: every storage
        uplink is down before the I/O is issued."""
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 32 * 1024 * 1024)
        for name in dep.storage_servers:
            for channel in dep.topology.hosts[name].uplinks:
                channel.up = False
        vd.write(0, 4096, lambda io: None)
        assert vd.inflight
        return vd

    def test_invalid_drain_timeout_rejected(self):
        with pytest.raises(ValueError):
            LiveMigration(Simulator(), drain_timeout_ns=0)
        with pytest.raises(ValueError):
            LiveMigration(Simulator(), drain_timeout_ns=-5)

    def test_timeout_raises_typed_error_without_handler(self):
        dep = small_deployment()
        vd = self._stranded_vd(dep)
        migrator = LiveMigration(dep.sim, drain_timeout_ns=20 * MS)
        report = migrator.migrate(
            vd, dep, dep.compute_host_names()[0], lambda v, r: None
        )
        with pytest.raises(MigrationAbortedError):
            dep.sim.run()
        assert report.aborted
        assert migrator.aborted == 1 and migrator.completed == 0
        # MigrationAbortedError is a VdStateError, so existing callers
        # that guard VD lifecycle errors also catch aborts.
        assert issubclass(MigrationAbortedError, VdStateError)

    def test_abort_handler_fires_and_vd_resumes(self):
        dep = small_deployment()
        vd = self._stranded_vd(dep)
        migrator = LiveMigration(dep.sim, drain_timeout_ns=20 * MS)
        started = dep.sim.now
        aborts = []
        migrator.migrate(
            vd, dep, dep.compute_host_names()[0], lambda v, r: None,
            on_abort=lambda v, r: aborts.append(r),
        )
        dep.sim.run()
        assert len(aborts) == 1
        report = aborts[0]
        assert report.aborted and report.aborted_ns == started + 20 * MS
        # The abort un-wedges the VD: it is resumed, not paused/detached,
        # and serves I/O again once the fault clears.
        assert not vd.paused and not vd.detached
        for name in dep.storage_servers:
            for channel in dep.topology.hosts[name].uplinks:
                channel.up = True
        done = []
        vd.write(4096, 4096, done.append)
        dep.sim.run()
        assert done and done[0].trace.ok

    def test_clean_migration_unaffected_by_timeout(self):
        sim = Simulator(seed=3)
        src = EbsDeployment(DeploymentSpec(stack="kernel", seed=3), sim=sim)
        dst = EbsDeployment(DeploymentSpec(stack="solar", seed=3), sim=sim)
        vd = VirtualDisk(src, "vd0", src.compute_host_names()[0], 32 * 1024 * 1024)
        migrator = LiveMigration(sim, drain_timeout_ns=200 * MS)
        finished = []
        vd.write(0, 4096, lambda io: None)
        migrator.migrate(
            vd, dst, dst.compute_host_names()[0],
            lambda new_vd, rep: finished.append(rep),
        )
        sim.run()
        assert migrator.completed == 1 and migrator.aborted == 0
        assert finished and not finished[0].aborted


# ----------------------------------------------------------------------
# Health monitor: overlapping faults on the same node
# ----------------------------------------------------------------------
class TestOverlappingIncidents:
    def test_heartbeat_and_hang_incidents_resolve_independently(self):
        from repro.agent.base import IoRequest

        sim = Simulator(seed=1)
        monitor = HealthMonitor(
            sim, HealthPolicy(heartbeat_interval_ns=10 * MS, miss_threshold=2)
        )
        alive = [True]
        monitor.register("node-a", lambda: alive[0])
        hang_mon = IoHangMonitor(
            sim, threshold_ns=5 * MS, on_hang=monitor.report_hang
        )
        # Two overlapping faults on the same node: a hung I/O (declared
        # at 5ms) and a heartbeat loss (node dies at 12ms, declared at
        # 30ms after two misses).
        io = IoRequest("write", "node-a", 0, 4096, lambda io: None)
        hang_mon.watch(io)
        sim.schedule_at(12 * MS, lambda: alive.__setitem__(0, False))
        # Causes clear at different times: the I/O answers at 40ms, the
        # node recovers at 55ms.
        sim.schedule_at(40 * MS, monitor.note_io_completed, io)
        sim.schedule_at(55 * MS, lambda: alive.__setitem__(0, True))
        monitor.start(until_ns=100 * MS)
        sim.run()

        hangs = monitor.incidents_of(IO_HANG)
        losses = monitor.incidents_of(HEARTBEAT_LOSS)
        assert [i.node for i in hangs] == ["node-a"]
        assert [i.node for i in losses] == ["node-a"]
        # Each incident resolved when *its* cause cleared, not when the
        # other one's did.
        assert hangs[0].resolved_ns == 40 * MS
        assert losses[0].resolved_ns == 60 * MS  # first healthy sweep
        assert not monitor.open_incidents()
        assert monitor.open_hangs() == {}

    def test_completion_without_hang_is_noop(self):
        from repro.agent.base import IoRequest

        sim = Simulator()
        monitor = HealthMonitor(sim, HealthPolicy())
        io = IoRequest("write", "vd0", 0, 4096, lambda io: None)
        monitor.note_io_completed(io)  # never hung: must not raise
        assert monitor.incidents == []

    def test_resolve_is_idempotent_and_stampable(self):
        sim = Simulator()
        monitor = HealthMonitor(sim, HealthPolicy())
        resolved = []
        monitor.subscribe_resolved(resolved.append)
        incident = monitor.declare(HEARTBEAT_LOSS, "node-a", "test")
        monitor.resolve(incident, at_ns=7 * MS)
        monitor.resolve(incident, at_ns=9 * MS)  # second call: no-op
        assert incident.resolved_ns == 7 * MS
        assert len(resolved) == 1


# ----------------------------------------------------------------------
# Failover: per-stack probe prefixes + quarantine lift on recovery
# ----------------------------------------------------------------------
class TestFailoverScoping:
    def _kill(self, dep, name, up=False):
        for channel in dep.topology.hosts[name].uplinks:
            channel.up = up

    def test_node_prefix_scopes_incidents_to_one_deployment(self):
        sim = Simulator(seed=3)
        dep_a = EbsDeployment(DeploymentSpec(stack="luna", seed=3), sim=sim)
        dep_b = EbsDeployment(DeploymentSpec(stack="solar", seed=3), sim=sim)
        VirtualDisk(dep_a, "vd-a", dep_a.compute_host_names()[0], 32 * 1024 * 1024)
        VirtualDisk(dep_b, "vd-b", dep_b.compute_host_names()[0], 32 * 1024 * 1024)
        monitor = HealthMonitor(sim, HealthPolicy())
        orch_a = FailoverOrchestrator(dep_a, monitor, node_prefix="a/")
        orch_b = FailoverOrchestrator(dep_b, monitor, node_prefix="b/")
        orch_a.watch_storage()
        orch_b.watch_storage()
        victim = sorted(dep_a.storage_servers)[0]
        sim.schedule_at(50 * MS, self._kill, dep_a, victim)
        monitor.start(until_ns=1 * SECOND)
        sim.run()
        # The same host name exists in both deployments; only the one
        # registered under the "a/" prefix is actually dead.
        assert [r.node for r in orch_a.records] == [victim]
        assert orch_b.records == []
        assert dep_b.segment_table.evacuated == frozenset()

    def test_quarantine_lifts_when_node_recovers(self):
        dep = small_deployment()
        VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 64 * 1024 * 1024)
        monitor = HealthMonitor(dep.sim, HealthPolicy())
        orch = FailoverOrchestrator(dep, monitor)
        orch.watch_storage()
        victim = sorted(dep.storage_servers)[0]
        quarantined = []
        dep.sim.schedule_at(50 * MS, self._kill, dep, victim)
        dep.sim.schedule_at(
            400 * MS,
            lambda: quarantined.append(victim in dep.segment_table.evacuated),
        )
        dep.sim.schedule_at(500 * MS, self._kill, dep, victim, True)
        monitor.start(until_ns=1 * SECOND)
        dep.sim.run()
        assert len(orch.records) == 1
        # Dead: the victim was quarantined.  Recovered: the quarantine
        # lifted, so new provisions may use it again.
        assert quarantined == [True]
        assert victim not in dep.segment_table.evacuated
