"""Tests for packet capture, result export, and access patterns."""

import io
import json
import random

import pytest

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.metrics.export import (
    breakdown_to_json,
    latency_to_json,
    series_to_csv,
    traces_to_csv,
)
from repro.metrics.series import TimeSeries
from repro.metrics.stats import LatencyStats
from repro.net.capture import PacketCapture
from repro.profiles import BLOCK_SIZE
from repro.workloads.patterns import (
    SequentialPattern,
    StridedPattern,
    UniformPattern,
    ZipfianPattern,
)


def deployment_with_capture(stack="solar", seed=15):
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=seed))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 128 * 1024 * 1024)
    capture = PacketCapture(dep.sim)
    for host in dep.topology.hosts.values():
        capture.tap(host)
    return dep, vd, capture


class TestPacketCapture:
    def test_records_every_delivery(self):
        dep, vd, capture = deployment_with_capture()
        done = []
        vd.write(0, 4 * BLOCK_SIZE, done.append)
        dep.run()
        assert done[0].trace.ok
        # 4 data packets + 4 acks at minimum.
        assert len(capture) >= 8

    def test_filter_by_proto_and_port(self):
        dep, vd, capture = deployment_with_capture()
        done = []
        vd.write(0, 2 * BLOCK_SIZE, done.append)
        dep.run()
        from repro.core.solar import SERVER_PORT

        data = capture.filter(proto="solar", dport=SERVER_PORT)
        assert len(data) == 2  # exactly the two block packets
        assert all(r.size_bytes > BLOCK_SIZE for r in data)

    def test_flow_accounting(self):
        dep, vd, capture = deployment_with_capture()
        done = []
        vd.write(0, BLOCK_SIZE, done.append)
        dep.run()
        flows = capture.flows()
        assert flows
        total_pkts = sum(packets for packets, _bytes in flows.values())
        assert total_pkts == len(capture)

    def test_capture_does_not_change_behavior(self):
        plain = EbsDeployment(DeploymentSpec(stack="solar", seed=15))
        vd_p = VirtualDisk(plain, "vd0", plain.compute_host_names()[0],
                           128 * 1024 * 1024)
        done_p = []
        vd_p.write(0, BLOCK_SIZE, done_p.append)
        plain.run()

        dep, vd, _capture = deployment_with_capture(seed=15)
        done_c = []
        vd.write(0, BLOCK_SIZE, done_c.append)
        dep.run()
        assert done_p[0].trace.total_ns == done_c[0].trace.total_ns

    def test_truncation_flag(self):
        dep, vd, _ = deployment_with_capture()
        small = PacketCapture(dep.sim, max_records=2)
        for host in dep.topology.hosts.values():
            small.tap(host)
        done = []
        vd.write(0, 4 * BLOCK_SIZE, done.append)
        dep.run()
        assert len(small) == 2 and small.truncated

    def test_dump_renders(self):
        dep, vd, capture = deployment_with_capture()
        done = []
        vd.write(0, BLOCK_SIZE, done.append)
        dep.run()
        text = capture.dump(limit=3)
        assert "solar" in text

    def test_max_records_validated(self):
        dep, _vd, _c = deployment_with_capture()
        with pytest.raises(ValueError):
            PacketCapture(dep.sim, max_records=0)


class TestExport:
    def _collector(self):
        dep = EbsDeployment(DeploymentSpec(stack="luna", seed=16))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 64 * 1024 * 1024)
        done = []
        vd.write(0, BLOCK_SIZE, done.append)
        dep.run()
        vd.read(0, BLOCK_SIZE, done.append)
        dep.run()
        return dep.collector

    def test_traces_csv_round_trip(self):
        import csv

        collector = self._collector()
        buffer = io.StringIO()
        count = traces_to_csv(collector, buffer)
        assert count == 2
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert {r["kind"] for r in rows} == {"read", "write"}
        assert all(int(r["total_ns"]) > 0 for r in rows)

    def test_latency_json(self):
        stats = LatencyStats("x")
        stats.extend([1_000, 2_000, 3_000])
        buffer = io.StringIO()
        latency_to_json({"x": stats}, buffer)
        payload = json.loads(buffer.getvalue())
        assert payload["x"]["count"] == 3
        assert payload["x"]["p50_us"] == 2.0

    def test_series_csv(self):
        series = TimeSeries("iops", bucket_ns=1_000)
        series.add(100)
        series.add(1_500)
        buffer = io.StringIO()
        assert series_to_csv(series, buffer) == 2

    def test_breakdown_json(self):
        collector = self._collector()
        buffer = io.StringIO()
        breakdown_to_json(collector, buffer)
        payload = json.loads(buffer.getvalue())
        assert set(payload) == {"read", "write"}
        assert payload["write"]["p50"]["fn"] > 0


class TestPatterns:
    DISK = 64 * 1024 * 1024

    def test_sequential_is_monotonic_then_wraps(self):
        pattern = SequentialPattern(self.DISK)
        offsets = [pattern.next_offset(BLOCK_SIZE) for _ in range(5)]
        assert offsets == [i * BLOCK_SIZE for i in range(5)]
        pattern_end = SequentialPattern(self.DISK, start_offset=self.DISK - BLOCK_SIZE)
        assert pattern_end.next_offset(BLOCK_SIZE) == self.DISK - BLOCK_SIZE
        assert pattern_end.next_offset(BLOCK_SIZE) == 0  # wrapped

    def test_uniform_in_range_and_aligned(self):
        pattern = UniformPattern(self.DISK, random.Random(1))
        for _ in range(200):
            offset = pattern.next_offset(16 * 1024)
            assert offset % BLOCK_SIZE == 0
            assert 0 <= offset <= self.DISK - 16 * 1024

    def test_zipfian_is_skewed(self):
        pattern = ZipfianPattern(self.DISK, random.Random(2), theta=0.9)
        counts: dict = {}
        for _ in range(5_000):
            offset = pattern.next_offset(BLOCK_SIZE)
            counts[offset] = counts.get(offset, 0) + 1
        top = sorted(counts.values(), reverse=True)
        # The hottest block gets far more than a uniform share.
        assert top[0] > 5_000 / len(counts) * 5

    def test_zipfian_validation(self):
        with pytest.raises(ValueError):
            ZipfianPattern(self.DISK, random.Random(1), theta=1.5)

    def test_strided_steps_by_stride(self):
        pattern = StridedPattern(self.DISK, stride_blocks=4)
        a = pattern.next_offset(BLOCK_SIZE)
        b = pattern.next_offset(BLOCK_SIZE)
        assert b - a == 4 * BLOCK_SIZE

    def test_io_too_large_rejected(self):
        pattern = UniformPattern(BLOCK_SIZE, random.Random(1))
        with pytest.raises(ValueError):
            pattern.next_offset(2 * BLOCK_SIZE)
