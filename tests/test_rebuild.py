"""Tests for the repro.rebuild re-replication subsystem."""

import dataclasses
import json

import pytest

from repro.control.health import HealthMonitor, HealthPolicy
from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.lab.spec import (
    ExperimentSpec,
    RebuildSpec,
    WorkloadSpec,
    canonical_json,
)
from repro.net.failures import node_failure
from repro.rebuild import (
    REBUILD_STUCK,
    DeadlinePolicy,
    ReactivePolicy,
    RebuildExecutor,
    RebuildPlanner,
    StaticCapPolicy,
    make_policy,
)
from repro.rebuild.drill import execute_rebuild_point
from repro.sim import MS


def small_deployment(stack="luna", seed=7):
    return EbsDeployment(DeploymentSpec(stack=stack, seed=seed))


def storm_fixture(replicas=3, swarm=False, policy=None, monitor=None,
                  vd_mb=4, seed=7):
    """Deployment + VD + executor + planner, ready to kill a node."""
    dep = small_deployment(seed=seed)
    vd = VirtualDisk(
        dep, "vd0", dep.compute_host_names()[0], vd_mb * 1024 * 1024,
        replicas=replicas,
    )
    executor = RebuildExecutor(
        dep, policy or StaticCapPolicy(rate_bps=20e9),
        swarm=swarm, chunk_bytes=128 * 1024,
    )
    planner = RebuildPlanner(dep, executor, monitor=monitor)
    return dep, vd, executor, planner


def pick_victim(dep):
    """A storage node that actually holds chunk replicas."""
    for name in sorted(dep.storage_servers):
        if dep.segment_table.segments_on(name):
            return name
    raise AssertionError("no storage node holds segments")


def kill(dep, planner, name, scenarios=None):
    """Topology death + control-plane notification, as failover would."""
    scenario = node_failure(name)
    scenario.apply(dep.topology)
    if scenarios is not None:
        scenarios[name] = scenario
    healthy = [
        s for s in sorted(dep.storage_servers)
        if s != name and s not in dep.segment_table.evacuated
    ]
    return planner.on_node_failure(name, healthy)


# ----------------------------------------------------------------------
# Planner + executor end to end
# ----------------------------------------------------------------------
class TestRebuildEndToEnd:
    def test_node_failure_rebuilds_all_lost_replicas(self):
        dep, vd, executor, planner = storm_fixture()
        victim = pick_victim(dep)
        lost = len(dep.segment_table.segments_on(victim))
        changed = kill(dep, planner, victim)
        assert sum(changed.values()) == lost
        assert planner.started == lost
        dep.run()
        ledger = planner.audit()
        assert ledger == {
            "started": lost, "completed": lost, "requeued": 0,
            "active": 0, "stalled": 0,
        }
        assert not dep.segment_table.rebuilding
        assert victim not in {
            r for seg in dep.segment_table.segments_of(vd.vd_id)
            for r in seg.replicas
        }
        assert executor.bytes_done == executor.bytes_planned > 0

    def test_rebuilt_data_matches_survivors(self):
        dep, vd, executor, planner = storm_fixture()
        payload = bytes(range(256)) * 16
        done = []
        vd.write(0, 4096, done.append, data=payload)
        dep.run()
        assert done and done[0].trace.ok
        victim = dep.segment_table.lookup(vd.vd_id, 0).replicas[0]
        kill(dep, planner, victim)
        dep.run()
        seg = dep.segment_table.lookup(vd.vd_id, 0)
        copies = [
            dep.chunk_servers[r].store.get((seg.segment_id, 0))
            for r in seg.replicas
        ]
        assert all(c is not None and c[0] == payload for c in copies)

    def test_recovery_ns_spans_plan_to_last_byte(self):
        dep, _vd, _executor, planner = storm_fixture()
        victim = pick_victim(dep)
        kill(dep, planner, victim)
        assert planner.recovery_ns() is None  # still copying
        dep.run()
        assert planner.recovery_ns() is not None and planner.recovery_ns() > 0

    def test_metadata_only_failure_completes_instantly(self):
        dep, _vd, _executor, planner = storm_fixture()
        # A node with no chunk replicas (block-server roles only, or
        # nothing at all) must not leave an open record.
        for name in sorted(dep.storage_servers):
            held = dep.segment_table.segments_on(name)
            if all(seg.block_server == name for _v, _i, seg in held):
                kill(dep, planner, name)
                assert not planner.busy
                return
        pytest.skip("every storage node holds chunk replicas in this layout")


# ----------------------------------------------------------------------
# Satellite: destination dies mid-rebuild -> transfers re-queued
# ----------------------------------------------------------------------
class TestDestinationDeath:
    def test_destination_death_requeues_in_flight_transfers(self):
        dep, _vd, executor, planner = storm_fixture()
        victim = pick_victim(dep)
        kill(dep, planner, victim)
        started = planner.started
        # Let the storm get some chunks in flight, then kill one of the
        # pending destinations mid-copy.
        dep.run(until_ns=dep.sim.now + 100_000)
        rebuilding = dep.segment_table.rebuilding
        assert rebuilding, "no rebuild in flight to attack"
        dest = sorted(d for dests in rebuilding.values() for d in dests)[0]
        kill(dep, planner, dest)
        assert planner.requeued >= 1
        ledger = planner.audit()
        assert ledger["started"] == (
            ledger["completed"] + ledger["requeued"]
            + ledger["active"] + ledger["stalled"]
        )
        dep.run()
        final = planner.audit()
        assert final["active"] == final["stalled"] == 0
        assert final["completed"] == final["started"] - final["requeued"]
        assert final["started"] > started  # replacement transfers planned
        assert not dep.segment_table.rebuilding
        # Neither dead node may appear in any membership.
        for seg in dep.segment_table.segments_of("vd0"):
            assert victim not in seg.replicas and dest not in seg.replicas

    def test_requeued_item_never_sources_from_partial_destination(self):
        dep, _vd, _executor, planner = storm_fixture()
        victim = pick_victim(dep)
        kill(dep, planner, victim)
        dep.run(until_ns=dep.sim.now + 100_000)
        rebuilding = dep.segment_table.rebuilding
        dest = sorted(d for dests in rebuilding.values() for d in dests)[0]
        kill(dep, planner, dest)
        dep.run()
        # The dead destination held only partial bytes; had it been used
        # as a source the rebuilt copies would be incomplete and the
        # ledger could not have fully completed.
        final = planner.audit()
        assert final["completed"] + final["requeued"] == final["started"]


# ----------------------------------------------------------------------
# Satellite: zero survivors -> typed incident, then recovery
# ----------------------------------------------------------------------
class TestUnrecoverableSegments:
    def test_zero_survivors_declares_typed_incident_not_hang(self):
        dep, vd, executor, planner = storm_fixture(replicas=2)
        monitor = HealthMonitor(dep.sim, HealthPolicy())
        planner.monitor = monitor
        seg = dep.segment_table.lookup(vd.vd_id, 0)
        first, second = seg.replicas[0], seg.replicas[1]
        kill(dep, planner, first)
        # Kill the sole surviving holder before (or while) it seeds.
        kill(dep, planner, second)
        dep.run()
        assert planner.stalled_count >= 1
        stuck = monitor.incidents_of(REBUILD_STUCK)
        assert stuck and all(i.open for i in stuck)
        ledger = planner.audit()
        assert ledger["started"] == (
            ledger["completed"] + ledger["requeued"]
            + ledger["active"] + ledger["stalled"]
        )

    def test_rejoined_holder_unstalls_and_resolves_incident(self):
        dep, vd, executor, planner = storm_fixture(replicas=2)
        monitor = HealthMonitor(dep.sim, HealthPolicy())
        planner.monitor = monitor
        seg = dep.segment_table.lookup(vd.vd_id, 0)
        first, second = seg.replicas[0], seg.replicas[1]
        scenarios = {}
        kill(dep, planner, first, scenarios)
        kill(dep, planner, second, scenarios)
        dep.run()
        assert planner.stalled_count >= 1
        # The second node rejoins: its chunk store survived the outage.
        scenarios[second].revert(dep.topology)
        dep.segment_table.restore(second)
        retried = planner.on_node_recovered(second)
        assert retried >= 1
        dep.run()
        assert planner.stalled_count == 0
        assert all(not i.open for i in monitor.incidents_of(REBUILD_STUCK))
        final = planner.audit()
        assert final["completed"] + final["requeued"] == final["started"]

    def test_executor_rejects_sourceless_transfer(self):
        dep, _vd, executor, _planner = storm_fixture()
        from repro.rebuild import RebuildTransfer

        with pytest.raises(ValueError):
            executor.start(RebuildTransfer(
                transfer_id=1, vd_id="vd0", segment_id="s", start_lba=0,
                num_blocks=1, destination="d", sources=(), planned_ns=0,
            ))


# ----------------------------------------------------------------------
# Throttle policies
# ----------------------------------------------------------------------
class TestThrottlePolicies:
    def test_static_cap_is_flat(self):
        policy = StaticCapPolicy(rate_bps=5e9)
        assert policy.rate_bps(0, 10**9) == 5e9
        assert policy.rate_bps(10**12, 1) == 5e9

    def test_deadline_paces_to_remaining_window(self):
        policy = DeadlinePolicy(deadline_ns=10 * MS, max_rate_bps=64e9)
        policy.on_plan(0, 10 * 1024 * 1024)
        need = policy.rate_bps(0, 10 * 1024 * 1024)
        assert need == pytest.approx(10 * 1024 * 1024 * 8 * 1e9 / (10 * MS))
        # Half the bytes gone at half time: required rate unchanged.
        assert policy.rate_bps(5 * MS, 5 * 1024 * 1024) == pytest.approx(need)
        assert not policy.deadline_missed

    def test_deadline_shorter_than_min_transfer_clamps_and_flags(self):
        # 10MB in 1us needs 80 Pbit/s; the policy must clamp at the
        # ceiling and flag the miss instead of exploding the rate.
        policy = DeadlinePolicy(deadline_ns=1_000, max_rate_bps=64e9)
        policy.on_plan(0, 10 * 1024 * 1024)
        assert policy.rate_bps(0, 10 * 1024 * 1024) == 64e9
        assert policy.deadline_missed
        # Past the deadline with work remaining: still the ceiling.
        assert policy.rate_bps(5_000, 1024) == 64e9

    def test_deadline_infeasible_drill_still_completes(self):
        art = run_drill("deadline", "unicast", deadline_ms=1)
        rb = art["rebuild"]
        assert rb["complete"]
        assert rb["policy"]["deadline_missed"] is True
        assert rb["recovery_ns"] > 1 * MS

    def test_reactive_idle_windows_are_additive_increase(self):
        policy = ReactivePolicy(
            target_p99_ns=500_000, max_rate_bps=8e9,
            start_rate_bps=1e9, increase_bps=1e9,
        )
        for _ in range(20):
            policy.observe_window(None)  # empty sketch window: no p99
        assert policy.rate_bps(0, 1) == 8e9  # ramped to ceiling, no error
        assert policy.windows_observed == 20
        assert policy.backoffs == 0

    def test_reactive_backs_off_multiplicatively_and_floors(self):
        policy = ReactivePolicy(
            target_p99_ns=500_000, min_rate_bps=1e9, max_rate_bps=8e9,
            start_rate_bps=8e9,
        )
        policy.observe_window(1_000_000.0)
        assert policy.rate_bps(0, 1) == 4e9
        for _ in range(10):
            policy.observe_window(1_000_000.0)
        assert policy.rate_bps(0, 1) == 1e9  # floored, never zero
        assert policy.backoffs == 11

    def test_make_policy_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("bittorrent")


# ----------------------------------------------------------------------
# Swarm vs unicast
# ----------------------------------------------------------------------
def run_drill(policy, mode, replicas=4, rate_gbps=40.0, deadline_ms=2,
              seed=0):
    spec = ExperimentSpec(
        name=f"test-rebuild/{policy}/{mode}",
        workload=WorkloadSpec(mode="fio", runtime_ns=20 * MS),
        seeds=(seed,),
        vd_size_mb=8,
        rebuild=RebuildSpec(
            policy=policy, mode=mode, rate_gbps=rate_gbps,
            deadline_ms=deadline_ms, replicas=replicas,
            fail_at_ns=5 * MS, node_index=1,
        ),
    )
    return execute_rebuild_point(spec, seed)


class TestSwarmMode:
    def test_swarm_strictly_beats_unicast_with_three_seeds(self):
        uni = run_drill("static", "unicast")
        swarm = run_drill("static", "swarm")
        assert uni["rebuild"]["complete"] and swarm["rebuild"]["complete"]
        assert swarm["rebuild"]["recovery_ns"] < uni["rebuild"]["recovery_ns"]
        # Same work either way — swarm only changes who seeds it.
        assert (
            swarm["rebuild"]["bytes_rebuilt"] == uni["rebuild"]["bytes_rebuilt"]
        )


# ----------------------------------------------------------------------
# Lab integration: spec, digest, determinism
# ----------------------------------------------------------------------
class TestRebuildSpec:
    def test_roundtrip_preserves_digest(self):
        spec = ExperimentSpec(
            name="t", seeds=(0,),
            rebuild=RebuildSpec(policy="deadline", mode="swarm"),
        )
        again = ExperimentSpec.from_dict(json.loads(
            canonical_json(spec.to_dict()).decode()
        ))
        assert again.rebuild == spec.rebuild
        assert again.point_digest(0) == spec.point_digest(0)

    def test_rebuild_changes_digest(self):
        base = ExperimentSpec(name="t", seeds=(0,))
        with_rebuild = dataclasses.replace(base, rebuild=RebuildSpec())
        assert base.point_digest(0) != with_rebuild.point_digest(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RebuildSpec(policy="torrent")
        with pytest.raises(ValueError):
            RebuildSpec(mode="broadcast")
        with pytest.raises(ValueError):
            RebuildSpec(replicas=1)
        with pytest.raises(ValueError):
            RebuildSpec(rate_gbps=0)
        with pytest.raises(ValueError):
            RebuildSpec(chunk_kb=3)

    def test_rebuild_excludes_upgrade(self):
        from repro.lab.spec import UpgradeSpec

        with pytest.raises(ValueError):
            ExperimentSpec(
                name="t", seeds=(0,),
                rebuild=RebuildSpec(),
                upgrade=UpgradeSpec(from_stack="kernel", to_stack="luna"),
            )

    def test_artifact_byte_identical_across_runs(self):
        a = canonical_json(run_drill("static", "unicast", seed=3))
        b = canonical_json(run_drill("static", "unicast", seed=3))
        assert a == b

    def test_runner_dispatches_rebuild_points(self):
        from repro.lab.runner import execute_point

        spec = ExperimentSpec(
            name="t-dispatch",
            workload=WorkloadSpec(mode="fio", runtime_ns=10 * MS),
            seeds=(0,), vd_size_mb=8,
            rebuild=RebuildSpec(node_index=1, fail_at_ns=2 * MS),
        )
        art = execute_point(spec, 0)
        assert art["workload_mode"] == "rebuild"
        assert art["rebuild"]["ledger"]["started"] > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestRebuildCli:
    def test_cli_json_is_canonical_and_exits_zero(self, capsys):
        from repro.__main__ import main

        code = main([
            "rebuild", "--node-index", "1", "--vd-mb", "8",
            "--runtime-ms", "20", "--fail-at-ms", "5", "--json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        artifact = json.loads(out)
        assert artifact["rebuild"]["complete"] is True
        assert canonical_json(artifact).decode().rstrip("\n") == out.rstrip("\n")

    def test_cli_human_summary(self, capsys):
        from repro.__main__ import main

        code = main([
            "rebuild", "--node-index", "1", "--vd-mb", "8",
            "--runtime-ms", "20", "--policy", "reactive", "--mode", "swarm",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reactive/swarm" in out and "recovery" in out
