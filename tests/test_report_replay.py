"""Tests for ASCII reporting and trace record/replay."""

import io

import pytest

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.metrics.report import (
    COMPONENT_GLYPHS,
    collector_chart,
    render_bar,
    render_breakdown_chart,
)
from repro.sim import MS
from repro.workloads.replay import (
    IoRecord,
    TraceRecorder,
    load_trace,
    replay,
)


class TestReport:
    def test_render_bar_lengths_proportional(self):
        bar = render_bar({"fn": 20.0, "bn": 10.0, "ssd": 0.0, "sa": 10.0},
                         scale_us_per_char=10.0, label="x")
        assert bar.count(COMPONENT_GLYPHS["fn"]) == 2
        assert bar.count(COMPONENT_GLYPHS["bn"]) == 1
        assert bar.count(COMPONENT_GLYPHS["sa"]) == 1
        assert "40.0us" in bar

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            render_bar({}, 0.0)

    def test_chart_shared_scale(self):
        rows = [
            ("big", {"fn": 100.0, "bn": 0, "ssd": 0, "sa": 0}),
            ("small", {"fn": 10.0, "bn": 0, "ssd": 0, "sa": 0}),
        ]
        chart = render_breakdown_chart(rows, title="t", width=50)
        lines = chart.strip().split("\n")
        big = lines[1].count("#")
        small = lines[2].count("#")
        assert big == pytest.approx(10 * small, abs=2)

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            render_breakdown_chart([])

    def test_collector_chart_end_to_end(self):
        dep = EbsDeployment(DeploymentSpec(stack="luna", seed=3))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 64 * 1024 * 1024)
        done = []
        vd.write(0, 4096, done.append)
        dep.run()
        chart = collector_chart({"luna": dep.collector}, "write", 50)
        assert "luna" in chart and "us" in chart


class TestReplay:
    def _deployment(self):
        dep = EbsDeployment(DeploymentSpec(stack="solar", seed=5))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 128 * 1024 * 1024)
        return dep, vd

    def test_record_validation(self):
        with pytest.raises(ValueError):
            IoRecord(0, "erase", 0, 4096)
        with pytest.raises(ValueError):
            IoRecord(-1, "read", 0, 4096)

    def test_round_trip_through_json(self):
        dep, _vd = self._deployment()
        recorder = TraceRecorder(dep.sim)
        recorder.record("write", 0, 4096)
        recorder.record("read", 8192, 16384)
        buffer = io.StringIO()
        assert recorder.dump(buffer) == 2
        buffer.seek(0)
        records = load_trace(buffer)
        assert records == recorder.records

    def test_corrupt_trace_rejected_with_line(self):
        with pytest.raises(ValueError, match="line 2"):
            load_trace(io.StringIO('{"at_ns":0,"kind":"read","offset_bytes":0,"size_bytes":4096}\nnot-json\n'))

    def test_replay_reissues_everything(self):
        dep, vd = self._deployment()
        records = [
            IoRecord(i * 100_000, "write" if i % 3 else "read", i * 4096, 4096)
            for i in range(30)
        ]
        result = replay(dep.sim, vd, records)
        dep.run()
        assert result.issued == 30
        assert result.completed == 30
        assert result.latency.count == 30

    def test_replay_respects_time_scale(self):
        dep, vd = self._deployment()
        records = [IoRecord(1 * MS, "write", 0, 4096)]
        replay(dep.sim, vd, records, time_scale=3.0)
        first_event = dep.sim.peek_time()
        assert first_event >= 3 * MS

    def test_replay_clamps_out_of_range_offsets(self):
        dep, vd = self._deployment()
        records = [IoRecord(0, "write", 10**12, 4096)]
        result = replay(dep.sim, vd, records)
        dep.run()
        assert result.completed == 1

    def test_time_scale_validated(self):
        dep, vd = self._deployment()
        with pytest.raises(ValueError):
            replay(dep.sim, vd, [], time_scale=0)

    def test_recorded_production_run_replays_identically_shaped(self):
        """Record a production burst on LUNA, replay it on SOLAR: same I/O
        population, different latency — the cross-stack methodology of
        Figure 6."""
        dep_a = EbsDeployment(DeploymentSpec(stack="luna", seed=8))
        vd_a = VirtualDisk(dep_a, "vd0", dep_a.compute_host_names()[0],
                           128 * 1024 * 1024)
        recorder = TraceRecorder(dep_a.sim)
        rng = dep_a.sim.rng.stream("rec")
        for i in range(40):
            kind = "read" if rng.random() < 0.2 else "write"
            recorder.record(kind, (i * 7919 % 1000) * 4096, 4096)
        records = recorder.records

        results = {}
        for stack in ("luna", "solar"):
            dep = EbsDeployment(DeploymentSpec(stack=stack, seed=8))
            vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0],
                             128 * 1024 * 1024)
            result = replay(dep.sim, vd, records)
            dep.run()
            assert result.completed == 40
            results[stack] = result.latency.mean()
        assert results["solar"] < results["luna"]
