"""Tests for the storage agents: cost structure, attribution, hosting
differences, and the storage RPC service."""

import pytest

from repro.agent.rpc import StorageRpcPayload
from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.profiles import BLOCK_SIZE


def deploy(stack, **kwargs):
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=47, **kwargs))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 128 * 1024 * 1024)
    return dep, vd


def one_io(dep, vd, kind, size=BLOCK_SIZE, offset=0, data=None):
    done = []
    getattr(vd, kind)(offset, size, done.append, **({"data": data} if data else {}))
    dep.run()
    assert done
    return done[0]


class TestSoftwareSaCosts:
    def test_vm_hosting_charges_virtio(self):
        """The same stack is slower in VM hosting than bare-metal-without-
        PCIe-pressure would suggest: virtio overhead is real."""
        vm = deploy("luna", hosting="vm")
        sa_vm = one_io(*vm, "write").trace.components["sa"]
        # Bare-metal skips virtio but pays DPU PCIe; compare SA only.
        bm = deploy("luna", hosting="bare_metal")
        sa_bm = one_io(*bm, "write").trace.components["sa"]
        assert sa_vm > sa_bm

    def test_write_issue_cost_exceeds_read_issue_cost(self):
        """Writes pay CRC (+crypto) on issue; reads pay it on completion."""
        dep, vd = deploy("luna", encrypt_payloads=True)
        agent = dep.agents[vd.host_name]
        from repro.agent.base import IoRequest

        w = IoRequest("write", "vd0", 0, 16 * 1024, lambda io: None)
        r = IoRequest("read", "vd0", 0, 16 * 1024, lambda io: None)
        assert agent._issue_cost_ns(w) > agent._issue_cost_ns(r)
        assert agent._completion_cost_ns(r) > agent._completion_cost_ns(w)

    def test_cost_scales_with_io_size(self):
        dep, vd = deploy("luna")
        agent = dep.agents[vd.host_name]
        from repro.agent.base import IoRequest

        small = IoRequest("write", "vd0", 0, 4096, lambda io: None)
        large = IoRequest("write", "vd0", 0, 128 * 1024, lambda io: None)
        assert agent._issue_cost_ns(large) > 2 * agent._issue_cost_ns(small)

    def test_bare_metal_charges_internal_pcie(self):
        dep, vd = deploy("luna", hosting="bare_metal")
        one_io(dep, vd, "write", size=64 * 1024)
        server = dep.compute_servers[vd.host_name]
        assert server.dpu is not None
        # Two crossings of 64KB on the write path.
        assert server.dpu.internal_pcie.bytes_moved >= 2 * 64 * 1024

    def test_vm_hosting_never_touches_dpu(self):
        dep, vd = deploy("luna", hosting="vm")
        one_io(dep, vd, "write")
        assert dep.compute_servers[vd.host_name].dpu is None


class TestAttribution:
    @pytest.mark.parametrize("stack", ["kernel", "luna", "rdma", "solar"])
    def test_components_cover_most_of_total(self, stack):
        dep, vd = deploy(stack)
        for kind in ("write", "read"):
            trace = one_io(dep, vd, kind, offset=0 if kind == "write" else 4096).trace
            assert 0 <= trace.unattributed_ns() < max(trace.total_ns * 0.3, 20_000)

    def test_ssd_component_tracks_chunk_service(self):
        dep, vd = deploy("luna")
        trace = one_io(dep, vd, "read").trace
        assert trace.components["ssd"] > 10_000  # NAND-scale

    def test_bn_component_positive(self):
        dep, vd = deploy("luna")
        trace = one_io(dep, vd, "write").trace
        assert trace.components["bn"] > 1_000

    def test_nvme_counted_in_sa(self):
        dep, vd = deploy("solar")
        trace = one_io(dep, vd, "write").trace
        nvme = dep.compute_servers[vd.host_name].nvme
        assert nvme.submitted == 1 and nvme.completed == 1
        assert trace.components["sa"] >= nvme.submit_latency_ns


class TestStorageRpcService:
    def test_payload_sizes(self):
        from repro.storage.segment_table import SegmentTable
        from repro.storage.block import split_into_blocks

        table = SegmentTable()
        table.provision("vd", 8 * 1024 * 1024, ["bs0"], ["c0", "c1", "c2"])
        extent = table.extents("vd", 0, 4)[0]
        blocks = split_into_blocks("vd", 0, 4 * BLOCK_SIZE)
        write = StorageRpcPayload("write", extent, blocks)
        read = StorageRpcPayload("read", extent, blocks)
        assert write.request_bytes() > 4 * BLOCK_SIZE
        assert write.response_bytes() < 256
        assert read.request_bytes() < 256
        assert read.response_bytes() > 4 * BLOCK_SIZE

    def test_write_ack_meta_has_timing(self):
        dep, vd = deploy("luna")
        one_io(dep, vd, "write")
        # The recorded trace's bn+ssd came from exchange meta; both > 0
        # implies the server annotated storage_ns and ssd_ns.
        trace = dep.collector.traces[-1]
        assert trace.components["ssd"] > 0

    def test_multi_extent_write_hits_multiple_block_servers(self):
        dep, vd = deploy("luna")
        io = one_io(dep, vd, "write", offset=2 * 1024 * 1024 - 2 * BLOCK_SIZE,
                    size=4 * BLOCK_SIZE)
        assert io.trace.ok
        busy = [bs for bs in dep.block_servers.values() if bs.writes > 0]
        segs = dep.segment_table.extents(
            "vd0", (2 * 1024 * 1024 - 2 * BLOCK_SIZE) // BLOCK_SIZE, 4
        )
        expected = {e.segment.block_server for e in segs}
        assert {b.name for b in busy} == expected


class TestSolarSaSpecifics:
    def test_solar_star_has_no_offload(self):
        dep, vd = deploy("solar_star")
        assert dep.solar_offloads == {}
        assert one_io(dep, vd, "write").trace.ok

    def test_solar_read_installs_and_clears_addr_entries(self):
        dep, vd = deploy("solar")
        offload = dep.solar_offloads[vd.host_name]
        one_io(dep, vd, "write", size=8 * BLOCK_SIZE)
        one_io(dep, vd, "read", size=8 * BLOCK_SIZE)
        assert offload.addr_table.peak_occupancy == 8
        assert len(offload.addr_table) == 0

    def test_write_data_flows_through_dma(self):
        dep, vd = deploy("solar")
        one_io(dep, vd, "write", size=4 * BLOCK_SIZE)
        dpu = dep.compute_servers[vd.host_name].dpu
        assert dpu.dma.reads == 4  # one guest-memory fetch per block

    def test_read_data_dma_to_guest(self):
        dep, vd = deploy("solar")
        one_io(dep, vd, "write", size=4 * BLOCK_SIZE)
        dpu = dep.compute_servers[vd.host_name].dpu
        before = dpu.dma.writes
        one_io(dep, vd, "read", size=4 * BLOCK_SIZE)
        assert dpu.dma.writes - before == 4

    def test_solar_never_crosses_internal_pcie(self):
        """Figure 10c: full offload keeps data off the internal PCIe."""
        dep, vd = deploy("solar")
        one_io(dep, vd, "write", size=16 * BLOCK_SIZE)
        one_io(dep, vd, "read", size=16 * BLOCK_SIZE)
        dpu = dep.compute_servers[vd.host_name].dpu
        assert dpu.internal_pcie.bytes_moved == 0

    def test_solar_star_does_cross_internal_pcie(self):
        """Figure 10a: without offload, data transits the internal PCIe."""
        dep, vd = deploy("solar_star")
        one_io(dep, vd, "write", size=16 * BLOCK_SIZE)
        dpu = dep.compute_servers[vd.host_name].dpu
        assert dpu.internal_pcie.bytes_moved > 0
