"""Tests for fault injection and hang monitoring."""

import random

import pytest

from repro.faults import (
    BitFlipInjector,
    CorruptionEventGenerator,
    IoHangMonitor,
    QuietInjector,
    ROOT_CAUSE_WEIGHTS,
    TimedFault,
    flip_bit,
)
from repro.net.failures import switch_blackhole
from repro.sim import MS, SECOND, Simulator


class TestBitFlip:
    def test_flip_changes_exactly_one_bit(self):
        data = bytes(64)
        flipped = flip_bit(data, 100)
        diff = [a ^ b for a, b in zip(data, flipped)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_flip_empty_rejected(self):
        with pytest.raises(ValueError):
            flip_bit(b"", 0)

    def test_injector_rates(self):
        rng = random.Random(1)
        injector = BitFlipInjector(rng, payload_flip_rate=1.0, crc_flip_rate=0.0)
        out = injector.corrupt_payload(b"\x00" * 16, "egress-crc")
        assert out != b"\x00" * 16
        assert injector.corrupt_crc(0x1234, "egress-crc") == 0x1234
        assert injector.total_injected == 1

    def test_zero_rate_never_corrupts(self):
        injector = BitFlipInjector(random.Random(1))
        data = b"abc" * 100
        assert injector.corrupt_payload(data, "s") is data
        assert injector.corrupt_crc(7, "s") == 7

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BitFlipInjector(random.Random(1), payload_flip_rate=1.5)

    def test_quiet_injector_is_noop(self):
        q = QuietInjector()
        assert q.corrupt_payload(b"x", "s") == b"x"
        assert q.corrupt_crc(5, "s") == 5


class TestCorruptionEvents:
    def test_weights_sum_to_one(self):
        assert sum(ROOT_CAUSE_WEIGHTS.values()) == pytest.approx(1.0)

    def test_fpga_is_top_cause(self):
        # §4.4: "FPGA error is the major contributor by 37%".
        assert ROOT_CAUSE_WEIGHTS["fpga_flapping"] == pytest.approx(0.37)
        assert max(ROOT_CAUSE_WEIGHTS, key=ROOT_CAUSE_WEIGHTS.get) == "fpga_flapping"

    def test_draw_distribution(self):
        gen = CorruptionEventGenerator(random.Random(5))
        events = gen.draw_many(5_000)
        share = sum(e.root_cause == "fpga_flapping" for e in events) / len(events)
        assert share == pytest.approx(0.37, abs=0.03)

    def test_all_events_detected(self):
        gen = CorruptionEventGenerator(random.Random(5))
        assert all(e.detected_by_software_crc for e in gen.draw_many(50))

    def test_ids_unique(self):
        gen = CorruptionEventGenerator(random.Random(5))
        events = gen.draw_many(10)
        assert len({e.event_id for e in events}) == 10

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            CorruptionEventGenerator(random.Random(1), {"a": 0.5})


class TestHangMonitor:
    def _io(self, sim, complete_after_ns=None):
        from repro.agent.base import IoRequest
        from repro.metrics.trace import IoTrace

        io = IoRequest("write", "vd", 0, 4096, lambda io: None)
        io.trace = IoTrace(io.io_id, "write", 4096, sim.now)
        if complete_after_ns is not None:
            sim.schedule(complete_after_ns, io.trace.complete, sim.now + complete_after_ns)
        return io

    def test_fast_io_not_counted(self):
        sim = Simulator()
        monitor = IoHangMonitor(sim, threshold_ns=1 * SECOND)
        monitor.watch(self._io(sim, complete_after_ns=10 * MS))
        sim.run()
        assert monitor.hangs == 0

    def test_stuck_io_counted(self):
        sim = Simulator()
        monitor = IoHangMonitor(sim, threshold_ns=1 * SECOND)
        monitor.watch(self._io(sim, complete_after_ns=None))
        sim.run()
        assert monitor.hangs == 1

    def test_slow_but_completed_io_counted(self):
        sim = Simulator()
        monitor = IoHangMonitor(sim, threshold_ns=100 * MS)
        monitor.watch(self._io(sim, complete_after_ns=50 * MS))
        monitor.watch(self._io(sim, complete_after_ns=2 * SECOND))
        sim.run()
        assert monitor.hangs == 1

    def test_watched_counter(self):
        sim = Simulator()
        monitor = IoHangMonitor(sim)
        for _ in range(3):
            monitor.watch(self._io(sim, complete_after_ns=1))
        assert monitor.watched == 3


class TestTimedFault:
    def test_apply_and_revert_scheduled(self):
        from repro.net import ClosTopology, PodSpec
        from repro.profiles import DEFAULT

        sim = Simulator(seed=1)
        topo = ClosTopology(sim, DEFAULT.network, [PodSpec("p", 1, 2)])
        fault = TimedFault(switch_blackhole("tor", 0.5), start_ns=10 * MS,
                           end_ns=50 * MS)
        fault.schedule(sim, topo)
        sim.run(until=20 * MS)
        assert any(s.blackhole_fraction > 0 for s in topo.switches_by_tier("tor"))
        sim.run(until=60 * MS)
        assert all(s.blackhole_fraction == 0 for s in topo.switches_by_tier("tor"))

    def test_end_before_start_rejected(self):
        from repro.net import ClosTopology, PodSpec
        from repro.profiles import DEFAULT

        sim = Simulator(seed=1)
        topo = ClosTopology(sim, DEFAULT.network, [PodSpec("p", 1, 2)])
        fault = TimedFault(switch_blackhole("tor", 0.5), start_ns=10, end_ns=5)
        with pytest.raises(ValueError):
            fault.schedule(sim, topo)

    def test_zero_duration_rejected(self):
        # start == end would apply and revert at the same instant; the
        # event order would then decide whether the fault ever existed.
        from repro.net import ClosTopology, PodSpec
        from repro.profiles import DEFAULT

        sim = Simulator(seed=1)
        topo = ClosTopology(sim, DEFAULT.network, [PodSpec("p", 1, 2)])
        fault = TimedFault(switch_blackhole("tor", 0.5), start_ns=10 * MS,
                           end_ns=10 * MS)
        with pytest.raises(ValueError):
            fault.schedule(sim, topo)

    def test_overlapping_faults_on_same_switch(self):
        # Two blackholes overlap on the same ToR.  Scenario state is
        # last-writer-wins: the later apply overwrites the fraction, and
        # either revert clears the switch entirely (reverts set 0.0, they
        # do not unwind contributions).  Pin that down so overlapping
        # schedules stay deterministic rather than order-dependent.
        from repro.net import ClosTopology, PodSpec
        from repro.profiles import DEFAULT

        sim = Simulator(seed=1)
        topo = ClosTopology(sim, DEFAULT.network, [PodSpec("p", 1, 2)])
        TimedFault(switch_blackhole("tor", 0.5), 10 * MS, 50 * MS).schedule(sim, topo)
        TimedFault(switch_blackhole("tor", 0.9), 20 * MS, 80 * MS).schedule(sim, topo)
        tor = topo.switches_by_tier("tor")[0]
        sim.run(until=15 * MS)
        assert tor.blackhole_fraction == pytest.approx(0.5)
        sim.run(until=30 * MS)  # second apply overwrites the first
        assert tor.blackhole_fraction == pytest.approx(0.9)
        sim.run(until=60 * MS)  # first revert clears the shared state
        assert tor.blackhole_fraction == 0
        sim.run(until=100 * MS)  # second revert is a harmless no-op
        assert tor.blackhole_fraction == 0

    def test_fault_after_run_window_is_noop(self):
        # Scheduling a fault beyond the horizon the experiment runs to must
        # neither fire nor crash the drained simulator.
        from repro.net import ClosTopology, PodSpec
        from repro.profiles import DEFAULT

        sim = Simulator(seed=1)
        topo = ClosTopology(sim, DEFAULT.network, [PodSpec("p", 1, 2)])
        fault = TimedFault(switch_blackhole("tor", 0.5), start_ns=500 * MS,
                           end_ns=600 * MS)
        fault.schedule(sim, topo)
        sim.run(until=100 * MS)
        assert all(s.blackhole_fraction == 0 for s in topo.switches_by_tier("tor"))
        assert sim.now <= 100 * MS


class TestIncidentOutcome:
    def test_hang_rate(self):
        from repro.faults import IncidentOutcome

        outcome = IncidentOutcome("blackhole", "luna", ios_issued=200, ios_hung=3)
        assert outcome.hang_rate == pytest.approx(0.015)

    def test_zero_issued_is_not_a_division_error(self):
        from repro.faults import IncidentOutcome

        outcome = IncidentOutcome("blackhole", "luna", ios_issued=0, ios_hung=0)
        assert outcome.hang_rate == 0.0
