"""Scheduler edge cases and heap-vs-calendar cross-implementation parity.

The simulation kernel's scheduler is pluggable (``repro.sim.sched``): a
calendar queue by default, a binary heap as the reference.  Both order
events by the same ``(time, seq)`` law, so every observable — event
order, ``events_processed``, artifacts — must be identical.  These tests
pin that equivalence plus the edge cases where bucketing could plausibly
diverge from a single heap: same-timestamp FIFO across bucket
boundaries, scheduling at ``now`` from an in-flight event, ``stop()``
mid-bucket, and the lazy-deletion bookkeeping (bounded storage under
cancel-heavy load).
"""

import hashlib

import pytest

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.sim import MS, Simulator
from repro.sim.sched import (
    COMPACT_MIN_GHOSTS,
    DEFAULT_BUCKET_BITS,
    SCHEDULERS,
)
from repro.workloads import FioSpec, run_fio

SCHEDULER_NAMES = sorted(SCHEDULERS)
BUCKET_NS = 1 << DEFAULT_BUCKET_BITS


@pytest.fixture(params=SCHEDULER_NAMES)
def scheduler(request):
    return request.param


class TestEdgeCases:
    def test_same_timestamp_fifo_across_bucket_boundary(self, scheduler):
        # Schedule FIFO-tied events exactly at a bucket boundary, plus
        # neighbours one tick either side, interleaved so creation order
        # and time order disagree.  FIFO must hold within each instant.
        sim = Simulator(scheduler=scheduler)
        boundary = 7 * BUCKET_NS
        order = []
        for i in range(5):
            sim.schedule_at(boundary, order.append, ("on", i))
            sim.schedule_at(boundary - 1, order.append, ("before", i))
            sim.schedule_at(boundary + 1, order.append, ("after", i))
        sim.run()
        assert order == (
            [("before", i) for i in range(5)]
            + [("on", i) for i in range(5)]
            + [("after", i) for i in range(5)]
        )

    def test_schedule_at_now_during_inflight_event(self, scheduler):
        # An in-flight event scheduling at the current instant runs
        # after already-pending same-instant events, before later ones.
        sim = Simulator(scheduler=scheduler)
        order = []

        def first():
            order.append("first")
            sim.schedule_at(sim.now, order.append, "nested")
            sim.call_soon(order.append, "soon")

        sim.schedule(100, first)
        sim.schedule(100, order.append, "second")
        sim.schedule(101, order.append, "later")
        sim.run()
        assert order == ["first", "second", "nested", "soon", "later"]

    def test_stop_mid_bucket(self, scheduler):
        # stop() from an event must halt after that event returns, even
        # with same-bucket (and same-instant) events still pending, and
        # a subsequent run() must resume exactly where it left off.
        sim = Simulator(scheduler=scheduler)
        order = []
        sim.schedule(10, order.append, "a")
        sim.schedule(11, lambda: (order.append("b"), sim.stop()))
        sim.schedule(11, order.append, "c")
        sim.schedule(12, order.append, "d")
        sim.run()
        assert order == ["a", "b"]
        assert sim.now == 11
        assert sim.pending_events == 2
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_until_ignores_cancelled_head(self, scheduler):
        # A cancelled timer heading the queue must not end a bounded run
        # early: the raw-head ``until`` check sees the ghost at t=50,
        # lets pop() skip it, and fires the live event at t=200 even
        # though 200 > until (matching the original engine, whose
        # ``until`` comparison read the raw heap head).
        sim = Simulator(scheduler=scheduler)
        fired = []
        ghost = sim.schedule(50, fired.append, "ghost")
        sim.schedule(200, fired.append, "live")
        ghost.cancel()
        sim.run(until=100)
        assert fired == ["live"]
        assert sim.now == 200


class TestBookkeeping:
    def test_pending_events_live_counter(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        events = [sim.schedule(10 + i, lambda: None) for i in range(8)]
        assert sim.pending_events == 8
        events[3].cancel()
        events[5].cancel()
        assert sim.pending_events == 6
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_processed == 6

    def test_peek_time_skips_cancelled(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        first = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        assert sim.peek_time() == 10
        first.cancel()
        assert sim.peek_time() == 20

    def test_cancel_heavy_storage_stays_bounded(self, scheduler):
        # Re-arming timers (the RTO pattern) cancels one event per push.
        # Lazy deletion alone would grow storage to ~n; compaction must
        # keep physical entries within a constant factor of live ones.
        sim = Simulator(scheduler=scheduler)
        sched = sim._sched
        timers = [sim.schedule(1_000_000 + i, lambda: None) for i in range(64)]
        for round_ in range(200):
            for i in range(64):
                timers[i].cancel()
                timers[i] = sim.schedule(2_000_000 + round_ * 64 + i, lambda: None)
        assert sched.live == 64
        assert sched.compactions > 0
        assert sched.storage_size <= 2 * max(COMPACT_MIN_GHOSTS, sched.live)

    def test_compact_preserves_order(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        sched = sim._sched
        order = []
        keep = []
        for i in range(50):
            keep.append(sim.schedule(100 + 7 * i, order.append, i))
            sim.schedule(100 + 7 * i + 3, order.append, None).cancel()
        sched.compact()
        assert sched.ghosts == 0
        assert sched.storage_size == 50
        sim.run()
        assert order == list(range(50))


def _fio_fingerprint(scheduler_name):
    sim = Simulator(seed=1234, scheduler=scheduler_name)
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=1234), sim=sim)
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 64 * 1024 * 1024)
    spec = FioSpec(block_sizes=(4096,), iodepth=4, read_fraction=0.5, runtime_ns=2 * MS)
    result = run_fio(dep.sim, [vd], spec)["vd0"]
    digest = hashlib.sha256(repr(tuple(result.latency.samples)).encode()).hexdigest()
    return (
        result.completed,
        result.bytes_moved,
        digest,
        dep.sim.events_processed,
        dep.sim.now,
    )


class TestLinkFastPathParity:
    def test_fastpath_and_legacy_identical_artifacts(self, monkeypatch):
        # The coalesced link path must be observably identical to the
        # two-event path on a real deployment: same completions, same
        # latency samples, same events_processed (via parity credits).
        from repro.net.link import FASTPATH_ENV

        monkeypatch.setenv(FASTPATH_ENV, "0")
        legacy = _fio_fingerprint("calendar")
        monkeypatch.setenv(FASTPATH_ENV, "1")
        fast = _fio_fingerprint("calendar")
        assert fast == legacy


class TestCrossImplementationDeterminism:
    def test_heap_and_calendar_identical_artifacts(self):
        # The headline parity pin: a real deployment run (solar stack,
        # fixed seed) yields identical completions, byte counts, latency
        # samples, events_processed, and final clock on every scheduler.
        fingerprints = {name: _fio_fingerprint(name) for name in SCHEDULER_NAMES}
        baseline = fingerprints[SCHEDULER_NAMES[0]]
        assert all(fp == baseline for fp in fingerprints.values())

    def test_synthetic_event_order_identical(self):
        # Deterministic pseudo-random schedule/cancel torture: both
        # implementations must pop the identical event sequence.
        import random

        def trace(name):
            sim = Simulator(scheduler=name)
            rng = random.Random(9)
            seen = []
            live = []

            def fire(tag):
                seen.append((sim.now, tag))
                for _ in range(rng.randrange(3)):
                    delay = rng.randrange(0, 3 * BUCKET_NS)
                    tag2 = rng.randrange(1 << 30)
                    live.append(sim.schedule(delay, fire, tag2))
                if live and rng.random() < 0.3:
                    live.pop(rng.randrange(len(live))).cancel()

            for i in range(20):
                live.append(sim.schedule(rng.randrange(BUCKET_NS), fire, i))
            sim.run(max_events=4000)
            return seen, sim.events_processed

        traces = [trace(name) for name in SCHEDULER_NAMES]
        assert all(t == traces[0] for t in traces[1:])
