"""Tests for the stream transports (kernel TCP, LUNA, RDMA) and UDP."""

import pytest

from repro.host.cpu import CpuComplex
from repro.net import ClosTopology, PodSpec
from repro.profiles import DEFAULT
from repro.sim import MS, Simulator, US
from repro.transport import (
    DatagramSocket,
    KernelTcpTransport,
    LunaTransport,
    RdmaTransport,
    TransportError,
    kernel_tcp_config,
    luna_config,
    rdma_config,
)


def make_pair(stack_cls, seed=1, same_rack=False, **kwargs):
    sim = Simulator(seed=seed)
    pods = [PodSpec("cp", 1, 4, role="compute"), PodSpec("sp", 1, 4, role="storage")]
    topo = ClosTopology(sim, DEFAULT.network, pods)
    c_ep = topo.hosts["cp/r0/h0"]
    s_ep = topo.hosts["cp/r0/h1"] if same_rack else topo.hosts["sp/r0/h0"]
    client = stack_cls(sim, c_ep, CpuComplex(sim, "c", 4), DEFAULT, **kwargs)
    server = stack_cls(sim, s_ep, CpuComplex(sim, "s", 8), DEFAULT, **kwargs)
    return sim, topo, client, server


def echo_server(server, response_bytes=128):
    def handler(payload, exchange, respond):
        respond(response_bytes, ("echo", payload))

    server.register_handler(handler)


def run_rpc(sim, client, server, request_bytes=4096, response_bytes=128):
    done = []
    client.call(server, "payload", request_bytes, response_bytes,
                lambda ex, ok: done.append((ex, ok)))
    sim.run(until=sim.now + 5_000 * MS)
    assert done, "rpc never completed"
    return done[0]


class TestBasicRpc:
    @pytest.mark.parametrize("stack_cls", [KernelTcpTransport, LunaTransport, RdmaTransport])
    def test_single_rpc_completes(self, stack_cls):
        sim, _topo, client, server = make_pair(stack_cls)
        echo_server(server)
        exchange, ok = run_rpc(sim, client, server)
        assert ok and exchange.response_payload == ("echo", "payload")

    def test_luna_much_faster_than_kernel(self):
        latencies = {}
        for cls, name in ((KernelTcpTransport, "kernel"), (LunaTransport, "luna")):
            sim, _t, client, server = make_pair(cls)
            echo_server(server)
            exchange, _ok = run_rpc(sim, client, server)
            latencies[name] = exchange.rpc_latency_ns
        # Table 1a: LUNA cuts single-RPC latency by >80%... our clean-fabric
        # reproduction lands ≥3.5x; the exact ratio depends on base RTT.
        assert latencies["kernel"] > 3.5 * latencies["luna"]

    def test_rdma_fastest(self):
        lat = {}
        for cls in (LunaTransport, RdmaTransport):
            sim, _t, client, server = make_pair(cls)
            echo_server(server)
            exchange, _ok = run_rpc(sim, client, server)
            lat[cls.__name__] = exchange.rpc_latency_ns
        assert lat["RdmaTransport"] <= lat["LunaTransport"]

    def test_large_rpc_segmented(self):
        sim, _t, client, server = make_pair(LunaTransport)
        echo_server(server)
        exchange, ok = run_rpc(sim, client, server, request_bytes=256 * 1024)
        assert ok

    def test_large_response(self):
        sim, _t, client, server = make_pair(LunaTransport)
        echo_server(server, response_bytes=128 * 1024)
        exchange, ok = run_rpc(sim, client, server, response_bytes=128 * 1024)
        assert ok and exchange.response_bytes == 128 * 1024

    def test_many_concurrent_rpcs(self):
        sim, _t, client, server = make_pair(LunaTransport)
        echo_server(server)
        done = []
        for _ in range(64):
            client.call(server, "x", 4096, 128, lambda ex, ok: done.append(ok))
        sim.run(until=sim.now + 500 * MS)
        assert len(done) == 64 and all(done)

    def test_server_time_attributed(self):
        sim, _t, client, server = make_pair(LunaTransport)

        def slow_handler(payload, exchange, respond):
            sim.schedule(50 * US, respond, 128, "late")

        server.register_handler(slow_handler)
        exchange, ok = run_rpc(sim, client, server)
        assert ok
        assert exchange.server_time_ns >= 50 * US
        assert exchange.network_time_ns < exchange.rpc_latency_ns

    def test_double_handler_registration_rejected(self):
        sim, _t, _client, server = make_pair(LunaTransport)
        echo_server(server)
        with pytest.raises(TransportError):
            server.register_handler(lambda p, e, r: None)

    def test_no_handler_raises(self):
        sim, _t, client, server = make_pair(LunaTransport)
        client.call(server, "x", 4096, 128, lambda ex, ok: None)
        with pytest.raises(TransportError):
            sim.run(until=sim.now + 100 * MS)

    def test_double_respond_rejected(self):
        sim, _t, client, server = make_pair(LunaTransport)
        failures = []

        def handler(payload, exchange, respond):
            respond(128, "one")
            try:
                respond(128, "two")
            except RuntimeError as exc:
                failures.append(exc)

        server.register_handler(handler)
        run_rpc(sim, client, server)
        assert failures


class TestLossRecovery:
    def test_rpc_survives_random_drops(self):
        sim, topo, client, server = make_pair(LunaTransport, seed=7)
        echo_server(server)
        for sw in topo.switches_by_tier("spine"):
            sw.set_drop_rate(0.15)
        done = []
        for _ in range(10):
            client.call(server, "x", 16 * 1024, 128, lambda ex, ok: done.append(ok))
        sim.run(until=sim.now + 3_000 * MS)
        assert len(done) == 10 and all(done)

    def test_blackhole_stalls_luna_flow(self):
        """A LUNA connection cannot escape a full blackhole: its fixed
        5-tuple keeps hashing to the dead path (§3.3)."""
        sim, topo, client, server = make_pair(LunaTransport, seed=7)
        echo_server(server)
        # Blackhole everything at both spines: no path survives.
        for sw in topo.switches_by_tier("spine"):
            sw.set_blackhole(1.0)
        done = []
        client.call(server, "x", 4096, 128, lambda ex, ok: done.append(ok))
        sim.run(until=sim.now + 900 * MS)
        assert done == []  # still stuck after 900ms

    def test_kernel_rto_is_200ms_scale(self):
        cfg = kernel_tcp_config(DEFAULT)
        assert cfg.min_rto_ns == 200 * MS  # Linux minimum RTO

    def test_retry_exhaustion_fails_rpc(self):
        sim, topo, client, server = make_pair(LunaTransport, seed=7)
        echo_server(server)
        for sw in topo.switches_by_tier("spine"):
            sw.set_blackhole(1.0)
        done = []
        client.call(server, "x", 4096, 128, lambda ex, ok: done.append(ok))
        # Run long enough for max_retries RTO doublings to exhaust.
        sim.run(until=sim.now + 600_000 * MS)
        assert done == [False]

    def test_luna_pins_connection_to_core(self):
        cfg = luna_config(DEFAULT)
        assert cfg.proto == "luna"
        sim, _t, client, server = make_pair(LunaTransport)
        echo_server(server)
        run_rpc(sim, client, server)
        conn = client._pools[server.endpoint.name][0]
        assert client.pick_core(conn) is client.pick_core(conn)


class TestRdmaScalability:
    def test_connection_cliff_slows_emission(self):
        sim, _t, client, server = make_pair(RdmaTransport)
        echo_server(server)
        exchange, _ok = run_rpc(sim, client, server, request_bytes=64 * 1024)
        fast = exchange.rpc_latency_ns

        sim2, _t2, client2, server2 = make_pair(RdmaTransport)
        echo_server(server2)
        client2.extra_connections_hint = 50_000  # way past the 5K cliff
        done = []
        client2.call(server2, "x", 64 * 1024, 128, lambda ex, ok: done.append(ex))
        sim2.run(until=sim2.now + 500 * MS)
        assert done and done[0].rpc_latency_ns > fast * 2

    def test_factor_floors(self):
        sim, _t, client, _server = make_pair(RdmaTransport)
        client.extra_connections_hint = 10**9
        assert client._throughput_factor() == DEFAULT.rdma.cliff_floor

    def test_no_penalty_below_cliff(self):
        sim, _t, client, _server = make_pair(RdmaTransport)
        client.extra_connections_hint = 100
        assert client._throughput_factor() == 1.0

    def test_rdma_mtu_is_4k(self):
        assert rdma_config(DEFAULT).mss == 4096


class TestDatagramSocket:
    def _sockets(self):
        sim = Simulator(seed=1)
        topo = ClosTopology(sim, DEFAULT.network, [PodSpec("p", 1, 2)])
        a = DatagramSocket(sim, topo.hosts["p/r0/h0"], "udpx")
        b = DatagramSocket(sim, topo.hosts["p/r0/h1"], "udpx")
        return sim, a, b

    def test_port_demux(self):
        sim, a, b = self._sockets()
        got = []
        b.bind(9000, got.append)
        a.send("p/r0/h1", 1234, 9000, 200)
        sim.run()
        assert len(got) == 1

    def test_unbound_port_dropped_silently(self):
        sim, a, b = self._sockets()
        a.send("p/r0/h1", 1234, 9999, 200)
        sim.run()  # no crash

    def test_default_handler(self):
        sim, a, b = self._sockets()
        got = []
        b.bind_default(got.append)
        a.send("p/r0/h1", 1, 2, 100)
        sim.run()
        assert got

    def test_double_bind_rejected(self):
        _sim, a, _b = self._sockets()
        a.bind(7, lambda p: None)
        with pytest.raises(ValueError):
            a.bind(7, lambda p: None)
