"""Tests for the network substrate: packets, queues, links, ECMP, switches."""

import pytest

from repro.net import (
    Channel,
    DropTailQueue,
    Endpoint,
    Link,
    Packet,
    flow_hash,
    pick,
)
from repro.sim import Simulator


def make_packet(src="a", dst="b", sport=1000, dport=2000, proto="udp", size=1500):
    return Packet(src, dst, sport, dport, proto, size)


class TestPacket:
    def test_flow_tuple(self):
        p = make_packet()
        assert p.flow == ("a", "b", 1000, 2000, "udp")

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            make_packet(size=0)

    def test_payload_cannot_exceed_wire_size(self):
        with pytest.raises(ValueError):
            Packet("a", "b", 1, 2, "udp", 10, payload=b"x" * 11)

    def test_header_accessor_reports_missing_layer(self):
        p = make_packet()
        p.headers["rpc"] = {"id": 1}
        assert p.header("rpc") == {"id": 1}
        with pytest.raises(KeyError, match="ebs"):
            p.header("ebs")

    def test_reply_shell_mirrors_tuple(self):
        p = make_packet()
        r = p.reply_shell(64)
        assert r.flow == ("b", "a", 2000, 1000, "udp")
        assert r.size_bytes == 64

    def test_packet_ids_unique(self):
        assert make_packet().pkt_id != make_packet().pkt_id


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        pkts = [make_packet(size=100 + i) for i in range(3)]
        for p in pkts:
            assert q.offer(p)
        assert [q.poll() for _ in range(3)] == pkts

    def test_byte_budget_drops(self):
        q = DropTailQueue(250)
        assert q.offer(make_packet(size=200))
        assert not q.offer(make_packet(size=100))
        assert q.dropped == 1
        assert q.bytes == 200

    def test_poll_empty_returns_none(self):
        assert DropTailQueue(100).poll() is None

    def test_clear_drops_everything(self):
        q = DropTailQueue(10_000)
        for _ in range(4):
            q.offer(make_packet())
        assert q.clear() == 4
        assert len(q) == 0 and q.bytes == 0

    def test_peak_tracking(self):
        q = DropTailQueue(10_000)
        q.offer(make_packet(size=1000))
        q.offer(make_packet(size=2000))
        q.poll()
        assert q.peak_bytes == 3000

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class _Sink:
    def __init__(self, name="sink"):
        self.name = name
        self.received = []

    def receive(self, packet, ingress):
        self.received.append((packet, ingress))


class TestChannel:
    def _channel(self, sim, gbps=10.0, prop=500):
        src, dst = _Sink("src"), _Sink("dst")
        ch = Channel(sim, "src->dst", src, dst, gbps, prop, 100_000)
        return ch, dst

    def test_delivery_time_is_serialization_plus_propagation(self):
        sim = Simulator()
        ch, dst = self._channel(sim, gbps=10.0, prop=500)
        ch.send(make_packet(size=1250))  # 1250B at 10G = 1000ns
        sim.run()
        assert len(dst.received) == 1
        assert sim.now == 1000 + 500

    def test_back_to_back_serialize(self):
        sim = Simulator()
        ch, dst = self._channel(sim, gbps=10.0, prop=0)
        ch.send(make_packet(size=1250))
        ch.send(make_packet(size=1250))
        sim.run()
        assert sim.now == 2000  # second waits for the first's wire time

    def test_down_channel_drops_silently(self):
        sim = Simulator()
        ch, dst = self._channel(sim)
        ch.set_up(False)
        assert ch.send(make_packet()) is False
        sim.run()
        assert dst.received == []

    def test_going_down_flushes_queue(self):
        sim = Simulator()
        ch, dst = self._channel(sim, gbps=0.001)  # slow: packets queue
        ch.send(make_packet())
        ch.send(make_packet())
        ch.set_up(False)
        assert ch.queue.dropped >= 1

    def test_in_flight_packet_lost_on_down(self):
        sim = Simulator()
        ch, dst = self._channel(sim, gbps=10.0, prop=10_000)
        ch.send(make_packet(size=1250))
        sim.run(until=1_500)  # serialized, propagating
        ch.set_up(False)
        sim.run()
        assert dst.received == []

    def test_tx_counters(self):
        sim = Simulator()
        ch, _ = self._channel(sim)
        ch.send(make_packet(size=700))
        sim.run()
        assert ch.tx_packets == 1 and ch.tx_bytes == 700


class TestLink:
    def test_duplex_channels(self):
        sim = Simulator()
        a, b = _Sink("a"), _Sink("b")
        link = Link(sim, a, b, 10.0, 100, 10_000)
        assert link.channel_from(a) is link.ab
        assert link.channel_from(b) is link.ba
        assert link.other(a) is b
        with pytest.raises(ValueError):
            link.channel_from(_Sink("c"))


class TestEcmp:
    def test_flow_hash_deterministic(self):
        flow = ("a", "b", 1, 2, "udp")
        assert flow_hash(flow) == flow_hash(flow)

    def test_salt_changes_hash(self):
        flow = ("a", "b", 1, 2, "udp")
        assert flow_hash(flow, "s1") != flow_hash(flow, "s2")

    def test_sport_changes_hash(self):
        a = flow_hash(("a", "b", 1000, 2, "udp"))
        b = flow_hash(("a", "b", 1001, 2, "udp"))
        assert a != b  # SOLAR's path-by-port mechanism depends on this

    def test_pick_consistent(self):
        flow = ("a", "b", 5, 6, "tcp")
        candidates = ["x", "y", "z"]
        assert pick(flow, candidates) == pick(flow, candidates)

    def test_pick_empty_rejected(self):
        with pytest.raises(ValueError):
            pick(("a", "b", 1, 2, "t"), [])

    def test_port_spread_covers_candidates(self):
        """Varying the source port must reach every candidate eventually —
        otherwise SOLAR's multipath could not cover the fabric."""
        candidates = list(range(4))
        seen = {
            pick(("h1", "h2", sport, 7100, "solar"), candidates)
            for sport in range(40_000, 40_064)
        }
        assert seen == set(candidates)


class TestEndpoint:
    def _endpoint_pair(self, sim):
        a = Endpoint(sim, "a")
        b = Endpoint(sim, "b")
        link = Link(sim, a, b, 10.0, 100, 100_000)
        a.add_uplink(link.ab)
        b.add_uplink(link.ba)
        return a, b

    def test_proto_demux(self):
        sim = Simulator()
        a, b = self._endpoint_pair(sim)
        tcp, udp = [], []
        b.on_proto("tcp", tcp.append)
        b.on_proto("udp", udp.append)
        a.send(make_packet(src="a", dst="b", proto="udp"))
        a.send(make_packet(src="a", dst="b", proto="tcp"))
        sim.run()
        assert len(tcp) == 1 and len(udp) == 1

    def test_unhandled_proto_raises(self):
        sim = Simulator()
        a, b = self._endpoint_pair(sim)
        a.send(make_packet(src="a", dst="b", proto="mystery"))
        with pytest.raises(RuntimeError, match="no handler"):
            sim.run()

    def test_no_live_uplinks_counts_drop(self):
        sim = Simulator()
        a, b = self._endpoint_pair(sim)
        a.uplinks[0].set_up(False)
        assert a.send(make_packet(src="a", dst="b")) is False
        assert a.tx_dropped == 1


class TestPriorityQueue:
    def _pq(self, capacity=10_000):
        from repro.net.queue import PriorityQueue

        return PriorityQueue(capacity, name="pq")

    def test_solar_classified_high(self):
        pq = self._pq()
        pq.offer(make_packet(proto="solar"))
        pq.offer(make_packet(proto="tcp"))
        assert len(pq.high) == 1 and len(pq.low) == 1

    def test_strict_priority_service(self):
        pq = self._pq()
        low = make_packet(proto="tcp")
        high = make_packet(proto="solar")
        pq.offer(low)
        pq.offer(high)
        assert pq.poll() is high  # dedicated queue served first (§4.8)
        assert pq.poll() is low

    def test_classes_have_separate_budgets(self):
        pq = self._pq(capacity=2_000)
        assert pq.offer(make_packet(proto="tcp", size=900))
        assert not pq.offer(make_packet(proto="tcp", size=900))  # low full
        assert pq.offer(make_packet(proto="solar", size=900))  # high intact

    def test_aggregate_stats(self):
        pq = self._pq()
        pq.offer(make_packet(proto="solar", size=100))
        pq.offer(make_packet(proto="tcp", size=200))
        assert pq.bytes == 300 and pq.enqueued == 2
        assert pq.clear() == 2 and len(pq) == 0

    def test_channel_uses_priority_queue_when_asked(self):
        from repro.net.queue import PriorityQueue
        from repro.sim import Simulator

        sim = Simulator()
        a, b = _Sink("a"), _Sink("b")
        link = Link(sim, a, b, 10.0, 100, 10_000, priority=True)
        assert isinstance(link.ab.queue, PriorityQueue)

    def test_solar_jumps_queue_on_congested_port(self):
        """With the dedicated queue, a SOLAR packet arriving behind bulk
        low-class traffic is transmitted before it."""
        from repro.sim import Simulator

        sim = Simulator()
        dst = _Sink("dst")
        src = _Sink("src")
        ch = Channel(sim, "c", src, dst, 1.0, 0, 100_000, priority=True)
        for _ in range(4):
            ch.send(make_packet(proto="tcp", size=5_000))
        ch.send(make_packet(proto="solar", size=1_000))
        sim.run()
        order = [p.proto for p, _ in dst.received]
        # The first bulk packet was already on the wire; SOLAR overtakes
        # the rest of the backlog.
        assert order[1] == "solar"
