"""The executor plane: futures, pools, pinning, crash recovery.

The contracts under test:

* ``map`` preserves argument order in its results regardless of backend
  or completion order, and retries each failed task once, serially, in
  the parent;
* ``worker=`` pins every call with the same index to the same process —
  the affinity the shard plane's per-process state depends on;
* worker processes use the ``spawn`` start method (no forked simulator
  state, identical semantics on every platform);
* ``REPRO_JOBS`` is validated loudly, not coerced.
"""

import multiprocessing
import os

import pytest

from repro.dist import executor as ex
from repro.lab.runner import JOBS_ENV, default_jobs, map_parallel


def square(x):
    return x * x


def fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x * 10


def crash_in_worker(x):
    # os._exit in a *worker* only: the parent retry then succeeds, which
    # is exactly the crash-recovery path map() promises.
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return x + 100


def worker_pid(_x):
    return os.getpid()


# ----------------------------------------------------------------------
# SerialExecutor
# ----------------------------------------------------------------------
def test_serial_map_order_and_stats():
    with ex.SerialExecutor() as pool:
        assert pool.map(square, [(i,) for i in range(6)]) == [
            0, 1, 4, 9, 16, 25
        ]
        assert pool.stats.submitted == 6
        assert pool.stats.completed == 6
        assert pool.stats.failed == 0


def test_serial_submit_future_error():
    with ex.SerialExecutor() as pool:
        future = pool.submit(fail_on_three, 3)
        pool.wait([future])
        assert future.status == ex.FAILED
        with pytest.raises(ex.TaskError, match="three is right out"):
            future.result()


# ----------------------------------------------------------------------
# LocalPoolExecutor
# ----------------------------------------------------------------------
def test_pool_map_order():
    with ex.LocalPoolExecutor(2) as pool:
        assert pool.map(square, [(i,) for i in range(8)]) == [
            i * i for i in range(8)
        ]


def test_pool_uses_spawn_start_method():
    assert ex.START_METHOD == "spawn"
    with ex.LocalPoolExecutor(1) as pool:
        assert pool._ctx.get_start_method() == "spawn"


def test_pool_worker_pinning():
    with ex.LocalPoolExecutor(2) as pool:
        futures = [
            pool.submit(worker_pid, i, worker=i % 2) for i in range(6)
        ]
        pool.wait(futures)
        pids = [f.result() for f in futures]
    # Same slot -> same process, different slots -> different processes.
    assert len({pids[0], pids[2], pids[4]}) == 1
    assert len({pids[1], pids[3], pids[5]}) == 1
    assert pids[0] != pids[1]
    for pid in pids:
        assert pid != os.getpid()


def test_pool_map_retries_failure_serially_then_raises():
    events = []
    with ex.LocalPoolExecutor(2, on_event=events.append) as pool:
        # The serial retry surfaces the *real* exception, not a wrapper —
        # that is the lab contract map_parallel documents.
        with pytest.raises(ValueError, match="three is right out"):
            pool.map(fail_on_three, [(i,) for i in range(5)])
        assert pool.stats.retried == 1  # the retry was attempted...
        assert pool.stats.failed >= 1  # ...and failed again
    assert any(e.status == ex.FAILED for e in events)


def test_pool_map_recovers_from_worker_crash():
    with ex.LocalPoolExecutor(2) as pool:
        results = pool.map(crash_in_worker, [(i,) for i in range(4)])
        assert results == [100, 101, 102, 103]
        assert pool.stats.crashes >= 1
        assert pool.stats.retried >= 1


def test_pool_submit_to_dead_slot_fails_loudly():
    with ex.LocalPoolExecutor(1) as pool:
        first = pool.submit(crash_in_worker, 0, worker=0)
        pool.wait([first])
        assert first.status == ex.FAILED
        with pytest.raises(ex.WorkerCrashError):
            first.result()
        # The slot stays dead: pinned work must not silently run inline.
        second = pool.submit(worker_pid, 0, worker=0)
        pool.wait([second])
        with pytest.raises(ex.WorkerCrashError):
            second.result()


def test_pool_unpicklable_args_run_inline():
    with ex.LocalPoolExecutor(1) as pool:
        future = pool.submit(square, 4)  # warm: normal path
        pool.wait([future])
        assert future.result() == 16
        bad = pool.submit(square, lambda: None)  # unpicklable arg
        pool.wait([bad])
        assert pool.stats.inline >= 1
        with pytest.raises(ex.TaskError):
            bad.result()


# ----------------------------------------------------------------------
# repro.lab integration (satellites: REPRO_JOBS validation, spawn pin)
# ----------------------------------------------------------------------
def test_default_jobs_validation(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv(JOBS_ENV, "3")
    assert default_jobs() == 3
    for bad in ("0", "-2", "abc", "1.5"):
        monkeypatch.setenv(JOBS_ENV, bad)
        with pytest.raises(ValueError, match=JOBS_ENV):
            default_jobs()


def test_map_parallel_rides_executor_plane():
    statuses = []

    def on_result(index, status, wall_s, result):
        statuses.append((index, status))

    results = map_parallel(
        square, [(i,) for i in range(4)], jobs=2, on_result=on_result
    )
    assert results == [0, 1, 4, 9]
    assert sorted(i for i, _ in statuses) == [0, 1, 2, 3]
    assert {s for _, s in statuses} == {"simulated"}
