"""Tests for metrics: latency stats, traces, time series."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.metrics.stats as stats_module
from repro.metrics import (
    Counter,
    IoTrace,
    LatencyStats,
    TimeSeries,
    TraceCollector,
    percentile,
)
from repro.metrics.stats import EMPTY_SUMMARY_US


class TestPercentile:
    def test_endpoints(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7], 95) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=200),
           st.floats(0, 100))
    @settings(max_examples=50)
    def test_bounded_by_extremes(self, values, p):
        values.sort()
        result = percentile(values, p)
        assert values[0] <= result <= values[-1]

    @given(st.lists(st.integers(0, 10**6), min_size=2, max_size=100))
    @settings(max_examples=30)
    def test_monotone_in_p(self, values):
        values.sort()
        ps = [percentile(values, p) for p in (10, 50, 90, 99)]
        assert all(a <= b for a, b in zip(ps, ps[1:]))


class TestLatencyStats:
    def test_summary_units(self):
        stats = LatencyStats("t")
        stats.extend([1_000, 2_000, 3_000])
        summary = stats.summary_us()
        assert summary["mean_us"] == 2.0
        assert summary["count"] == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1)

    def test_mean_of_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats("x").mean()

    def test_counter(self):
        c = Counter("ios")
        c.add(10)
        assert c.per_second(2_000_000_000) == 5.0
        with pytest.raises(ValueError):
            c.add(-1)

    def test_empty_summary_is_zero_row(self):
        summary = LatencyStats("idle").summary_us()
        assert summary == EMPTY_SUMMARY_US
        # The shared constant must not be mutable through the return value.
        summary["count"] = 99
        assert LatencyStats("idle").summary_us()["count"] == 0

    def test_empty_bounded_summary_is_zero_row(self):
        assert LatencyStats("idle", bounded=True).summary_us() == EMPTY_SUMMARY_US

    def test_summary_sorts_once(self, monkeypatch):
        calls = []
        real_sorted = sorted

        def counting_sorted(*args, **kwargs):
            calls.append(1)
            return real_sorted(*args, **kwargs)

        # Shadow the builtin inside the stats module only.
        monkeypatch.setattr(stats_module, "sorted", counting_sorted, raising=False)
        stats = LatencyStats("t")
        stats.extend([5_000, 1_000, 3_000, 2_000])
        stats.summary_us()  # three percentiles + max: one sort
        assert len(calls) == 1
        stats.p(50)
        stats.p(99)  # unchanged sample count: cached order
        assert len(calls) == 1
        stats.record(4_000)
        stats.summary_us()  # new sample: exactly one re-sort
        assert len(calls) == 2

    def test_bounded_mode_tracks_exact_within_relative_error(self):
        rng = random.Random(7)
        samples = [max(1, int(rng.lognormvariate(11.0, 0.7))) for _ in range(10_000)]
        exact = LatencyStats("exact")
        bounded = LatencyStats("bounded", bounded=True)
        exact.extend(samples)
        bounded.extend(samples)
        assert bounded.samples == []  # O(1) memory: no sample retained
        assert bounded.count == len(samples)
        for pct in (50, 95, 99):
            rel = abs(bounded.p(pct) - exact.p(pct)) / exact.p(pct)
            assert rel <= 0.02, f"p{pct} off by {rel:.2%}"
        assert bounded.mean() == pytest.approx(exact.mean())

    def test_bounded_merge_and_mode_mixing(self):
        a = LatencyStats("a", bounded=True)
        b = LatencyStats("b", bounded=True)
        a.extend([1_000, 2_000])
        b.extend([3_000, 4_000])
        pooled = LatencyStats.merged([a, b])
        assert pooled.count == 4
        assert pooled.summary_us()["max_us"] == 4.0
        plain = LatencyStats("plain")
        plain.record(5_000)
        with pytest.raises(ValueError):
            LatencyStats.merged([a, plain])

    def test_bounded_cannot_start_from_samples(self):
        with pytest.raises(ValueError):
            LatencyStats("x", samples=[1, 2], bounded=True)


class TestIoTrace:
    def _trace(self):
        return IoTrace(1, "write", 4096, submit_ns=100)

    def test_component_accumulation(self):
        t = self._trace()
        t.add("fn", 10)
        t.add("fn", 5)
        assert t.components["fn"] == 15

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            self._trace().add("gpu", 1)

    def test_total_requires_completion(self):
        t = self._trace()
        with pytest.raises(ValueError):
            _ = t.total_ns
        t.complete(600)
        assert t.total_ns == 500

    def test_unattributed(self):
        t = self._trace()
        t.add("sa", 100)
        t.complete(600)
        assert t.unattributed_ns() == 400

    def test_collector_percentiles(self):
        collector = TraceCollector()
        for i, total in enumerate((100, 200, 300)):
            t = IoTrace(i, "write", 4096, 0)
            t.add("fn", total)
            t.complete(total)
            collector.record(t)
        assert collector.total_percentile(50) == 200
        assert collector.component_percentile("fn", 100) == 300

    def test_collector_filters_by_kind(self):
        collector = TraceCollector()
        for kind in ("read", "write"):
            t = IoTrace(1, kind, 4096, 0)
            t.complete(10)
            collector.record(t)
        assert len(collector.completed("read")) == 1

    def test_collector_excludes_failures_by_default(self):
        collector = TraceCollector()
        t = IoTrace(1, "write", 4096, 0)
        t.complete(10, ok=False, error="boom")
        collector.record(t)
        assert collector.completed() == []
        assert len(collector.completed(ok_only=False)) == 1

    def test_incomplete_trace_not_recordable(self):
        with pytest.raises(ValueError):
            TraceCollector().record(self._trace())

    def test_breakdown_us(self):
        collector = TraceCollector()
        t = IoTrace(1, "write", 4096, 0)
        t.add("sa", 5_000)
        t.add("fn", 15_000)
        t.complete(20_000)
        collector.record(t)
        assert collector.breakdown_us(50) == {
            "sa": 5.0, "fn": 15.0, "bn": 0.0, "ssd": 0.0
        }

    def test_mark_overwrite_keeps_last_stamp(self):
        # Retried RPCs re-stamp the same stage; the trace must keep the
        # critical path, i.e. the most recent mark.
        t = self._trace()
        t.mark("fn:tx", 200)
        t.mark("fn:tx", 450)
        assert t.marks["fn:tx"] == 450
        t.mark("fn:tx", 300)  # an even later overwrite still wins
        assert t.marks["fn:tx"] == 300

    def test_error_trace_keeps_breakdown_and_total(self):
        t = self._trace()
        t.add("sa", 30)
        t.add("fn", 70)
        t.complete(600, ok=False, error="media error")
        assert not t.ok
        assert t.error == "media error"
        assert t.total_ns == 500  # timing survives the failure
        assert t.components["sa"] == 30

    def test_error_traces_excluded_from_percentiles(self):
        collector = TraceCollector()
        t = self._trace()
        t.complete(600, ok=False, error="boom")
        collector.record(t)
        with pytest.raises(ValueError):
            collector.total_percentile(50)  # ok-only view is empty
        failed = collector.completed(ok_only=False)
        assert len(failed) == 1 and failed[0].error == "boom"

    def test_subscribers_stream_each_record(self):
        seen = []
        collector = TraceCollector()
        collector.subscribe(seen.append)
        t = IoTrace(1, "write", 4096, 0)
        t.complete(10)
        collector.record(t)
        assert seen == [t]
        with pytest.raises(ValueError):
            collector.record(self._trace())  # incomplete: not streamed
        assert seen == [t]

    def test_component_sum_consistent_with_end_to_end(self):
        # On live simulated I/Os, the four component durations must never
        # exceed the end-to-end latency, and the unattributed remainder
        # must stay non-negative (Figure 6's bars fit under the total).
        from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk

        dep = EbsDeployment(DeploymentSpec(stack="luna", seed=3))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 64 * 1024 * 1024)
        for i in range(20):
            vd.write(i * 4096, 4096, lambda io: None)
        dep.run()
        traces = dep.collector.completed()
        assert len(traces) == 20
        for t in traces:
            attributed = sum(t.components.values())
            assert 0 < attributed <= t.total_ns
            assert t.unattributed_ns() >= 0


class TestTimeSeries:
    def test_bucketing(self):
        ts = TimeSeries("iops", bucket_ns=1_000)
        ts.add(100)
        ts.add(999)
        ts.add(1_000)
        assert ts.buckets() == [(0, 2.0), (1_000, 1.0)]

    def test_rates(self):
        ts = TimeSeries("iops", bucket_ns=1_000_000_000)
        for _ in range(500):
            ts.add(0)
        assert ts.rates_per_second()[0][1] == 500.0

    def test_total(self):
        ts = TimeSeries("bytes", bucket_ns=10)
        ts.add(5, 100.0)
        ts.add(15, 200.0)
        assert ts.total() == 300.0

    def test_bucket_width_validated(self):
        with pytest.raises(ValueError):
            TimeSeries("x", 0)
