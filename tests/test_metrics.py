"""Tests for metrics: latency stats, traces, time series."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Counter,
    IoTrace,
    LatencyStats,
    TimeSeries,
    TraceCollector,
    percentile,
)


class TestPercentile:
    def test_endpoints(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7], 95) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=200),
           st.floats(0, 100))
    @settings(max_examples=50)
    def test_bounded_by_extremes(self, values, p):
        values.sort()
        result = percentile(values, p)
        assert values[0] <= result <= values[-1]

    @given(st.lists(st.integers(0, 10**6), min_size=2, max_size=100))
    @settings(max_examples=30)
    def test_monotone_in_p(self, values):
        values.sort()
        ps = [percentile(values, p) for p in (10, 50, 90, 99)]
        assert all(a <= b for a, b in zip(ps, ps[1:]))


class TestLatencyStats:
    def test_summary_units(self):
        stats = LatencyStats("t")
        stats.extend([1_000, 2_000, 3_000])
        summary = stats.summary_us()
        assert summary["mean_us"] == 2.0
        assert summary["count"] == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1)

    def test_mean_of_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats("x").mean()

    def test_counter(self):
        c = Counter("ios")
        c.add(10)
        assert c.per_second(2_000_000_000) == 5.0
        with pytest.raises(ValueError):
            c.add(-1)


class TestIoTrace:
    def _trace(self):
        return IoTrace(1, "write", 4096, submit_ns=100)

    def test_component_accumulation(self):
        t = self._trace()
        t.add("fn", 10)
        t.add("fn", 5)
        assert t.components["fn"] == 15

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            self._trace().add("gpu", 1)

    def test_total_requires_completion(self):
        t = self._trace()
        with pytest.raises(ValueError):
            _ = t.total_ns
        t.complete(600)
        assert t.total_ns == 500

    def test_unattributed(self):
        t = self._trace()
        t.add("sa", 100)
        t.complete(600)
        assert t.unattributed_ns() == 400

    def test_collector_percentiles(self):
        collector = TraceCollector()
        for i, total in enumerate((100, 200, 300)):
            t = IoTrace(i, "write", 4096, 0)
            t.add("fn", total)
            t.complete(total)
            collector.record(t)
        assert collector.total_percentile(50) == 200
        assert collector.component_percentile("fn", 100) == 300

    def test_collector_filters_by_kind(self):
        collector = TraceCollector()
        for kind in ("read", "write"):
            t = IoTrace(1, kind, 4096, 0)
            t.complete(10)
            collector.record(t)
        assert len(collector.completed("read")) == 1

    def test_collector_excludes_failures_by_default(self):
        collector = TraceCollector()
        t = IoTrace(1, "write", 4096, 0)
        t.complete(10, ok=False, error="boom")
        collector.record(t)
        assert collector.completed() == []
        assert len(collector.completed(ok_only=False)) == 1

    def test_incomplete_trace_not_recordable(self):
        with pytest.raises(ValueError):
            TraceCollector().record(self._trace())

    def test_breakdown_us(self):
        collector = TraceCollector()
        t = IoTrace(1, "write", 4096, 0)
        t.add("sa", 5_000)
        t.add("fn", 15_000)
        t.complete(20_000)
        collector.record(t)
        assert collector.breakdown_us(50) == {
            "sa": 5.0, "fn": 15.0, "bn": 0.0, "ssd": 0.0
        }


class TestTimeSeries:
    def test_bucketing(self):
        ts = TimeSeries("iops", bucket_ns=1_000)
        ts.add(100)
        ts.add(999)
        ts.add(1_000)
        assert ts.buckets() == [(0, 2.0), (1_000, 1.0)]

    def test_rates(self):
        ts = TimeSeries("iops", bucket_ns=1_000_000_000)
        for _ in range(500):
            ts.add(0)
        assert ts.rates_per_second()[0][1] == 500.0

    def test_total(self):
        ts = TimeSeries("bytes", bucket_ns=10)
        ts.add(5, 100.0)
        ts.add(15, 200.0)
        assert ts.total() == 300.0

    def test_bucket_width_validated(self):
        with pytest.raises(ValueError):
            TimeSeries("x", 0)
