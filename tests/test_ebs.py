"""Tests for the EBS assembly: deployments, virtual disks, the software
SA, RPC service, and the evolution model."""

import pytest

from repro.agent.base import IoRequest
from repro.ebs import (
    DEFAULT_ROLLOUT,
    DeploymentSpec,
    EbsDeployment,
    QUARTERS,
    StackSteadyState,
    VirtualDisk,
    fleet_evolution,
)
from repro.profiles import BLOCK_SIZE


def deploy(stack="luna", **kwargs):
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=7, **kwargs))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 128 * 1024 * 1024)
    return dep, vd


def one_io(dep, vd, kind, offset=0, size=BLOCK_SIZE, data=None):
    done = []
    if kind == "write":
        vd.write(offset, size, done.append, data=data)
    else:
        vd.read(offset, size, done.append)
    dep.run()
    assert done
    return done[0]


class TestDeploymentSpec:
    def test_stack_validated(self):
        with pytest.raises(ValueError):
            DeploymentSpec(stack="quic")

    def test_default_hosting_per_stack(self):
        assert DeploymentSpec(stack="kernel").effective_hosting == "vm"
        assert DeploymentSpec(stack="luna").effective_hosting == "vm"
        assert DeploymentSpec(stack="solar").effective_hosting == "bare_metal"
        assert DeploymentSpec(stack="solar_star").effective_hosting == "bare_metal"

    def test_bn_default(self):
        # Figure 6 caption: kernel era is kernel-TCP end to end; LUNA and
        # SOLAR run RDMA in the BN.
        assert DeploymentSpec(stack="kernel").effective_bn == "kernel"
        assert DeploymentSpec(stack="luna").effective_bn == "rdma"
        assert DeploymentSpec(stack="solar").effective_bn == "rdma"


class TestEndToEnd:
    @pytest.mark.parametrize("stack", ["kernel", "luna", "rdma", "solar", "solar_star"])
    def test_write_and_read_complete(self, stack):
        dep, vd = deploy(stack)
        w = one_io(dep, vd, "write")
        r = one_io(dep, vd, "read")
        assert w.trace.ok and r.trace.ok
        assert w.trace.total_ns > 0 and r.trace.total_ns > 0

    def test_latency_ordering_matches_figure6(self):
        """Median-style single-I/O ordering: kernel >> luna > solar."""
        totals = {}
        for stack in ("kernel", "luna", "solar"):
            dep, vd = deploy(stack)
            totals[stack] = one_io(dep, vd, "write").trace.total_ns
        assert totals["kernel"] > 2 * totals["luna"]
        assert totals["luna"] > totals["solar"]

    def test_sa_reduction_luna_to_solar(self):
        """Figure 6c: SOLAR cuts the SA's (clean-run) latency hard."""
        sa = {}
        for stack in ("luna", "solar"):
            dep, vd = deploy(stack)
            sa[stack] = one_io(dep, vd, "write").trace.components["sa"]
        assert sa["solar"] < sa["luna"] * 0.45

    def test_multi_block_io(self):
        dep, vd = deploy("luna")
        io = one_io(dep, vd, "write", size=64 * 1024)
        assert io.trace.ok

    def test_io_spanning_segments(self):
        dep, vd = deploy("solar")
        # Segment = 2MB; write across the first boundary.
        io = one_io(dep, vd, "write", offset=2 * 1024 * 1024 - 2 * BLOCK_SIZE,
                    size=4 * BLOCK_SIZE)
        assert io.trace.ok

    def test_many_concurrent_ios(self):
        dep, vd = deploy("solar")
        done = []
        for i in range(40):
            vd.write(i * BLOCK_SIZE, BLOCK_SIZE, done.append)
        dep.run()
        assert len(done) == 40 and all(io.trace.ok for io in done)

    def test_traces_collected(self):
        dep, vd = deploy("luna")
        one_io(dep, vd, "write")
        one_io(dep, vd, "read")
        assert len(dep.collector.traces) == 2
        assert dep.collector.breakdown_us(50, "write")["fn"] > 0

    def test_write_payload_round_trips_through_storage(self):
        dep, vd = deploy("luna")
        payload = bytes([i % 251 for i in range(BLOCK_SIZE)])
        one_io(dep, vd, "write", data=payload)
        stored = [s for c in dep.chunk_servers.values() for s in c.store.values()]
        assert stored and all(data == payload for data, _crc in stored)

    def test_encrypted_payload_is_ciphertext_at_rest(self):
        dep, vd = deploy("luna", encrypt_payloads=True)
        payload = b"\x00" * BLOCK_SIZE
        one_io(dep, vd, "write", data=payload)
        stored = [s for c in dep.chunk_servers.values() for s in c.store.values()]
        assert stored and all(data != payload for data, _crc in stored)

    def test_vd_range_checks(self):
        dep, vd = deploy("luna")
        with pytest.raises(ValueError):
            vd.write(vd.size_bytes, BLOCK_SIZE, lambda io: None)
        with pytest.raises(ValueError):
            vd.write(1, BLOCK_SIZE, lambda io: None)

    def test_unknown_host_rejected(self):
        dep, _vd = deploy("luna")
        with pytest.raises(KeyError):
            dep.agent_for("cp/r9/h9")

    def test_base_rtt_estimate_positive(self):
        dep, _vd = deploy("solar")
        rtt = dep.base_rtt_ns(dep.compute_host_names()[0],
                              sorted(dep.storage_servers)[0])
        assert 5_000 < rtt < 50_000  # microseconds-scale fabric


class TestIoRequestValidation:
    def test_kind_checked(self):
        with pytest.raises(ValueError):
            IoRequest("erase", "vd", 0, 4096, lambda io: None)

    def test_alignment_checked(self):
        with pytest.raises(ValueError):
            IoRequest("read", "vd", 100, 4096, lambda io: None)

    def test_payload_only_on_writes(self):
        with pytest.raises(ValueError):
            IoRequest("read", "vd", 0, 4096, lambda io: None, data=b"x" * 4096)

    def test_block_count(self):
        io = IoRequest("read", "vd", 0, 10_000, lambda io: None)
        assert io.num_blocks == 3


class TestEvolution:
    def _steady(self):
        return {
            "kernel": StackSteadyState(avg_latency_us=250.0, iops_per_server=70_000),
            "luna": StackSteadyState(avg_latency_us=90.0, iops_per_server=190_000),
            "solar": StackSteadyState(avg_latency_us=65.0, iops_per_server=240_000),
        }

    def test_latency_monotonically_improves(self):
        points = fleet_evolution(self._steady())
        latencies = [p.avg_latency_us for p in points]
        assert all(a >= b for a, b in zip(latencies, latencies[1:]))

    def test_headline_reduction_and_iops_scaleup(self):
        # Figure 7: 72% average-latency reduction, ~3x IOPS over the window.
        points = fleet_evolution(self._steady())
        reduction = 1 - points[-1].avg_latency_us / points[0].avg_latency_us
        assert reduction > 0.60
        assert points[-1].iops_per_server / points[0].iops_per_server > 2.0

    def test_normalization(self):
        points = fleet_evolution(self._steady())
        assert points[0].latency_vs_19q1 == pytest.approx(1.0)
        assert points[-1].iops_vs_21q4 == pytest.approx(1.0)

    def test_rollout_rows_sum_to_one(self):
        for quarter in QUARTERS:
            assert sum(DEFAULT_ROLLOUT[quarter].values()) == pytest.approx(1.0)

    def test_missing_stack_rejected(self):
        with pytest.raises(KeyError):
            fleet_evolution({"kernel": StackSteadyState(1, 1)})
