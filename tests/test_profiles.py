"""Tests for the calibration profiles and their paper-anchored invariants."""

import dataclasses

import pytest

from repro.profiles import (
    BLOCK_SIZE,
    DEFAULT,
    NetworkProfile,
    bytes_time_ns,
)


class TestInvariants:
    """The relationships the paper states must hold between constants."""

    def test_block_size_is_4k(self):
        # §2.2: blocks are 4KB, "consistent with SSD's sector size".
        assert BLOCK_SIZE == 4096

    def test_luna_is_much_cheaper_than_kernel(self):
        # Table 1: LUNA's per-RPC stack latency and per-packet CPU are
        # several times below the kernel stack's.
        assert DEFAULT.kernel_tcp.stack_latency_ns > 5 * DEFAULT.luna.stack_latency_ns
        assert DEFAULT.kernel_tcp.per_packet_cpu_ns > 3 * DEFAULT.luna.per_packet_cpu_ns

    def test_luna_is_zero_copy(self):
        # §3.2: zero-copy across SA and RPC.
        assert DEFAULT.luna.per_byte_cpu_ns == 0.0

    def test_kernel_rto_floor_is_200ms(self):
        assert DEFAULT.kernel_tcp.min_rto_ns == 200_000_000

    def test_ssd_write_cache_below_nand_read(self):
        # §2.3: writes land in the cache, "one to two orders of magnitude
        # faster than kernel TCP"; reads pay NAND.
        assert DEFAULT.ssd.write_cache_ns < DEFAULT.ssd.nand_read_ns / 3
        assert DEFAULT.ssd.write_cache_ns < DEFAULT.kernel_tcp.stack_latency_ns * 4

    def test_three_replicas(self):
        assert DEFAULT.ssd.replicas == 3

    def test_dpu_shape(self):
        # §4.2: six infrastructure cores, 2x25GE, internal PCIe well under
        # 100G and under the aggregate Ethernet rate.
        assert DEFAULT.dpu.cpu_cores == 6
        assert DEFAULT.dpu.ethernet_ports * DEFAULT.dpu.ethernet_gbps == 50.0
        assert DEFAULT.pcie.dpu_internal_gbps < 100.0

    def test_jumbo_fits_one_block(self):
        # §4.4: one 4KB block + headers must fit one jumbo frame.
        assert DEFAULT.network.mtu_bytes >= BLOCK_SIZE + 256

    def test_solar_cpu_budget_near_150k_iops(self):
        # §4.8: ~150K IOPS per core → total control CPU per I/O ~6.6us.
        s = DEFAULT.solar
        per_io = (s.cpu_issue_critical_ns + s.cpu_issue_async_ns
                  + s.cpu_complete_critical_ns + s.cpu_complete_async_ns)
        iops_per_core = 1e9 / per_io
        assert 120_000 < iops_per_core < 200_000

    def test_solar_four_paths(self):
        assert DEFAULT.solar.num_paths == 4  # §4.5 "e.g., 4"

    def test_rdma_cliff_at_5000(self):
        assert DEFAULT.rdma.connection_cliff == 5_000  # §3.1


class TestOverrides:
    def test_field_override(self):
        p = DEFAULT.with_overrides(network={"access_gbps": 100.0})
        assert p.network.access_gbps == 100.0
        assert DEFAULT.network.access_gbps == 25.0  # original untouched

    def test_section_override(self):
        net = NetworkProfile(access_gbps=10.0)
        p = DEFAULT.with_overrides(network=net)
        assert p.network is net

    def test_unknown_section_rejected(self):
        with pytest.raises(AttributeError):
            DEFAULT.with_overrides(gpu={"x": 1})

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            DEFAULT.with_overrides(network={"warp_speed": 9})

    def test_profiles_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT.network.access_gbps = 1.0  # type: ignore[misc]


class TestBytesTime:
    def test_exact_values(self):
        assert bytes_time_ns(1250, 10.0) == 1000  # 1250B @ 10G = 1us
        assert bytes_time_ns(0, 10.0) == 0

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            bytes_time_ns(1, 0)

    def test_scales_inversely_with_rate(self):
        assert bytes_time_ns(9000, 25.0) == pytest.approx(
            4 * bytes_time_ns(9000, 100.0), rel=0.01
        )
