"""Reproducibility guarantees: identical seeds give identical runs.

Every experiment in this repository is expected to be exactly
reproducible from its seed — that is what makes the benchmark assertions
meaningful.  These tests run whole deployments twice and compare
event-level outcomes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.sim import MS, Simulator
from repro.sim.sched import SCHEDULERS
from repro.workloads import FioSpec, run_fio


def run_deployment(stack: str, seed: int, drop_rate: float = 0.0,
                   scheduler: str = None):
    sim = Simulator(seed=seed, scheduler=scheduler) if scheduler else None
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=seed), sim=sim)
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 128 * 1024 * 1024)
    if drop_rate:
        for sw in dep.topology.switches_by_tier("spine"):
            sw.set_drop_rate(drop_rate)
    results = run_fio(dep.sim, [vd],
                      FioSpec(block_sizes=(4096, 16384), iodepth=8,
                              read_fraction=0.3, runtime_ns=4 * MS))
    r = results["vd0"]
    return (
        r.completed,
        r.bytes_moved,
        tuple(r.latency.samples),
        dep.sim.events_processed,
    )


class TestDeterminism:
    @pytest.mark.parametrize("stack", ["kernel", "luna", "solar"])
    def test_identical_seed_identical_run(self, stack):
        assert run_deployment(stack, seed=1234) == run_deployment(stack, seed=1234)

    def test_identical_under_loss(self):
        a = run_deployment("solar", seed=77, drop_rate=0.2)
        b = run_deployment("solar", seed=77, drop_rate=0.2)
        assert a == b

    def test_different_seed_different_run(self):
        assert run_deployment("solar", seed=1) != run_deployment("solar", seed=2)

    @pytest.mark.parametrize("stack", ["kernel", "luna", "solar"])
    def test_identical_across_scheduler_implementations(self, stack):
        # The event queue is pluggable (repro.sim.sched); detailed-mode
        # artifacts must be byte-identical under every implementation —
        # same completions, bytes, latency samples, events_processed.
        runs = [run_deployment(stack, seed=1234, scheduler=name)
                for name in sorted(SCHEDULERS)]
        assert all(r == runs[0] for r in runs[1:])

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=5, deadline=None)
    def test_any_seed_is_reproducible(self, seed):
        dep_a = EbsDeployment(DeploymentSpec(stack="solar", seed=seed))
        vd_a = VirtualDisk(dep_a, "v", dep_a.compute_host_names()[0], 64 * 1024 * 1024)
        done_a = []
        vd_a.write(0, 16 * 1024, done_a.append)
        dep_a.run()

        dep_b = EbsDeployment(DeploymentSpec(stack="solar", seed=seed))
        vd_b = VirtualDisk(dep_b, "v", dep_b.compute_host_names()[0], 64 * 1024 * 1024)
        done_b = []
        vd_b.write(0, 16 * 1024, done_b.append)
        dep_b.run()

        assert done_a[0].trace.total_ns == done_b[0].trace.total_ns
        assert done_a[0].trace.components == done_b[0].trace.components
