"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Luna to Solar" in out

    def test_no_command_defaults_to_info(self, capsys):
        assert main([]) == 0
        assert "stacks" in capsys.readouterr().out

    def test_latency_breakdown(self, capsys):
        assert main(["latency", "--stack", "luna", "--size-kb", "4"]) == 0
        out = capsys.readouterr().out
        for component in ("sa", "fn", "bn", "ssd"):
            assert component in out

    def test_bad_stack_rejected(self):
        with pytest.raises(SystemExit):
            main(["latency", "--stack", "quic"])

    def test_failover_solar_zero_hangs(self, capsys):
        assert main(["failover", "--stack", "solar"]) == 0
        out = capsys.readouterr().out
        assert "0 hung" in out

    def test_failover_luna_hangs_exit_nonzero(self, capsys):
        # The scriptable contract: hangs detected -> exit code 2.
        assert main(["failover", "--stack", "luna", "--until-ms", "1200"]) == 2
        out = capsys.readouterr().out
        assert "hung >= 1s" in out
        assert "0 hung" not in out

    def test_failover_until_ms_bounds_the_run(self, capsys):
        assert main(["failover", "--stack", "solar", "--until-ms", "1200"]) == 0
        short = capsys.readouterr().out
        assert main(["failover", "--stack", "solar"]) == 0
        full = capsys.readouterr().out
        watched = lambda text: int(text.split(":")[1].split()[0])  # noqa: E731
        assert watched(short) < watched(full)


def sweep_args(seeds="0,1", *extra):
    return [
        "sweep", "--stacks", "solar", "--seeds", seeds, "--jobs", "2",
        "--iodepth", "4", "--runtime-ms", "1", "--block-sizes-kb", "4",
        "--vd-size-mb", "64", "--name", "clitest", *extra,
    ]


class TestSweepCli:
    def test_sweep_simulates_then_serves_from_cache(self, tmp_path, capsys):
        args = sweep_args("0,1", "--store", str(tmp_path / "lab"))
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "simulated" in first
        assert "clitest/solar" in first
        assert "2 simulated, 0 cached" in first

        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 simulated, 2 cached" in second
        # identical aggregate rows either way
        row = [l for l in first.splitlines() if l.startswith("clitest/solar")]
        assert row == [l for l in second.splitlines() if l.startswith("clitest/solar")]

    def test_sweep_json_output(self, tmp_path, capsys):
        import json

        args = sweep_args("0", "--store", str(tmp_path / "lab"), "--json")
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["telemetry"]["total"] == 1
        assert payload["experiments"][0]["stack"] == "solar"
        assert payload["experiments"][0]["completed"] > 0
        assert len(payload["digests"]) == 1

    def test_sweep_rejects_unknown_stack(self, capsys):
        assert main(["sweep", "--stacks", "quic", "--no-store"]) == 2
        assert "unknown stack" in capsys.readouterr().err

    def test_sweep_no_store_skips_artifacts(self, capsys):
        assert main(sweep_args("0", "--no-store")) == 0
        out = capsys.readouterr().out
        assert "artifacts:" not in out
