"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Luna to Solar" in out

    def test_no_command_defaults_to_info(self, capsys):
        assert main([]) == 0
        assert "stacks" in capsys.readouterr().out

    def test_latency_breakdown(self, capsys):
        assert main(["latency", "--stack", "luna", "--size-kb", "4"]) == 0
        out = capsys.readouterr().out
        for component in ("sa", "fn", "bn", "ssd"):
            assert component in out

    def test_bad_stack_rejected(self):
        with pytest.raises(SystemExit):
            main(["latency", "--stack", "quic"])

    def test_failover_solar_zero_hangs(self, capsys):
        assert main(["failover", "--stack", "solar"]) == 0
        out = capsys.readouterr().out
        assert "0 hung" in out
