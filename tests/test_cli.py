"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Luna to Solar" in out

    def test_no_command_defaults_to_info(self, capsys):
        assert main([]) == 0
        assert "stacks" in capsys.readouterr().out

    def test_latency_breakdown(self, capsys):
        assert main(["latency", "--stack", "luna", "--size-kb", "4"]) == 0
        out = capsys.readouterr().out
        for component in ("sa", "fn", "bn", "ssd"):
            assert component in out

    def test_bad_stack_rejected(self):
        with pytest.raises(SystemExit):
            main(["latency", "--stack", "quic"])

    def test_failover_solar_zero_hangs(self, capsys):
        assert main(["failover", "--stack", "solar"]) == 0
        out = capsys.readouterr().out
        assert "0 hung" in out

    def test_failover_luna_hangs_exit_nonzero(self, capsys):
        # The scriptable contract: hangs detected -> exit code 2.
        assert main(["failover", "--stack", "luna", "--until-ms", "1200"]) == 2
        out = capsys.readouterr().out
        assert "hung >= 1s" in out
        assert "0 hung" not in out

    def test_failover_until_ms_bounds_the_run(self, capsys):
        assert main(["failover", "--stack", "solar", "--until-ms", "1200"]) == 0
        short = capsys.readouterr().out
        assert main(["failover", "--stack", "solar"]) == 0
        full = capsys.readouterr().out
        watched = lambda text: int(text.split(":")[1].split()[0])  # noqa: E731
        assert watched(short) < watched(full)

    def test_failover_window_shorter_than_threshold_errors(self, capsys):
        # Regression: the old `until // 4` issue window silently watched
        # zero I/Os on short runs and reported a vacuous "0 hung".  A
        # window that cannot watch a single I/O to its hang deadline is
        # now a usage error, not a fake pass.
        assert main(["failover", "--stack", "solar", "--until-ms", "800"]) == 2
        captured = capsys.readouterr()
        assert "shorter than the 1000ms hang threshold" in captured.err
        assert "0 hung" not in captured.out

    def test_failover_watches_at_least_one_io(self, capsys):
        # The issue window is until - threshold, so any accepted window
        # watches a non-vacuous number of I/Os.
        assert main(["failover", "--stack", "solar", "--until-ms", "1100"]) == 0
        out = capsys.readouterr().out
        watched = int(out.split(":")[1].split()[0])
        assert watched >= 1


def sweep_args(seeds="0,1", *extra):
    return [
        "sweep", "--stacks", "solar", "--seeds", seeds, "--jobs", "2",
        "--iodepth", "4", "--runtime-ms", "1", "--block-sizes-kb", "4",
        "--vd-size-mb", "64", "--name", "clitest", *extra,
    ]


class TestSweepCli:
    def test_sweep_simulates_then_serves_from_cache(self, tmp_path, capsys):
        args = sweep_args("0,1", "--store", str(tmp_path / "lab"))
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "simulated" in first
        assert "clitest/solar" in first
        assert "2 simulated, 0 cached" in first

        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 simulated, 2 cached" in second
        # identical aggregate rows either way
        row = [line for line in first.splitlines() if line.startswith("clitest/solar")]
        assert row == [line for line in second.splitlines()
                       if line.startswith("clitest/solar")]

    def test_sweep_json_output(self, tmp_path, capsys):
        import json

        args = sweep_args("0", "--store", str(tmp_path / "lab"), "--json")
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["telemetry"]["total"] == 1
        assert payload["experiments"][0]["stack"] == "solar"
        assert payload["experiments"][0]["completed"] > 0
        assert len(payload["digests"]) == 1

    def test_sweep_rejects_unknown_stack(self, capsys):
        assert main(["sweep", "--stacks", "quic", "--no-store"]) == 2
        assert "unknown stack" in capsys.readouterr().err

    def test_sweep_no_store_skips_artifacts(self, capsys):
        assert main(sweep_args("0", "--no-store")) == 0
        out = capsys.readouterr().out
        assert "artifacts:" not in out


def upgrade_args(*extra):
    return [
        "upgrade", "--from", "kernel", "--to", "luna", "--servers", "4",
        "--waves", "2", "--vd-size-mb", "32", *extra,
    ]


class TestUpgradeCli:
    def test_upgrade_drill_runs_clean(self, capsys):
        assert main(upgrade_args("--seed", "42", "--no-store")) == 0
        out = capsys.readouterr().out
        assert "rolling upgrade kernel -> luna" in out
        assert "availability" in out
        assert "0 hung" in out
        # One row per wave: baseline + 2 upgrade waves + settle.
        assert out.count("upgrade   ") >= 2
        assert "baseline" in out and "settle" in out

    def test_upgrade_served_from_cache_second_time(self, tmp_path, capsys):
        args = upgrade_args("--seed", "7", "--store", str(tmp_path / "lab"))
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "1 written" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "1 cache hits" in second
        # The rendered wave tables are identical either way.
        tail = lambda text: text.splitlines()[1:10]  # noqa: E731
        assert tail(first) == tail(second)

    def test_upgrade_json_output(self, capsys):
        import json

        assert main(upgrade_args("--seed", "0", "--no-store", "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["hangs"] == 0
        assert payload["consistent"] is True
        seed = payload["seeds"][0]
        assert seed["terminal_mix"]["luna"] == 1.0
        assert len(seed["waves"]) == 4
        assert all(0.9 <= w["availability"] <= 1.0 for w in seed["waves"])

    def test_upgrade_rejects_backward_rollout(self, capsys):
        # argparse constrains --from/--to choices, so exercise the spec
        # validation through equal stacks.
        assert main(["upgrade", "--from", "luna", "--to", "luna",
                     "--no-store"]) == 2
        assert "forward" in capsys.readouterr().err
