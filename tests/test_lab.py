"""The experiment lab: specs, content-addressed store, parallel runner.

The load-bearing guarantees:

* a point artifact is a pure function of (spec, seed, version) — running
  the same sweep with ``jobs=1`` and ``jobs=4`` produces byte-identical
  artifacts;
* a cache hit skips simulation entirely (observable via run telemetry);
* a crashed/failed worker task is retried once, serially.
"""

import json
import os

import pytest

from repro.ebs import DeploymentSpec
from repro.lab import (
    ExperimentSpec,
    FaultSpec,
    ResultStore,
    WorkloadSpec,
    aggregate,
    canonical_json,
    execute_point,
    map_parallel,
    run_sweep,
    stack_sweep,
)
from repro.lab.runner import _simulate_point
from repro.metrics.stats import mean_ci
from repro.sim import MS

#: Smallest deployment that still replicates writes 3 ways.
SMALL = DeploymentSpec(
    compute_racks=1, compute_hosts_per_rack=1,
    storage_racks=2, storage_hosts_per_rack=2,
)


def small_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        deployment=SMALL,
        workload=WorkloadSpec(mode="fio", iodepth=4, runtime_ns=2 * MS),
        seeds=(0, 1),
        name="lab-test",
        vd_size_mb=64,
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestSpec:
    def test_json_round_trip(self):
        spec = small_spec(
            faults=(FaultSpec(kind="switch_blackhole", target="spine", param=0.5),),
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_digest_stable_and_seed_dependent(self):
        spec = small_spec()
        assert spec.point_digest(0) == spec.point_digest(0)
        assert spec.point_digest(0) != spec.point_digest(1)

    def test_digest_covers_simulation_inputs(self):
        base = small_spec()
        assert base.with_stack("luna").point_digest(0) != base.point_digest(0)
        deeper = small_spec(workload=WorkloadSpec(mode="fio", iodepth=8, runtime_ns=2 * MS))
        assert deeper.point_digest(0) != base.point_digest(0)

    def test_name_is_not_part_of_the_digest(self):
        assert (
            small_spec(name="a").point_digest(0) == small_spec(name="b").point_digest(0)
        )

    def test_unknown_seed_rejected(self):
        with pytest.raises(ValueError):
            small_spec().point_digest(99)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(mode="nope")
        with pytest.raises(ValueError):
            WorkloadSpec(mode="fio", iodepth=0)
        with pytest.raises(ValueError):
            WorkloadSpec(mode="trace", records=())
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor-strike")
        with pytest.raises(ValueError):
            FaultSpec(kind="random_drop", start_ns=10, end_ns=5)

    def test_stack_sweep_names(self):
        specs = stack_sweep(small_spec(name="t"), ["luna", "solar"])
        assert [s.name for s in specs] == ["t/luna", "t/solar"]
        assert [s.deployment.stack for s in specs] == ["luna", "solar"]


class TestStore:
    def test_round_trip_and_counters(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = "ab" * 32
        assert store.get(digest) is None
        assert store.misses == 1
        store.put(digest, b'{"x":1}\n')
        assert store.get(digest) == b'{"x":1}\n'
        assert store.hits == 1
        assert list(store.digests()) == [digest]
        assert len(store) == 1

    def test_rejects_non_digest_keys(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.path_for("../../etc/passwd")

    def test_no_partial_files_visible(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("cd" * 32, b"payload")
        shard = tmp_path / "cd"
        assert [p.name for p in shard.iterdir()] == ["cd" * 32 + ".json"]


class TestParallelDeterminism:
    def test_serial_and_parallel_artifacts_byte_identical(self, tmp_path):
        spec = small_spec()
        serial = ResultStore(str(tmp_path / "serial"))
        parallel = ResultStore(str(tmp_path / "parallel"))
        run_sweep(spec, jobs=1, store=serial)
        run_sweep(spec, jobs=2, store=parallel)
        digests = [d for _, _, d in spec.points()]
        assert len(digests) == 2
        for digest in digests:
            with open(serial.path_for(digest), "rb") as fh:
                serial_bytes = fh.read()
            with open(parallel.path_for(digest), "rb") as fh:
                parallel_bytes = fh.read()
            assert serial_bytes == parallel_bytes
            # and the payload is the canonical encoding of its artifact
            assert canonical_json(json.loads(serial_bytes)) == serial_bytes

    def test_cache_hit_skips_simulation(self, tmp_path):
        spec = small_spec(seeds=(3,))
        store = ResultStore(str(tmp_path))
        first = run_sweep(spec, jobs=1, store=store)
        assert first.telemetry.simulated == 1
        assert first.telemetry.cache_hits == 0
        second = run_sweep(spec, jobs=1, store=store)
        assert second.telemetry.simulated == 0
        assert second.telemetry.cache_hits == 1
        assert second.artifacts == first.artifacts
        # force re-simulates but must reproduce the same artifact
        third = run_sweep(spec, jobs=1, store=store, force=True)
        assert third.telemetry.simulated == 1
        assert third.artifacts == first.artifacts

    def test_worker_entry_point_matches_in_process_execution(self):
        spec = small_spec(seeds=(5,))
        assert _simulate_point(spec.to_json(), 5) == execute_point(spec, 5)

    def test_artifacts_stable_across_interpreter_invocations(self, tmp_path):
        """Re-running a point in a fresh interpreter must reproduce the exact
        bytes — i.e. nothing in the simulator may depend on PYTHONHASHSEED.

        (Regression: LUNA's core pinning used builtin ``hash`` on a string
        key, so core collisions — and with them timings — changed whenever
        the salt did.  jobs=1 vs jobs=N tests cannot catch this: forked
        workers inherit the parent's salt.)
        """
        import subprocess
        import sys

        spec = small_spec(seeds=(5,)).with_stack("luna")
        script = (
            "import sys, json\n"
            "from repro.lab import ExperimentSpec, execute_point, canonical_json\n"
            "spec = ExperimentSpec.from_json(sys.argv[1])\n"
            "sys.stdout.buffer.write(canonical_json(execute_point(spec, 5)))\n"
        )
        outputs = []
        for salt in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=salt)
            env["PYTHONPATH"] = os.pathsep.join(filter(None, [
                os.path.join(os.path.dirname(__file__), "..", "src"),
                env.get("PYTHONPATH", ""),
            ]))
            proc = subprocess.run(
                [sys.executable, "-c", script, spec.to_json()],
                capture_output=True, env=env, check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0] == canonical_json(execute_point(spec, 5))

    def test_progress_events_stream(self, tmp_path):
        spec = small_spec(seeds=(0,))
        events = []
        run_sweep(spec, jobs=1, store=ResultStore(str(tmp_path)), progress=events.append)
        assert [e.status for e in events] == ["simulated"]
        run_sweep(spec, jobs=1, store=ResultStore(str(tmp_path)), progress=events.append)
        assert [e.status for e in events] == ["simulated", "cached"]


# -- map_parallel crash handling (module level: workers must pickle these) --
def _square(x):
    return x * x


def _fail_once(marker_path, x):
    """Crashes on first call (per marker file), succeeds on retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as fh:
            fh.write("crashed")
        raise RuntimeError("simulated worker crash")
    return x + 100


def _always_fail(_x):
    raise ValueError("deterministic failure")


class TestMapParallel:
    def test_results_in_input_order(self):
        assert map_parallel(_square, [(i,) for i in range(5)], jobs=2) == [
            0, 1, 4, 9, 16,
        ]

    def test_serial_path(self):
        assert map_parallel(_square, [(3,)], jobs=1) == [9]

    def test_crashed_worker_retried_once(self, tmp_path):
        markers = [str(tmp_path / "crash-a"), str(tmp_path / "crash-b")]
        statuses = []
        out = map_parallel(
            _fail_once,
            [(markers[0], 7), (markers[1], 8)],
            jobs=2,
            on_result=lambda i, status, wall, result: statuses.append(status),
        )
        assert out == [107, 108]
        assert "retried" in statuses

    def test_deterministic_failure_propagates(self):
        with pytest.raises(ValueError, match="deterministic failure"):
            map_parallel(_always_fail, [(1,)], jobs=2)


class TestWorkloadModes:
    def test_isolated_mode(self):
        spec = small_spec(
            workload=WorkloadSpec(mode="isolated", count=10, size_bytes=16384),
            seeds=(0,),
        )
        artifact = execute_point(spec, 0)
        assert artifact["completed"] == 10
        assert len(artifact["latency_ns"]) == 10
        assert artifact["component_ns"]["fn"] > 0

    def test_isolated_io_larger_than_vd_rejected(self):
        spec = small_spec(
            workload=WorkloadSpec(mode="isolated", count=1, size_bytes=2 * 1024 ** 3),
            seeds=(0,),
            vd_size_mb=64,
        )
        with pytest.raises(ValueError, match="exceeds VD"):
            execute_point(spec, 0)

    def test_trace_mode_replays_every_record(self):
        records = tuple(
            (i * 100_000, "write" if i % 2 else "read", i * 4096, 4096)
            for i in range(8)
        )
        spec = small_spec(
            workload=WorkloadSpec(mode="trace", records=records), seeds=(1,)
        )
        artifact = execute_point(spec, 1)
        assert artifact["issued"] == 8
        assert artifact["completed"] == 8

    def test_fault_schedule_produces_hangs_on_luna(self):
        spec = ExperimentSpec(
            deployment=DeploymentSpec(
                stack="luna",
                compute_racks=1, compute_hosts_per_rack=1,
                storage_racks=2, storage_hosts_per_rack=4,
            ),
            workload=WorkloadSpec(mode="fio", iodepth=4, runtime_ns=30 * MS),
            faults=(
                FaultSpec(
                    kind="switch_blackhole", target="spine", param=0.5,
                    start_ns=5 * MS,
                ),
            ),
            seeds=(91,),
            name="hangs",
            vd_size_mb=64,
        )
        artifact = execute_point(spec, 91)
        assert artifact["watched"] > 50
        assert artifact["hangs"] > 0


class TestAggregation:
    def test_pooled_latency_and_ci(self):
        spec = small_spec()
        result = run_sweep(spec, jobs=1)
        agg = aggregate(spec, result.artifacts)
        per_seed_counts = [len(a["latency_ns"]) for a in result.artifacts]
        assert agg.latency.count == sum(per_seed_counts)
        assert agg.completed == sum(a["completed"] for a in result.artifacts)
        mean, half = agg.mean_us_ci
        assert mean > 0 and half >= 0
        assert agg.iops > 0
        assert set(agg.component_means_us) == {"sa", "fn", "bn", "ssd"}

    def test_mean_ci_small_sample(self):
        mean, half = mean_ci([10.0, 12.0])
        assert mean == 11.0
        # df=1 -> t=12.706; half = t * (sqrt(2)/sqrt(2)) = 12.706
        assert half == pytest.approx(12.706, rel=1e-3)
        assert mean_ci([5.0]) == (5.0, 0.0)
        with pytest.raises(ValueError):
            mean_ci([])

    def test_aggregate_wrong_artifact_count_rejected(self):
        spec = small_spec()
        with pytest.raises(ValueError):
            aggregate(spec, [])
