"""Tests for repro.telemetry: sketches, registry/scraper, diagnosis,
alerts, the assembled plane, lab integration and the monitor CLI."""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.health import TELEMETRY_ALERT, HealthMonitor
from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.faults import IoHangMonitor
from repro.lab import canonical_json, run_sweep
from repro.lab.spec import ExperimentSpec, FaultSpec, TelemetrySpec, WorkloadSpec
from repro.lab.store import ResultStore
from repro.net.failures import switch_blackhole
from repro.sim import MS, SECOND, Simulator
from repro.telemetry import (
    ABOVE,
    AlertEvaluator,
    AlertRule,
    FlightRecorder,
    MetricRegistry,
    MetricScraper,
    QuantileSketch,
    SlowIoDiagnoser,
    TelemetryPlane,
    dominant_component,
)
from repro.telemetry.diagnosis import HANG, IO_ERROR, SLO_VIOLATION
from repro.telemetry.registry import Snapshot
from repro.workloads import FioJob, FioSpec


def lognormal_samples(n, seed=7):
    rng = random.Random(seed)
    return [max(1, int(rng.lognormvariate(11.0, 0.8))) for _ in range(n)]


def exact_percentile(values, p):
    from repro.metrics import percentile

    return percentile(sorted(values), p)


class TestQuantileSketch:
    def test_accuracy_within_two_percent_of_exact(self):
        samples = lognormal_samples(10_000)
        sketch = QuantileSketch(relative_accuracy=0.01)
        sketch.extend(samples)
        for p in (50, 95, 99):
            exact = exact_percentile(samples, p)
            rel = abs(sketch.percentile(p) - exact) / exact
            assert rel <= 0.02, f"p{p} off by {rel:.2%}"

    def test_memory_stays_bounded(self):
        sketch = QuantileSketch(relative_accuracy=0.01, max_buckets=64)
        sketch.extend(lognormal_samples(50_000))
        assert len(sketch) <= 65  # buckets + zero bucket
        assert sketch.count == 50_000

    def test_collapse_folds_lowest_buckets(self):
        sketch = QuantileSketch(relative_accuracy=0.01, max_buckets=8)
        # Values spanning many decades force more than 8 buckets.
        for exp in range(16):
            sketch.add(10.0**exp)
        assert len(sketch) <= 8
        assert sketch.collapsed > 0
        # Only the lowest buckets folded: the top of the distribution keeps
        # its guarantee (p99's rank falls on the 10^14 order statistic).
        assert sketch.quantile(1.0) == pytest.approx(10.0**15, rel=0.0101)
        assert sketch.percentile(99) == pytest.approx(10.0**14, rel=0.0101)

    def test_merge_matches_combined_stream(self):
        samples = lognormal_samples(4_000)
        combined = QuantileSketch()
        combined.extend(samples)
        a, b = QuantileSketch(), QuantileSketch()
        a.extend(samples[:1_000])
        b.extend(samples[1_000:])
        merged = QuantileSketch.merged([a, b])
        assert merged.count == combined.count
        assert merged.total == pytest.approx(combined.total)
        for p in (50, 95, 99):
            assert merged.percentile(p) == combined.percentile(p)

    def test_merge_rejects_accuracy_mismatch(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_serialization_round_trip(self):
        sketch = QuantileSketch()
        sketch.extend(lognormal_samples(1_000))
        sketch.add(0)  # exercise the zero bucket
        clone = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict(), sort_keys=True))
        )
        assert clone.count == sketch.count
        assert clone.quantile(0.0) == sketch.quantile(0.0)
        for p in (50, 95, 99):
            assert clone.percentile(p) == sketch.percentile(p)

    def test_zero_and_extremes(self):
        sketch = QuantileSketch()
        sketch.add(0, count=10)
        sketch.add(100)
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 100.0
        assert sketch.mean() == pytest.approx(100 / 11)

    def test_empty_and_invalid_inputs_rejected(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.quantile(0.5)
        with pytest.raises(ValueError):
            sketch.mean()
        with pytest.raises(ValueError):
            sketch.add(-1)
        with pytest.raises(ValueError):
            sketch.add(1, count=0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.5)

    @given(st.lists(st.integers(1, 10**9), min_size=1, max_size=300),
           st.floats(0, 1))
    @settings(max_examples=50)
    def test_quantiles_bounded_by_observed_extremes(self, values, q):
        sketch = QuantileSketch()
        sketch.extend(values)
        assert min(values) <= sketch.quantile(q) <= max(values)

    @given(st.lists(st.integers(1, 10**9), min_size=2, max_size=200))
    @settings(max_examples=30)
    def test_relative_error_guarantee(self, values):
        import math

        sketch = QuantileSketch(relative_accuracy=0.01)
        sketch.extend(values)
        ordered = sorted(values)
        for p in (50, 90, 99):
            # The sketch answers the order statistic at floor(rank) — no
            # interpolation — to within the configured relative accuracy.
            exact = ordered[math.floor(p / 100 * (len(ordered) - 1))]
            assert abs(sketch.percentile(p) - exact) <= 0.0101 * exact


class TestRegistryAndScraper:
    def test_counter_rates_and_gauge_pull(self):
        sim = Simulator(seed=1)
        registry = MetricRegistry()
        scraper = MetricScraper(sim, registry, interval_ns=1 * MS)
        done = registry.counter("fleet.completed")
        level = [3.0]
        registry.gauge("queue.depth", fn=lambda: level[0])
        done.inc(500)
        snap = scraper.scrape_once()
        assert snap.get("fleet.completed") == 500.0
        assert snap.get("fleet.completed.rate") == pytest.approx(500 / 1e-3)
        assert snap.get("queue.depth") == 3.0
        level[0] = 9.0
        done.inc(100)
        snap = scraper.scrape_once()
        assert snap.get("fleet.completed.rate") == pytest.approx(100 / 1e-3)
        assert snap.get("queue.depth") == 9.0

    def test_idle_histogram_window_yields_none_rows(self):
        sim = Simulator(seed=1)
        registry = MetricRegistry()
        scraper = MetricScraper(sim, registry, interval_ns=1 * MS)
        hist = registry.histogram("fleet.latency")
        hist.observe(120_000)
        busy = scraper.scrape_once()
        assert busy.get("fleet.latency.count") == 1.0
        assert busy.get("fleet.latency.p99") == pytest.approx(120_000, rel=0.02)
        idle = scraper.scrape_once()  # window was reset, nothing observed
        assert idle.get("fleet.latency.count") == 0.0
        assert idle.get("fleet.latency.p50") is None
        assert idle.get("fleet.latency.p99") is None
        # The cumulative sketch still holds the whole run.
        assert hist.sketch.count == 1

    def test_scrape_cadence_and_stop_bound(self):
        sim = Simulator(seed=1)
        registry = MetricRegistry()
        scraper = MetricScraper(sim, registry, interval_ns=2 * MS)
        ticks = []
        scraper.subscribe(lambda snap: ticks.append(snap.t_ns))
        scraper.start(until_ns=10 * MS)
        sim.run(until=1 * SECOND)
        assert ticks == [2 * MS, 4 * MS, 6 * MS, 8 * MS, 10 * MS]
        with pytest.raises(RuntimeError):
            scraper.start()

    def test_metric_type_conflicts_rejected(self):
        registry = MetricRegistry()
        registry.counter("fleet.completed")
        with pytest.raises(ValueError):
            registry.gauge("fleet.completed")
        registry.gauge("queue.depth", fn=lambda: 1.0)
        with pytest.raises(ValueError):
            registry.gauge("queue.depth", fn=lambda: 2.0)  # second reader

    def test_labels_distinguish_and_sort(self):
        registry = MetricRegistry()
        a = registry.counter("vd.completed", vd="vd1")
        b = registry.counter("vd.completed", vd="vd0")
        assert a is not b
        assert a.key == "vd.completed{vd=vd1}"
        assert [c.key for c in registry.counters()] == [
            "vd.completed{vd=vd0}", "vd.completed{vd=vd1}"
        ]


class TestSlowIoDiagnosis:
    def test_dominant_component_ties_and_empty(self):
        assert dominant_component({"sa": 5, "fn": 9, "bn": 2, "ssd": 1}) == "fn"
        assert dominant_component({"sa": 7, "fn": 7}) == "sa"  # COMPONENTS order
        assert dominant_component({}) == "fn"  # lost in the fabric
        assert dominant_component(dict.fromkeys(("sa", "fn", "bn", "ssd"), 0)) == "fn"

    def _trace(self, io_id, total_ns, ok=True, ssd=0, fn=0):
        from repro.metrics import IoTrace

        t = IoTrace(io_id, "write", 4096, 0)
        if ssd:
            t.add("ssd", ssd)
        if fn:
            t.add("fn", fn)
        t.complete(total_ns, ok=ok, error="" if ok else "boom")
        return t

    def test_slo_violation_blames_dominant_component(self):
        diag = SlowIoDiagnoser(slo_ns=500_000)
        assert diag.observe(self._trace(1, 100_000, ssd=60_000)) is None
        verdict = diag.observe(self._trace(2, 900_000, ssd=700_000, fn=100_000))
        assert verdict.reason == SLO_VIOLATION
        assert verdict.component == "ssd"
        assert verdict.share == pytest.approx(700 / 800)
        assert diag.violations == 1
        assert diag.slow_by_component["ssd"] == 1

    def test_error_trace_produces_error_verdict(self):
        diag = SlowIoDiagnoser(slo_ns=500_000)
        verdict = diag.observe(self._trace(3, 50_000, ok=False, fn=40_000))
        assert verdict.reason == IO_ERROR
        assert diag.errors == 1
        assert diag.violations == 0  # errors are not double-counted as slow

    def test_hang_tallies_by_component_and_node(self):
        from repro.agent.base import IoRequest

        diag = SlowIoDiagnoser(slo_ns=500_000)
        io = IoRequest(kind="write", vd_id="vd3", offset_bytes=0,
                       size_bytes=4096, on_complete=lambda io: None)
        verdict = diag.observe_hang(io)
        assert verdict.reason == HANG
        assert verdict.component == "fn"  # nothing attributed: fabric
        assert verdict.node == "vd3"
        assert diag.hangs_by_node == {"vd3": 1}
        diag.observe_hang(io, node="host-7")
        assert diag.hangs_by_node == {"vd3": 1, "host-7": 1}
        assert diag.affected_nodes() == 2
        summary = diag.summary()
        assert summary["hangs"] == 2
        assert summary["hangs_by_component"]["fn"] == 2

    def test_verdict_list_is_bounded(self):
        diag = SlowIoDiagnoser(slo_ns=1, max_verdicts=4)
        for i in range(10):
            diag.observe(self._trace(i, 1_000, ssd=500))
        assert len(diag.verdicts) == 4
        assert diag.dropped_verdicts == 6
        assert diag.violations == 10  # tallies keep counting past the cap


class TestAlerts:
    def _snap(self, index, t_ns, **rows):
        return Snapshot(index, t_ns, 1 * MS, dict(rows))

    def test_fire_and_resolve(self):
        rule = AlertRule("slo", "p99", 500_000.0, ABOVE)
        ev = AlertEvaluator([rule])
        assert ev.evaluate(self._snap(0, 1 * MS, p99=400_000.0)) == []
        fired = ev.evaluate(self._snap(1, 2 * MS, p99=900_000.0))
        assert len(fired) == 1 and fired[0].fired_ns == 2 * MS
        assert [a.rule.name for a in ev.active()] == ["slo"]
        ev.evaluate(self._snap(2, 3 * MS, p99=100_000.0))
        assert ev.active() == []
        assert ev.alerts[0].resolved_ns == 3 * MS

    def test_for_intervals_debounce(self):
        rule = AlertRule("slo", "p99", 10.0, ABOVE, for_intervals=3)
        ev = AlertEvaluator([rule])
        assert ev.evaluate(self._snap(0, 1, p99=50.0)) == []
        assert ev.evaluate(self._snap(1, 2, p99=50.0)) == []
        assert len(ev.evaluate(self._snap(2, 3, p99=50.0))) == 1
        # A clean window resets the streak entirely.
        ev2 = AlertEvaluator([rule])
        ev2.evaluate(self._snap(0, 1, p99=50.0))
        ev2.evaluate(self._snap(1, 2, p99=5.0))
        ev2.evaluate(self._snap(2, 3, p99=50.0))
        assert ev2.fired_count() == 0

    def test_missing_data_never_breaches(self):
        rule = AlertRule("slo", "p99", 10.0, ABOVE)
        ev = AlertEvaluator([rule])
        assert ev.evaluate(self._snap(0, 1, p99=None)) == []
        assert ev.evaluate(self._snap(1, 2)) == []  # row absent entirely
        assert ev.fired_count() == 0

    def test_alerts_declare_and_resolve_health_incidents(self):
        sim = Simulator(seed=1)
        health = HealthMonitor(sim)
        rule = AlertRule("hang-burst", "hangs.rate", 0.0, ABOVE)
        ev = AlertEvaluator([rule], health=health)
        ev.evaluate(self._snap(0, 5 * MS, **{"hangs.rate": 3.0}))
        assert len(health.incidents) == 1
        incident = health.incidents[0]
        assert incident.kind == TELEMETRY_ALERT
        assert incident.node == "hang-burst"
        assert incident.open
        ev.evaluate(self._snap(1, 6 * MS, **{"hangs.rate": 0.0}))
        assert incident.resolved_ns == 6 * MS

    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule("dup", "x", 1.0)
        with pytest.raises(ValueError):
            AlertEvaluator([rule, AlertRule("dup", "y", 2.0)])


class TestFlightRecorder:
    def test_writes_canonical_jsonl(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with FlightRecorder(path=str(path)) as rec:
            rec.record("scrape", 1 * MS, rows={"b": 2, "a": 1})
            rec.record("hang", 2 * MS, io_id=7)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"kind": "scrape", "t_ns": 1 * MS, "rows": {"a": 1, "b": 2}}
        assert lines[0].index('"a"') < lines[0].index('"b"')  # sorted keys
        assert rec.records == 2
        assert rec.by_kind == {"scrape": 1, "hang": 1}


def run_monitored_drill(hang_ms=20, duration_ms=40, seed=5):
    """A small luna fleet under a full spine blackhole, fully instrumented."""
    dep = EbsDeployment(DeploymentSpec(stack="luna", seed=seed,
                                       compute_racks=1, compute_hosts_per_rack=2))
    health = HealthMonitor(dep.sim)
    plane = TelemetryPlane(dep, interval_ns=5 * MS, slo_ns=500_000, health=health)
    hosts = dep.compute_host_names()
    vds = [VirtualDisk(dep, f"vd{i}", hosts[i % len(hosts)], 32 * 1024 * 1024)
           for i in range(2)]
    for vd in vds:
        plane.watch_vd(vd)
    monitor = IoHangMonitor(dep.sim, threshold_ns=hang_ms * MS,
                            on_hang=plane.on_hang)
    scenario = switch_blackhole("spine", 1.0)
    dep.sim.schedule_at(duration_ms // 2 * MS, scenario.apply, dep.topology)
    jobs = [
        FioJob(dep.sim, vd,
               FioSpec(block_sizes=(4096,), iodepth=4,
                       runtime_ns=duration_ms * MS, name=f"mon{i}"),
               on_issue=monitor.watch)
        for i, vd in enumerate(vds)
    ]
    for job in jobs:
        job.start()
    until = (duration_ms + hang_ms + 10) * MS
    plane.start(until_ns=until)
    dep.run(until_ns=until)
    return dep, plane, health, monitor


class TestTelemetryPlane:
    def test_end_to_end_fault_drill(self):
        dep, plane, health, monitor = run_monitored_drill()
        summary = plane.summary()
        assert summary["completed"] > 0
        assert summary["hangs"] == monitor.hangs > 0
        # Online diagnosis blames the frontend network for blackholed I/Os.
        assert summary["slow_io"]["hangs_by_component"]["fn"] == monitor.hangs
        # The hang burst fired an alert, which declared a health incident.
        assert any(a["rule"] == "hang-burst" for a in summary["alerts"])
        kinds = {i.kind for i in health.incidents}
        assert TELEMETRY_ALERT in kinds
        # Summary must survive canonical encoding (artifact contract).
        canonical_json(summary)

    def test_per_vd_and_agent_metrics_populated(self):
        dep, plane, _health, _monitor = run_monitored_drill()
        snap = plane.scraper.last
        assert snap.get("vd.completed{vd=vd0}") > 0
        assert snap.get("vd.inflight{vd=vd0}") is not None
        sa_rows = [k for k in snap.rows if k.startswith("sa.")]
        assert sa_rows, "agent scrape gauges missing"
        # Pull-based gauges read through to the live agent counters.
        agents_submitted = sum(
            a.ios_submitted for a in dep.agents.values()
        )
        gauge_total = sum(
            snap.rows[k] for k in sa_rows if k.startswith("sa.ios_submitted")
        )
        assert gauge_total == agents_submitted > 0

    def test_fleet_sketch_matches_collector_traces(self):
        dep, plane, _health, _monitor = run_monitored_drill()
        totals = [t.total_ns for t in dep.collector.completed()]
        summary = plane.summary()
        assert summary["completed"] == len(totals)
        for p, key in ((50, "p50"), (99, "p99")):
            exact = exact_percentile(totals, p)
            assert summary["latency_ns"][key] == pytest.approx(exact, rel=0.02)


class TestOnlineOfflineHangParity:
    def test_online_tally_matches_per_host_monitors(self):
        # Miniature Figure 8 methodology: per-host monitors count hangs
        # offline; the shared diagnoser tallies them online.  Same seed,
        # same I/Os — the tallies must agree exactly, host by host.
        dep = EbsDeployment(DeploymentSpec(stack="luna", seed=81,
                                           compute_racks=2,
                                           compute_hosts_per_rack=2))
        diagnoser = SlowIoDiagnoser(slo_ns=500_000)
        monitors, vds = {}, {}
        for i, host in enumerate(dep.compute_host_names()):
            vds[host] = VirtualDisk(dep, f"vd{i}", host, 32 * 1024 * 1024)
            monitors[host] = IoHangMonitor(
                dep.sim, threshold_ns=20 * MS,
                on_hang=lambda io, host=host: diagnoser.observe_hang(io, node=host),
            )
        dep.sim.schedule_at(5 * MS, switch_blackhole("spine", 1.0).apply,
                            dep.topology)
        counters = dict.fromkeys(vds, 0)

        def issue(host):
            if dep.sim.now > 60 * MS:
                return
            io = vds[host].write(counters[host] * 4096, 4096, lambda io: None)
            monitors[host].watch(io)
            counters[host] += 1
            dep.sim.schedule(2 * MS, issue, host)

        for host in vds:
            issue(host)
        dep.run(until_ns=120 * MS)
        offline = {h: m.hangs for h, m in monitors.items()}
        assert sum(offline.values()) > 0, "drill produced no hangs"
        online = {h: diagnoser.hangs_by_node.get(h, 0) for h in monitors}
        assert online == offline
        assert diagnoser.affected_nodes() == sum(
            1 for count in offline.values() if count
        )


class TestLabTelemetry:
    def _spec(self, **overrides):
        base = dict(
            workload=WorkloadSpec(iodepth=4, runtime_ns=10 * MS),
            seeds=(0, 1),
            name="tele",
            vd_size_mb=32,
            hang_threshold_ns=20 * MS,
            faults=(FaultSpec(kind="switch_blackhole", target="spine",
                              param=1.0, start_ns=5 * MS),),
            telemetry=TelemetrySpec(interval_ns=2 * MS),
        )
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_spec_round_trips_and_keys_the_digest(self):
        spec = self._spec()
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.point_digest(0) == spec.point_digest(0)
        # Telemetry parameters are simulation-affecting: they change the key.
        other = self._spec(telemetry=TelemetrySpec(interval_ns=4 * MS))
        assert other.point_digest(0) != spec.point_digest(0)
        plain = self._spec(telemetry=None)
        assert plain.point_digest(0) != spec.point_digest(0)

    def test_telemetry_spec_validation(self):
        with pytest.raises(ValueError):
            TelemetrySpec(interval_ns=0)
        with pytest.raises(ValueError):
            TelemetrySpec(slo_ns=-1)
        with pytest.raises(ValueError):
            TelemetrySpec(relative_accuracy=1.0)

    def test_upgrade_drills_reject_telemetry(self):
        from repro.lab.spec import UpgradeSpec

        with pytest.raises(ValueError):
            ExperimentSpec(upgrade=UpgradeSpec(), telemetry=TelemetrySpec())

    def test_artifact_grows_consistent_telemetry_section(self):
        from repro.lab.runner import execute_point

        spec = self._spec(seeds=(0,))
        artifact = execute_point(spec, 0)
        t = artifact["telemetry"]
        assert t["hangs"] == artifact["hangs"]
        assert t["completed"] == artifact["completed"]
        assert t["slow_io"]["hangs_by_component"]["fn"] == artifact["hangs"] > 0
        canonical_json(artifact)
        # The plain artifact shape is untouched when telemetry is off.
        plain = execute_point(self._spec(seeds=(0,), telemetry=None), 0)
        assert "telemetry" not in plain

    def test_serial_and_parallel_artifacts_byte_identical(self, tmp_path):
        spec = self._spec()
        serial = ResultStore(tmp_path / "serial")
        parallel = ResultStore(tmp_path / "parallel")
        run_sweep(spec, jobs=1, store=serial)
        run_sweep(spec, jobs=2, store=parallel)
        serial_files = sorted(p.name for p in (tmp_path / "serial").rglob("*.json"))
        parallel_files = sorted(
            p.name for p in (tmp_path / "parallel").rglob("*.json")
        )
        assert serial_files == parallel_files and serial_files
        for name in serial_files:
            a = next((tmp_path / "serial").rglob(name)).read_bytes()
            b = next((tmp_path / "parallel").rglob(name)).read_bytes()
            assert a == b, f"artifact {name} differs across process counts"


class TestMonitorCli:
    def test_json_run_surfaces_injected_fault_alert(self, capsys):
        from repro.__main__ import main

        code = main([
            "monitor", "--stack", "luna", "--duration-ms", "60",
            "--interval-ms", "10", "--hang-ms", "20", "--iodepth", "4",
            "--block-sizes-kb", "4", "--seed", "5",
            "--fault", "blackhole:spine:1.0@20", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["telemetry"]["hangs"] > 0
        assert any(a["rule"] == "hang-burst" for a in summary["alerts"])
        assert summary["incidents"] > 0

    def test_human_output_and_flight_record(self, capsys, tmp_path):
        from repro.__main__ import main

        flight = tmp_path / "flight.jsonl"
        code = main([
            "monitor", "--stack", "solar", "--duration-ms", "30",
            "--interval-ms", "10", "--iodepth", "2", "--block-sizes-kb", "4",
            "--jsonl", str(flight),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet:" in out and "diagnosis:" in out
        kinds = {json.loads(line)["kind"] for line in flight.read_text().splitlines()}
        assert "scrape" in kinds

    def test_bad_arguments_exit_2(self, capsys):
        from repro.__main__ import main

        assert main(["monitor", "--vds", "0"]) == 2
        assert main(["monitor", "--fault", "nonsense"]) == 2
