"""Deeper tests of the reliable stream engine's mechanics."""

import pytest

from repro.host.cpu import CpuComplex
from repro.net import ClosTopology, PodSpec
from repro.profiles import DEFAULT
from repro.sim import MS, Simulator
from repro.transport import LunaTransport
from repro.transport.stream import ACK_BYTES, Message, StreamConfig


def make_pair(seed=1):
    sim = Simulator(seed=seed)
    topo = ClosTopology(sim, DEFAULT.network,
                        [PodSpec("cp", 1, 2), PodSpec("sp", 1, 2)])
    client = LunaTransport(sim, topo.hosts["cp/r0/h0"], CpuComplex(sim, "c", 4), DEFAULT)
    server = LunaTransport(sim, topo.hosts["sp/r0/h0"], CpuComplex(sim, "s", 8), DEFAULT)
    server.register_handler(lambda p, e, r: r(128, "ok"))
    return sim, topo, client, server


class TestStreamConfig:
    def test_segmentation_validated(self):
        with pytest.raises(ValueError):
            StreamConfig(
                proto="x", mss=0, tso_bytes=0, header_overhead=64,
                stack_latency_ns=1, per_packet_cpu_ns=1, per_byte_cpu_ns=0,
                min_rto_ns=1, max_rto_ns=2, init_cwnd=1,
            )

    def test_tso_must_cover_mss(self):
        with pytest.raises(ValueError):
            StreamConfig(
                proto="x", mss=9000, tso_bytes=1500, header_overhead=64,
                stack_latency_ns=1, per_packet_cpu_ns=1, per_byte_cpu_ns=0,
                min_rto_ns=1, max_rto_ns=2, init_cwnd=1,
            )

    def test_message_requires_positive_size(self):
        from repro.transport.base import RpcExchange

        ex = RpcExchange("a", "b", None, 1, 1, lambda e, ok: None)
        with pytest.raises(ValueError):
            Message(ex, "req", 0)


class TestConnectionMechanics:
    def test_connection_pool_bounded(self):
        sim, _t, client, server = make_pair()
        done = []
        for _ in range(40):
            client.call(server, None, 4096, 128, lambda e, ok: done.append(ok))
        sim.run(until=sim.now + 200 * MS)
        assert len(done) == 40
        pool = client._pools[server.endpoint.name]
        assert len(pool) == client.config.connections_per_pair

    def test_distinct_sports_per_connection(self):
        sim, _t, client, server = make_pair()
        for _ in range(20):
            client.call(server, None, 4096, 128, lambda e, ok: None)
        sim.run(until=sim.now + 100 * MS)
        pool = client._pools[server.endpoint.name]
        assert len({c.sport for c in pool}) == len(pool)

    def test_messages_on_one_connection_are_fifo(self):
        sim, _t, client, server = make_pair()
        order = []
        for i in range(6):
            client.call(server, i, 4096, 128,
                        lambda e, ok: order.append(e.payload))
        sim.run(until=sim.now + 200 * MS)
        # With an 8-conn pool and 6 rpcs, each got its own connection; all
        # complete.  Issue 10 more to force queueing and check completion.
        for i in range(6, 30):
            client.call(server, i, 4096, 128,
                        lambda e, ok: order.append(e.payload))
        sim.run(until=sim.now + 500 * MS)
        assert sorted(order) == list(range(30))

    def test_cwnd_grows_during_transfer(self):
        sim, _t, client, server = make_pair()
        done = []
        client.call(server, None, 512 * 1024, 128, lambda e, ok: done.append(ok))
        sim.run(until=sim.now + 2_000 * MS)
        assert done == [True]
        conn = client._pools[server.endpoint.name][0]
        side = conn.sides[client.endpoint.name]
        assert side.cwnd > client.config.init_cwnd

    def test_rto_timer_cleared_after_completion(self):
        sim, _t, client, server = make_pair()
        done = []
        client.call(server, None, 4096, 128, lambda e, ok: done.append(ok))
        sim.run(until=sim.now + 100 * MS)
        conn = client._pools[server.endpoint.name][0]
        for side in conn.sides.values():
            assert side.rto_event is None

    def test_ack_packets_are_small(self):
        assert ACK_BYTES < 100

    def test_loss_recovery_via_fast_retransmit(self):
        """Drop a single packet mid-message; recovery must not need a
        full RTO (dupacks trigger fast retransmit)."""
        sim, topo, client, server = make_pair(seed=5)
        # Surgical loss: drop the 3rd data packet at the spine, once.
        dropped = []
        spine = topo.switches_by_tier("spine")[0]
        original = spine._forward

        def lossy(packet):
            header = packet.headers.get("stream")
            if (header and not dropped and header["offset"] > 0
                    and packet.size_bytes > 1000):
                dropped.append(packet)
                return  # silently dropped
            original(packet)

        spine._forward = lossy
        done = []
        client.call(server, None, 64 * 1024, 128, lambda e, ok: done.append(e))
        sim.run(until=sim.now + 500 * MS)
        assert done and done[0].ok
        if dropped:  # the flow hashed through this spine
            # Completed far faster than the 4ms LUNA min-RTO would allow
            # if only timers drove recovery... allow either, but verify
            # that loss actually occurred and was healed.
            assert done[0].rpc_latency_ns < 100 * MS

    def test_failed_request_reports_error(self):
        sim, topo, client, server = make_pair(seed=6)
        for sw in topo.switches_by_tier("spine"):
            sw.set_blackhole(1.0)
        done = []
        client.call(server, None, 4096, 128, lambda e, ok: done.append((e, ok)))
        sim.run(until=sim.now + 700_000 * MS)
        (exchange, ok), = done
        assert not ok
        assert "retries" in exchange.error


class TestServerSide:
    def test_server_charges_cpu(self):
        sim, _t, client, server = make_pair()
        client.call(server, None, 64 * 1024, 128, lambda e, ok: None)
        sim.run(until=sim.now + 200 * MS)
        assert server.cpu.total_busy_ns() > 0

    def test_concurrent_clients_one_server(self):
        sim = Simulator(seed=9)
        topo = ClosTopology(sim, DEFAULT.network,
                            [PodSpec("cp", 1, 3), PodSpec("sp", 1, 1)])
        server = LunaTransport(sim, topo.hosts["sp/r0/h0"],
                               CpuComplex(sim, "s", 8), DEFAULT)
        server.register_handler(lambda p, e, r: r(128, "ok"))
        clients = [
            LunaTransport(sim, topo.hosts[f"cp/r0/h{i}"],
                          CpuComplex(sim, f"c{i}", 2), DEFAULT)
            for i in range(3)
        ]
        done = []
        for client in clients:
            for _ in range(10):
                client.call(server, None, 4096, 128, lambda e, ok: done.append(ok))
        sim.run(until=sim.now + 300 * MS)
        assert len(done) == 30 and all(done)
