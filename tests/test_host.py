"""Tests for the host substrate: CPU, PCIe, DMA, NVMe, FPGA, DPU."""

import pytest

from repro.host import (
    AliDpu,
    ComputeServer,
    CpuComplex,
    CpuCore,
    DmaEngine,
    FpgaDevice,
    FpgaModuleSpec,
    FpgaResourceError,
    NvmeError,
    NvmeQueue,
    PcieLink,
    StorageServer,
)
from repro.net import Endpoint
from repro.profiles import DEFAULT
from repro.sim import Simulator


class TestCpuCore:
    def test_serial_fifo_execution(self):
        sim = Simulator()
        core = CpuCore(sim, "c0")
        done = []
        core.submit(100, done.append, "a")
        core.submit(50, done.append, "b")
        sim.run()
        assert done == ["a", "b"]
        assert sim.now == 150  # b waited behind a

    def test_queue_delay(self):
        sim = Simulator()
        core = CpuCore(sim, "c0")
        core.submit(500)
        assert core.queue_delay_ns == 500

    def test_negative_cost_rejected(self):
        core = CpuCore(Simulator(), "c0")
        with pytest.raises(ValueError):
            core.submit(-1)

    def test_busy_accounting(self):
        sim = Simulator()
        core = CpuCore(sim, "c0")
        core.submit(300)
        core.submit(200)
        sim.run()
        assert core.busy_ns_total == 500
        assert core.jobs_run == 2

    def test_submit_signal(self):
        sim = Simulator()
        core = CpuCore(sim, "c0")
        sig = core.submit_signal(250)
        sim.run()
        assert sig.fired and sim.now == 250


class TestCpuComplex:
    def test_pinned_is_stable(self):
        cpu = CpuComplex(Simulator(), "cpu", 4)
        assert cpu.pinned("conn-1") is cpu.pinned("conn-1")

    def test_least_loaded_spreads(self):
        sim = Simulator()
        cpu = CpuComplex(sim, "cpu", 2)
        cpu.least_loaded().submit(1000)
        other = cpu.least_loaded()
        assert other.busy_until == 0

    def test_cores_consumed_metric(self):
        sim = Simulator()
        cpu = CpuComplex(sim, "cpu", 4)
        for core in cpu.cores:
            core.submit(1_000)
        sim.run()
        assert cpu.cores_consumed(window_ns=1_000) == pytest.approx(4.0)

    def test_at_least_one_core(self):
        with pytest.raises(ValueError):
            CpuComplex(Simulator(), "cpu", 0)


class TestPcie:
    def test_transfers_serialize_at_bandwidth(self):
        sim = Simulator()
        pcie = PcieLink(sim, "p", gbps=8.0, per_transfer_latency_ns=0)
        done = []
        pcie.transfer(1000, done.append, 1)  # 1000B @ 8G = 1000ns
        pcie.transfer(1000, done.append, 2)
        sim.run()
        assert done == [1, 2]
        assert sim.now == 2000

    def test_fixed_latency_added(self):
        sim = Simulator()
        pcie = PcieLink(sim, "p", gbps=8.0, per_transfer_latency_ns=300)
        pcie.transfer(1000, lambda: None)
        sim.run()
        assert sim.now == 1300

    def test_goodput_accounting(self):
        sim = Simulator()
        pcie = PcieLink(sim, "p", gbps=8.0)
        pcie.transfer(125_000)
        assert pcie.goodput_gbps(1_000_000) == pytest.approx(1.0)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            PcieLink(Simulator(), "p", gbps=0)


class TestDma:
    def test_dma_adds_setup_then_pcie(self):
        sim = Simulator()
        pcie = PcieLink(sim, "p", gbps=8.0, per_transfer_latency_ns=0)
        dma = DmaEngine(sim, "dma", pcie, setup_ns=200)
        done = []
        dma.read_from_guest(1000, done.append, "x")
        sim.run()
        assert done == ["x"]
        assert sim.now == 1200

    def test_read_write_counters(self):
        sim = Simulator()
        dma = DmaEngine(sim, "dma", PcieLink(sim, "p", 8.0), setup_ns=0)
        dma.read_from_guest(10, lambda: None)
        dma.write_to_guest(10, lambda: None)
        sim.run()
        assert dma.reads == 1 and dma.writes == 1


class TestNvme:
    def test_submit_then_complete(self):
        sim = Simulator()
        q = NvmeQueue(sim, "nvme", submit_latency_ns=100, doorbell_ns=50)
        trail = []
        q.submit("cmd", lambda c: (trail.append((sim.now, c)),
                                   q.complete(c, lambda c2: trail.append((sim.now, "done")))))
        sim.run()
        assert trail[0] == (100, "cmd")
        assert trail[1] == (150, "done")
        assert q.inflight == 0

    def test_queue_depth_enforced(self):
        sim = Simulator()
        q = NvmeQueue(sim, "nvme", queue_depth=1)
        q.submit("a", lambda c: None)
        with pytest.raises(NvmeError):
            q.submit("b", lambda c: None)

    def test_completion_without_submission_rejected(self):
        q = NvmeQueue(Simulator(), "nvme")
        with pytest.raises(NvmeError):
            q.complete("ghost")


class TestFpga:
    def test_resource_budget_enforced(self):
        fpga = FpgaDevice(Simulator(), "f", lut_budget_pct=10.0)
        fpga.register_module(FpgaModuleSpec("A", 6.0, 1.0))
        with pytest.raises(FpgaResourceError):
            fpga.register_module(FpgaModuleSpec("B", 5.0, 1.0))

    def test_duplicate_module_rejected(self):
        fpga = FpgaDevice(Simulator(), "f")
        fpga.register_module(FpgaModuleSpec("A", 1.0, 1.0))
        with pytest.raises(FpgaResourceError):
            fpga.register_module(FpgaModuleSpec("A", 1.0, 1.0))

    def test_resource_report_totals(self):
        fpga = FpgaDevice(Simulator(), "f")
        fpga.register_module(FpgaModuleSpec("A", 2.0, 3.0))
        fpga.register_module(FpgaModuleSpec("B", 1.5, 0.5))
        report = fpga.resource_report()
        assert report["Total"] == {"lut_pct": 3.5, "bram_pct": 3.5}

    def test_pipeline_latency(self):
        sim = Simulator()
        fpga = FpgaDevice(sim, "f", pipeline_latency_ns=800)
        done = []
        fpga.process(done.append, "pkt")
        sim.run()
        assert done == ["pkt"] and sim.now == 800

    def test_fault_hook_applied(self):
        fpga = FpgaDevice(Simulator(), "f")
        fpga.set_fault_hook(lambda payload, ctx: payload + b"!")
        assert fpga.pass_through(b"data", "crc") == b"data!"
        assert fpga.pass_through(None, "crc") is None

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError):
            FpgaModuleSpec("bad", -1.0, 0.0)


class TestDpuAndServers:
    def test_dpu_assembly(self):
        sim = Simulator()
        dpu = AliDpu(sim, "dpu0", DEFAULT.dpu, DEFAULT.pcie)
        assert len(dpu.cpu) == 6  # ALI-DPU's six infrastructure cores
        assert dpu.line_rate_gbps == 50.0  # 2 x 25GE
        assert dpu.internal_pcie.gbps < 100.0  # "far less than 100Gbps"

    def test_bare_metal_server_has_dpu(self):
        sim = Simulator()
        server = ComputeServer(sim, Endpoint(sim, "h"), DEFAULT, hosting="bare_metal")
        assert server.dpu is not None
        assert server.infra_cpu is server.dpu.cpu

    def test_vm_server_uses_host_cpu(self):
        sim = Simulator()
        server = ComputeServer(sim, Endpoint(sim, "h"), DEFAULT, hosting="vm")
        assert server.dpu is None
        assert server.infra_cpu is server.host_cpu

    def test_bad_hosting_rejected(self):
        with pytest.raises(ValueError):
            ComputeServer(Simulator(), Endpoint(Simulator(), "h"), DEFAULT, hosting="moon")

    def test_storage_server_roles(self):
        sim = Simulator()
        assert StorageServer(sim, Endpoint(sim, "s"), "chunk").role == "chunk"
        with pytest.raises(ValueError):
            StorageServer(sim, Endpoint(sim, "s2"), "tape")
