"""The scenario plane: traces, recorders, importers, catalog, envelopes.

The headline invariants under test:

* **FleetTrace** files are versioned, digest-keyed and self-verifying —
  tampering is detected at load time, malformed lines name their line
  number, and the digest is a pure function of the workload content
  (provenance excluded).
* **Round-trip determinism** — record -> replay -> record is
  byte-identical, per stack, with the link fast path on or off, and
  the gated report digest matches between serial and pooled execution.
* **Importers** normalize MSR/Alibaba rows to nanoseconds with
  deterministic downsampling; the sample corpora replay end to end on
  both LUNA and SOLAR.
* **Catalog** scenarios (all six) pass their SLO gates.
* **Envelope** v2 unifies chaos and workload scenarios; legacy v1 chaos
  files still load and replay byte-identically.
* **Shard plane** trace fleets keep the digest-identical-across-shards
  guarantee, and empty ``trace_rows`` stay out of the fleet
  serialization so pre-existing fleet digests are pinned.
"""

import dataclasses
import gzip
import io
import json
from pathlib import Path

import pytest

from repro.chaos.harness import replay_scenario
from repro.chaos.scenario import ChaosScenario
from repro.dist import FleetSpec, SerialExecutor, run_fleet
from repro.dist.fleet import FleetDeployment
from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.lab.spec import canonical_json
from repro.lab.store import ResultStore
from repro.scenario import (
    CATALOG,
    ENVELOPE_VERSION,
    FleetTrace,
    FleetTraceRecorder,
    ImportOptions,
    Scenario,
    SloGate,
    StreamMeta,
    catalog_names,
    fleet_from_trace,
    from_records,
    get_scenario,
    import_trace,
    iter_trace_records,
    load_envelope,
    record_scenario,
    run_scenario,
    save_envelope,
    trace_scenario,
)
from repro.scenario.envelope import envelope_kind
from repro.sim import MS, US, Simulator
from repro.workloads.replay import (
    IoRecord,
    TraceFormatError,
    TraceRecorder,
    load_trace,
)

DATA_DIR = Path(__file__).parent / "data"
CHAOS_DIR = Path(__file__).parent / "scenarios"


def mini_trace(name="mini", vd_size_mb=32):
    """A small deterministic two-stream trace."""
    a = [IoRecord(i * 50 * US, "read", (i * 13 % 512) * 4096, 4096) for i in range(12)]
    b = [
        IoRecord(i * 80 * US, "write", (i * 7 % 64) * 65536, 65536) for i in range(6)
    ]
    return FleetTrace(
        name=name,
        streams={"vd0": a, "vd1": b},
        meta={s: StreamMeta(vd_size_mb=vd_size_mb) for s in ("vd0", "vd1")},
    )


def source_trace():
    """A single-stream trace whose offsets/sizes replay unclamped on a
    32MB VD — the precondition for byte-identical round trips."""
    records = []
    for i in range(40):
        size = 4096 if i % 5 else 128 * 1024
        records.append(
            IoRecord(i * 120 * US, "read" if i % 3 else "write",
                     (i * 37 % 4096) * 4096, size)
        )
    return from_records("rt-source", records, vd_size_mb=32)


# ----------------------------------------------------------------------
# FleetTrace: format, digest, transforms
# ----------------------------------------------------------------------
class TestFleetTrace:
    def test_roundtrip_plain_and_gzip(self, tmp_path):
        trace = mini_trace()
        for filename in ("t.trace", "t.trace.gz"):
            path = tmp_path / filename
            written = trace.dump(path)
            assert written == trace.records_total
            again = FleetTrace.load(path)
            assert again.digest == trace.digest
            assert again.streams == trace.streams
            assert again.meta == trace.meta
            assert again.epoch_ns == trace.epoch_ns

    def test_gz_path_is_actually_gzipped(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        mini_trace().dump(path)
        with gzip.open(path, "rt", encoding="ascii") as fp:
            header = json.loads(fp.readline())
        assert header["fleet_trace"] == 1

    def test_tamper_detection(self, tmp_path):
        path = tmp_path / "t.trace"
        mini_trace().dump(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["z"] += 4096  # grow one I/O without re-deriving the digest
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="digest mismatch"):
            FleetTrace.load(path)
        # verify=False is the hand-edit escape hatch: digest re-derived.
        edited = FleetTrace.load(path, verify=False)
        assert edited.digest != mini_trace().digest

    def test_malformed_lines_name_line_numbers(self, tmp_path):
        path = tmp_path / "t.trace"
        mini_trace().dump(path)
        lines = path.read_text().splitlines()

        def write(mutated):
            path.write_text("\n".join(mutated) + "\n")

        write([lines[0], lines[1], "{not json"])
        with pytest.raises(TraceFormatError, match="line 3"):
            FleetTrace.load(path)
        write([lines[0], '{"s": "vd0", "t": 0, "k": "read", "o": 0}'])
        with pytest.raises(TraceFormatError, match="line 2.*missing key"):
            FleetTrace.load(path)
        write([lines[0], '{"s": "ghost", "t": 0, "k": "read", "o": 0, "z": 4096}'])
        with pytest.raises(TraceFormatError, match="line 2.*ghost"):
            FleetTrace.load(path)
        write([lines[0], lines[1],
               '{"s": "vd0", "t": 0, "k": "read", "o": 0, "z": 4096, "x": 1}'])
        with pytest.raises(TraceFormatError, match="line 3.*unknown record keys"):
            FleetTrace.load(path)

    def test_header_errors(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty trace"):
            FleetTrace.load(path)
        path.write_text('{"fleet_trace": 99}\n')
        with pytest.raises(TraceFormatError, match="version 99"):
            FleetTrace.load(path)
        header = json.dumps(mini_trace().header(), sort_keys=True)
        path.write_text(header + "\n")  # header but zero records
        with pytest.raises(TraceFormatError, match="no records"):
            FleetTrace.load(path)

    def test_canonical_order_makes_digest_order_invariant(self):
        records = [
            IoRecord(2 * US, "read", 8192, 4096),
            IoRecord(0, "write", 0, 4096),
            IoRecord(2 * US, "read", 4096, 4096),
        ]
        forward = from_records("t", list(records))
        backward = from_records("t", list(reversed(records)))
        assert forward.digest == backward.digest
        assert forward.streams == backward.streams

    def test_digest_excludes_provenance_but_not_vd_size(self):
        rows = [IoRecord(0, "read", 0, 4096)]
        a = FleetTrace("a", {"vd0": list(rows)},
                       {"vd0": StreamMeta(vd_size_mb=64, source="run-1")})
        b = FleetTrace("b", {"vd0": list(rows)},
                       {"vd0": StreamMeta(vd_size_mb=64, source="run-2")})
        c = FleetTrace("c", {"vd0": list(rows)},
                       {"vd0": StreamMeta(vd_size_mb=128, source="run-1")})
        assert a.digest == b.digest  # provenance is not workload content
        assert a.digest != c.digest  # the replayed VD shape is

    def test_scaled(self):
        trace = mini_trace()
        fast = trace.scaled(rate_scale=2.0)
        assert fast.horizon_ns == trace.horizon_ns // 2
        big = trace.scaled(size_scale=2.5)
        sizes = {r.size_bytes for r in big.streams["vd0"]}
        assert sizes == {10240 // 4096 * 4096}  # re-aligned to 4KB
        tiny = trace.scaled(size_scale=0.001)
        assert all(r.size_bytes == 4096
                   for rs in tiny.streams.values() for r in rs)
        with pytest.raises(ValueError, match="positive"):
            trace.scaled(rate_scale=0)

    def test_merged_rows_global_order(self):
        rows = mini_trace().merged_rows()
        assert list(rows) == sorted(rows)
        assert len(rows) == mini_trace().records_total

    def test_subset_is_deterministic_prefix(self):
        trace = mini_trace()
        sub = trace.subset(5)
        assert sub.records_total == 5
        assert sub.digest == trace.subset(5).digest
        merged = trace.merged_rows()
        assert sub.merged_rows() == merged[:5]
        assert trace.subset(10_000).digest == trace.digest
        with pytest.raises(ValueError, match="max_records"):
            trace.subset(0)

    def test_iter_trace_records_streams_the_file(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        trace = mini_trace()
        trace.dump(path)
        seen = {}
        for stream, record in iter_trace_records(path):
            seen.setdefault(stream, []).append(record)
        assert seen == trace.streams

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one stream"):
            FleetTrace("t", streams={})
        with pytest.raises(ValueError, match="no records"):
            FleetTrace("t", streams={"vd0": []})
        with pytest.raises(ValueError, match="unknown streams"):
            FleetTrace("t", streams={"vd0": [IoRecord(0, "read", 0, 4096)]},
                       meta={"ghost": StreamMeta()})
        with pytest.raises(ValueError, match="vd_size_mb"):
            StreamMeta(vd_size_mb=0)


# ----------------------------------------------------------------------
# Seed recorder (workloads.replay): explicit epoch + typed load errors
# ----------------------------------------------------------------------
class TestSeedRecorder:
    def test_explicit_epoch_makes_recorders_agree(self):
        sim = Simulator()
        early = TraceRecorder(sim, epoch_ns=0)
        late = TraceRecorder(sim, epoch_ns=0)
        sim.schedule(10 * US, early.record, "read", 0, 4096)
        sim.schedule(30 * US, late.record, "read", 0, 4096)
        sim.schedule(40 * US, early.record, "write", 4096, 4096)
        sim.run()
        # Absolute timestamps: both recorders anchor on the same zero.
        assert [r.at_ns for r in early.records] == [10 * US, 40 * US]
        assert [r.at_ns for r in late.records] == [30 * US]
        assert early.epoch_ns == late.epoch_ns == 0

    def test_legacy_first_record_latch_preserved(self):
        sim = Simulator()
        recorder = TraceRecorder(sim)
        assert recorder.epoch_ns is None
        sim.schedule(25 * US, recorder.record, "read", 0, 4096)
        sim.schedule(45 * US, recorder.record, "read", 0, 4096)
        sim.run()
        assert recorder.epoch_ns == 25 * US  # latched on first record
        assert [r.at_ns for r in recorder.records] == [0, 20 * US]

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            TraceRecorder(Simulator(), epoch_ns=-1)

    def test_load_trace_typed_errors(self):
        ok = '{"at_ns": 0, "kind": "read", "offset_bytes": 0, "size_bytes": 4096}'
        with pytest.raises(TraceFormatError, match="line 2"):
            load_trace(io.StringIO(ok + "\nnot json\n"))
        with pytest.raises(TraceFormatError, match="line 1.*got list"):
            load_trace(io.StringIO("[1, 2]\n"))
        exc = None
        try:
            load_trace(io.StringIO(ok + "\n" + ok + "\n" + '{"kind": "zap"}' + "\n"))
        except TraceFormatError as caught:
            exc = caught
        assert exc is not None and exc.line_no == 3
        assert load_trace(io.StringIO(ok + "\n\n" + ok + "\n")) == [
            IoRecord(0, "read", 0, 4096)
        ] * 2


# ----------------------------------------------------------------------
# FleetTraceRecorder: multi-stream capture against one epoch
# ----------------------------------------------------------------------
class TestFleetTraceRecorder:
    def _deploy(self):
        dep = EbsDeployment(DeploymentSpec(stack="solar", seed=0))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0],
                         16 * 1024 * 1024)
        return dep, vd

    def test_capture_and_epoch_skip(self):
        dep, vd = self._deploy()
        recorder = FleetTraceRecorder("cap", epoch_ns=100 * US)
        recorder.watch_vd(vd)
        recorder.watch_collector(dep.collector)
        dep.sim.schedule(0, vd.read, 0, 4096, lambda io: None)
        dep.sim.schedule(200 * US, vd.read, 4096, 4096, lambda io: None)
        dep.run()
        assert recorder.skipped_before_epoch == 1
        assert recorder.captured == 1
        assert recorder.collector_seen == 2  # collector saw both completions
        trace = recorder.trace()
        assert trace.epoch_ns == 100 * US
        assert trace.streams["vd0"] == [IoRecord(100 * US, "read", 4096, 4096)]
        assert trace.meta["vd0"].vd_size_mb == 16

    def test_duplicate_stream_rejected(self):
        _dep, vd = self._deploy()
        recorder = FleetTraceRecorder("cap")
        recorder.watch_vd(vd, stream="s")
        with pytest.raises(ValueError, match="already being recorded"):
            recorder.watch_vd(vd, stream="s")

    def test_empty_capture_refused(self):
        with pytest.raises(ValueError, match="captured no I/O"):
            FleetTraceRecorder("idle").trace()
        with pytest.raises(ValueError, match="negative"):
            FleetTraceRecorder("cap", epoch_ns=-5)


# ----------------------------------------------------------------------
# Round-trip determinism: the tentpole invariant
# ----------------------------------------------------------------------
def roundtrip(stack):
    """record -> replay -> record; returns (source, first, second)."""
    src = source_trace()
    first, _ = record_scenario(
        trace_scenario("rt", "round trip", src, stack=stack, vd_size_mb=32),
        name="cap",
    )
    second, _ = record_scenario(
        trace_scenario("rt", "round trip", first, stack=stack, vd_size_mb=32),
        name="cap",
    )
    return src, first, second


class TestRoundTrip:
    @pytest.mark.parametrize("stack", ["luna", "solar"])
    def test_record_replay_record_byte_identical(self, stack):
        src, first, second = roundtrip(stack)
        # The capture reproduces the source workload exactly...
        assert first.merged_rows() == src.merged_rows()
        # ...and the round trip is byte-identical, digest included.
        assert first.digest == second.digest
        a, b = io.StringIO(), io.StringIO()
        first.dump(a)
        second.dump(b)
        assert a.getvalue() == b.getvalue()

    def test_roundtrip_invariant_to_link_fastpath(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINK_FASTPATH", "0")
        _src, slow_first, slow_second = roundtrip("solar")
        assert slow_first.digest == slow_second.digest
        monkeypatch.setenv("REPRO_LINK_FASTPATH", "1")
        _src, fast_first, _ = roundtrip("solar")
        # Arrival times are submit-side, so the capture cannot depend on
        # how the link serializes completions.
        assert slow_first.digest == fast_first.digest

    def test_report_digest_serial_vs_pooled(self, tmp_path):
        scenario = trace_scenario(
            "rt-jobs", "pool invariance", source_trace(),
            vd_size_mb=32, seeds=(0, 1, 2),
        )
        serial = run_scenario(
            scenario, jobs=1, store=ResultStore(str(tmp_path / "serial"))
        )
        pooled = run_scenario(
            scenario, jobs=4, store=ResultStore(str(tmp_path / "pooled"))
        )
        assert serial["report_digest"] == pooled["report_digest"]
        assert canonical_json(serial) == canonical_json(pooled)

    def test_cached_rerun_reports_identically(self, tmp_path):
        scenario = get_scenario("incast-burst")
        store = ResultStore(str(tmp_path))
        first = run_scenario(scenario, store=store)
        second = run_scenario(scenario, store=store)  # all cache hits
        assert canonical_json(first) == canonical_json(second)

    def test_drill_scenarios_cannot_be_recorded(self):
        with pytest.raises(ValueError, match="cannot be observed"):
            record_scenario(get_scenario("rebuild-storm"))


# ----------------------------------------------------------------------
# SLO gates
# ----------------------------------------------------------------------
class TestSloGate:
    ARTIFACT = {
        "issued": 100, "completed": 100, "failed": 0, "hangs": 0,
        "latency_ns": [100_000] * 98 + [900_000, 2_000_000],
    }

    def test_metrics_units(self):
        m = SloGate().metrics(self.ARTIFACT)
        assert m["p50_us"] == 100.0
        # p99 interpolates between the 900us and 2000us tail samples.
        assert m["p99_us"] == 911.0
        assert m["completed_fraction"] == 1.0

    def test_latency_bound_violation(self):
        failures = SloGate(max_p99_us=500.0).evaluate(self.ARTIFACT)
        assert len(failures) == 1 and "exceeds SLO 500.0us" in failures[0]
        assert SloGate(max_p99_us=1000.0).evaluate(self.ARTIFACT) == []

    def test_missing_latency_fails_loudly(self):
        artifact = {"issued": 10, "completed": 10}
        failures = SloGate(max_p50_us=100.0).evaluate(artifact)
        assert failures == ["p50_us unmeasurable: artifact has no latency samples"]
        # ...but a gate with no latency bounds does not care.
        assert SloGate().evaluate(artifact) == []

    def test_counting_bounds(self):
        artifact = dict(self.ARTIFACT, completed=90, failed=6, hangs=2)
        failures = SloGate(min_completed_fraction=0.95).evaluate(artifact)
        assert any("below 95.00%" in f for f in failures)
        assert any("hung" in f for f in failures)
        assert any("failed" in f for f in failures)
        assert SloGate(min_completed_fraction=0.5, max_hangs=2,
                       max_failed=6).evaluate(artifact) == []

    def test_rebuild_gate(self):
        gate = SloGate(min_completed_fraction=0.0, require_rebuild_complete=True)
        assert gate.evaluate({"issued": 1, "completed": 1}) == [
            "rebuild section missing from artifact"
        ]
        incomplete = {"issued": 1, "completed": 1,
                      "rebuild": {"complete": False, "ledger": {"started": 3}}}
        assert "rebuild incomplete" in gate.evaluate(incomplete)[0]
        done = {"issued": 1, "completed": 1, "rebuild": {"complete": True}}
        assert gate.evaluate(done) == []

    def test_validation_and_roundtrip(self):
        with pytest.raises(ValueError, match="positive"):
            SloGate(max_p99_us=0)
        with pytest.raises(ValueError, match="out of"):
            SloGate(min_completed_fraction=1.5)
        with pytest.raises(ValueError, match="negative"):
            SloGate(max_hangs=-1)
        gate = SloGate(max_p99_us=123.0, max_hangs=2)
        assert SloGate.from_dict(gate.to_dict()) == gate


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_catalog_has_six_stable_scenarios(self):
        assert len(CATALOG) >= 6
        for name in catalog_names():
            first, again = get_scenario(name), get_scenario(name)
            assert first.name == name
            assert len(first.digest) == 16
            assert first.digest == again.digest  # pure function of the seed

    def test_unknown_scenario_lists_the_catalog(self):
        with pytest.raises(KeyError, match="incast-burst"):
            get_scenario("nope")

    def test_digest_covers_verdict_inputs_only(self):
        scenario = get_scenario("incast-burst")
        renamed = dataclasses.replace(
            scenario, description="different words", tags=("other",)
        )
        assert renamed.digest == scenario.digest
        regated = dataclasses.replace(
            scenario, slo=dataclasses.replace(scenario.slo, max_hangs=5)
        )
        assert regated.digest != scenario.digest

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_every_catalog_scenario_passes_its_gates(self, name, tmp_path):
        report = run_scenario(get_scenario(name),
                              store=ResultStore(str(tmp_path)))
        assert report["pass"], report["points"]
        assert report["scenario_digest"] == get_scenario(name).digest
        assert len(report["report_digest"]) == 16


# ----------------------------------------------------------------------
# Importers
# ----------------------------------------------------------------------
class TestImporters:
    def test_msr_units_and_rebase(self):
        lines = [  # Windows filetime ticks: 100ns each
            "1000000,hm,0,Read,8192,1000,50",
            "1000010,hm,0,Write,0,4096,50",
        ]
        trace = import_trace(lines, "msr")
        records = trace.streams["vd0"]
        assert [r.at_ns for r in records] == [0, 1000]  # 10 ticks = 1us
        assert [r.kind for r in records] == ["read", "write"]
        assert records[0].size_bytes == 4096  # 1000B up-aligned to a block

    def test_alibaba_units_and_opcode_map(self):
        lines = [  # microsecond timestamps
            "419,R,4096,4096,7000",
            "419,W,8192,8192,7003",
        ]
        trace = import_trace(lines, "alibaba")
        records = trace.streams["vd0"]
        assert [r.at_ns for r in records] == [0, 3000]
        assert [r.kind for r in records] == ["read", "write"]

    def test_header_row_skipped(self):
        lines = ["Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime",
                 "5,hm,0,Read,0,4096,1"]
        assert import_trace(lines, "msr").records_total == 1

    def test_malformed_rows_name_line_numbers(self):
        with pytest.raises(TraceFormatError, match="line 2.*7 comma"):
            import_trace(["5,hm,0,Read,0,4096,1", "too,short"], "msr")
        with pytest.raises(TraceFormatError, match="line 1.*Read|Write"):
            import_trace(["5,hm,0,Zap,0,4096,1"], "msr")
        with pytest.raises(TraceFormatError, match="line 1.*non-numeric"):
            import_trace(["x,hm,0,Read,0,4096,1"], "msr")
        with pytest.raises(TraceFormatError, match="line 2.*opcode"):
            import_trace(["419,R,0,4096,1", "419,X,0,4096,2"], "alibaba")
        with pytest.raises(TraceFormatError, match="no importable"):
            import_trace([], "msr")
        with pytest.raises(ValueError, match="format"):
            import_trace(["x"], "ext4")

    def test_devices_map_to_vds_first_seen_round_robin(self):
        lines = [f"{i},dev{i % 3},0,Read,0,4096,1" for i in range(9)]
        trace = import_trace(lines, "msr",
                             options=ImportOptions(max_vds=2))
        assert sorted(trace.streams) == ["vd0", "vd1"]
        # dev0 and dev2 share vd0 (round robin past the cap), dev1 -> vd1.
        assert trace.meta["vd0"].source == "msr:dev0.0+dev2.0"
        assert trace.meta["vd1"].source == "msr:dev1.0"

    def test_downsampling_is_deterministic(self):
        lines = [f"{i * 10},hm,0,Read,{i * 4096},4096,1" for i in range(200)]
        options = ImportOptions(keep_one_in=4)
        once = import_trace(lines, "msr", options=options)
        twice = import_trace(lines, "msr", options=options)
        assert once.digest == twice.digest
        assert 0 < once.records_total < 200

    def test_max_records_cap(self):
        lines = [f"{i * 10},hm,0,Read,0,4096,1" for i in range(50)]
        trace = import_trace(lines, "msr",
                             options=ImportOptions(max_records=7))
        assert trace.records_total == 7

    def test_offsets_wrap_into_the_target_vd(self):
        huge_offset = 50 * 1024 * 1024 * 1024
        trace = import_trace(
            [f"5,hm,0,Read,{huge_offset},4096,1"], "msr",
            options=ImportOptions(vd_size_mb=16),
        )
        record = trace.streams["vd0"][0]
        assert record.offset_bytes + record.size_bytes <= 16 * 1024 * 1024
        assert record.offset_bytes % 4096 == 0

    def test_options_validation(self):
        for bad in (dict(vd_size_mb=0), dict(max_vds=0),
                    dict(keep_one_in=0), dict(max_records=0)):
            with pytest.raises(ValueError):
                ImportOptions(**bad)

    @pytest.mark.parametrize("fmt,filename", [
        ("msr", "msr_sample.csv"), ("alibaba", "alibaba_sample.csv"),
    ])
    @pytest.mark.parametrize("stack", ["luna", "solar"])
    def test_sample_corpus_imports_and_replays(self, fmt, filename, stack,
                                               tmp_path):
        trace = import_trace(DATA_DIR / filename, fmt)
        assert trace.records_total == 40
        assert len(trace.streams) > 1  # multi-device -> multi-VD
        report = run_scenario(
            trace_scenario(
                f"{fmt}-{stack}", "sample replay", trace, stack=stack,
                vd_size_mb=256, slo=SloGate(min_completed_fraction=1.0),
            ),
            store=ResultStore(str(tmp_path)),
        )
        assert report["pass"], report["points"]


# ----------------------------------------------------------------------
# The unified scenario envelope (chaos + workload)
# ----------------------------------------------------------------------
class TestEnvelope:
    def test_workload_envelope_roundtrip(self, tmp_path):
        scenario = trace_scenario("env-rt", "envelope round trip",
                                  mini_trace(), slo=SloGate(max_hangs=1))
        path = tmp_path / "scenario.json"
        save_envelope(scenario, path)
        again = load_envelope(path)
        assert isinstance(again, Scenario)
        assert again.digest == scenario.digest
        assert again.slo == scenario.slo
        assert again.spec == scenario.spec

    def test_committed_chaos_files_are_v2_envelopes(self):
        files = sorted(CHAOS_DIR.glob("*.json"))
        assert len(files) == 6
        for path in files:
            payload = json.loads(path.read_text())
            assert payload["version"] == ENVELOPE_VERSION
            assert payload["kind"] == "chaos"
            scenario = load_envelope(path)
            assert isinstance(scenario, ChaosScenario)

    def test_v1_chaos_payload_loads_and_replays_identically(self):
        path = min(CHAOS_DIR.glob("*.json"))
        v2_payload = json.loads(path.read_text())
        v1_payload = {k: v for k, v in v2_payload.items() if k != "kind"}
        v1_payload["version"] = 1
        old = ChaosScenario.from_dict(v1_payload)
        new = ChaosScenario.from_dict(v2_payload)
        assert old.digest == new.digest
        old_report = json.dumps(replay_scenario(old), sort_keys=True)
        new_report = json.dumps(replay_scenario(new), sort_keys=True)
        assert old_report == new_report  # legacy files replay byte-identically

    def test_envelope_kind_dispatch_errors(self):
        assert envelope_kind({"version": 1}) == "chaos"
        assert envelope_kind({"version": 2, "kind": "workload"}) == "workload"
        with pytest.raises(ValueError, match="kind"):
            envelope_kind({"version": 2, "kind": "mystery"})
        with pytest.raises(ValueError, match="version"):
            envelope_kind({"version": 99})
        with pytest.raises(ValueError, match="not a workload"):
            Scenario.from_dict({"version": 2, "kind": "chaos"})
        with pytest.raises(ValueError, match="not a chaos"):
            ChaosScenario.from_dict({"version": 2, "kind": "workload"})

    def test_workload_digest_tamper_detected(self):
        payload = trace_scenario("t", "d", mini_trace()).to_dict()
        payload["digest"] = "0" * 16
        with pytest.raises(ValueError, match="digest mismatch"):
            Scenario.from_dict(payload)


# ----------------------------------------------------------------------
# Trace fleets on the shard plane
# ----------------------------------------------------------------------
class TestTraceFleet:
    def test_fleet_from_trace_shape(self):
        trace = mini_trace(vd_size_mb=48)
        fleet = fleet_from_trace(trace, stacks=("solar", "luna"), seed=7)
        assert len(fleet.deployments) == 2
        assert [d.stack for d in fleet.deployments] == ["solar", "luna"]
        assert [d.seed for d in fleet.deployments] == [7, 8]
        assert all(d.vd_size_mb == 48 for d in fleet.deployments)
        assert fleet.name == "trace-mini"
        assert len(fleet.deployments[0].trace_rows) == 12
        with pytest.raises(ValueError, match="at least one stack"):
            fleet_from_trace(trace, stacks=())

    def test_trace_fleet_digest_identical_across_shards(self):
        fleet = fleet_from_trace(mini_trace(), stacks=("solar", "luna"))
        one = run_fleet(fleet, shards=1, executor=SerialExecutor())
        two = run_fleet(fleet, shards=2, executor=SerialExecutor())
        assert one.digest == two.digest
        assert one.artifacts == two.artifacts
        issued = [a["issued"] for a in one.artifacts]
        assert issued == [12, 6]  # every trace row replayed, per stream
        assert all(a["completed"] == a["issued"] for a in one.artifacts)

    def test_empty_trace_rows_stay_out_of_the_serialization(self):
        legacy = FleetSpec(deployments=(FleetDeployment(), FleetDeployment()))
        payload = json.loads(legacy.to_json())
        # Fleets recorded before trace replay existed must keep their
        # digests: the new field is omitted when empty.
        assert all("trace_rows" not in d for d in payload["deployments"])
        assert FleetSpec.from_json(legacy.to_json()) == legacy

    def test_trace_rows_roundtrip_and_move_the_digest(self):
        rows = ((0, "read", 0, 4096), (5 * US, "write", 8192, 4096))
        dep = FleetDeployment(trace_rows=rows)
        spec = FleetSpec(deployments=(dep, FleetDeployment()))
        again = FleetSpec.from_json(spec.to_json())
        assert again == spec
        assert again.deployments[0].trace_rows == rows
        plain = FleetSpec(deployments=(FleetDeployment(), FleetDeployment()))
        assert spec.digest() != plain.digest()

    def test_trace_rows_validation(self):
        for rows in (((-1, "read", 0, 4096),), ((0, "zap", 0, 4096),),
                     ((0, "read", -4096, 4096),), ((0, "read", 0, 0),)):
            with pytest.raises(ValueError):
                FleetDeployment(trace_rows=rows)

    def test_workload_horizon_follows_the_trace(self):
        dep = FleetDeployment(runtime_ns=2 * MS)
        assert dep.workload_horizon_ns == 2 * MS
        traced = FleetDeployment(
            runtime_ns=2 * MS, trace_rows=((9 * MS, "read", 0, 4096),)
        )
        assert traced.workload_horizon_ns == 9 * MS
        spec = FleetSpec(deployments=(traced, dep))
        assert spec.effective_horizon_ns >= 9 * MS
