"""Tests for the future-work extensions the paper sketches:

* INT-probe-driven explicit path selection (§4.5 roadmap);
* integrated EBS (SA + block server merged on the DPU) for edge clouds
  (§4.8 discussion).
"""

import pytest

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.ebs.edge import EdgeReplicator, convert_to_edge
from repro.profiles import BLOCK_SIZE
from repro.sim import MS, SECOND


def solar_dep(seed=77, **kwargs):
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=seed, **kwargs))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
    return dep, vd


class TestIntProbing:
    def test_prober_started_per_server(self):
        dep, vd = solar_dep(solar_probing_ns=2 * MS)
        done = []
        vd.write(0, BLOCK_SIZE, done.append)
        dep.run(until_ns=50 * MS)
        client = dep.solar_clients[vd.host_name]
        assert client._probers  # one per contacted block server
        prober = next(iter(client._probers.values()))
        assert prober.probes_sent > 0
        assert prober.echoes_received > 0

    def test_probe_updates_path_quality(self):
        dep, vd = solar_dep(solar_probing_ns=1 * MS)
        done = []
        vd.write(0, BLOCK_SIZE, done.append)
        dep.run(until_ns=30 * MS)
        client = dep.solar_clients[vd.host_name]
        manager = next(iter(client._paths.values()))
        # Every path has a fresh RTT estimate from probing, even those
        # that carried no data.
        assert all(p.packets_sent > 0 or p.srtt_ns != manager.base_rtt_ns
                   or p.probed_queue_bytes >= 0 for p in manager.paths)

    def test_probing_detects_dead_path_proactively(self):
        dep, vd = solar_dep(solar_probing_ns=1 * MS)
        done = []
        vd.write(0, BLOCK_SIZE, done.append)
        # NB: with a prober running the event heap never drains, so every
        # run() must be time-bounded.
        dep.run(until_ns=20 * MS)
        assert done
        client = dep.solar_clients[vd.host_name]
        prober = next(iter(client._probers.values()))
        # Kill the compute-side ToR pair entirely: all probes die.
        for sw in dep.topology.switches_by_tier("spine"):
            sw.set_up(False)
        dep.run(until_ns=dep.sim.now + 100 * MS)
        assert prober.paths_failed_by_probe > 0

    def test_selection_prefers_uncongested_probed_path(self):
        dep, vd = solar_dep()
        client = dep.solar_clients[vd.host_name]
        manager = client.paths_to("sp/r0/h0")
        for p in manager.paths:
            p.srtt_ns = 10_000.0
        manager.paths[0].probed_queue_bytes = 0
        for p in manager.paths[1:]:
            p.probed_queue_bytes = 500_000  # deep probed queues
        assert manager.pick(4096) is manager.paths[0]

    def test_probing_survives_under_failure_with_io(self):
        """End to end: probing on, blackhole injected, zero hangs."""
        from repro.faults import IoHangMonitor
        from repro.net.failures import switch_blackhole

        dep, vd = solar_dep(seed=79, solar_probing_ns=1 * MS)
        monitor = IoHangMonitor(dep.sim, threshold_ns=1 * SECOND)
        scenario = switch_blackhole("tor", 1.0)
        dep.sim.schedule_at(10 * MS, scenario.apply, dep.topology)
        count = [0]

        def issue() -> None:
            if dep.sim.now > 400 * MS:
                return
            io = vd.write((count[0] % 500) * 4096, 4096, lambda io: None)
            monitor.watch(io)
            count[0] += 1
            dep.sim.schedule(2 * MS, issue)

        issue()
        dep.run(until_ns=2 * SECOND)
        assert monitor.watched > 100
        assert monitor.hangs == 0


class TestEdgeIntegration:
    def _edge(self, seed=88):
        dep, vd = solar_dep(seed=seed)
        convert_to_edge(dep)
        return dep, vd

    def test_conversion_swaps_agents(self):
        dep, vd = self._edge()
        assert isinstance(dep.agents[vd.host_name], EdgeReplicator)

    def test_write_and_read_complete(self):
        dep, vd = self._edge()
        done = []
        vd.write(0, 4 * BLOCK_SIZE, done.append, data=b"\x11" * (4 * BLOCK_SIZE))
        dep.run()
        vd.read(0, 4 * BLOCK_SIZE, done.append)
        dep.run()
        assert len(done) == 2 and all(io.trace.ok for io in done)

    def test_write_replicates_to_three_chunks(self):
        dep, vd = self._edge()
        done = []
        vd.write(0, BLOCK_SIZE, done.append, data=b"\x22" * BLOCK_SIZE)
        dep.run()
        holders = [c for c in dep.chunk_servers.values() if c.store]
        assert len(holders) == 3
        for chunk in holders:
            (data, _crc), = chunk.store.values()
            assert data == b"\x22" * BLOCK_SIZE

    def test_no_block_server_involved(self):
        dep, vd = self._edge()
        done = []
        vd.write(0, BLOCK_SIZE, done.append)
        dep.run()
        assert all(bs.writes == 0 for bs in dep.block_servers.values())

    def test_edge_write_faster_than_standard(self):
        """Removing the block-server hop + BN transition must show up as
        lower write latency (the §4.8 motivation)."""
        std_dep, std_vd = solar_dep(seed=88)
        done = []
        std_vd.write(0, BLOCK_SIZE, done.append)
        std_dep.run()
        standard_ns = done[0].trace.total_ns

        edge_dep, edge_vd = self._edge(seed=88)
        done2 = []
        edge_vd.write(0, BLOCK_SIZE, done2.append)
        edge_dep.run()
        assert done2[0].trace.total_ns < standard_ns

    def test_edge_conversion_requires_solar(self):
        dep = EbsDeployment(DeploymentSpec(stack="luna", seed=1))
        with pytest.raises(ValueError):
            convert_to_edge(dep)

    def test_bn_component_is_zero(self):
        dep, vd = self._edge()
        done = []
        vd.write(0, BLOCK_SIZE, done.append)
        dep.run()
        assert done[0].trace.components["bn"] == 0
