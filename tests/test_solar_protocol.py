"""End-to-end tests of the SOLAR protocol engine: one-block-one-packet,
per-packet ACK, selective retransmission, path failover, offload datapath,
and integrity under injected FPGA faults."""

import pytest

from repro.core import data_packet_bytes
from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.faults import BitFlipInjector
from repro.profiles import BLOCK_SIZE
from repro.sim import MS, SECOND


def solar_deployment(seed=11, **kwargs):
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=seed, **kwargs))
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
    return dep, vd


def do_io(dep, vd, kind, offset, size, data=None):
    done = []
    if kind == "write":
        vd.write(offset, size, done.append, data=data)
    else:
        vd.read(offset, size, done.append)
    dep.run()
    assert done, f"{kind} never completed"
    return done[0]


class TestOneBlockOnePacket:
    def test_write_sends_one_data_packet_per_block(self):
        dep, vd = solar_deployment()
        client = dep.solar_clients[vd.host_name]
        io = do_io(dep, vd, "write", 0, 8 * BLOCK_SIZE)
        manager = next(iter(client._paths.values()))
        sent = sum(p.packets_sent for p in manager.paths)
        assert sent == 8  # one packet per 4KB block, zero retransmits

    def test_read_gets_one_packet_per_block(self):
        dep, vd = solar_deployment()
        io = do_io(dep, vd, "read", 0, 4 * BLOCK_SIZE)
        assert io.trace.ok
        server = next(iter(dep.solar_servers.values()))
        # At least our 4 response blocks traversed a server.
        total_reqs = sum(s.read_requests for s in dep.solar_servers.values())
        assert total_reqs >= 1

    def test_data_packet_size_is_block_plus_headers(self):
        assert data_packet_bytes(BLOCK_SIZE) == BLOCK_SIZE + 60

    def test_write_read_round_trip_payload(self):
        dep, vd = solar_deployment()
        payload = bytes(range(256)) * 16  # 4096 bytes
        do_io(dep, vd, "write", 0, BLOCK_SIZE, data=payload)
        # The chunk stores what SOLAR put on the wire; verify stored CRC
        # matches the plaintext CRC (no cipher configured by default).
        stored = [
            c.store for c in dep.chunk_servers.values() if c.store
        ]
        assert stored
        from repro.storage.crc import crc32

        for store in stored:
            for (seg, lba), (data, crc) in store.items():
                assert crc == crc32(payload)

    def test_no_connection_state_in_hardware(self):
        """§4.4: the FPGA keeps no per-connection state — only the Addr
        table rows live during an outstanding READ."""
        dep, vd = solar_deployment()
        offload = next(iter(dep.solar_offloads.values()))
        do_io(dep, vd, "write", 0, 16 * BLOCK_SIZE)
        assert len(offload.addr_table) == 0
        do_io(dep, vd, "read", 0, 16 * BLOCK_SIZE)
        assert len(offload.addr_table) == 0  # consumed by the responses


class TestTracing:
    def test_write_breakdown_sums_to_total(self):
        dep, vd = solar_deployment()
        io = do_io(dep, vd, "write", 0, BLOCK_SIZE)
        assert io.trace.unattributed_ns() >= 0
        assert io.trace.unattributed_ns() < io.trace.total_ns * 0.25

    def test_solar_sa_latency_is_small(self):
        dep, vd = solar_deployment()
        io = do_io(dep, vd, "write", 0, BLOCK_SIZE)
        # Figure 6: SOLAR's SA is a sliver (95% below the software SA).
        assert io.trace.components["sa"] < 10_000

    def test_read_ssd_dominates_clean_run(self):
        dep, vd = solar_deployment()
        io = do_io(dep, vd, "read", 0, BLOCK_SIZE)
        comp = io.trace.components
        assert comp["ssd"] > comp["fn"]  # NAND read dwarfs the fabric


class TestLossRecovery:
    def test_write_survives_random_drops(self):
        dep, vd = solar_deployment(seed=13)
        for sw in dep.topology.switches_by_tier("spine"):
            sw.set_drop_rate(0.2)
        io = do_io(dep, vd, "write", 0, 8 * BLOCK_SIZE)
        assert io.trace.ok
        client = dep.solar_clients[vd.host_name]
        assert client.retransmissions >= 0  # may or may not have been hit

    def test_write_survives_heavy_drops_at_one_tor(self):
        """Table 2's 'packet drop rate=75%' scenario hits one ToR of the
        dual-homed pair; SOLAR's multipath shifts to ports hashing through
        the healthy ToR and stays far below the 1s hang bar."""
        dep, vd = solar_deployment(seed=13)
        dep.topology.tor_of_host(vd.host_name, 0).set_drop_rate(0.75)
        done = []
        vd.write(0, 4 * BLOCK_SIZE, done.append)
        dep.run(until_ns=900 * MS)
        assert done and done[0].trace.ok
        assert done[0].trace.total_ns < 500 * MS

    def test_read_retransmits_missing_blocks_only(self):
        dep, vd = solar_deployment(seed=17)
        for sw in dep.topology.switches_by_tier("spine"):
            sw.set_drop_rate(0.3)
        io = do_io(dep, vd, "read", 0, 8 * BLOCK_SIZE)
        assert io.trace.ok

    def test_blackhole_triggers_path_shift(self):
        dep, vd = solar_deployment(seed=19)
        client = dep.solar_clients[vd.host_name]
        # Blackhole half of all flows at every spine: some paths die,
        # others survive — SOLAR must shift.
        for sw in dep.topology.switches_by_tier("spine"):
            sw.set_blackhole(0.6, "t2")
        completed = []
        for i in range(20):
            vd.write(i * BLOCK_SIZE, BLOCK_SIZE, completed.append)
        dep.run(until_ns=1 * SECOND)
        assert len(completed) == 20
        assert all(io.trace.ok for io in completed)
        assert max(io.trace.total_ns for io in completed) < 1 * SECOND

    def test_full_partition_does_not_complete(self):
        dep, vd = solar_deployment(seed=19)
        for sw in dep.topology.switches_by_tier("spine"):
            sw.set_up(False)
        done = []
        vd.write(0, BLOCK_SIZE, done.append)
        dep.run(until_ns=500 * MS)
        assert done == []  # nothing can get through; no false completion


class TestOffloadDatapath:
    def test_fpga_resource_report_matches_table3(self):
        dep, _vd = solar_deployment()
        offload = next(iter(dep.solar_offloads.values()))
        report = offload.resource_report()
        assert report["Addr"] == {"lut_pct": 5.1, "bram_pct": 8.1}
        assert report["Total"]["lut_pct"] == pytest.approx(8.5)

    def test_unprovisioned_vd_fails_loudly_in_pipeline(self):
        dep, vd = solar_deployment()
        # Forge an I/O against a VD that control plane never installed.
        from repro.agent.base import IoRequest

        dep.segment_table.provision(
            "ghost", 4 * 1024 * 1024, sorted(dep.storage_servers),
            sorted(dep.storage_servers),
        )
        dep.qos_table.install("ghost", __import__("repro.ebs", fromlist=["GENEROUS_QOS"]).GENEROUS_QOS)
        io = IoRequest("write", "ghost", 0, BLOCK_SIZE, lambda io: None)
        dep.agent_for(vd.host_name).submit(io)
        with pytest.raises(RuntimeError, match="egress pipeline dropped"):
            dep.run()


class TestIntegrity:
    def _inject(self, dep, **rates):
        offload = next(iter(dep.solar_offloads.values()))
        rng = dep.sim.rng.stream("faults")
        injector = BitFlipInjector(rng, **rates)
        offload.fault_injector = injector
        return injector

    def test_crc_flip_detected_by_aggregation(self):
        dep, vd = solar_deployment(seed=23)
        injector = self._inject(dep, crc_flip_rate=1.0)
        client = dep.solar_clients[vd.host_name]
        io = do_io(dep, vd, "write", 0, BLOCK_SIZE,
                   data=b"\x5a" * BLOCK_SIZE)
        assert injector.crc_flips >= 1
        assert client.integrity_events >= 1
        assert io.trace.error == "integrity-mismatch"

    def test_payload_flip_detected(self):
        dep, vd = solar_deployment(seed=29)
        injector = self._inject(dep, payload_flip_rate=1.0)
        client = dep.solar_clients[vd.host_name]
        do_io(dep, vd, "write", 0, BLOCK_SIZE, data=b"\xa5" * BLOCK_SIZE)
        assert injector.payload_flips >= 1
        assert client.integrity_events >= 1

    def test_clean_run_has_no_integrity_events(self):
        dep, vd = solar_deployment(seed=31)
        client = dep.solar_clients[vd.host_name]
        do_io(dep, vd, "write", 0, 8 * BLOCK_SIZE,
              data=bytes(8 * BLOCK_SIZE))
        do_io(dep, vd, "read", 0, 8 * BLOCK_SIZE)
        assert client.integrity_events == 0
        assert client.aggregator.checks >= 2


class TestReadRetransmission:
    def test_duplicate_read_responses_dropped_via_addr_miss(self):
        """A retransmitted read request causes duplicate block responses;
        the Addr table's consume-once semantics discard the extras."""
        dep, vd = solar_deployment(seed=37)
        offload = next(iter(dep.solar_offloads.values()))
        # Delay, don't drop: force one request timeout so blocks arrive
        # twice.  Easiest deterministic lever: shrink the read timer by
        # bumping consecutive timeouts via a brief full blackhole.
        for sw in dep.topology.switches_by_tier("spine"):
            sw.set_drop_rate(0.5)
        io = do_io(dep, vd, "read", 0, 8 * BLOCK_SIZE)
        assert io.trace.ok
        # Either no duplicates happened (lucky run) or they were absorbed
        # as addr misses; the table must end empty regardless.
        assert len(offload.addr_table) == 0

    def test_partial_read_retransmits_only_missing(self):
        dep, vd = solar_deployment(seed=41)
        client = dep.solar_clients[vd.host_name]
        for sw in dep.topology.switches_by_tier("spine"):
            sw.set_drop_rate(0.4)
        io = do_io(dep, vd, "read", 0, 16 * BLOCK_SIZE)
        assert io.trace.ok
        server = next(iter(dep.solar_servers.values()))
        # Servers saw at least the original request; possibly retries.
        total_requests = sum(s.read_requests for s in dep.solar_servers.values())
        assert total_requests >= 1


class TestWriteAckSemantics:
    def test_duplicate_acks_ignored(self):
        """Inject a duplicated ACK by replaying the handler; the RPC must
        complete exactly once."""
        dep, vd = solar_deployment(seed=43)
        client = dep.solar_clients[vd.host_name]
        completions = []
        vd.write(0, BLOCK_SIZE, completions.append)
        dep.run()
        assert len(completions) == 1
        assert client.rpcs_completed == client.rpcs_issued

    def test_storage_time_annotations_flow_back(self):
        dep, vd = solar_deployment(seed=47)
        io = do_io(dep, vd, "write", 0, BLOCK_SIZE)
        assert io.trace.components["ssd"] > 0
        assert io.trace.components["bn"] > 0


class TestProfilesIntegration:
    def test_num_paths_spec_respected(self):
        dep = EbsDeployment(DeploymentSpec(stack="solar", seed=3, solar_paths=7))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 64 * 1024 * 1024)
        do_io(dep, vd, "write", 0, BLOCK_SIZE)
        client = dep.solar_clients[vd.host_name]
        manager = next(iter(client._paths.values()))
        assert len(manager.paths) == 7

    def test_mtu_too_small_rejected_at_construction(self):
        from repro.profiles import DEFAULT

        bad = DEFAULT.with_overrides(network={"mtu_bytes": 1500})
        with pytest.raises(ValueError, match="jumbo"):
            EbsDeployment(DeploymentSpec(stack="solar", seed=3), profiles=bad)
