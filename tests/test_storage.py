"""Tests for the storage substrate: blocks, crypto, SSD, segment/QoS
tables, chunk/block servers, replication, BN."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.server import StorageServer
from repro.net import Endpoint
from repro.profiles import BLOCK_SIZE, DEFAULT
from repro.sim import Simulator, US
from repro.storage import (
    BackendNetwork,
    BlockCipher,
    BlockServer,
    BLOCKS_PER_SEGMENT,
    ChunkRequest,
    ChunkServer,
    DataBlock,
    QosSpec,
    QosTable,
    QuorumTracker,
    SegmentTable,
    SsdDevice,
    TokenBucket,
    UnmappedAddressError,
    split_into_blocks,
)


class TestDataBlock:
    def test_crc_of_real_payload(self):
        import zlib

        data = b"\xab" * BLOCK_SIZE
        block = DataBlock("vd", 0, BLOCK_SIZE, data)
        assert block.crc == zlib.crc32(data)

    def test_synthetic_crc_is_deterministic(self):
        assert DataBlock("vd", 7).crc == DataBlock("vd", 7).crc
        assert DataBlock("vd", 7).crc != DataBlock("vd", 8).crc

    def test_payload_length_validated(self):
        with pytest.raises(ValueError):
            DataBlock("vd", 0, BLOCK_SIZE, b"short")

    def test_size_bounds(self):
        with pytest.raises(ValueError):
            DataBlock("vd", 0, 0)
        with pytest.raises(ValueError):
            DataBlock("vd", 0, BLOCK_SIZE + 1)

    def test_with_data_copies_identity(self):
        block = DataBlock("vd", 3)
        filled = block.with_data(b"\x01" * BLOCK_SIZE)
        assert (filled.vd_id, filled.lba) == ("vd", 3)
        assert filled.data is not None

    def test_split_into_blocks(self):
        blocks = split_into_blocks("vd", 2 * BLOCK_SIZE, 3 * BLOCK_SIZE)
        assert [b.lba for b in blocks] == [2, 3, 4]

    def test_split_partial_tail(self):
        blocks = split_into_blocks("vd", 0, BLOCK_SIZE + 100)
        assert [b.size_bytes for b in blocks] == [BLOCK_SIZE, 100]

    def test_split_rejects_misaligned_offset(self):
        with pytest.raises(ValueError):
            split_into_blocks("vd", 1, BLOCK_SIZE)


class TestCipher:
    def test_round_trip(self):
        cipher = BlockCipher(b"key")
        data = bytes(range(256)) * 16
        ct = cipher.encrypt("vd", 5, data)
        assert ct != data
        assert cipher.decrypt("vd", 5, ct) == data

    def test_tweak_differs_per_lba(self):
        cipher = BlockCipher(b"key")
        data = b"\x00" * 64
        assert cipher.encrypt("vd", 1, data) != cipher.encrypt("vd", 2, data)

    def test_key_differs(self):
        data = b"\x00" * 64
        assert BlockCipher(b"k1").encrypt("vd", 1, data) != BlockCipher(b"k2").encrypt(
            "vd", 1, data
        )

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            BlockCipher(b"")

    @given(st.binary(min_size=1, max_size=512), st.integers(0, 1_000_000))
    @settings(max_examples=30)
    def test_round_trip_property(self, data, lba):
        cipher = BlockCipher(b"prop")
        assert cipher.decrypt("vd", lba, cipher.encrypt("vd", lba, data)) == data


class TestSsd:
    def test_write_uses_cache_latency(self):
        sim = Simulator(seed=1)
        ssd = SsdDevice(sim, "s", DEFAULT.ssd)
        done = []
        ssd.submit_write(4096, lambda: done.append(sim.now))
        sim.run()
        # Write cache: "tens of us" — well under NAND read latency.
        assert 3_000 < done[0] < 60_000

    def test_read_is_slower_than_write_on_average(self):
        # §2.3: writes hit the SSD write cache; reads usually pay NAND.
        def mean_latency(op_name):
            sim = Simulator(seed=2)
            ssd = SsdDevice(sim, "s", DEFAULT.ssd)
            finishes = []
            for _ in range(60):
                getattr(ssd, op_name)(4096, lambda: finishes.append(sim.now))
                sim.run()
            deltas = [b - a for a, b in zip([0] + finishes, finishes)]
            return sum(deltas) / len(deltas)

        assert mean_latency("submit_read") > mean_latency("submit_write") * 1.5

    def test_channels_allow_parallelism(self):
        sim = Simulator(seed=3)
        profile = DEFAULT.ssd
        ssd = SsdDevice(sim, "s", profile)
        finish = []
        for _ in range(profile.channels):
            ssd.submit_write(4096, lambda: finish.append(sim.now))
        sim.run()
        # All ops ran concurrently: the last completion is far below
        # channels * single-op latency.
        assert max(finish) < profile.write_cache_ns * 4

    def test_invalid_sizes_rejected(self):
        ssd = SsdDevice(Simulator(), "s", DEFAULT.ssd)
        with pytest.raises(ValueError):
            ssd.submit_write(0)
        with pytest.raises(ValueError):
            ssd.submit_read(-1)


class TestSegmentTable:
    def _provision(self, size_mb=64):
        table = SegmentTable()
        segments = table.provision(
            "vd0", size_mb * 1024 * 1024, ["bs0", "bs1", "bs2"],
            ["c0", "c1", "c2", "c3", "c4"],
        )
        return table, segments

    def test_segments_cover_vd_contiguously(self):
        _table, segments = self._provision()
        expected_start = 0
        for seg in segments:
            assert seg.start_lba == expected_start
            expected_start = seg.end_lba
        assert expected_start == 64 * 1024 * 1024 // BLOCK_SIZE

    def test_segment_size_is_2mb(self):
        _table, segments = self._provision()
        assert segments[0].num_blocks == BLOCKS_PER_SEGMENT == 512

    def test_three_distinct_replicas(self):
        _table, segments = self._provision()
        for seg in segments:
            assert len(set(seg.replicas)) == 3

    def test_lookup_binary_search(self):
        table, segments = self._provision()
        assert table.lookup("vd0", 0) is segments[0]
        assert table.lookup("vd0", BLOCKS_PER_SEGMENT) is segments[1]
        assert table.lookup("vd0", segments[-1].end_lba - 1) is segments[-1]

    def test_lookup_out_of_range(self):
        table, segments = self._provision()
        with pytest.raises(UnmappedAddressError):
            table.lookup("vd0", segments[-1].end_lba)

    def test_unknown_vd(self):
        table, _ = self._provision()
        with pytest.raises(UnmappedAddressError):
            table.lookup("ghost", 0)

    def test_extent_splitting_across_segments(self):
        table, _segments = self._provision()
        extents = table.extents("vd0", BLOCKS_PER_SEGMENT - 2, 5)
        assert [(e.start_lba, e.num_blocks) for e in extents] == [
            (BLOCKS_PER_SEGMENT - 2, 2),
            (BLOCKS_PER_SEGMENT, 3),
        ]

    def test_single_extent_common_case(self):
        # §4.5: "the chance of I/O splitting is typically low".
        table, _ = self._provision()
        assert len(table.extents("vd0", 10, 16)) == 1

    def test_double_provision_rejected(self):
        table, _ = self._provision()
        with pytest.raises(ValueError):
            table.provision("vd0", 2 * 1024 * 1024, ["bs0"], ["c0", "c1", "c2"])

    def test_placement_is_deterministic(self):
        _t1, segs1 = self._provision()
        _t2, segs2 = self._provision()
        assert [s.block_server for s in segs1] == [s.block_server for s in segs2]

    def test_needs_enough_chunk_servers(self):
        table = SegmentTable()
        with pytest.raises(ValueError):
            table.provision("vd", 2 * 1024 * 1024, ["bs0"], ["c0", "c1"])

    @given(st.integers(0, 16_384 - 64), st.integers(1, 64))
    @settings(max_examples=40)
    def test_extents_cover_exactly_property(self, start, count):
        table, _ = self._provision()
        extents = table.extents("vd0", start, count)
        covered = sum(e.num_blocks for e in extents)
        assert covered == count
        assert extents[0].start_lba == start
        for a, b in zip(extents, extents[1:]):
            assert a.start_lba + a.num_blocks == b.start_lba


class TestSegmentEvacuation:
    SERVERS = ["bs0", "bs1", "bs2", "bs3", "bs4"]

    def _provision(self, size_mb=64):
        table = SegmentTable()
        table.provision(
            "vd0", size_mb * 1024 * 1024, self.SERVERS, self.SERVERS
        )
        return table

    def test_contains_and_vd_ids(self):
        table = self._provision()
        assert "vd0" in table
        assert "ghost" not in table
        assert table.vd_ids() == ["vd0"]

    def test_evacuation_clears_the_server(self):
        table = self._provision()
        victim = "bs0"
        before = len(table.segments_on(victim))
        assert before > 0
        healthy = [s for s in self.SERVERS if s != victim]
        changed = table.evacuate(victim, healthy)
        assert sum(changed.values()) == before
        assert table.segments_on(victim) == []
        # Placement invariants survive: host + 3 distinct replicas, none
        # of them the victim.
        for seg in table.segments_of("vd0"):
            assert seg.block_server != victim
            assert victim not in seg.replicas
            assert len(set(seg.replicas)) == 3

    def test_lookup_still_covers_vd_after_evacuation(self):
        table = self._provision()
        table.evacuate("bs1", ["bs0", "bs2", "bs3", "bs4"])
        last = table.segments_of("vd0")[-1]
        assert table.lookup("vd0", 0) is table.segments_of("vd0")[0]
        assert table.lookup("vd0", last.end_lba - 1) is last

    def test_evacuation_is_deterministic(self):
        t1, t2 = self._provision(), self._provision()
        healthy = ["bs1", "bs2", "bs3", "bs4"]
        t1.evacuate("bs0", healthy)
        t2.evacuate("bs0", healthy)
        assert [
            (s.block_server, s.replicas) for s in t1.segments_of("vd0")
        ] == [(s.block_server, s.replicas) for s in t2.segments_of("vd0")]

    def test_idle_server_evacuation_is_noop(self):
        table = self._provision()
        assert table.evacuate("not-hosting-anything", ["bs0"]) == {}

    def test_empty_replacements_rejected(self):
        table = self._provision()
        with pytest.raises(ValueError):
            table.evacuate("bs0", [])

    def test_self_evacuation_rejected(self):
        table = self._provision()
        with pytest.raises(ValueError):
            table.evacuate("bs0", ["bs0", "bs1"])

    def test_no_available_replica_rejected(self):
        # Every replacement already replicates some segment of a 3-server
        # table, so the victim's replica slot cannot be re-homed.
        table = SegmentTable()
        table.provision(
            "vd0", 2 * 1024 * 1024, ["bs0", "bs1", "bs2"], ["bs0", "bs1", "bs2"]
        )
        with pytest.raises(ValueError):
            table.evacuate("bs0", ["bs1", "bs2"])

    def test_double_evacuation_is_idempotent(self):
        # Overlapping incidents (heartbeat loss + I/O hangs on one node)
        # can both trigger failover; the second evacuation must not move
        # or double-count anything.
        table = self._provision()
        healthy = [s for s in self.SERVERS if s != "bs0"]
        first = table.evacuate("bs0", healthy)
        snapshot = [
            (s.block_server, s.replicas) for s in table.segments_of("vd0")
        ]
        assert sum(first.values()) > 0
        assert table.evacuate("bs0", healthy) == {}
        assert [
            (s.block_server, s.replicas) for s in table.segments_of("vd0")
        ] == snapshot

    def test_evacuated_server_excluded_from_provision(self):
        table = self._provision()
        table.evacuate("bs0", [s for s in self.SERVERS if s != "bs0"])
        assert table.evacuated == frozenset({"bs0"})
        segments = table.provision(
            "vd1", 8 * 1024 * 1024, self.SERVERS, self.SERVERS
        )
        for seg in segments:
            assert seg.block_server != "bs0"
            assert "bs0" not in seg.replicas

    def test_evacuated_servers_excluded_as_replacements(self):
        table = self._provision()
        table.evacuate("bs0", [s for s in self.SERVERS if s != "bs0"])
        # bs0 sneaking into the replacement list must be ignored, not
        # receive segments back while still quarantined.
        table.evacuate("bs1", ["bs0", "bs2", "bs3", "bs4"])
        assert table.segments_on("bs0") == []

    def test_restore_lifts_quarantine(self):
        table = self._provision()
        healthy = [s for s in self.SERVERS if s != "bs0"]
        table.evacuate("bs0", healthy)
        table.restore("bs0")
        assert table.evacuated == frozenset()
        segments = table.provision(
            "vd1", 8 * 1024 * 1024, ["bs0"], ["bs0", "bs1", "bs2"]
        )
        assert all(seg.block_server == "bs0" for seg in segments)
        # A restored server that dies again evacuates normally.
        assert sum(table.evacuate("bs0", healthy).values()) > 0


class TestQos:
    def test_token_bucket_admits_within_rate(self):
        bucket = TokenBucket(rate_per_s=1000, burst=10)
        assert bucket.reserve(0, 1) == 0

    def test_token_bucket_delays_over_burst(self):
        bucket = TokenBucket(rate_per_s=1000, burst=2)
        bucket.reserve(0, 2)
        delay = bucket.reserve(0, 1)
        assert delay > 0
        # 1 token at 1000/s = 1ms.
        assert delay == pytest.approx(1_000_000, rel=0.01)

    def test_token_bucket_refills(self):
        bucket = TokenBucket(rate_per_s=1000, burst=5)
        bucket.reserve(0, 5)
        assert bucket.reserve(10_000_000, 5) == 0  # 10ms → 10 tokens (cap 5)

    def test_time_backwards_rejected(self):
        bucket = TokenBucket(1000, 5)
        bucket.reserve(1000, 1)
        with pytest.raises(ValueError):
            bucket.reserve(500, 1)

    def test_qos_table_dual_buckets(self):
        table = QosTable()
        table.install("vd", QosSpec(iops_limit=100, bandwidth_bps=8_000_000,
                                    burst_ios=1, burst_bytes=1_000_000))
        assert table.admit("vd", 0, 4096) == 0
        assert table.admit("vd", 0, 4096) > 0  # IOPS bucket exhausted

    def test_uninstalled_vd_rejected(self):
        with pytest.raises(KeyError):
            QosTable().admit("ghost", 0, 4096)

    def test_bandwidth_constrains_large_io(self):
        table = QosTable()
        table.install("vd", QosSpec(iops_limit=1e9, bandwidth_bps=8e6,
                                    burst_ios=1e9, burst_bytes=4096))
        table.admit("vd", 0, 4096)
        delay = table.admit("vd", 0, 4096)
        assert delay > 0


class TestQuorum:
    def test_all_success(self):
        results = []
        tracker = QuorumTracker(3, lambda ok, r: results.append(ok))
        for _ in range(3):
            tracker.complete(True, "r")
        assert results == [True]

    def test_fires_once(self):
        results = []
        tracker = QuorumTracker(2, lambda ok, r: results.append(ok))
        tracker.complete(True)
        tracker.complete(True)
        tracker.complete(True)
        assert results == [True]

    def test_failure_detected(self):
        results = []
        tracker = QuorumTracker(3, lambda ok, r: results.append(ok))
        tracker.complete(True)
        tracker.complete(False)
        tracker.complete(False)
        assert results == [False]

    def test_partial_quorum(self):
        results = []
        tracker = QuorumTracker(3, lambda ok, r: results.append(ok), required=2)
        tracker.complete(False)
        tracker.complete(True)
        tracker.complete(True)
        assert results == [True]

    def test_validation(self):
        with pytest.raises(ValueError):
            QuorumTracker(0, lambda ok, r: None)
        with pytest.raises(ValueError):
            QuorumTracker(3, lambda ok, r: None, required=4)


def _storage_stack(sim, n_chunks=3):
    chunks = {}
    for i in range(n_chunks):
        server = StorageServer(sim, Endpoint(sim, f"chunk{i}"), "chunk")
        chunks[server.name] = ChunkServer(sim, server, DEFAULT.ssd)
    bs_server = StorageServer(sim, Endpoint(sim, "bs0"), "block")
    bn = BackendNetwork(sim, DEFAULT, "rdma")
    block_server = BlockServer(sim, bs_server, bn, chunks, DEFAULT.ssd)
    table = SegmentTable()
    segments = table.provision("vd", 8 * 1024 * 1024, ["bs0"], list(chunks))
    return block_server, chunks, table, segments


class TestChunkAndBlockServers:
    def test_write_replicates_to_all_chunks(self):
        sim = Simulator(seed=4)
        block_server, chunks, _table, segments = _storage_stack(sim)
        block = DataBlock("vd", 0, BLOCK_SIZE, b"\x07" * BLOCK_SIZE)
        acks = []
        block_server.handle_write(segments[0], block, block.crc,
                                  lambda ok, replies: acks.append((ok, replies)))
        sim.run()
        assert acks and acks[0][0] is True
        stored = sum(
            (segments[0].segment_id, 0) in c.store for c in chunks.values()
        )
        assert stored == 3  # three copies, §2.2

    def test_read_returns_written_payload(self):
        sim = Simulator(seed=4)
        block_server, chunks, _t, segments = _storage_stack(sim)
        payload = b"\x3c" * BLOCK_SIZE
        block = DataBlock("vd", 2, BLOCK_SIZE, payload)
        block_server.handle_write(segments[0], block, block.crc, lambda ok, r: None)
        sim.run()
        got = []
        block_server.handle_read(segments[0], "vd", 2, BLOCK_SIZE, got.append)
        sim.run()
        assert got[0].data == payload
        assert got[0].crc == block.crc

    def test_read_of_unwritten_space_returns_zeros(self):
        sim = Simulator(seed=4)
        block_server, _c, _t, segments = _storage_stack(sim)
        got = []
        block_server.handle_read(segments[0], "vd", 99, BLOCK_SIZE, got.append)
        sim.run()
        assert got[0].data == bytes(BLOCK_SIZE)

    def test_reply_carries_service_time(self):
        sim = Simulator(seed=4)
        block_server, _c, _t, segments = _storage_stack(sim)
        got = []
        block_server.handle_read(segments[0], "vd", 0, BLOCK_SIZE, got.append)
        sim.run()
        assert got[0].service_ns > 0

    def test_bad_chunk_request_kind(self):
        with pytest.raises(ValueError):
            ChunkRequest("erase", "seg", "vd", 0, BLOCK_SIZE)

    def test_bn_one_way_scales_with_size(self):
        sim = Simulator(seed=1)
        bn = BackendNetwork(sim, DEFAULT, "rdma")
        small = sum(bn.one_way_ns(64) for _ in range(20)) / 20
        large = sum(bn.one_way_ns(256 * 1024) for _ in range(20)) / 20
        assert large > small + 10 * US

    def test_bn_kernel_slower_than_rdma(self):
        sim = Simulator(seed=1)
        rdma = BackendNetwork(sim, DEFAULT, "rdma")
        kern = BackendNetwork(sim, DEFAULT, "kernel")
        r = sum(rdma.one_way_ns(4096) for _ in range(20)) / 20
        k = sum(kern.one_way_ns(4096) for _ in range(20)) / 20
        assert k > r * 2

    def test_bn_mode_validation(self):
        with pytest.raises(ValueError):
            BackendNetwork(Simulator(), DEFAULT, "quic")


class TestCommitAggregation:
    """§2.3 fn.1: LSM + commit aggregation batch small writes into one
    sequential device commit."""

    def _chunk(self, window_ns):
        from dataclasses import replace

        sim = Simulator(seed=6)
        profile = replace(DEFAULT.ssd, commit_aggregation_ns=window_ns)
        server = StorageServer(sim, Endpoint(sim, "c0"), "chunk")
        return sim, ChunkServer(sim, server, profile)

    def _write(self, sim, chunk, lba, done):
        request = ChunkRequest("write", "seg", "vd", lba, BLOCK_SIZE)
        chunk.handle(request, lambda reply, _size: done.append(reply))

    def test_burst_shares_one_commit(self):
        sim, chunk = self._chunk(window_ns=50_000)
        done = []
        for lba in range(8):
            self._write(sim, chunk, lba, done)
        sim.run()
        assert len(done) == 8 and all(r.ok for r in done)
        assert chunk.commits == 1
        assert chunk.batched_writes == 8
        assert chunk.ssd.writes == 1  # a single sequential device write

    def test_spread_writes_use_multiple_commits(self):
        sim, chunk = self._chunk(window_ns=10_000)
        done = []
        for i in range(4):
            sim.schedule(i * 200_000, self._write, sim, chunk, i, done)
        sim.run()
        assert len(done) == 4
        assert chunk.commits == 4

    def test_aggregation_adds_bounded_latency(self):
        window = 30_000
        sim, chunk = self._chunk(window_ns=window)
        done = []
        self._write(sim, chunk, 0, done)
        sim.run()
        direct_sim, direct_chunk = self._chunk(window_ns=0)
        direct_done = []
        self._write(direct_sim, direct_chunk, 0, direct_done)
        direct_sim.run()
        assert done[0].service_ns <= direct_done[0].service_ns + window * 2

    def test_disabled_by_default(self):
        sim, chunk = self._chunk(window_ns=0)
        done = []
        for lba in range(3):
            self._write(sim, chunk, lba, done)
        sim.run()
        assert chunk.commits == 0
        assert chunk.ssd.writes == 3

    def test_batched_data_still_stored_and_readable(self):
        sim, chunk = self._chunk(window_ns=50_000)
        done = []
        payload = b"\x5d" * BLOCK_SIZE
        request = ChunkRequest("write", "seg", "vd", 5, BLOCK_SIZE, data=payload)
        chunk.handle(request, lambda reply, _s: done.append(reply))
        sim.run()
        got = []
        chunk.handle(ChunkRequest("read", "seg", "vd", 5, BLOCK_SIZE),
                     lambda reply, _s: got.append(reply))
        sim.run()
        assert got[0].data == payload
