"""The shard plane: fleet specs, fabric boundaries, digest determinism.

The headline guarantee under test: a fleet's result digest is a pure
function of its spec — byte-identical across shard counts 1/2/4, across
in-process and multi-process execution, and across the link fast-path
on/off switch.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.dist import (
    FleetDeployment,
    FleetEvent,
    FleetSpec,
    SerialExecutor,
    partition,
    reference_fleet,
    run_fleet,
)
from repro.net.fabric import FabricBoundary, ShardMessage, message_sort_key
from repro.sim import MS, Simulator
from repro.sim.engine import SimulationError

#: A fleet small enough for CI: 4 deployments, short runtime, trimmed
#: drain window — still exercising every cross-shard event kind.
def small_fleet(deployments=4, runtime_ns=3 * MS):
    spec = reference_fleet(deployments=deployments, runtime_ns=runtime_ns)
    return dataclasses.replace(spec, drain_ns=3 * MS)


# ----------------------------------------------------------------------
# Spec layer
# ----------------------------------------------------------------------
def test_fleet_spec_roundtrip_and_digest():
    spec = small_fleet()
    again = FleetSpec.from_json(spec.to_json())
    assert again == spec
    assert again.digest() == spec.digest()
    # The name is presentation-only: renaming must not move the digest.
    renamed = dataclasses.replace(spec, name="other")
    assert renamed.digest() == spec.digest()
    # Any load-bearing knob must move it.
    rewired = dataclasses.replace(spec, window_ns=spec.window_ns // 2)
    assert rewired.digest() != spec.digest()


def test_fleet_spec_validation():
    dep = FleetDeployment()
    with pytest.raises(ValueError, match="at least one deployment"):
        FleetSpec(deployments=())
    with pytest.raises(ValueError, match="lookahead"):
        FleetSpec(deployments=(dep, dep), window_ns=2 * MS, crossing_ns=1 * MS)
    with pytest.raises(ValueError, match="only 2"):
        FleetSpec(
            deployments=(dep, dep),
            events=(FleetEvent(at_ns=0, kind="node_fault", src=0, dst=5),),
        )
    with pytest.raises(ValueError, match="distinct src/dst"):
        FleetEvent(at_ns=0, kind="migration", src=1, dst=1)
    with pytest.raises(ValueError, match="kind"):
        FleetEvent(at_ns=0, kind="meteor", src=0, dst=1)
    with pytest.raises(ValueError, match="past the fleet horizon"):
        FleetSpec(
            deployments=(dep, dep),
            events=(FleetEvent(at_ns=10**12, kind="incident", src=0, dst=1),),
        )


def test_partition_round_robin():
    assert partition(4, 1) == [[0, 1, 2, 3]]
    assert partition(4, 2) == [[0, 2], [1, 3]]
    assert partition(4, 4) == [[0], [1], [2], [3]]
    # More shards than deployments: clamped, never an empty shard.
    assert partition(2, 4) == [[0], [1]]
    with pytest.raises(ValueError):
        partition(4, 0)


def test_windows_cover_horizon_exactly():
    spec = small_fleet()
    horizons = spec.windows()
    assert horizons[-1] == spec.effective_horizon_ns
    assert all(b - a <= spec.window_ns for a, b in zip(horizons, horizons[1:]))
    assert horizons == sorted(set(horizons))


# ----------------------------------------------------------------------
# Fabric boundary
# ----------------------------------------------------------------------
def test_fabric_boundary_enforces_lookahead():
    sim = Simulator(seed=1)
    boundary = FabricBoundary(sim, src=0, crossing_ns=1000)
    msg = boundary.export("rebuild", 1, {"size_kb": 4})
    assert msg.deliver_at_ns == 1000
    with pytest.raises(ValueError, match="lookahead"):
        boundary.export("rebuild", 1, {}, deliver_at_ns=999)
    later = boundary.export("rebuild", 1, {}, deliver_at_ns=5000)
    assert boundary.drain() == [msg, later]
    assert boundary.drain() == []
    assert boundary.exported == 2


def test_shard_message_total_order_and_roundtrip():
    msgs = [
        ShardMessage(200, 1, 0, 0, "rebuild", {}),
        ShardMessage(100, 2, 0, 0, "rebuild", {}),
        ShardMessage(100, 1, 1, 0, "rebuild", {}),
        ShardMessage(100, 1, 0, 0, "rebuild", {}),
    ]
    ordered = sorted(msgs, key=message_sort_key)
    assert [message_sort_key(m) for m in ordered] == sorted(
        message_sort_key(m) for m in msgs
    )
    again = ShardMessage.from_dict(json.loads(json.dumps(msgs[0].to_dict())))
    assert again == msgs[0]


def test_run_window_never_overshoots_past_ghosts():
    # A cancelled timer heading the queue must not let a live event past
    # the horizon fire inside this window (the overshoot quirk of plain
    # run(until=...) that run_window exists to close).
    sim = Simulator(seed=0)
    fired = []
    ghost = sim.schedule(500, fired.append, "ghost")
    sim.schedule(2000, fired.append, "late")
    ghost.cancel()
    sim.run_window(1000)
    assert sim.now == 1000
    assert fired == []
    sim.run_window(3000)
    assert fired == ["late"]
    with pytest.raises(SimulationError, match="past"):
        sim.run_window(10)


# ----------------------------------------------------------------------
# Determinism across shard layouts
# ----------------------------------------------------------------------
def test_digest_identical_across_shard_counts_in_process():
    """Shard counts 1/2/4 — same digest, same artifacts, same rollup.

    In-process executors keep this case fast; the multi-process identity
    is pinned separately below and in CI's dist --check smoke.
    """
    spec = small_fleet()
    results = {
        shards: run_fleet(spec, shards=shards, executor=SerialExecutor())
        for shards in (1, 2, 4)
    }
    digests = {r.digest for r in results.values()}
    assert len(digests) == 1, digests
    reference = results[1]
    for r in results.values():
        assert r.artifacts == reference.artifacts
        assert r.summary == reference.summary
        assert r.events_processed == reference.events_processed
    # The run did real cross-shard work, so the equality is meaningful.
    assert reference.messages_routed == 3
    assert reference.summary["remote_incidents"] == 1
    assert reference.summary["injected_completed"] > 0
    assert reference.summary["completed"] > 0


def test_digest_identical_under_multiprocess_pool():
    spec = small_fleet(deployments=2)
    serial = run_fleet(spec, shards=1)
    pooled = run_fleet(spec, shards=2)  # LocalPoolExecutor, spawn workers
    assert pooled.shards == 2
    assert pooled.digest == serial.digest
    assert pooled.artifacts == serial.artifacts


def test_digest_identical_with_link_fastpath_off():
    """REPRO_LINK_FASTPATH=0 in the workers must not move the digest —
    the fast path's byte-identity guarantee extends through the shard
    plane's process boundary (the env var rides into spawn children)."""
    spec = small_fleet(deployments=2)
    baseline = run_fleet(spec, shards=1).digest
    env = dict(os.environ, REPRO_LINK_FASTPATH="0", PYTHONPATH="src")
    code = (
        "import dataclasses\n"
        "from repro.dist import reference_fleet, run_fleet\n"
        "from repro.sim import MS\n"
        "spec = dataclasses.replace(\n"
        "    reference_fleet(deployments=2, runtime_ns=3 * MS),\n"
        "    drain_ns=3 * MS)\n"
        "print(run_fleet(spec, shards=2).digest)\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip().splitlines()[-1] == baseline


def test_dropped_messages_are_counted():
    # An event so close to the horizon its message can never land.
    dep = FleetDeployment(runtime_ns=2 * MS)
    spec = FleetSpec(
        deployments=(dep, dep),
        events=(
            FleetEvent(at_ns=int(3.5 * MS), kind="migration", src=0, dst=1),
        ),
        drain_ns=2 * MS,
    )
    result = run_fleet(spec, shards=1)
    assert result.messages_dropped == 1
    assert result.messages_routed == 0
