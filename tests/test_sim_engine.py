"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Delay,
    MS,
    SECOND,
    SimulationError,
    Simulator,
    Signal,
    US,
    format_ns,
    ns_from_seconds,
    seconds_from_ns,
    spawn,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(300, order.append, "c")
        sim.schedule(100, order.append, "a")
        sim.schedule(200, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(50, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1234, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1234]
        assert sim.now == 1234

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        hits = []

        def outer():
            hits.append(("outer", sim.now))
            sim.schedule(5, inner)

        def inner():
            hits.append(("inner", sim.now))

        sim.schedule(10, outer)
        sim.run()
        assert hits == [("outer", 10), ("inner", 15)]

    def test_call_soon_runs_at_current_instant(self):
        sim = Simulator()
        times = []
        sim.schedule(7, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [7]


class TestRunControl:
    def test_run_until_stops_early_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "early")
        sim.schedule(10_000, fired.append, "late")
        sim.run(until=5_000)
        assert fired == ["early"]
        assert sim.now == 5_000
        sim.run()
        assert fired == ["early", "late"]

    def test_run_for_relative_duration(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run_for(50)
        assert sim.now == 50

    def test_max_events_bound(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i, lambda: None)
        processed = sim.run(max_events=4)
        assert processed == 4

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2, fired.append, 2)
        sim.run()
        assert fired == [1]
        sim.run()  # a fresh run resumes where stop() left off
        assert fired == [1, 2]

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(1, lambda: sim.run())
            sim.run()

    def test_step_returns_false_when_drained(self):
        sim = Simulator()
        assert sim.step() is False

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        event = sim.schedule(6, lambda: None)
        event.cancel()
        assert sim.pending_events == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(5, lambda: None)
        sim.schedule(9, lambda: None)
        first.cancel()
        assert sim.peek_time() == 9


class TestSignals:
    def test_signal_wakes_waiting_process(self):
        sim = Simulator()
        signal = Signal("go")
        seen = []

        def waiter():
            value = yield signal
            seen.append((sim.now, value))

        spawn(sim, waiter())
        sim.schedule(40, signal.fire, "payload")
        sim.run()
        assert seen == [(40, "payload")]

    def test_signal_fires_all_waiters(self):
        sim = Simulator()
        signal = Signal()
        seen = []

        def waiter(tag):
            yield signal
            seen.append(tag)

        for tag in range(3):
            spawn(sim, waiter(tag))
        sim.schedule(1, signal.fire, None)
        sim.run()
        assert sorted(seen) == [0, 1, 2]

    def test_already_fired_signal_resumes_immediately(self):
        sim = Simulator()
        signal = Signal()
        signal.fire("cached")
        got = []

        def waiter():
            value = yield signal
            got.append(value)

        spawn(sim, waiter())
        sim.run()
        assert got == ["cached"]

    def test_double_fire_rejected(self):
        signal = Signal("x")
        signal.fire()
        with pytest.raises(RuntimeError):
            signal.fire()


class TestProcesses:
    def test_process_sleeps_for_yielded_ns(self):
        sim = Simulator()
        trail = []

        def proc():
            trail.append(sim.now)
            yield 100
            trail.append(sim.now)
            yield Delay(us=2)
            trail.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert trail == [0, 100, 2100]

    def test_process_returns_result(self):
        sim = Simulator()

        def proc():
            yield 1
            return 42

        p = spawn(sim, proc())
        sim.run()
        assert p.done and p.result == 42

    def test_process_join_gets_return_value(self):
        sim = Simulator()
        got = []

        def child():
            yield 50
            return "child-done"

        def parent():
            value = yield spawn(sim, child())
            got.append((sim.now, value))

        spawn(sim, parent())
        sim.run()
        assert got == [(50, "child-done")]

    def test_joining_finished_process_resumes_immediately(self):
        sim = Simulator()

        def child():
            yield 1
            return 7

        c = spawn(sim, child())
        sim.run()
        got = []

        def parent():
            value = yield c
            got.append(value)

        spawn(sim, parent())
        sim.run()
        assert got == [7]

    def test_interrupt_stops_process(self):
        sim = Simulator()
        trail = []

        def proc():
            trail.append("start")
            yield 1000
            trail.append("never")

        p = spawn(sim, proc())
        sim.schedule(10, p.interrupt)
        sim.run()
        assert trail == ["start"]
        assert p.done and p.interrupted

    def test_process_requires_generator(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            spawn(sim, lambda: None)  # type: ignore[arg-type]

    def test_yielding_garbage_raises(self):
        sim = Simulator()

        def proc():
            yield object()

        spawn(sim, proc())
        with pytest.raises(TypeError):
            sim.run()


class TestRng:
    def test_streams_are_reproducible(self):
        a = Simulator(seed=99).rng.stream("x")
        b = Simulator(seed=99).rng.stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent_by_name(self):
        sim = Simulator(seed=99)
        a = sim.rng.stream("a")
        b = sim.rng.stream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng.stream("x")
        b = Simulator(seed=2).rng.stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_cached(self):
        sim = Simulator()
        assert sim.rng.stream("s") is sim.rng.stream("s")

    def test_fork_gives_independent_registry(self):
        sim = Simulator(seed=5)
        fork = sim.rng.fork("trial-1")
        a = sim.rng.stream("x").random()
        b = fork.stream("x").random()
        assert a != b


class TestTimeHelpers:
    def test_constants(self):
        assert US == 1_000 and MS == 1_000_000 and SECOND == 1_000_000_000

    def test_round_trip(self):
        assert seconds_from_ns(ns_from_seconds(1.5)) == pytest.approx(1.5)

    def test_format_ns(self):
        assert format_ns(500) == "500ns"
        assert format_ns(1500) == "1.500us"
        assert format_ns(2 * MS) == "2.000ms"
        assert format_ns(3 * SECOND) == "3.000s"
        assert format_ns(None) == "∞"

    def test_delay_validation(self):
        with pytest.raises(ValueError):
            Delay(-5)
