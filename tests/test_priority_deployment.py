"""End-to-end tests of the §4.8 dedicated-queue configuration."""


from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.net.queue import PriorityQueue
from repro.profiles import DEFAULT


def priority_deployment(stack="solar", seed=9):
    profiles = DEFAULT.with_overrides(network={"priority_queues": True})
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=seed), profiles=profiles)
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 128 * 1024 * 1024)
    return dep, vd


class TestPriorityDeployment:
    def test_every_port_runs_priority_queues(self):
        dep, _vd = priority_deployment()
        for link in dep.topology.links:
            assert isinstance(link.ab.queue, PriorityQueue)
            assert isinstance(link.ba.queue, PriorityQueue)

    def test_solar_io_completes_with_priority_queues(self):
        dep, vd = priority_deployment()
        done = []
        vd.write(0, 16 * 1024, done.append)
        dep.run()
        vd.read(0, 16 * 1024, done.append)
        dep.run()
        assert len(done) == 2 and all(io.trace.ok for io in done)

    def test_solar_traffic_lands_in_high_class(self):
        dep, vd = priority_deployment()
        done = []
        vd.write(0, 64 * 1024, done.append)
        dep.run()
        assert done[0].trace.ok
        high = sum(
            ch.queue.high.enqueued
            for link in dep.topology.links for ch in (link.ab, link.ba)
        )
        low = sum(
            ch.queue.low.enqueued
            for link in dep.topology.links for ch in (link.ab, link.ba)
        )
        assert high > 0
        assert low == 0  # a pure-SOLAR deployment has no low-class traffic

    def test_stream_stacks_land_in_low_class(self):
        dep, vd = priority_deployment(stack="luna")
        done = []
        vd.write(0, 16 * 1024, done.append)
        dep.run()
        assert done[0].trace.ok
        low = sum(
            ch.queue.low.enqueued
            for link in dep.topology.links for ch in (link.ab, link.ba)
        )
        assert low > 0

    def test_int_records_report_aggregate_queue(self):
        dep, vd = priority_deployment()
        done = []
        vd.write(0, 4096, done.append)
        dep.run()
        # Switches stamped INT from PriorityQueue's aggregate `bytes`
        # property without error (duck-typing parity with DropTailQueue).
        assert done[0].trace.ok
