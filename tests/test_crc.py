"""Tests for CRC32 arithmetic — the foundation of SOLAR's integrity check."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.crc import (
    crc32,
    crc32_combine,
    crc32_of_concat,
    crc32_raw,
    crc32_update,
    crc32_update_reference,
    crc32_xor_identity_offset,
    xor_bytes,
)


class TestStandardCrc32:
    def test_matches_zlib_on_known_vectors(self):
        for data in (b"", b"a", b"123456789", b"\x00" * 4096, bytes(range(256))):
            assert crc32(data) == zlib.crc32(data)

    def test_check_value(self):
        # The canonical CRC-32 check value.
        assert crc32(b"123456789") == 0xCBF43926

    def test_incremental_update_equals_one_shot(self):
        data = b"hello world, this is a block"
        crc_partial = crc32(data[10:], crc32(data[:10]))
        # zlib-style chaining: crc32(rest, crc32(head)).
        assert crc_partial == crc32(data)

    @given(st.binary(min_size=0, max_size=2048))
    @settings(max_examples=60)
    def test_matches_zlib_property(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(st.binary(min_size=1, max_size=512), st.integers(0, 4095))
    @settings(max_examples=40)
    def test_single_bit_flip_always_detected(self, data, bit_seed):
        from repro.faults.fpga_errors import flip_bit

        flipped = flip_bit(data, bit_seed)
        assert flipped != data
        assert crc32(flipped) != crc32(data)


class TestLinearCrc32:
    @given(st.integers(1, 256).flatmap(
        lambda n: st.tuples(st.binary(min_size=n, max_size=n),
                            st.binary(min_size=n, max_size=n))))
    @settings(max_examples=60)
    def test_xor_linearity(self, pair):
        a, b = pair
        assert crc32_raw(xor_bytes(a, b)) == crc32_raw(a) ^ crc32_raw(b)

    def test_zero_message_has_zero_raw_crc(self):
        for n in (0, 1, 64, 4096):
            assert crc32_raw(bytes(n)) == 0

    def test_standard_crc_is_affine_not_linear(self):
        a, b = b"\x01" * 16, b"\x02" * 16
        offset = crc32_xor_identity_offset(16)
        assert crc32(xor_bytes(a, b)) == crc32(a) ^ crc32(b) ^ offset

    def test_raw_vs_standard_relationship(self):
        # crc32(x) == crc32_raw(x) ^ crc32(zeros(len(x)))
        data = b"solar-block-payload!" * 10
        assert crc32(data) == crc32_raw(data) ^ crc32(bytes(len(data)))

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")


class TestCrc32Combine:
    @given(st.binary(min_size=0, max_size=600), st.binary(min_size=0, max_size=600))
    @settings(max_examples=60)
    def test_combine_matches_concatenation(self, a, b):
        assert crc32_combine(crc32(a), crc32(b), len(b)) == zlib.crc32(a + b)

    def test_combine_zero_length_is_identity(self):
        assert crc32_combine(0xDEADBEEF, 0x12345678, 0) == 0xDEADBEEF

    def test_combine_negative_length_rejected(self):
        with pytest.raises(ValueError):
            crc32_combine(0, 0, -1)

    def test_of_concat_over_equal_blocks(self):
        import os

        blocks = [os.urandom(128) for _ in range(5)]
        expected = zlib.crc32(b"".join(blocks))
        assert crc32_of_concat([crc32(b) for b in blocks], 128) == expected

    def test_of_concat_empty_iterable(self):
        assert crc32_of_concat([], 4096) == 0

    def test_of_concat_single_block(self):
        data = b"only-one"
        assert crc32_of_concat([crc32(data)], len(data)) == crc32(data)

    def test_combine_associativity(self):
        a, b, c = b"xx" * 30, b"yy" * 40, b"zz" * 50
        left = crc32_combine(crc32_combine(crc32(a), crc32(b), len(b)), crc32(c), len(c))
        right = crc32_combine(crc32(a), crc32_combine(crc32(b), crc32(c), len(c)),
                              len(b) + len(c))
        assert left == right == zlib.crc32(a + b + c)


class TestUpdateRegister:
    def test_update_from_zero_is_raw(self):
        data = b"register-check"
        assert crc32_update(0, data) == crc32_raw(data)

    def test_update_linearity_in_init(self):
        # crc_update(i, m) == crc_update(i, 0^n) ^ crc_update(0, m)
        data = b"\xaa\xbb\xcc\xdd" * 8
        init = 0x1337BEEF
        assert crc32_update(init, data) == (
            crc32_update(init, bytes(len(data))) ^ crc32_update(0, data)
        )

    @given(st.integers(0, 0xFFFFFFFF), st.binary(min_size=0, max_size=1024))
    @settings(max_examples=80)
    def test_zlib_delegate_matches_reference_register(self, init, data):
        # The fast path carries the raw register through zlib.crc32; the
        # table-driven loop is the executable spec it must match bit for
        # bit, for every initial register value.
        assert crc32_update(init, data) == crc32_update_reference(init, data)
