"""Regression tests for the shared benchmark helpers (`benchmarks/common.py`).

`run_single_ios` walks offsets with modulo arithmetic; for I/O sizes at or
above the VD size the old math divided by zero or produced negative
offsets.  These tests pin the guarded behaviour.
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "benchmarks"))
)

from common import fanout, provisioned_vd, run_single_ios, small_deployment  # noqa: E402


def _deployment_and_vd(vd_size_mb: int):
    dep = small_deployment("solar", seed=7)
    vd = provisioned_vd(dep, size_mb=vd_size_mb, vd_id=f"vd-{vd_size_mb}")
    return dep, vd


class TestRunSingleIos:
    def test_typical_sizes_complete(self):
        dep, vd = _deployment_and_vd(4)
        traces = run_single_ios(dep, vd, "write", count=5, size_bytes=4096)
        assert len(traces) == 5
        assert all(t.ok for t in traces)

    def test_io_equal_to_vd_size_lands_at_offset_zero(self):
        # Old math: modulo by (vd.size - size) == 0 -> ZeroDivisionError.
        dep, vd = _deployment_and_vd(1)
        traces = run_single_ios(dep, vd, "write", count=2, size_bytes=vd.size_bytes)
        assert len(traces) == 2
        assert all(t.ok for t in traces)

    def test_io_near_vd_size_stays_in_bounds(self):
        # Old math: a span smaller than the I/O size could produce offsets
        # whose [offset, offset+size) range ran past the end of the VD.
        dep, vd = _deployment_and_vd(1)
        size = vd.size_bytes - 4096
        traces = run_single_ios(dep, vd, "read", count=3, size_bytes=size)
        assert len(traces) == 3

    def test_io_larger_than_vd_rejected_with_clear_error(self):
        # Old math: modulo by a negative span -> negative offsets.
        dep, vd = _deployment_and_vd(1)
        with pytest.raises(ValueError, match="exceeds VD size"):
            run_single_ios(dep, vd, "write", count=1, size_bytes=vd.size_bytes + 4096)


def _double(x):
    return 2 * x


class TestFanout:
    def test_fanout_defaults_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert fanout(_double, [(i,) for i in range(4)]) == [0, 2, 4, 6]

    def test_fanout_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert fanout(_double, [(5,)]) == [10]
