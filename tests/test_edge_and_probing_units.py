"""Unit-level tests for the probing extension and edge backend adapters,
complementing the end-to-end coverage in test_extensions.py."""

import pytest

from repro.core.multipath import MultipathManager
from repro.core.probing import PROBE_BYTES, PathProber
from repro.ebs.edge import LocalChunkBackend
from repro.host.server import StorageServer
from repro.net import ClosTopology, Endpoint, PodSpec
from repro.profiles import BLOCK_SIZE, DEFAULT
from repro.sim import MS, Simulator
from repro.storage.block import DataBlock
from repro.storage.chunk_server import ChunkServer
from repro.storage.segment_table import SegmentTable
from repro.transport.udp import DatagramSocket


class TestProberUnits:
    def _setup(self):
        sim = Simulator(seed=2)
        topo = ClosTopology(sim, DEFAULT.network,
                            [PodSpec("cp", 1, 2), PodSpec("sp", 1, 2)])
        socket = DatagramSocket(sim, topo.hosts["cp/r0/h0"], "solar")
        # A deaf UDP stack at the target: probes arrive and are silently
        # dropped (no SERVER_PORT binding), as on a host without SOLAR.
        DatagramSocket(sim, topo.hosts["sp/r0/h0"], "solar")
        manager = MultipathManager(sim, DEFAULT.solar, 16_000, 9000, 25.0)
        prober = PathProber(sim, socket, "sp/r0/h0", 7100, manager,
                            interval_ns=1 * MS)
        return sim, topo, socket, manager, prober

    def test_double_start_rejected(self):
        _sim, _t, _s, _m, prober = self._setup()
        prober.start()
        with pytest.raises(RuntimeError):
            prober.start()

    def test_stop_cancels_ticks(self):
        sim, _t, _s, _m, prober = self._setup()
        prober.start()
        sim.run(until=3 * MS)
        sent_before = prober.probes_sent
        prober.stop()
        sim.run(until=20 * MS)
        assert prober.probes_sent == sent_before

    def test_unanswered_probes_accumulate_losses(self):
        sim, topo, _s, manager, prober = self._setup()
        # No server listening on 7100 anywhere: probes vanish.
        prober.start()
        sim.run(until=10 * MS)
        assert prober.probes_sent > 0
        assert prober.echoes_received == 0
        assert prober.paths_failed_by_probe > 0

    def test_probe_packets_are_tiny(self):
        assert PROBE_BYTES <= 128  # probing must be ~free


class TestLocalChunkBackend:
    def _backend(self):
        sim = Simulator(seed=4)
        server = StorageServer(sim, Endpoint(sim, "c0"), "chunk")
        chunk = ChunkServer(sim, server, DEFAULT.ssd)
        table = SegmentTable()
        segments = table.provision("vd", 4 * 1024 * 1024, ["c0"],
                                   ["c0", "c1", "c2"])
        return sim, LocalChunkBackend(sim, chunk), chunk, segments[0]

    def test_write_goes_to_own_chunk_only(self):
        sim, backend, chunk, segment = self._backend()
        block = DataBlock("vd", 0, BLOCK_SIZE, b"\x99" * BLOCK_SIZE)
        done = []
        backend.handle_write(segment, block, block.crc,
                             lambda ok, replies: done.append((ok, replies)))
        sim.run()
        assert done and done[0][0] is True
        assert len(chunk.store) == 1  # exactly one copy: client replicates

    def test_read_returns_written_data(self):
        sim, backend, chunk, segment = self._backend()
        payload = b"\x77" * BLOCK_SIZE
        block = DataBlock("vd", 3, BLOCK_SIZE, payload)
        backend.handle_write(segment, block, block.crc, lambda ok, r: None)
        sim.run()
        got = []
        backend.handle_read(segment, "vd", 3, BLOCK_SIZE, got.append)
        sim.run()
        assert got[0].data == payload

    def test_reply_has_service_time(self):
        sim, backend, _chunk, segment = self._backend()
        got = []
        backend.handle_read(segment, "vd", 0, BLOCK_SIZE, got.append)
        sim.run()
        assert got[0].service_ns > 0
