"""Tests for workload generation: fio driver and production shapes."""

import random

import pytest

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.sim import MS
from repro.workloads import (
    EBS_TX_SHARE,
    FioSpec,
    IO_SIZE_PMF,
    ProductionWorkload,
    SizeDistribution,
    diurnal_iops,
    run_fio,
    synthesize_day,
    synthesize_week,
    weekly_modulation,
)


class TestSizeDistribution:
    def test_pmf_sums_to_one(self):
        assert sum(p for _s, p in IO_SIZE_PMF) == pytest.approx(1.0)

    def test_figure5_shape(self):
        """Figure 5: ~40% of I/Os at 4KB, everything <= 256KB, modes at
        4K/16K/64K."""
        dist = SizeDistribution()
        cdf = dict(dist.cdf())
        assert cdf[4096] == pytest.approx(0.40)
        assert max(s for s, _p in IO_SIZE_PMF) == 256 * 1024
        probs = dict(IO_SIZE_PMF)
        assert probs[16 * 1024] > probs[8 * 1024]
        assert probs[64 * 1024] > probs[32 * 1024]

    def test_sampling_matches_pmf(self):
        dist = SizeDistribution()
        rng = random.Random(1)
        n = 20_000
        counts = {}
        for _ in range(n):
            s = dist.sample(rng)
            counts[s] = counts.get(s, 0) + 1
        assert counts[4096] / n == pytest.approx(0.40, abs=0.02)

    def test_bad_pmf_rejected(self):
        with pytest.raises(ValueError):
            SizeDistribution(pmf=((4096, 0.5),))

    def test_mean_bytes(self):
        assert SizeDistribution().mean_bytes() > 4096


class TestDiurnal:
    def test_peak_at_evening(self):
        assert diurnal_iops(20.0) > diurnal_iops(4.0)

    def test_range_bounded(self):
        for h in range(24):
            v = diurnal_iops(float(h), 100, 200)
            assert 100 <= v <= 200

    def test_invalid_hour(self):
        with pytest.raises(ValueError):
            diurnal_iops(24.0)

    def test_weekend_dip(self):
        assert weekly_modulation(6) < weekly_modulation(2)
        with pytest.raises(ValueError):
            weekly_modulation(7)


class TestSynthesis:
    def test_week_has_expected_buckets(self):
        samples = synthesize_week(seed=1)
        assert len(samples) == 7 * 24

    def test_write_dominates_read(self):
        # Figure 3: WRITE is 3-4x READ.
        samples = synthesize_week(seed=1)
        w = sum(s.write_iops for s in samples)
        r = sum(s.read_iops for s in samples)
        assert 2.5 < w / r < 4.5

    def test_ebs_is_majority_of_tx(self):
        samples = synthesize_week(seed=1)
        ebs = sum(s.ebs_tx_gbps for s in samples)
        total = sum(s.all_tx_gbps for s in samples)
        assert ebs / total == pytest.approx(EBS_TX_SHARE, abs=0.02)

    def test_day_series_reaches_peak(self):
        series = synthesize_day(seed=2)
        assert len(series) == 24 * 60
        peak = max(v for _t, v in series)
        trough = min(v for _t, v in series)
        assert peak > 150_000  # Figure 4: up to ~200K IOPS
        assert trough < 90_000

    def test_deterministic_by_seed(self):
        assert synthesize_day(seed=3) == synthesize_day(seed=3)
        assert synthesize_day(seed=3) != synthesize_day(seed=4)


class TestFio:
    def _deploy(self):
        dep = EbsDeployment(DeploymentSpec(stack="solar", seed=21))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 128 * 1024 * 1024)
        return dep, vd

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FioSpec(iodepth=0)
        with pytest.raises(ValueError):
            FioSpec(read_fraction=1.5)
        with pytest.raises(ValueError):
            FioSpec(block_sizes=(1000,))

    def test_run_produces_stats(self):
        dep, vd = self._deploy()
        results = run_fio(dep.sim, [vd], FioSpec(iodepth=8, runtime_ns=5 * MS))
        r = results["vd0"]
        assert r.completed > 10
        assert r.iops > 0 and r.throughput_mbps > 0
        assert r.latency.count == r.completed

    def test_iodepth_respected(self):
        dep, vd = self._deploy()
        from repro.workloads.fio import FioJob

        job = FioJob(dep.sim, vd, FioSpec(iodepth=4, runtime_ns=5 * MS))
        job.start()
        assert job.inflight == 4
        dep.run()
        assert job.inflight == 0

    def test_mixed_read_write(self):
        dep, vd = self._deploy()
        results = run_fio(
            dep.sim, [vd],
            FioSpec(iodepth=8, read_fraction=0.2, runtime_ns=5 * MS),
        )
        assert results["vd0"].completed > 0

    def test_double_start_rejected(self):
        dep, vd = self._deploy()
        from repro.workloads.fio import FioJob

        job = FioJob(dep.sim, vd, FioSpec(iodepth=1, runtime_ns=1 * MS))
        job.start()
        with pytest.raises(RuntimeError):
            job.start()


class TestProductionWorkload:
    def test_open_loop_generation(self):
        dep = EbsDeployment(DeploymentSpec(stack="luna", seed=33))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 128 * 1024 * 1024)
        load = ProductionWorkload(dep.sim, vd, target_iops=20_000,
                                  duration_ns=10 * MS)
        load.start()
        dep.run()
        assert load.issued == pytest.approx(200, rel=0.5)
        assert load.completed + load.failed == load.issued
        assert load.write_latency.count > load.read_latency.count  # W >> R

    def test_target_iops_validated(self):
        dep = EbsDeployment(DeploymentSpec(stack="luna", seed=33))
        vd = VirtualDisk(dep, "vd1", dep.compute_host_names()[0], 64 * 1024 * 1024)
        with pytest.raises(ValueError):
            ProductionWorkload(dep.sim, vd, target_iops=0, duration_ns=1)


class TestFioPatterns:
    def _deploy(self):
        dep = EbsDeployment(DeploymentSpec(stack="solar", seed=22))
        vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 128 * 1024 * 1024)
        return dep, vd

    def test_sequential_pattern_runs(self):
        dep, vd = self._deploy()
        results = run_fio(dep.sim, [vd], FioSpec(iodepth=4, runtime_ns=3 * MS,
                                                 pattern="sequential"))
        assert results["vd0"].completed > 0

    def test_zipfian_pattern_runs(self):
        dep, vd = self._deploy()
        results = run_fio(dep.sim, [vd], FioSpec(iodepth=4, runtime_ns=3 * MS,
                                                 pattern="zipfian"))
        assert results["vd0"].completed > 0

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            FioSpec(pattern="fractal")

    def test_default_pattern_unchanged(self):
        # Regression guard: the default spec must behave exactly as the
        # pre-pattern implementation (uniform offsets from the same RNG).
        assert FioSpec().pattern == "random"
