#!/usr/bin/env python3
"""A latency-sensitive database on EBS: the paper's motivating workload.

§3: databases evict LRU pages to storage in 8-16KB pages and rely on
sub-100us I/O ("ESSD ... 100us average latency").  This example runs an
OLTP-ish page workload — small synchronous redo-log writes racing with
16KB page reads/writes — over each stack generation and prints the SLA
view a database operator would care about: p50/p95/p99 of commit (write)
latency.

Run:  python examples/database_workload.py
"""

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.metrics.stats import LatencyStats
from repro.sim import MS

PAGE = 16 * 1024  # MySQL-style page
REDO = 4 * 1024  # redo-log record write
DURATION_NS = 25 * MS


def run_database(stack: str) -> dict:
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=99,
                                       encrypt_payloads=True))
    host = dep.compute_host_names()[0]
    data_vd = VirtualDisk(dep, "tablespace", host, 1024 * 1024 * 1024)
    log_vd = VirtualDisk(dep, "redo-log", host, 128 * 1024 * 1024)
    rng = dep.sim.rng.stream(f"db/{stack}")

    commit = LatencyStats("commit")
    page_io = LatencyStats("page")
    log_pos = [0]

    def run_txn() -> None:
        """One transaction: read a page, dirty it, commit via redo write."""
        if dep.sim.now > DURATION_NS:
            return
        page_off = rng.randrange(0, data_vd.size_bytes // PAGE) * PAGE

        def after_read(io) -> None:
            page_io.record(io.trace.total_ns)
            # Commit: a synchronous 4KB append to the redo log.
            off = (log_pos[0] * REDO) % (log_vd.size_bytes - REDO)
            log_pos[0] += 1
            log_vd.write(off, REDO, after_commit)

        def after_commit(io) -> None:
            commit.record(io.trace.total_ns)
            run_txn()  # next transaction in this session

        data_vd.read(page_off, PAGE, after_read)

    # Twelve concurrent sessions, plus a background checkpointer flushing
    # dirty pages.
    for _ in range(12):
        run_txn()

    def checkpoint() -> None:
        if dep.sim.now > DURATION_NS:
            return
        off = rng.randrange(0, data_vd.size_bytes // PAGE) * PAGE
        data_vd.write(off, PAGE, lambda io: None)
        dep.sim.schedule(300_000, checkpoint)

    checkpoint()
    dep.run(until_ns=DURATION_NS + 200 * MS)
    return {
        "commit_p50_us": commit.p(50) / 1000,
        "commit_p95_us": commit.p(95) / 1000,
        "commit_p99_us": commit.p(99) / 1000,
        "txn_per_s": commit.count / (DURATION_NS / 1e9),
        "page_read_p50_us": page_io.p(50) / 1000,
    }


def main() -> None:
    print(f"{'stack':10s} {'commit p50':>11s} {'p95':>8s} {'p99':>8s} "
          f"{'txn/s':>9s} {'page read p50':>14s}")
    for stack in ("kernel", "luna", "solar"):
        r = run_database(stack)
        print(f"{stack:10s} {r['commit_p50_us']:9.0f}us "
              f"{r['commit_p95_us']:6.0f}us {r['commit_p99_us']:6.0f}us "
              f"{r['txn_per_s']:9.0f} {r['page_read_p50_us']:12.0f}us")
    print("\nThe kernel-era commit latency is why the paper built LUNA; "
          "the remaining SA share of it is why they built SOLAR (§3.3).")


if __name__ == "__main__":
    main()
