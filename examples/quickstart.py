#!/usr/bin/env python3
"""Quickstart: stand up an EBS deployment, do I/O, read the trace.

This walks the library's main entry points in ~40 lines of user code:

1. describe a deployment (which FN stack, cluster shape);
2. provision a virtual disk;
3. issue a write and a read;
4. inspect the per-I/O latency breakdown (SA / FN / BN / SSD) that the
   paper's Figure 6 is built from.

Run:  python examples/quickstart.py
"""

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk


def main() -> None:
    # A SOLAR deployment: bare-metal compute servers with ALI-DPUs, an
    # RDMA backend network, one compute pod and one storage pod on a
    # two-layer Clos fabric.
    spec = DeploymentSpec(stack="solar", seed=7)
    deployment = EbsDeployment(spec)

    # Provision a 256MB virtual disk attached to the first compute host.
    host = deployment.compute_host_names()[0]
    vd = VirtualDisk(deployment, "demo-disk", host, 256 * 1024 * 1024)

    completed = []

    # Write 16KB (four 4KB blocks — in SOLAR, four self-contained
    # packets), then read it back.
    vd.write(0, 16 * 1024, completed.append, data=b"\x42" * 16 * 1024)
    deployment.run()
    vd.read(0, 16 * 1024, completed.append)
    deployment.run()

    for io in completed:
        trace = io.trace
        print(f"{io.kind:5s} {io.size_bytes // 1024}KB  "
              f"total={trace.total_ns / 1000:7.1f}us  "
              f"breakdown(us)={trace.breakdown_us()}")

    # The same data is also available aggregated:
    print("\nmedian write breakdown (us):",
          deployment.collector.breakdown_us(50, "write"))

    # Under the hood, each 4KB block travelled as one UDP packet with its
    # storage semantics in the header — inspect the hardware tables:
    offload = deployment.solar_offloads[host]
    print(f"\nFPGA resources used: LUT {offload.dpu.fpga.lut_used_pct:.1f}%, "
          f"BRAM {offload.dpu.fpga.bram_used_pct:.1f}% (Table 3)")
    print(f"Block table entries: {len(offload.block_table)}, "
          f"Addr table now empty: {len(offload.addr_table) == 0}")


if __name__ == "__main__":
    main()
