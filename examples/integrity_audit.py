#!/usr/bin/env python3
"""Integrity audit: FPGA bit flips vs the software CRC aggregation.

§4.4: "bit flipping in FPGA can corrupt data and table entries ... FPGA
error is the major contributor by 37%" of corruption events; §4.5: the
CPU "merely verifies segment level CRC with the CRC values for each data
block", exploiting CRC32's linearity — CRC(A^B) = CRC(A)^CRC(B).

This example (1) demonstrates the algebra on real bytes, (2) runs writes
with real payloads through a SOLAR deployment while an injector flips
bits in the FPGA datapath, and (3) shows every corruption being caught by
the aggregate check and localized by the software fallback.

Run:  python examples/integrity_audit.py
"""

import random

from repro.core.crc_agg import CrcAggregator, aggregate_payload_check
from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.faults import BitFlipInjector
from repro.storage.crc import crc32, crc32_raw, xor_bytes


def demonstrate_algebra() -> None:
    rng = random.Random(1)
    a, b, c = (rng.randbytes(4096) for _ in range(3))
    lhs = crc32_raw(xor_bytes(xor_bytes(a, b), c))
    rhs = crc32_raw(a) ^ crc32_raw(b) ^ crc32_raw(c)
    print(f"CRC(A^B^C) = {lhs:#010x}")
    print(f"CRC(A)^CRC(B)^CRC(C) = {rhs:#010x}  -> equal: {lhs == rhs}")
    assert aggregate_payload_check([a, b, c],
                                   [crc32_raw(x) for x in (a, b, c)])


def run_audit(payload_flip_rate: float = 0.15, writes: int = 60) -> None:
    dep = EbsDeployment(DeploymentSpec(stack="solar", seed=55))
    host = dep.compute_host_names()[0]
    vd = VirtualDisk(dep, "audited", host, 256 * 1024 * 1024)
    offload = dep.solar_offloads[host]
    injector = BitFlipInjector(dep.sim.rng.stream("audit"),
                               payload_flip_rate=payload_flip_rate)
    offload.fault_injector = injector
    client = dep.solar_clients[host]

    rng = random.Random(2)
    payloads = {}
    done = []
    for i in range(writes):
        data = rng.randbytes(4096)
        payloads[i] = data
        dep.sim.schedule(i * 100_000, vd.write, i * 4096, 4096, done.append, data)
    dep.run()

    print(f"\nwrites: {len(done)}; FPGA bit flips injected: "
          f"{injector.total_injected}")
    print(f"aggregation checks run: {client.aggregator.checks}; "
          f"mismatches detected: {client.integrity_events}")
    assert client.integrity_events == injector.total_injected

    # Localize one corruption with the software fallback path.
    corrupted = [io for io in done if io.trace.error == "integrity-mismatch"]
    if corrupted:
        io = corrupted[0]
        idx = io.offset_bytes // 4096
        agg = CrcAggregator()
        stored = next(
            (data for chunk in dep.chunk_servers.values()
             for (seg, lba), (data, _crc) in chunk.store.items() if lba == idx),
            None,
        )
        bad = agg.localize([stored], [crc32(payloads[idx])])
        print(f"localized corrupted block of I/O #{io.io_id}: "
              f"block index {bad} differs from the guest payload")
    print("\nEvery injected flip was caught before acking the guest — the "
          "paper's 'high confidence on data integrity' property.")


def main() -> None:
    print("1) CRC32 linearity on real bytes (§4.5):")
    demonstrate_algebra()
    print("\n2) Live audit on a SOLAR deployment with fault injection:")
    run_audit()


if __name__ == "__main__":
    main()
