#!/usr/bin/env python3
"""Edge cloud: the integrated EBS design of §4.8.

"In edge or private clouds where the network scale is limited but
bare-metal hosting and high-performance are still needed, we can consider
merging the SA and the block server into DPU."

This example stands up the same small cluster twice — once as a standard
SOLAR deployment (SA on the DPU, block servers in the storage cluster,
BN between block and chunk servers) and once converted to the integrated
design (the DPU replicates straight to SOLAR-speaking chunk servers) —
and compares write latency and hop counts.

Run:  python examples/edge_cloud.py
"""

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.ebs.edge import convert_to_edge
from repro.metrics.stats import LatencyStats
from repro.sim import MS


def run_cluster(edge: bool) -> dict:
    dep = EbsDeployment(DeploymentSpec(
        stack="solar", seed=31,
        compute_racks=1, compute_hosts_per_rack=2,
        storage_racks=1, storage_hosts_per_rack=4,
    ))
    if edge:
        convert_to_edge(dep)
    vd = VirtualDisk(dep, "vd0", dep.compute_host_names()[0], 256 * 1024 * 1024)
    writes = LatencyStats("write")
    reads = LatencyStats("read")
    count = [0]

    def next_io() -> None:
        if dep.sim.now > 20 * MS:
            return
        offset = (count[0] % 1000) * 4096
        count[0] += 1
        if count[0] % 5 == 0:
            vd.read(offset, 4096, lambda io: (reads.record(io.trace.total_ns), next_io()))
        else:
            vd.write(offset, 4096, lambda io: (writes.record(io.trace.total_ns), next_io()))

    for _ in range(4):
        next_io()
    dep.run(until_ns=200 * MS)
    bn_calls = dep.bn.calls
    return {
        "write_p50_us": writes.p(50) / 1000,
        "write_p99_us": writes.p(99) / 1000,
        "read_p50_us": reads.p(50) / 1000,
        "bn_calls": bn_calls,
        "block_server_ops": sum(b.writes + b.reads for b in dep.block_servers.values()),
    }


def main() -> None:
    standard = run_cluster(edge=False)
    integrated = run_cluster(edge=True)
    print(f"{'':22s} {'standard':>10s} {'integrated':>11s}")
    for key, label in (
        ("write_p50_us", "write p50 (us)"),
        ("write_p99_us", "write p99 (us)"),
        ("read_p50_us", "read p50 (us)"),
        ("bn_calls", "BN transitions"),
        ("block_server_ops", "block-server ops"),
    ):
        print(f"{label:22s} {standard[key]:>10.0f} {integrated[key]:>11.0f}")
    saved = 1 - integrated["write_p50_us"] / standard["write_p50_us"]
    print(f"\nThe integrated design removes the block-server hop and the BN "
          f"({integrated['bn_calls']} BN transitions), cutting median write "
          f"latency by {saved:.0%} on this edge-sized cluster.")


if __name__ == "__main__":
    main()
