#!/usr/bin/env python3
"""Failure drill: replay the §3.3 core-switch incident on LUNA and SOLAR.

The paper's war story: one line card of a core switch fails, silently
blackholing ~4% of flows; network operations take 12 minutes to isolate
the card and the storage another 30 minutes to recover.  "The storage
would have no visibility to the failure if LUNA could have found a good
network path ... within one second."

This drill injects a partial blackhole at a core switch while guests do
I/O, and shows what each generation's guests experience: LUNA connections
pinned (by their 5-tuple) to the dead card hang for the duration; SOLAR
shifts paths within milliseconds and nobody notices.

Run:  python examples/failure_drill.py
"""

from repro.ebs import DeploymentSpec, EbsDeployment, VirtualDisk
from repro.faults import IoHangMonitor
from repro.net.failures import switch_blackhole
from repro.sim import MS, SECOND

INCIDENT_AT = 20 * MS
REPAIR_AT = 2 * SECOND  # "12 minutes" scaled into the drill window
DRILL_END = 3 * SECOND


def drill(stack: str) -> dict:
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=42,
                                       compute_racks=2, compute_hosts_per_rack=2))
    vds = [
        VirtualDisk(dep, f"vd{i}", host, 256 * 1024 * 1024)
        for i, host in enumerate(dep.compute_host_names())
    ]
    monitor = IoHangMonitor(dep.sim, threshold_ns=1 * SECOND)

    # The incident: a core line card silently drops half the flows that
    # hash onto it.
    incident = switch_blackhole("core", fraction=0.5, salt="linecard-7")
    dep.sim.schedule_at(INCIDENT_AT, incident.apply, dep.topology)
    dep.sim.schedule_at(REPAIR_AT, incident.revert, dep.topology)

    worst_latency = [0]
    issued = [0]

    def issue(vd: VirtualDisk) -> None:
        if dep.sim.now > DRILL_END - 500 * MS:
            return

        def done(io) -> None:
            worst_latency[0] = max(worst_latency[0], io.trace.total_ns)
            dep.sim.schedule(1 * MS, issue, vd)  # guest think time

        io = vd.write((issued[0] % 2000) * 4096, 4096, done)
        monitor.watch(io)
        issued[0] += 1

    for vd in vds:
        for _ in range(2):  # small I/O depth per guest
            issue(vd)
    dep.run(until_ns=DRILL_END)
    result = {
        "ios_issued": monitor.watched,
        "io_hangs": monitor.hangs,
        "worst_io_ms": worst_latency[0] / 1e6,
    }
    if stack == "solar":
        shifts = sum(
            m.path_shifts
            for client in dep.solar_clients.values()
            for m in client._paths.values()
        )
        result["path_shifts"] = shifts
    return result


def main() -> None:
    print(__doc__.split("\n\n")[1])
    print()
    for stack in ("luna", "solar"):
        r = drill(stack)
        line = (f"{stack:6s}: {r['ios_issued']:5d} I/Os issued, "
                f"{r['io_hangs']:4d} hung >=1s, "
                f"worst I/O {r['worst_io_ms']:8.1f} ms")
        if "path_shifts" in r:
            line += f", {r['path_shifts']} path shifts"
        print(line)
    print("\nLUNA guests wait for network operations to isolate the card; "
          "SOLAR routes around it within a few RTOs (§4.7: zero I/O hangs "
          "in two years of deployment).")


if __name__ == "__main__":
    main()
