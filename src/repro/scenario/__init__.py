"""repro.scenario — trace ingestion, recording, and the fleet-behavior
scenario catalog.

The scenario plane closes the loop between the repo's synthetic
workload generators and the fleet behaviors the paper's production
system is shaped by: record any simulated run as a versioned, digest-
keyed :class:`FleetTrace`; import public block-trace corpora (MSR
Cambridge, Alibaba) into the same format; replay any trace against any
stack/topology/deployment; and run the curated :data:`CATALOG` of
gated fleet behaviors (boot storms, incast, noisy neighbors, upgrades
under peak, background floods, rebuild storms) as pass/fail SLO
regression gates.
"""

from .catalog import (
    CATALOG,
    ENVELOPE_VERSION,
    CATALOG_DEPLOYMENT,
    Scenario,
    SloGate,
    catalog_names,
    get_scenario,
    trace_scenario,
)
from .envelope import ENVELOPE_KINDS, load_envelope, save_envelope
from .fleet import fleet_from_trace
from .importers import IMPORT_FORMATS, ImportOptions, import_trace
from .record import FleetTraceRecorder
from .run import REPORT_SCHEMA_VERSION, record_scenario, run_scenario
from .trace import (
    TRACE_ALIGN,
    TRACE_SCHEMA_VERSION,
    FleetTrace,
    StreamMeta,
    from_records,
    iter_trace_records,
)

__all__ = [
    "CATALOG",
    "CATALOG_DEPLOYMENT",
    "ENVELOPE_VERSION",
    "IMPORT_FORMATS",
    "REPORT_SCHEMA_VERSION",
    "TRACE_ALIGN",
    "TRACE_SCHEMA_VERSION",
    "FleetTrace",
    "FleetTraceRecorder",
    "ImportOptions",
    "Scenario",
    "SloGate",
    "StreamMeta",
    "ENVELOPE_KINDS",
    "catalog_names",
    "fleet_from_trace",
    "from_records",
    "load_envelope",
    "save_envelope",
    "get_scenario",
    "import_trace",
    "iter_trace_records",
    "record_scenario",
    "run_scenario",
    "trace_scenario",
]
