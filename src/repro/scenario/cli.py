"""CLI surface of the scenario plane: ``python -m repro scenario``.

Five verbs::

    python -m repro scenario list
    python -m repro scenario run incast-burst rebuild-storm
    python -m repro scenario run --all --jobs 4
    python -m repro scenario run --trace boot.trace.gz --stack luna
    python -m repro scenario record incast-burst --out incast.trace.gz
    python -m repro scenario import msr.csv --format msr --out msr.trace.gz
    python -m repro scenario verify incast.trace.gz

``run`` executes catalog scenarios (or envelope files, or ad-hoc traces)
through the lab and gates every point on the scenario's SLO; the report
is canonical JSON, byte-identical across job counts.  Exit status 3
signals an SLO violation (matching the chaos harness's convention);
2 is a load/usage error.  Envelope files of ``kind: "chaos"`` delegate
to the chaos replayer, so one verb replays either kind.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..ebs import STACKS
from ..lab.spec import canonical_json
from ..workloads.replay import TraceFormatError
from .catalog import Scenario, SloGate, catalog_names, get_scenario, trace_scenario
from .envelope import load_envelope
from .importers import IMPORT_FORMATS, ImportOptions, import_trace
from .run import record_scenario, run_scenario
from .trace import FleetTrace

#: Exit status for "an SLO gate failed / a chaos invariant reproduced"
#: (same contract as ``python -m repro chaos``).
EXIT_VIOLATION = 3


def add_scenario_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "scenario",
        help="trace ingestion, recording, and the fleet-behavior catalog",
        description=(
            "Record simulated runs as replayable fleet traces, import "
            "public block-trace corpora, and run the curated catalog of "
            "SLO-gated fleet behaviors."
        ),
    )
    verbs = parser.add_subparsers(dest="verb")

    verbs.add_parser("list", help="catalog scenarios with digests and gates")

    p_run = verbs.add_parser(
        "run", help="run scenarios and gate their SLOs (exit 3 on failure)"
    )
    p_run.add_argument("names", nargs="*", metavar="NAME",
                       help="catalog scenario names")
    p_run.add_argument("--all", action="store_true",
                       help="run every catalog scenario")
    p_run.add_argument("--file", metavar="FILE",
                       help="run a scenario envelope file instead "
                            "(chaos-kind files replay through repro.chaos)")
    p_run.add_argument("--trace", metavar="FILE",
                       help="run a fleet-trace file as an ad-hoc scenario")
    p_run.add_argument("--stack", choices=STACKS, default="solar",
                       help="--trace: frontend stack to replay on")
    p_run.add_argument("--rate-scale", type=float, default=1.0,
                       help="--trace: arrival-rate multiplier (default 1.0)")
    p_run.add_argument("--size-scale", type=float, default=1.0,
                       help="--trace: I/O size multiplier (default 1.0)")
    p_run.add_argument("--max-records", type=int, default=None,
                       help="--trace: replay only the first N records")
    p_run.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: $REPRO_JOBS or 1)")

    p_rec = verbs.add_parser(
        "record", help="record a catalog scenario's I/O envelope as a trace"
    )
    p_rec.add_argument("name", metavar="NAME", help="catalog scenario name")
    p_rec.add_argument("--out", required=True, metavar="FILE",
                       help="trace file to write (.gz compresses)")
    p_rec.add_argument("--seed", type=int, default=None,
                       help="seed to record (default: the spec's first)")

    p_imp = verbs.add_parser(
        "import", help="import a public block trace as a fleet trace"
    )
    p_imp.add_argument("source", metavar="FILE",
                       help="CSV trace file (.gz transparently decompressed)")
    p_imp.add_argument("--format", required=True, choices=IMPORT_FORMATS)
    p_imp.add_argument("--out", required=True, metavar="FILE",
                       help="trace file to write (.gz compresses)")
    p_imp.add_argument("--name", default=None, help="trace name in the header")
    p_imp.add_argument("--vd-size-mb", type=int, default=256)
    p_imp.add_argument("--max-vds", type=int, default=4)
    p_imp.add_argument("--keep-one-in", type=int, default=1,
                       help="deterministic downsampling: keep ~1/N rows")
    p_imp.add_argument("--max-records", type=int, default=None)

    p_ver = verbs.add_parser(
        "verify", help="check a trace or envelope file's digest (exit 2 on "
                       "mismatch)"
    )
    p_ver.add_argument("files", nargs="+", metavar="FILE")


def cmd_scenario(args: argparse.Namespace) -> int:
    verb = args.verb or "list"
    return {
        "list": _list,
        "run": _run,
        "record": _record,
        "import": _import,
        "verify": _verify,
    }[verb](args)


def _list(_args: argparse.Namespace) -> int:
    for name in catalog_names():
        scenario = get_scenario(name)
        tags = ",".join(scenario.tags)
        print(f"{name:18s} {scenario.digest}  [{tags}]")
        print(f"{'':18s} {scenario.description}")
    return 0


def _gather(args: argparse.Namespace):
    """The Scenario list one ``run`` invocation asks for."""
    if args.file:
        return [load_envelope(args.file)]
    if args.trace:
        trace = FleetTrace.load(args.trace)
        if args.max_records is not None:
            trace = trace.subset(args.max_records)
        name = f"{trace.name}@{args.stack}"
        return [
            trace_scenario(
                name,
                f"ad-hoc replay of {args.trace}",
                trace,
                stack=args.stack,
                vd_size_mb=max(m.vd_size_mb for m in trace.meta.values()),
                # Ad-hoc replays gate only on completion: imported corpora
                # carry no calibrated latency envelope.
                slo=SloGate(min_completed_fraction=0.99),
                rate_scale=args.rate_scale,
                size_scale=args.size_scale,
            )
        ]
    names = catalog_names() if getattr(args, "all", False) else args.names
    if not names:
        raise ValueError("nothing to run: give scenario names, --all, "
                         "--file or --trace")
    return [get_scenario(name) for name in names]


def _run(args: argparse.Namespace) -> int:
    try:
        scenarios = _gather(args)
    except (OSError, ValueError, KeyError, TraceFormatError) as exc:
        print(f"scenario: {exc}", file=sys.stderr)
        return 2
    worst = 0
    for scenario in scenarios:
        if not isinstance(scenario, Scenario):
            # A chaos-kind envelope: delegate to the chaos replayer so one
            # verb replays either kind of the unified format.
            from ..chaos.harness import replay_scenario

            report = replay_scenario(scenario)
            print(canonical_json(report).decode().rstrip("\n"))
            if report["violations"]:
                worst = EXIT_VIOLATION
            continue
        report = run_scenario(scenario, jobs=args.jobs)
        print(canonical_json(report).decode().rstrip("\n"))
        if not report["pass"]:
            worst = EXIT_VIOLATION
            for point in report["points"]:
                for failure in point["slo_failures"]:
                    print(f"scenario: {scenario.name} seed={point['seed']}: "
                          f"{failure}", file=sys.stderr)
    return worst


def _record(args: argparse.Namespace) -> int:
    try:
        scenario = get_scenario(args.name)
        trace, artifact = record_scenario(scenario, seed=args.seed)
    except (KeyError, ValueError) as exc:
        print(f"scenario: {exc}", file=sys.stderr)
        return 2
    count = trace.dump(args.out)
    print(f"recorded {count} I/O(s) from {scenario.name!r} "
          f"(artifact {artifact['digest'][:16]}) to {args.out} "
          f"(trace digest {trace.digest})")
    return 0


def _import(args: argparse.Namespace) -> int:
    try:
        options = ImportOptions(
            vd_size_mb=args.vd_size_mb,
            max_vds=args.max_vds,
            keep_one_in=args.keep_one_in,
            max_records=args.max_records,
        )
        trace = import_trace(args.source, args.format, name=args.name,
                             options=options)
    except (OSError, ValueError, TraceFormatError) as exc:
        print(f"scenario: import failed: {exc}", file=sys.stderr)
        return 2
    count = trace.dump(args.out)
    streams = ", ".join(
        f"{s}({len(r)})" for s, r in sorted(trace.streams.items())
    )
    print(f"imported {count} record(s) into {args.out} "
          f"(digest {trace.digest}; streams: {streams})")
    return 0


def _verify(args: argparse.Namespace) -> int:
    status = 0
    for file in args.files:
        try:
            if _is_envelope(file):
                scenario = load_envelope(file)
                kind = "chaos" if not isinstance(scenario, Scenario) else "workload"
                print(f"{file}: ok ({kind} scenario, digest {scenario.digest})")
            else:
                trace = FleetTrace.load(file)
                print(f"{file}: ok (fleet trace, digest {trace.digest}, "
                      f"{trace.records_total} record(s))")
        except (OSError, ValueError, KeyError, TraceFormatError) as exc:
            print(f"{file}: FAILED: {exc}", file=sys.stderr)
            status = 2
    return status


def _is_envelope(path: str) -> bool:
    """Envelope files are one pretty-printed JSON object; trace files are
    JSONL whose header line carries ``fleet_trace``.  Sniff the cheap
    invariant (the first line) rather than parsing twice."""
    from .trace import _open_text

    with _open_text(Path(path), "rt") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                return "fleet_trace" not in json.loads(line)
            except json.JSONDecodeError:
                # Multi-line pretty JSON: the first line alone won't parse.
                return True
    return True
