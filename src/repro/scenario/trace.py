"""The FleetTrace format: versioned, digest-keyed, multi-stream JSONL.

One :class:`FleetTrace` holds the I/O envelope of a whole run — any
number of named streams (one per virtual disk), each a list of
:class:`~repro.workloads.replay.IoRecord` rows against a shared epoch.
The serialization is an ATLAHS-style application-centric trace: the
file says *what* the guests asked for (arrival time, kind, offset,
size), never how the stack answered, so one trace replays against any
stack/topology/deployment and latency comparisons across generations
stay credible.

On disk a trace is JSON lines — a header object first, then one compact
record per line::

    {"fleet_trace": 1, "name": ..., "digest": ..., "streams": {...}}
    {"s": "vd0", "t": 0, "k": "read", "o": 4096, "z": 4096}

Compact keys and sorted order keep the files small and gzip-friendly;
paths ending in ``.gz`` are compressed transparently.  The header digest
is the sha256 of the canonical content (same canonicalization
`repro.lab` keys its result store by), so a trace file is
self-verifying: editing records without re-deriving the digest is
detected at load time, and two traces with the same digest are the same
workload.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..lab.spec import canonical_json
from ..workloads.replay import IoRecord, TraceFormatError

#: Bump when the on-disk trace layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Block alignment every stored offset/size respects.
TRACE_ALIGN = 4096

#: Compact record keys: stream, time, kind, offset, siZe.
_RECORD_KEYS = ("s", "t", "k", "o", "z")


@dataclass(frozen=True)
class StreamMeta:
    """Per-stream metadata: the VD shape a replayer should provision."""

    vd_size_mb: int = 256
    #: Free-form provenance hint ("recorded", "msr:hm.1", "alibaba:419").
    source: str = ""

    def __post_init__(self) -> None:
        if self.vd_size_mb <= 0:
            raise ValueError(f"vd_size_mb must be positive: {self.vd_size_mb}")

    def to_dict(self) -> Dict[str, Any]:
        return {"vd_size_mb": self.vd_size_mb, "source": self.source}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StreamMeta":
        return cls(
            vd_size_mb=int(payload["vd_size_mb"]),
            source=str(payload.get("source", "")),
        )


@dataclass
class FleetTrace:
    """A named, digest-keyed collection of per-VD I/O streams."""

    name: str
    streams: Dict[str, List[IoRecord]] = field(default_factory=dict)
    meta: Dict[str, StreamMeta] = field(default_factory=dict)
    description: str = ""
    #: The epoch all ``at_ns`` offsets are relative to, as recorded.
    #: Purely documentary — offsets are already rebased to zero.
    epoch_ns: int = 0
    digest: str = ""

    def __post_init__(self) -> None:
        if not self.streams:
            raise ValueError("a fleet trace needs at least one stream")
        for stream, records in self.streams.items():
            if not records:
                raise ValueError(f"stream {stream!r} has no records")
            self.meta.setdefault(stream, StreamMeta())
        extra = set(self.meta) - set(self.streams)
        if extra:
            raise ValueError(f"metadata for unknown streams: {sorted(extra)}")
        # Canonical in-memory order: records per stream by (arrival,
        # kind, offset, size).  The full key (not arrival alone) matters:
        # recorders observe I/Os in *completion* order, and a canonical
        # total order is what makes record -> replay -> record round
        # trips byte-identical.
        for records in self.streams.values():
            records.sort(key=lambda r: (r.at_ns, r.kind, r.offset_bytes, r.size_bytes))
        expected = self.content_digest()
        if not self.digest:
            self.digest = expected
        elif self.digest != expected:
            raise TraceFormatError(
                f"trace {self.name!r} digest mismatch: header says "
                f"{self.digest}, content hashes to {expected} — the file "
                "was edited without re-deriving its digest"
            )

    # -- derived ---------------------------------------------------------
    @property
    def records_total(self) -> int:
        return sum(len(r) for r in self.streams.values())

    @property
    def bytes_total(self) -> int:
        return sum(r.size_bytes for rs in self.streams.values() for r in rs)

    @property
    def horizon_ns(self) -> int:
        """Arrival time of the last I/O across every stream."""
        return max(r.at_ns for rs in self.streams.values() for r in rs)

    def content_digest(self) -> str:
        """sha256 over the canonical content: records plus the stream
        metadata that shapes a replay (VD size).  Provenance (``source``)
        stays out — recording the same workload from two runs must yield
        the same digest, or record -> replay -> record round trips would
        never be byte-identical."""
        material = {
            "version": TRACE_SCHEMA_VERSION,
            "streams": {
                stream: {
                    "meta": {"vd_size_mb": self.meta[stream].vd_size_mb},
                    "records": [
                        [r.at_ns, r.kind, r.offset_bytes, r.size_bytes]
                        for r in records
                    ],
                }
                for stream, records in sorted(self.streams.items())
            },
        }
        return hashlib.sha256(canonical_json(material)).hexdigest()[:16]

    # -- transforms ------------------------------------------------------
    def scaled(
        self, rate_scale: float = 1.0, size_scale: float = 1.0
    ) -> "FleetTrace":
        """A new trace with arrivals compressed by ``rate_scale`` (2.0 =
        twice the arrival rate) and sizes multiplied by ``size_scale``
        (re-aligned to 4KB, at least one block)."""
        if rate_scale <= 0 or size_scale <= 0:
            raise ValueError(
                f"scales must be positive: rate={rate_scale}, size={size_scale}"
            )
        streams = {
            stream: [
                IoRecord(
                    at_ns=int(r.at_ns / rate_scale),
                    kind=r.kind,
                    offset_bytes=r.offset_bytes,
                    size_bytes=max(
                        TRACE_ALIGN,
                        int(r.size_bytes * size_scale) // TRACE_ALIGN * TRACE_ALIGN,
                    ),
                )
                for r in records
            ]
            for stream, records in self.streams.items()
        }
        return FleetTrace(
            name=self.name,
            streams=streams,
            meta=dict(self.meta),
            description=self.description,
            epoch_ns=self.epoch_ns,
        )

    def merged_rows(self) -> Tuple[Tuple[int, str, int, int], ...]:
        """Every stream interleaved into one (at_ns, kind, offset, size)
        row tuple — the single-VD shape `repro.lab`'s trace workload
        replays.  Rows are globally ordered by (arrival, stream name) so
        the merge is a pure function of the trace."""
        rows = [
            (r.at_ns, stream, r.kind, r.offset_bytes, r.size_bytes)
            for stream, records in sorted(self.streams.items())
            for r in records
        ]
        rows.sort()
        return tuple((t, k, o, z) for t, _s, k, o, z in rows)

    def subset(self, max_records: int) -> "FleetTrace":
        """The trace's deterministic CI-sized prefix: the first
        ``max_records`` rows in global arrival order, per-stream shares
        proportional to the original mix (streams that lose all their
        rows are dropped)."""
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        flat = [
            (r.at_ns, stream, r)
            for stream, records in sorted(self.streams.items())
            for r in records
        ]
        flat.sort(key=lambda row: (row[0], row[1]))
        streams: Dict[str, List[IoRecord]] = {}
        for _at, stream, record in flat[:max_records]:
            streams.setdefault(stream, []).append(record)
        return FleetTrace(
            name=self.name,
            streams=streams,
            meta={s: self.meta[s] for s in streams},
            description=self.description,
            epoch_ns=self.epoch_ns,
        )

    # -- serialization ---------------------------------------------------
    def header(self) -> Dict[str, Any]:
        return {
            "fleet_trace": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "epoch_ns": self.epoch_ns,
            "digest": self.digest,
            "records": self.records_total,
            "streams": {
                stream: self.meta[stream].to_dict() for stream in sorted(self.streams)
            },
        }

    def dump(self, target: Union[str, Path, io.TextIOBase]) -> int:
        """Write header + records as JSONL; ``.gz`` paths are gzipped.
        Returns the number of record lines written."""
        if isinstance(target, (str, Path)):
            with _open_text(target, "wt") as fp:
                return self.dump(fp)
        target.write(json.dumps(self.header(), sort_keys=True) + "\n")
        count = 0
        for stream in sorted(self.streams):
            for r in self.streams[stream]:
                target.write(
                    json.dumps(
                        {"s": stream, "t": r.at_ns, "k": r.kind,
                         "o": r.offset_bytes, "z": r.size_bytes},
                        sort_keys=True,
                    )
                    + "\n"
                )
                count += 1
        return count

    @classmethod
    def load(
        cls, source: Union[str, Path, io.TextIOBase], verify: bool = True
    ) -> "FleetTrace":
        """Parse a trace file; malformed lines raise
        :class:`~repro.workloads.replay.TraceFormatError` with the
        offending line number.  ``verify=False`` skips the digest check
        (for hand-edited work-in-progress files)."""
        if isinstance(source, (str, Path)):
            with _open_text(source, "rt") as fp:
                return cls.load(fp, verify=verify)
        lines = iter(enumerate(source, 1))
        header: Optional[Dict[str, Any]] = None
        for line_no, line in lines:
            line = line.strip()
            if not line:
                continue
            header = _parse_json_object(line, line_no)
            break
        if header is None:
            raise TraceFormatError("empty trace file (no header line)")
        version = header.get("fleet_trace")
        if version != TRACE_SCHEMA_VERSION:
            raise TraceFormatError(
                f"unsupported fleet_trace version {version!r} "
                f"(this build reads version {TRACE_SCHEMA_VERSION})",
                line_no=1,
            )
        try:
            meta = {
                stream: StreamMeta.from_dict(payload)
                for stream, payload in header.get("streams", {}).items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"bad stream metadata: {exc}", line_no=1) from exc
        streams: Dict[str, List[IoRecord]] = {}
        for line_no, line in lines:
            line = line.strip()
            if not line:
                continue
            payload = _parse_json_object(line, line_no)
            unknown = set(payload) - set(_RECORD_KEYS)
            if unknown:
                raise TraceFormatError(
                    f"unknown record keys {sorted(unknown)}", line_no
                )
            try:
                stream = payload["s"]
                record = IoRecord(
                    at_ns=payload["t"],
                    kind=payload["k"],
                    offset_bytes=payload["o"],
                    size_bytes=payload["z"],
                )
            except KeyError as exc:
                raise TraceFormatError(f"record missing key {exc}", line_no) from exc
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(f"bad record: {exc}", line_no) from exc
            if stream not in meta:
                raise TraceFormatError(
                    f"record names stream {stream!r} absent from the header",
                    line_no,
                )
            streams.setdefault(stream, []).append(record)
        if not streams:
            raise TraceFormatError("trace has a header but no records")
        missing = set(meta) - set(streams)
        if missing:
            raise TraceFormatError(
                f"header streams with no records: {sorted(missing)}"
            )
        try:
            return cls(
                name=str(header.get("name", "trace")),
                streams=streams,
                meta=meta,
                description=str(header.get("description", "")),
                epoch_ns=int(header.get("epoch_ns", 0)),
                digest=str(header.get("digest", "")) if verify else "",
            )
        except TraceFormatError:
            raise
        except ValueError as exc:
            raise TraceFormatError(str(exc)) from exc


def _open_text(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode, encoding="ascii")
    return open(path, mode, encoding="ascii")


def _parse_json_object(line: str, line_no: int) -> Dict[str, Any]:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"not valid JSON: {exc}", line_no) from exc
    if not isinstance(payload, dict):
        raise TraceFormatError(
            f"expected an object, got {type(payload).__name__}", line_no
        )
    return payload


def iter_trace_records(
    source: Union[str, Path],
) -> Iterator[Tuple[str, IoRecord]]:
    """Stream (stream_id, record) pairs without materializing the whole
    trace — the scale-friendly read path for very large files.  No digest
    verification (that requires the full content)."""
    with _open_text(source, "rt") as fp:
        first = True
        for line_no, line in enumerate(fp, 1):
            line = line.strip()
            if not line:
                continue
            payload = _parse_json_object(line, line_no)
            if first:
                first = False
                if payload.get("fleet_trace") != TRACE_SCHEMA_VERSION:
                    raise TraceFormatError(
                        f"unsupported fleet_trace version "
                        f"{payload.get('fleet_trace')!r}", line_no)
                continue
            try:
                yield payload["s"], IoRecord(
                    at_ns=payload["t"], kind=payload["k"],
                    offset_bytes=payload["o"], size_bytes=payload["z"],
                )
            except KeyError as exc:
                raise TraceFormatError(f"record missing key {exc}", line_no) from exc
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(f"bad record: {exc}", line_no) from exc


def from_records(
    name: str,
    records: Iterable[IoRecord],
    stream: str = "vd0",
    vd_size_mb: int = 256,
    description: str = "",
) -> FleetTrace:
    """Wrap one flat record list (e.g. the seed recorder's) as a trace."""
    return FleetTrace(
        name=name,
        streams={stream: list(records)},
        meta={stream: StreamMeta(vd_size_mb=vd_size_mb)},
        description=description,
    )
