"""The unified scenario envelope: one file layout, two kinds.

Chaos counterexamples (``kind: "chaos"``, replayed through
`repro.chaos`) and workload scenarios (``kind: "workload"``, run through
this package) serialize into the same JSON envelope::

    {"version": 2, "kind": "chaos"|"workload", "name": ..., "digest": ..., ...}

:func:`load_envelope` sniffs the kind and returns the right object;
callers that only accept one kind dispatch on the returned type.
Version-1 files — the pre-envelope chaos-only layout the harness wrote
before the scenario plane existed — still load (as chaos), with their
digests unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .catalog import ENVELOPE_VERSION, Scenario

ENVELOPE_KINDS = ("chaos", "workload")


def envelope_kind(payload: Dict[str, Any]) -> str:
    """The kind a parsed envelope payload declares ("chaos" for the
    legacy v1 layout, which predates the discriminator)."""
    version = payload.get("version")
    if version == 1:
        return "chaos"
    if version != ENVELOPE_VERSION:
        raise ValueError(
            f"unsupported scenario version {version!r} "
            f"(this build reads versions 1 and {ENVELOPE_VERSION})"
        )
    kind = payload.get("kind")
    if kind not in ENVELOPE_KINDS:
        raise ValueError(
            f"unknown scenario kind {kind!r}; one of {ENVELOPE_KINDS}"
        )
    return kind


def load_envelope(path: Union[str, Path]):
    """Load one scenario file of either kind.

    Returns a :class:`~repro.scenario.catalog.Scenario` or a
    :class:`~repro.chaos.scenario.ChaosScenario`; both are digest-
    verified on load.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError(
            f"scenario file must hold a JSON object, got "
            f"{type(payload).__name__}"
        )
    if envelope_kind(payload) == "chaos":
        # Lazy import keeps chaos (hypothesis-adjacent) out of trace-only
        # workflows; the dependency direction stays scenario -> chaos.
        from ..chaos.scenario import ChaosScenario

        return ChaosScenario.from_dict(payload)
    return Scenario.from_dict(payload)


def save_envelope(scenario, path: Union[str, Path]) -> Path:
    """Write either kind as pretty-printed envelope JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(scenario.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path
