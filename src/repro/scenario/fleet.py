"""Replay a FleetTrace across the shard plane (`repro.dist`).

One trace stream becomes one :class:`~repro.dist.fleet.FleetDeployment`
carrying the stream's rows as ``trace_rows`` — each deployment replays
its stream in its own simulator, so the fleet-level run is sharded,
multi-process, and (by the shard plane's determinism guarantees)
byte-identical for every ``--shards`` value.
"""

from __future__ import annotations

from typing import Sequence

from ..dist.fleet import FleetDeployment, FleetSpec
from .trace import FleetTrace


def fleet_from_trace(
    trace: FleetTrace,
    stacks: Sequence[str] = ("solar",),
    seed: int = 0,
    name: str = "",
) -> FleetSpec:
    """One deployment per trace stream, replaying that stream's rows.

    ``stacks`` is cycled across streams (sorted by name), so
    ``("solar", "luna")`` alternates generations the way the reference
    fleet does.  Stream VD sizes come from the trace metadata.
    """
    if not stacks:
        raise ValueError("fleet_from_trace needs at least one stack")
    deployments = tuple(
        FleetDeployment(
            stack=stacks[i % len(stacks)],
            seed=seed + i,
            vd_size_mb=trace.meta[stream].vd_size_mb,
            trace_rows=tuple(
                (r.at_ns, r.kind, r.offset_bytes, r.size_bytes)
                for r in trace.streams[stream]
            ),
        )
        for i, stream in enumerate(sorted(trace.streams))
    )
    return FleetSpec(
        deployments=deployments,
        name=name or f"trace-{trace.name}",
    )
