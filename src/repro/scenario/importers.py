"""Importers for public block-trace formats -> FleetTrace.

Two formats cover the public corpora the ROADMAP names:

* **MSR Cambridge** (SNIA IOTTA): headerless CSV rows of
  ``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`` with
  the timestamp in Windows filetime units (100ns ticks) and Type spelt
  ``Read``/``Write``;
* **Alibaba block traces** (alibaba/block-traces): CSV rows of
  ``device_id,opcode,offset,length,timestamp`` with ``R``/``W`` opcodes
  and microsecond timestamps.

The import pipeline is the same for both: stream the file line by line
(never materializing it), normalize units to nanoseconds rebased to the
earliest arrival, map devices onto at most ``max_vds`` virtual disks in
first-seen order, wrap offsets into the target VD, align sizes to 4KB,
and (optionally) downsample deterministically so a multi-GB public
trace shrinks to a CI-sized subset that is the *same* subset on every
machine.  Malformed rows raise
:class:`~repro.workloads.replay.TraceFormatError` with the line number.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..workloads.replay import IoRecord, TraceFormatError
from .trace import TRACE_ALIGN, FleetTrace, StreamMeta, _open_text

#: Cap on a single imported I/O (public traces carry the odd huge blob;
#: a 4MB ceiling keeps replay cost bounded without changing the mix).
MAX_IMPORT_IO_BYTES = 4 * 1024 * 1024

IMPORT_FORMATS = ("msr", "alibaba")


@dataclass(frozen=True)
class ImportOptions:
    """Shared import knobs (all deterministic)."""

    #: Target VD size each device's offsets are wrapped into.
    vd_size_mb: int = 256
    #: Devices are mapped onto at most this many VD streams
    #: (first-seen order, round-robin past the cap).
    max_vds: int = 4
    #: Keep ~1/N of the rows, selected by a stable per-row hash
    #: (1 = keep everything).
    keep_one_in: int = 1
    #: Hard cap on imported records (applied after downsampling);
    #: None = unbounded.
    max_records: Optional[int] = None

    def __post_init__(self) -> None:
        if self.vd_size_mb <= 0:
            raise ValueError(f"vd_size_mb must be positive: {self.vd_size_mb}")
        if self.max_vds < 1:
            raise ValueError(f"max_vds must be >= 1: {self.max_vds}")
        if self.keep_one_in < 1:
            raise ValueError(f"keep_one_in must be >= 1: {self.keep_one_in}")
        if self.max_records is not None and self.max_records < 1:
            raise ValueError(f"max_records must be >= 1: {self.max_records}")


def _keep(line_no: int, keep_one_in: int) -> bool:
    """Deterministic pseudo-random row selection: a crc32 of the line
    number, so the kept subset is machine-independent and does not alias
    with periodic patterns the way a plain stride would."""
    if keep_one_in == 1:
        return True
    return zlib.crc32(b"repro.scenario/%d" % line_no) % keep_one_in == 0


#: One parsed row: (raw_time, device_key, kind, offset, size).
_Row = Tuple[int, str, str, int, int]


def _parse_msr(line: str, line_no: int) -> _Row:
    parts = line.split(",")
    if len(parts) != 7:
        raise TraceFormatError(
            f"MSR row needs 7 comma-separated fields, got {len(parts)}", line_no
        )
    ts, host, disk, kind, offset, size, _response = (p.strip() for p in parts)
    if kind not in ("Read", "Write"):
        raise TraceFormatError(f"MSR Type must be Read|Write, got {kind!r}", line_no)
    try:
        # Windows filetime: 100ns ticks.
        return (int(ts) * 100, f"{host}.{disk}", kind.lower(),
                int(offset), int(size))
    except ValueError as exc:
        raise TraceFormatError(f"non-numeric MSR field: {exc}", line_no) from exc


def _parse_alibaba(line: str, line_no: int) -> _Row:
    parts = line.split(",")
    if len(parts) != 5:
        raise TraceFormatError(
            f"Alibaba row needs 5 comma-separated fields, got {len(parts)}",
            line_no,
        )
    device, opcode, offset, length, ts = (p.strip() for p in parts)
    if opcode not in ("R", "W"):
        raise TraceFormatError(
            f"Alibaba opcode must be R|W, got {opcode!r}", line_no
        )
    try:
        # Microsecond timestamps.
        return (int(ts) * 1000, device, "read" if opcode == "R" else "write",
                int(offset), int(length))
    except ValueError as exc:
        raise TraceFormatError(f"non-numeric Alibaba field: {exc}", line_no) from exc


_PARSERS = {"msr": _parse_msr, "alibaba": _parse_alibaba}

#: Header lines some exports carry; skipped case-insensitively.
_HEADER_PREFIXES = ("timestamp,", "device_id,")


def _iter_rows(
    source: Union[str, Path, Iterable[str]], fmt: str, options: ImportOptions
) -> Iterator[_Row]:
    parse = _PARSERS[fmt]
    if isinstance(source, (str, Path)):
        with _open_text(source, "rt") as fp:
            yield from _iter_rows(fp, fmt, options)
        return
    for line_no, line in enumerate(source, 1):
        line = line.strip()
        if not line:
            continue
        if line_no == 1 and line.lower().startswith(_HEADER_PREFIXES):
            continue
        if not _keep(line_no, options.keep_one_in):
            continue
        yield parse(line, line_no)


def import_trace(
    source: Union[str, Path, Iterable[str]],
    fmt: str,
    name: Optional[str] = None,
    options: ImportOptions = ImportOptions(),
) -> FleetTrace:
    """Import one public-format block trace as a FleetTrace.

    ``source`` is a path (``.gz`` transparently decompressed) or any
    iterable of lines; ``fmt`` is one of :data:`IMPORT_FORMATS`.
    """
    if fmt not in _PARSERS:
        raise ValueError(f"format must be one of {IMPORT_FORMATS}, got {fmt!r}")
    vd_bytes = options.vd_size_mb * 1024 * 1024
    device_vd: Dict[str, int] = {}
    device_of_vd: Dict[int, List[str]] = {}
    raw: List[Tuple[int, int, str, int, int]] = []  # (t, vd, kind, off, size)
    for t_raw, device, kind, offset, size in _iter_rows(source, fmt, options):
        vd_index = device_vd.setdefault(device, len(device_vd) % options.max_vds)
        devices = device_of_vd.setdefault(vd_index, [])
        if device not in devices:
            devices.append(device)
        # Unit normalization: sizes up-aligned to 4KB and capped; offsets
        # wrapped into the target VD and down-aligned.
        size = max(TRACE_ALIGN, min(size, MAX_IMPORT_IO_BYTES))
        size = (size + TRACE_ALIGN - 1) // TRACE_ALIGN * TRACE_ALIGN
        offset = offset % max(TRACE_ALIGN, vd_bytes - size)
        offset -= offset % TRACE_ALIGN
        raw.append((t_raw, vd_index, kind, offset, size))
        if options.max_records is not None and len(raw) >= options.max_records:
            break
    if not raw:
        raise TraceFormatError(f"no importable records in {fmt} source")
    t0 = min(row[0] for row in raw)
    streams: Dict[str, List[IoRecord]] = {}
    for t_raw, vd_index, kind, offset, size in raw:
        streams.setdefault(f"vd{vd_index}", []).append(
            IoRecord(at_ns=t_raw - t0, kind=kind,
                     offset_bytes=offset, size_bytes=size)
        )
    meta = {
        f"vd{vd_index}": StreamMeta(
            vd_size_mb=options.vd_size_mb,
            source=f"{fmt}:" + "+".join(devices),
        )
        for vd_index, devices in device_of_vd.items()
        if f"vd{vd_index}" in streams
    }
    if name is None:
        name = f"{fmt}-import"
    return FleetTrace(
        name=name,
        streams=streams,
        meta=meta,
        description=f"imported from a {fmt} block trace "
                    f"({len(device_vd)} device(s), keep_one_in="
                    f"{options.keep_one_in})",
    )
