"""Capture any simulation run as a replayable FleetTrace.

A :class:`FleetTraceRecorder` taps the hooks every run already exposes —
:meth:`repro.ebs.VirtualDisk.subscribe` for the per-VD I/O stream and
:meth:`repro.metrics.trace.TraceCollector.subscribe` for a
capture-completeness cross-check — so fio jobs, production generators,
chaos walks and rebuild drills all record through the same two lines::

    recorder = FleetTraceRecorder("my-run")
    recorder.watch_vd(vd)
    ... run the simulation ...
    trace = recorder.trace()

Timing discipline: every record's ``at_ns`` is the I/O's *issue*
timestamp offset against one explicit ``epoch_ns`` (default 0 — the
simulator's time zero), never a first-record latch, so two recorders on
the same simulation agree on time zero and their traces compose into
one fleet capture.  I/Os issued before the epoch are dropped and
counted (``skipped_before_epoch``); I/Os that never complete by the end
of the run are invisible to the completion-side hook and therefore
absent — the cross-check counters surface how many I/Os the collector
saw versus how many the recorder captured.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..agent.base import IoRequest
from ..ebs.virtual_disk import VirtualDisk
from ..metrics.trace import TraceCollector
from ..workloads.replay import IoRecord
from .trace import FleetTrace, StreamMeta


class FleetTraceRecorder:
    """Multi-stream trace capture against one explicit epoch."""

    def __init__(self, name: str = "recorded", epoch_ns: int = 0,
                 description: str = ""):
        if epoch_ns < 0:
            raise ValueError(f"epoch_ns cannot be negative: {epoch_ns}")
        self.name = name
        self.epoch_ns = epoch_ns
        self.description = description
        self._streams: Dict[str, List[IoRecord]] = {}
        self._meta: Dict[str, StreamMeta] = {}
        #: I/Os dropped because they were issued before the epoch.
        self.skipped_before_epoch = 0
        #: Completed traces the attached collector saw (0 if detached).
        self.collector_seen = 0

    # ------------------------------------------------------------------
    def watch_vd(self, vd: VirtualDisk, stream: Optional[str] = None,
                 source: str = "recorded") -> str:
        """Record every I/O of ``vd`` under stream ``stream`` (default:
        the VD's own id).  Returns the stream name."""
        stream = vd.vd_id if stream is None else stream
        if stream in self._meta:
            raise ValueError(f"stream {stream!r} is already being recorded")
        self._streams[stream] = []
        self._meta[stream] = StreamMeta(
            vd_size_mb=max(1, vd.size_bytes // (1024 * 1024)), source=source
        )
        vd.subscribe(lambda io: self._on_io(stream, io))
        return stream

    def watch_collector(self, collector: TraceCollector) -> None:
        """Cross-check hook: count every completed trace the deployment's
        collector records, so ``captured`` vs ``collector_seen`` exposes
        I/O streams the recorder was never pointed at."""
        collector.subscribe(lambda _trace: self._on_collector())

    def _on_collector(self) -> None:
        self.collector_seen += 1

    def _on_io(self, stream: str, io: IoRequest) -> None:
        submit_ns = io.trace.submit_ns if io.trace is not None else None
        if submit_ns is None:
            return  # untraced I/O: no issue timestamp to anchor on
        if submit_ns < self.epoch_ns:
            self.skipped_before_epoch += 1
            return
        self._streams[stream].append(
            IoRecord(
                at_ns=submit_ns - self.epoch_ns,
                kind=io.kind,
                offset_bytes=io.offset_bytes,
                size_bytes=io.size_bytes,
            )
        )

    # ------------------------------------------------------------------
    @property
    def captured(self) -> int:
        return sum(len(records) for records in self._streams.values())

    def trace(self) -> FleetTrace:
        """The capture as a digest-keyed FleetTrace (streams that saw no
        I/O are dropped — an idle VD is not part of the envelope)."""
        streams = {s: list(r) for s, r in self._streams.items() if r}
        if not streams:
            raise ValueError(f"recorder {self.name!r} captured no I/O")
        return FleetTrace(
            name=self.name,
            streams=streams,
            meta={s: self._meta[s] for s in streams},
            description=self.description,
            epoch_ns=self.epoch_ns,
        )
