"""The scenario catalog: fleet behaviors as gated, replayable specs.

A :class:`Scenario` is one curated fleet behavior — a workload envelope
(an inline FleetTrace, a generator recipe, or a control-plane drill)
bound to a deployment shape, a fault schedule and a set of pass/fail
:class:`SloGate` assertions — expressed as a plain
:class:`~repro.lab.spec.ExperimentSpec` so it runs through the lab's
content-addressed, ``REPRO_JOBS``-invariant machinery unchanged.

:data:`CATALOG` seeds the library with the behaviors the paper's
production fleet exhibits (and the ROADMAP demands regression coverage
for): VM boot storms, incast bursts, noisy multi-tenant neighbors, a
diurnal peak colliding with a rolling upgrade, compaction/backup
background floods, and a rebuild storm under foreground load.  Each is
deterministic end to end — trace recipes are generated from fixed seeds
— so the whole catalog is a standing behavior-envelope regression gate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ebs import DeploymentSpec
from ..lab.spec import (
    ExperimentSpec,
    RebuildSpec,
    UpgradeSpec,
    WorkloadSpec,
    canonical_json,
)
from ..metrics.stats import percentile
from ..sim import MS, US
from ..workloads.replay import IoRecord
from .trace import FleetTrace, from_records

#: Version of the scenario-envelope JSON layout (shared with
#: `repro.chaos.scenario` — chaos counterexamples and workload scenarios
#: serialize into the same envelope, discriminated by ``kind``).
ENVELOPE_VERSION = 2

#: The deployment shape catalog scenarios run on: small enough for CI,
#: big enough for multipath and failover to be exercised.
CATALOG_DEPLOYMENT = DeploymentSpec(
    compute_racks=1,
    compute_hosts_per_rack=2,
    storage_racks=1,
    storage_hosts_per_rack=4,
)


@dataclass(frozen=True)
class SloGate:
    """Pass/fail assertions over one experiment point's artifact.

    ``None`` disables a bound.  Latency bounds are in microseconds
    (the paper's operative unit); fractions are of issued I/Os.
    """

    max_p50_us: Optional[float] = None
    max_p99_us: Optional[float] = None
    min_completed_fraction: float = 0.99
    max_hangs: int = 0
    max_failed: int = 0
    #: For rebuild scenarios: the storm must finish inside the run.
    require_rebuild_complete: bool = False

    def __post_init__(self) -> None:
        for bound in (self.max_p50_us, self.max_p99_us):
            if bound is not None and bound <= 0:
                raise ValueError(f"latency bounds must be positive: {bound}")
        if not 0.0 <= self.min_completed_fraction <= 1.0:
            raise ValueError(
                f"min_completed_fraction out of [0, 1]: "
                f"{self.min_completed_fraction}"
            )
        if self.max_hangs < 0 or self.max_failed < 0:
            raise ValueError(f"counting bounds cannot be negative: {self}")

    # ------------------------------------------------------------------
    def metrics(self, artifact: Dict[str, Any]) -> Dict[str, Any]:
        """The gated observables of one artifact, for reports."""
        samples = sorted(artifact.get("latency_ns", ()))
        issued = artifact.get("issued", 0)
        completed = artifact.get("completed", 0)
        return {
            "issued": issued,
            "completed": completed,
            "failed": artifact.get("failed", 0),
            "hangs": artifact.get("hangs", 0),
            "p50_us": round(percentile(samples, 50) / 1000, 1) if samples else None,
            "p99_us": round(percentile(samples, 99) / 1000, 1) if samples else None,
            "completed_fraction": round(completed / issued, 4) if issued else 0.0,
        }

    def evaluate(self, artifact: Dict[str, Any]) -> List[str]:
        """Every violated assertion, as human-readable strings (empty on
        pass).  Missing-latency artifacts fail latency bounds loudly
        rather than passing vacuously."""
        m = self.metrics(artifact)
        failures: List[str] = []
        for bound, key in ((self.max_p50_us, "p50_us"), (self.max_p99_us, "p99_us")):
            if bound is None:
                continue
            if m[key] is None:
                failures.append(f"{key} unmeasurable: artifact has no latency samples")
            elif m[key] > bound:
                failures.append(f"{key} {m[key]:.1f}us exceeds SLO {bound:.1f}us")
        if m["completed_fraction"] < self.min_completed_fraction:
            failures.append(
                f"completed {m['completed']}/{m['issued']} "
                f"({m['completed_fraction']:.2%}) below "
                f"{self.min_completed_fraction:.2%}"
            )
        if m["hangs"] > self.max_hangs:
            failures.append(f"{m['hangs']} hung I/O(s) exceed budget {self.max_hangs}")
        if m["failed"] > self.max_failed:
            failures.append(
                f"{m['failed']} failed I/O(s) exceed budget {self.max_failed}"
            )
        if self.require_rebuild_complete:
            rebuild = artifact.get("rebuild")
            if rebuild is None:
                failures.append("rebuild section missing from artifact")
            elif not rebuild.get("complete"):
                failures.append(f"rebuild incomplete: {rebuild.get('ledger')}")
        return failures

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SloGate":
        return cls(**payload)


@dataclass(frozen=True)
class Scenario:
    """One named, digest-keyed fleet behavior with SLO gates."""

    name: str
    description: str
    spec: ExperimentSpec
    slo: SloGate = field(default_factory=SloGate)
    tags: Tuple[str, ...] = ()

    @property
    def digest(self) -> str:
        """Stable content digest over everything that can change the
        verdict (spec + gates; name/description/tags are presentation)."""
        body = canonical_json(
            {"spec": self.spec.to_dict(), "slo": self.slo.to_dict()}
        )
        return hashlib.sha256(body).hexdigest()[:16]

    # -- envelope serialization (kind="workload") -----------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": ENVELOPE_VERSION,
            "kind": "workload",
            "name": self.name,
            "description": self.description,
            "digest": self.digest,
            "spec": self.spec.to_dict(),
            "slo": self.slo.to_dict(),
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Scenario":
        version = payload.get("version")
        if version != ENVELOPE_VERSION:
            raise ValueError(
                f"unsupported scenario version {version!r} "
                f"(this build reads version {ENVELOPE_VERSION})"
            )
        if payload.get("kind") != "workload":
            raise ValueError(
                f"not a workload scenario (kind={payload.get('kind')!r})"
            )
        scenario = cls(
            name=payload["name"],
            description=payload.get("description", ""),
            spec=ExperimentSpec.from_dict(payload["spec"]),
            slo=SloGate.from_dict(payload.get("slo", {})),
            tags=tuple(payload.get("tags", ())),
        )
        claimed = payload.get("digest", "")
        if claimed and claimed != scenario.digest:
            raise ValueError(
                f"scenario {scenario.name!r} digest mismatch: header says "
                f"{claimed}, content hashes to {scenario.digest} — the file "
                "was edited without re-deriving its digest"
            )
        return scenario


def trace_scenario(
    name: str,
    description: str,
    trace: FleetTrace,
    stack: str = "solar",
    vd_size_mb: int = 64,
    slo: SloGate = SloGate(),
    seeds: Tuple[int, ...] = (0,),
    tags: Tuple[str, ...] = (),
    rate_scale: float = 1.0,
    size_scale: float = 1.0,
    deployment: Optional[DeploymentSpec] = None,
) -> Scenario:
    """Bind a FleetTrace to a deployment + SLO gate as one scenario.

    The trace's streams are merged into the lab's single-VD replay rows;
    ``rate_scale``/``size_scale`` become the workload's scaling knobs
    (rate_scale 2.0 = replay at twice the recorded arrival rate)."""
    dep = deployment if deployment is not None else CATALOG_DEPLOYMENT
    spec = ExperimentSpec(
        deployment=dataclasses.replace(dep, stack=stack),
        workload=WorkloadSpec(
            mode="trace",
            records=trace.merged_rows(),
            time_scale=1.0 / rate_scale,
            size_scale=size_scale,
        ),
        seeds=seeds,
        name=name,
        vd_size_mb=vd_size_mb,
    )
    return Scenario(name=name, description=description, spec=spec,
                    slo=slo, tags=tags)


# ----------------------------------------------------------------------
# Curated trace recipes.  Pure functions of their fixed seeds: the same
# records, digests and verdicts on every machine.
# ----------------------------------------------------------------------
def _boot_storm_trace() -> FleetTrace:
    """8 guests cold-boot in a staggered storm: each streams its boot
    image (sequential 128KB reads) then settles into scattered 4KB
    config reads — the correlated-start pattern a host reboot or a
    burst of VM launches produces."""
    rng = random.Random(0xB007)
    records: List[IoRecord] = []
    image_mb = 2
    for guest in range(8):
        start = guest * 250 * US
        base = guest * 6 * 1024 * 1024
        offset = base
        at = start
        for _ in range(image_mb * 1024 // 128):  # sequential image pages
            records.append(IoRecord(at, "read", offset, 128 * 1024))
            offset += 128 * 1024
            at += 300 * US
        for _ in range(24):  # post-boot config scatter
            at += rng.randint(20, 120) * US
            records.append(
                IoRecord(at, "read", base + rng.randrange(0, image_mb << 20, 4096),
                         4096)
            )
    return from_records("vm-boot-storm", records, vd_size_mb=64)


def _incast_trace() -> FleetTrace:
    """Synchronized read bursts: every 600us, 48 4KB reads arrive in the
    same nanosecond — the paper's §4 incast pathology in miniature."""
    records: List[IoRecord] = []
    for burst in range(12):
        at = burst * 600 * US
        for i in range(48):
            records.append(
                IoRecord(at, "read", ((burst * 48 + i) * 97 % 12288) * 4096, 4096)
            )
    return from_records("incast-burst", records, vd_size_mb=64)


def _noisy_neighbor_trace() -> FleetTrace:
    """A well-behaved tenant (paced 4KB reads) sharing the device with a
    hog blasting 512KB write bursts — multi-tenant interference."""
    rng = random.Random(0x401)
    victim = [
        IoRecord(i * 100 * US, "read", rng.randrange(0, 32 << 20, 4096), 4096)
        for i in range(180)
    ]
    hog: List[IoRecord] = []
    for wave in range(16):
        at = wave * 1100 * US
        for k in range(6):
            hog.append(
                IoRecord(at + k * 30 * US, "write",
                         (32 << 20) + ((wave * 6 + k) * 512 * 1024) % (24 << 20),
                         512 * 1024)
            )
    return FleetTrace(
        name="noisy-neighbor",
        streams={"victim": victim, "hog": hog},
        meta={},
    )


def _background_flood_trace() -> FleetTrace:
    """Foreground 4KB random reads with three compaction/backup waves of
    back-to-back 256KB sequential writes flooding the backend."""
    rng = random.Random(0xF100D)
    fg = [
        IoRecord(i * 50 * US, "read", rng.randrange(0, 32 << 20, 4096), 4096)
        for i in range(320)
    ]
    flood: List[IoRecord] = []
    for wave in range(3):
        start = (3 + wave * 4) * MS
        for k in range(36):
            flood.append(
                IoRecord(start + k * 60 * US, "write",
                         (32 << 20) + (k * 256 * 1024) % (24 << 20),
                         256 * 1024)
            )
    return FleetTrace(
        name="background-flood",
        streams={"foreground": fg, "flood": flood},
        meta={},
    )


# ----------------------------------------------------------------------
# The catalog proper.
# ----------------------------------------------------------------------
def _build_catalog() -> Dict[str, Callable[[], Scenario]]:
    def vm_boot_storm() -> Scenario:
        return trace_scenario(
            "vm-boot-storm",
            "8 guests cold-boot together: sequential image streaming then "
            "4KB config scatter; the storm must not starve any one guest",
            _boot_storm_trace(),
            slo=SloGate(max_p99_us=2000.0, min_completed_fraction=1.0),
            tags=("trace", "burst"),
        )

    def incast_burst() -> Scenario:
        return trace_scenario(
            "incast-burst",
            "48-way synchronized 4KB read bursts every 600us — fan-in "
            "congestion at the ToR downlink",
            _incast_trace(),
            slo=SloGate(max_p99_us=1500.0, min_completed_fraction=1.0),
            tags=("trace", "incast"),
        )

    def noisy_neighbor() -> Scenario:
        return trace_scenario(
            "noisy-neighbor",
            "a paced 4KB tenant sharing the path with 512KB write bursts; "
            "interference must stay inside the latency envelope",
            _noisy_neighbor_trace(),
            slo=SloGate(max_p99_us=2500.0, min_completed_fraction=1.0),
            tags=("trace", "multi-tenant"),
        )

    def diurnal_upgrade() -> Scenario:
        spec = ExperimentSpec(
            deployment=dataclasses.replace(CATALOG_DEPLOYMENT, stack="kernel"),
            upgrade=UpgradeSpec(
                from_stack="kernel",
                to_stack="luna",
                servers=6,
                waves=3,
                wave_window_ns=3 * MS,
                io_gap_ns=150 * US,  # diurnal-peak cadence, not off-peak
            ),
            seeds=(0,),
            name="diurnal-upgrade",
            vd_size_mb=32,
        )
        return Scenario(
            name="diurnal-upgrade",
            description="rolling kernel->luna upgrade colliding with the "
                        "diurnal traffic peak: no hangs, nothing dropped",
            spec=spec,
            slo=SloGate(min_completed_fraction=0.97, max_hangs=0),
            tags=("upgrade", "control-plane"),
        )

    def background_flood() -> Scenario:
        return trace_scenario(
            "background-flood",
            "compaction/backup waves of 256KB sequential writes under "
            "foreground 4KB reads — background work must not break the SLO",
            _background_flood_trace(),
            slo=SloGate(max_p99_us=2000.0, min_completed_fraction=1.0),
            tags=("trace", "background"),
        )

    def rebuild_storm() -> Scenario:
        spec = ExperimentSpec(
            deployment=CATALOG_DEPLOYMENT,
            workload=WorkloadSpec(
                mode="fio", iodepth=8, read_fraction=0.5, runtime_ns=25 * MS
            ),
            rebuild=RebuildSpec(
                policy="static",
                mode="swarm",
                rate_gbps=8.0,
                fail_at_ns=8 * MS,
                node_index=1,
            ),
            seeds=(0,),
            name="rebuild-storm",
            vd_size_mb=16,
        )
        return Scenario(
            name="rebuild-storm",
            description="a storage node dies mid-load: the re-replication "
                        "storm must finish while foreground I/O keeps its "
                        "envelope",
            spec=spec,
            slo=SloGate(
                min_completed_fraction=0.99,
                require_rebuild_complete=True,
            ),
            tags=("rebuild", "failure"),
        )

    return {
        "vm-boot-storm": vm_boot_storm,
        "incast-burst": incast_burst,
        "noisy-neighbor": noisy_neighbor,
        "diurnal-upgrade": diurnal_upgrade,
        "background-flood": background_flood,
        "rebuild-storm": rebuild_storm,
    }


#: name -> zero-argument builder.  Builders (not instances) so importing
#: the catalog costs nothing and each lookup yields a fresh object.
CATALOG: Dict[str, Callable[[], Scenario]] = _build_catalog()


def catalog_names() -> List[str]:
    return sorted(CATALOG)


def get_scenario(name: str) -> Scenario:
    try:
        builder = CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; catalog: {', '.join(catalog_names())}"
        ) from None
    return builder()
