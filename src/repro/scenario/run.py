"""Run and record scenarios: gated reports and trace capture.

``run_scenario`` pushes a :class:`~repro.scenario.catalog.Scenario`
through the lab's sweep machinery (content-addressed store, worker
pool), evaluates its SLO gates against every point artifact, and folds
the verdicts into one canonical, digest-keyed report.  Because the lab
guarantees byte-identical artifacts across serial and ``REPRO_JOBS``
execution, the report digest inherits that invariance — two machines
running the same scenario either agree to the byte or one of them has a
real regression.

``record_scenario`` replays the same spec in-process with a
:class:`~repro.scenario.record.FleetTraceRecorder` attached through
:func:`repro.lab.runner.execute_point`'s ``observe`` hook, yielding the
run's I/O envelope as a replayable :class:`FleetTrace` — the
record-side of the record/replay round trip the determinism tests pin.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional, Tuple

from ..lab.runner import execute_point, run_sweep
from ..lab.spec import canonical_json
from ..lab.store import ResultStore
from ..lab.telemetry import ProgressFn
from .catalog import Scenario
from .record import FleetTraceRecorder
from .trace import FleetTrace

#: Bump when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1


def run_scenario(
    scenario: Scenario,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, Any]:
    """Execute every point of ``scenario`` and gate the artifacts.

    Returns the canonical report dict: per-point metrics, SLO failures
    and verdicts, an overall ``pass``, and a ``report_digest`` derived
    from the canonical bytes of everything above it (so equal reports
    are equal digests, across processes and job counts).
    """
    sweep = run_sweep(
        scenario.spec, jobs=jobs, store=store, force=force, progress=progress
    )
    points = []
    for (_spec, seed, digest), artifact in zip(sweep.points, sweep.artifacts):
        failures = scenario.slo.evaluate(artifact)
        points.append(
            {
                "seed": seed,
                "artifact_digest": digest,
                "metrics": scenario.slo.metrics(artifact),
                "slo_failures": failures,
                "pass": not failures,
            }
        )
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA_VERSION,
        "scenario": scenario.name,
        "scenario_digest": scenario.digest,
        "slo": scenario.slo.to_dict(),
        "points": points,
        "pass": all(p["pass"] for p in points),
    }
    report["report_digest"] = hashlib.sha256(
        canonical_json(report)
    ).hexdigest()[:16]
    return report


def record_scenario(
    scenario: Scenario,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> Tuple[FleetTrace, Dict[str, Any]]:
    """Run one point of ``scenario`` in-process with a recorder attached.

    Returns the captured :class:`FleetTrace` (the run's I/O envelope,
    replayable on any stack) and the point's result artifact.  Drill
    scenarios (upgrade/rebuild) run their own fleet loops with no lab VD
    to watch, so they cannot be recorded — ``execute_point`` refuses the
    hook for them.
    """
    spec = scenario.spec
    seed = spec.seeds[0] if seed is None else seed
    recorder = FleetTraceRecorder(
        name=scenario.name if name is None else name,
        description=f"recorded from scenario {scenario.name!r} "
        f"(digest {scenario.digest}, seed {seed})",
    )

    def observe(dep, vd) -> None:
        recorder.watch_vd(vd, stream="vd0", source=f"scenario:{scenario.name}")
        recorder.watch_collector(dep.collector)

    artifact = execute_point(spec, seed, observe=observe)
    return recorder.trace(), artifact
