"""Cross-seed aggregation of point artifacts.

A sweep yields one artifact per (spec, seed) point.  This module rolls
them up the way the paper's evaluation does: latency percentiles over the
*pooled* distribution of all replicate runs (never averaged percentiles),
per-component breakdowns from the distributed traces, and mean ± 95% CI
over the per-seed replicate means so a table can say how stable a number
is across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..metrics.stats import LatencyStats, mean_ci
from .spec import ExperimentSpec
from .telemetry import RunTelemetry

COMPONENTS = ("sa", "fn", "bn", "ssd")


@dataclass(frozen=True)
class SpecAggregate:
    """One experiment's results rolled up across its seeds."""

    name: str
    stack: str
    seeds: Tuple[int, ...]
    issued: int
    completed: int
    failed: int
    hangs: int
    bytes_moved: int
    latency: LatencyStats  # pooled over all seeds
    #: Mean per-I/O time attributed to each trace component (us).
    component_means_us: Dict[str, float]
    #: (mean, 95% CI half-width) of the per-seed mean latency, in us.
    mean_us_ci: Tuple[float, float]
    #: Aggregate completion rate over simulated time, per second.
    iops: float

    def row(self) -> List[str]:
        mean, half = self.mean_us_ci
        ci = f"{mean:.1f}±{half:.1f}" if len(self.seeds) > 1 else f"{mean:.1f}"
        return [
            self.name,
            self.stack,
            str(len(self.seeds)),
            str(self.completed),
            ci,
            f"{self.latency.p(50) / 1000:.1f}",
            f"{self.latency.p(99) / 1000:.1f}",
            f"{self.iops / 1000:.1f}K",
            str(self.hangs),
        ]

    ROW_HEADERS = (
        "experiment", "stack", "seeds", "ios",
        "mean us (95% CI)", "p50 us", "p99 us", "IOPS", "hangs",
    )


def aggregate(spec: ExperimentSpec, artifacts: Sequence[Dict[str, Any]]) -> SpecAggregate:
    """Roll one spec's per-seed artifacts into a :class:`SpecAggregate`."""
    if len(artifacts) != len(spec.seeds):
        raise ValueError(
            f"{spec.name}: {len(artifacts)} artifacts for {len(spec.seeds)} seeds"
        )
    pooled = LatencyStats.merged(
        (LatencyStats(str(a["seed"]), list(a["latency_ns"])) for a in artifacts),
        name=spec.name,
    )
    completed = sum(a["completed"] for a in artifacts)
    sim_s = sum(a["duration_ns"] for a in artifacts) / 1e9
    trace_count = sum(a["component_count"] for a in artifacts)
    component_means_us = {
        c: (
            sum(a["component_ns"][c] for a in artifacts) / trace_count / 1000
            if trace_count
            else 0.0
        )
        for c in COMPONENTS
    }
    per_seed_means_us = [
        (sum(a["latency_ns"]) / len(a["latency_ns"]) / 1000)
        for a in artifacts
        if a["latency_ns"]
    ]
    return SpecAggregate(
        name=spec.name,
        stack=spec.deployment.stack,
        seeds=tuple(spec.seeds),
        issued=sum(a["issued"] for a in artifacts),
        completed=completed,
        failed=sum(a["failed"] for a in artifacts),
        hangs=sum(a["hangs"] for a in artifacts),
        bytes_moved=sum(a["bytes_moved"] for a in artifacts),
        latency=pooled,
        component_means_us=component_means_us,
        mean_us_ci=mean_ci(per_seed_means_us) if per_seed_means_us else (0.0, 0.0),
        iops=completed / sim_s if sim_s > 0 else 0.0,
    )


@dataclass
class SweepResult:
    """Everything a finished sweep knows: specs, artifacts, telemetry."""

    specs: List[ExperimentSpec]
    #: (spec, seed, digest) in execution order (spec order x seed order).
    points: List[Tuple[ExperimentSpec, int, str]]
    #: Artifacts aligned with ``points``.
    artifacts: List[Dict[str, Any]]
    telemetry: RunTelemetry = field(default_factory=RunTelemetry)

    def artifacts_for(self, spec: ExperimentSpec) -> List[Dict[str, Any]]:
        return [
            artifact
            for (point_spec, _seed, _digest), artifact in zip(self.points, self.artifacts)
            if point_spec is spec
        ]

    def artifact(self, spec: ExperimentSpec, seed: int) -> Dict[str, Any]:
        digest = spec.point_digest(seed)
        for (_s, _seed, point_digest), artifact in zip(self.points, self.artifacts):
            if point_digest == digest:
                return artifact
        raise KeyError(f"no artifact for {spec.name} seed={seed}")

    def aggregates(self) -> List[SpecAggregate]:
        return [aggregate(spec, self.artifacts_for(spec)) for spec in self.specs]

    def digests(self) -> List[str]:
        return [digest for _, _, digest in self.points]

    @property
    def total_hangs(self) -> int:
        return sum(a["hangs"] for a in self.artifacts)
