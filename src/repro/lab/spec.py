"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the unit of work of the lab: one deployment
shape, one workload description, an optional fault schedule, and a list of
seeds.  Every (spec, seed) pair is a *point* — a pure function from spec to
result artifact — which is what makes points safe to execute in worker
processes (`repro.lab.runner`) and to cache content-addressed
(`repro.lab.store`).

Specs are frozen dataclasses, serialize to canonical JSON, and hash to a
stable digest that keys the result store.  The digest covers everything
that can change a simulation outcome (deployment, workload, faults, seed,
package version) and excludes presentation-only fields (`name`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..ebs import DeploymentSpec
from ..net.failures import (
    FailureScenario,
    random_drop,
    switch_blackhole,
    switch_failure,
    switch_reboot,
    tor_port_failure,
)
from ..sim import MS, SECOND

#: Bump when the artifact layout changes: old cache entries stop matching.
SCHEMA_VERSION = 1

WORKLOAD_MODES = ("fio", "isolated", "trace")


def canonical_json(obj: Any) -> bytes:
    """Deterministic JSON encoding: sorted keys, no whitespace drift.

    Artifacts written through this function are byte-identical across
    processes and across serial/parallel execution, which is what the
    store's content addressing and the determinism tests rely on.
    """
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True)
        + "\n"
    ).encode("ascii")


@dataclass(frozen=True)
class WorkloadSpec:
    """What to run against the virtual disk of one experiment point.

    Three modes cover the repo's experiment styles:

    * ``fio`` — a closed-loop :class:`repro.workloads.FioJob` (iodepth,
      mixed block sizes, read fraction, access pattern);
    * ``isolated`` — ``count`` paced single I/Os (the Table 1 / latency
      -breakdown methodology: one I/O in flight at a time);
    * ``trace`` — replay of recorded :class:`repro.workloads.IoRecord`
      rows, preserving inter-arrival times.
    """

    mode: str = "fio"
    # fio mode
    block_sizes: Tuple[int, ...] = (4096,)
    iodepth: int = 16
    read_fraction: float = 0.3
    runtime_ns: int = 10 * MS
    pattern: str = "random"
    # isolated mode
    count: int = 100
    size_bytes: int = 4096
    kind: str = "write"
    gap_ns: int = 200_000
    # trace mode: rows of (at_ns, kind, offset_bytes, size_bytes)
    records: Tuple[Tuple[int, str, int, int], ...] = ()
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in WORKLOAD_MODES:
            raise ValueError(f"mode must be one of {WORKLOAD_MODES}, got {self.mode!r}")
        if self.mode == "fio":
            if self.iodepth < 1:
                raise ValueError(f"iodepth must be >= 1, got {self.iodepth}")
            if self.runtime_ns <= 0:
                raise ValueError(f"runtime_ns must be positive, got {self.runtime_ns}")
        if self.mode == "isolated":
            if self.count < 1 or self.size_bytes <= 0 or self.gap_ns < 0:
                raise ValueError(f"invalid isolated workload: {self}")
            if self.kind not in ("read", "write"):
                raise ValueError(f"kind must be read|write, got {self.kind!r}")
        if self.mode == "trace":
            if not self.records:
                raise ValueError("trace workload needs at least one record")
            if self.time_scale <= 0:
                raise ValueError(f"non-positive time scale: {self.time_scale}")

    @property
    def horizon_ns(self) -> int:
        """Simulated time by which the last I/O has been *issued*."""
        if self.mode == "fio":
            return self.runtime_ns
        if self.mode == "isolated":
            return self.count * self.gap_ns
        return int(max(r[0] for r in self.records) * self.time_scale)


#: kind -> constructor taking a FaultSpec; ``target`` is a switch tier
#: ("tor"/"spine"/...) except for tor_port_failure, where it is a host name.
_FAULT_KINDS: Dict[str, Callable[["FaultSpec"], FailureScenario]] = {
    "tor_port_failure": lambda fs: tor_port_failure(fs.target, int(fs.param)),
    "switch_failure": lambda fs: switch_failure(
        fs.target, fs.index, link_down=bool(fs.param)
    ),
    "switch_reboot": lambda fs: switch_reboot(fs.target, int(fs.param), fs.index),
    "switch_blackhole": lambda fs: switch_blackhole(fs.target, fs.param, fs.index),
    "random_drop": lambda fs: random_drop(fs.target, fs.param, fs.index),
}

FAULT_KINDS = tuple(sorted(_FAULT_KINDS))


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure injection, declaratively.

    ``param`` is kind-specific: blackhole/drop fraction, reboot downtime
    (ns), port index for ``tor_port_failure``, link_down flag (0/1) for
    ``switch_failure``.
    """

    kind: str
    target: str = "tor"
    param: float = 0.5
    index: int = 0
    start_ns: int = 10 * MS
    end_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.start_ns < 0:
            raise ValueError(f"fault cannot start before t=0: {self.start_ns}")
        if self.end_ns is not None and self.end_ns <= self.start_ns:
            raise ValueError("fault must end after it starts")

    def build(self) -> FailureScenario:
        return _FAULT_KINDS[self.kind](self)


@dataclass(frozen=True)
class ExperimentSpec:
    """One named experiment: deployment x workload x faults x seeds."""

    deployment: DeploymentSpec = field(default_factory=DeploymentSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: Tuple[FaultSpec, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    name: str = "experiment"
    vd_size_mb: int = 256
    hang_threshold_ns: int = 1 * SECOND
    #: Absolute run bound; None derives one from the workload horizon.
    until_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("spec needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds: {self.seeds}")
        if self.vd_size_mb <= 0:
            raise ValueError(f"vd_size_mb must be positive, got {self.vd_size_mb}")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["workload"]["records"] = [list(r) for r in self.workload.records]
        return d

    def to_json(self) -> str:
        return canonical_json(self.to_dict()).decode("ascii")

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExperimentSpec":
        d = dict(d)
        w = dict(d.pop("workload"))
        w["block_sizes"] = tuple(w["block_sizes"])
        w["records"] = tuple(tuple(r) for r in w["records"])
        return cls(
            deployment=DeploymentSpec(**d.pop("deployment")),
            workload=WorkloadSpec(**w),
            faults=tuple(FaultSpec(**f) for f in d.pop("faults")),
            seeds=tuple(d.pop("seeds")),
            **d,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    # -- content addressing ---------------------------------------------
    def _digest_material(self, seed: int) -> Dict[str, Any]:
        material = self.to_dict()
        # Presentation-only / per-point fields stay out of the key.
        material.pop("name")
        material.pop("seeds")
        material["seed"] = seed
        material["version"] = __version__
        material["schema"] = SCHEMA_VERSION
        return material

    def point_digest(self, seed: int) -> str:
        """Content address of the (spec, seed) point's result artifact."""
        if seed not in self.seeds:
            raise ValueError(f"seed {seed} not in {self.seeds}")
        return hashlib.sha256(
            canonical_json(self._digest_material(seed))
        ).hexdigest()

    def points(self) -> List[Tuple["ExperimentSpec", int, str]]:
        """All (spec, seed, digest) points of this experiment, seed order."""
        return [(self, seed, self.point_digest(seed)) for seed in self.seeds]

    def with_stack(self, stack: str) -> "ExperimentSpec":
        """Same experiment on another frontend stack, named accordingly."""
        return dataclasses.replace(
            self,
            deployment=dataclasses.replace(self.deployment, stack=stack),
            name=f"{self.name}/{stack}" if self.name else stack,
        )


def stack_sweep(base: ExperimentSpec, stacks: Sequence[str]) -> List[ExperimentSpec]:
    """One spec per stack, sharing base's workload, faults and seeds."""
    return [base.with_stack(stack) for stack in stacks]
