"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the unit of work of the lab: one deployment
shape, one workload description, an optional fault schedule, and a list of
seeds.  Every (spec, seed) pair is a *point* — a pure function from spec to
result artifact — which is what makes points safe to execute in worker
processes (`repro.lab.runner`) and to cache content-addressed
(`repro.lab.store`).

Specs are frozen dataclasses, serialize to canonical JSON, and hash to a
stable digest that keys the result store.  The digest covers everything
that can change a simulation outcome (deployment, workload, faults, seed,
package version) and excludes presentation-only fields (`name`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..ebs import DeploymentSpec
from ..net.failures import (
    FailureScenario,
    random_drop,
    switch_blackhole,
    switch_failure,
    switch_reboot,
    tor_port_failure,
)
from ..sim import MS, SECOND, US

#: Bump when the artifact layout changes: old cache entries stop matching.
#: v5: trace workloads gained ``size_scale`` and are hang-watched at issue
#: (``watched`` now counts replayed I/Os), for the scenario plane.
SCHEMA_VERSION = 5

WORKLOAD_MODES = ("fio", "isolated", "trace")

#: The fleet's deployment history (Figure 7): hot upgrades only ever move
#: a server forward along this chain.
UPGRADE_ORDER = ("kernel", "luna", "solar")


def canonical_json(obj: Any) -> bytes:
    """Deterministic JSON encoding: sorted keys, no whitespace drift.

    Artifacts written through this function are byte-identical across
    processes and across serial/parallel execution, which is what the
    store's content addressing and the determinism tests rely on.
    """
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True)
        + "\n"
    ).encode("ascii")


@dataclass(frozen=True)
class WorkloadSpec:
    """What to run against the virtual disk of one experiment point.

    Three modes cover the repo's experiment styles:

    * ``fio`` — a closed-loop :class:`repro.workloads.FioJob` (iodepth,
      mixed block sizes, read fraction, access pattern);
    * ``isolated`` — ``count`` paced single I/Os (the Table 1 / latency
      -breakdown methodology: one I/O in flight at a time);
    * ``trace`` — replay of recorded :class:`repro.workloads.IoRecord`
      rows, preserving inter-arrival times.
    """

    mode: str = "fio"
    # fio mode
    block_sizes: Tuple[int, ...] = (4096,)
    iodepth: int = 16
    read_fraction: float = 0.3
    runtime_ns: int = 10 * MS
    pattern: str = "random"
    # isolated mode
    count: int = 100
    size_bytes: int = 4096
    kind: str = "write"
    gap_ns: int = 200_000
    # trace mode: rows of (at_ns, kind, offset_bytes, size_bytes)
    records: Tuple[Tuple[int, str, int, int], ...] = ()
    time_scale: float = 1.0
    #: Multiplies replayed I/O sizes (re-aligned to 4KB) — with
    #: ``time_scale`` these are the scenario plane's rate/size knobs.
    size_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in WORKLOAD_MODES:
            raise ValueError(f"mode must be one of {WORKLOAD_MODES}, got {self.mode!r}")
        if self.mode == "fio":
            if self.iodepth < 1:
                raise ValueError(f"iodepth must be >= 1, got {self.iodepth}")
            if self.runtime_ns <= 0:
                raise ValueError(f"runtime_ns must be positive, got {self.runtime_ns}")
        if self.mode == "isolated":
            if self.count < 1 or self.size_bytes <= 0 or self.gap_ns < 0:
                raise ValueError(f"invalid isolated workload: {self}")
            if self.kind not in ("read", "write"):
                raise ValueError(f"kind must be read|write, got {self.kind!r}")
        if self.mode == "trace":
            if not self.records:
                raise ValueError("trace workload needs at least one record")
            if self.time_scale <= 0:
                raise ValueError(f"non-positive time scale: {self.time_scale}")
            if self.size_scale <= 0:
                raise ValueError(f"non-positive size scale: {self.size_scale}")

    @property
    def horizon_ns(self) -> int:
        """Simulated time by which the last I/O has been *issued*."""
        if self.mode == "fio":
            return self.runtime_ns
        if self.mode == "isolated":
            return self.count * self.gap_ns
        return int(max(r[0] for r in self.records) * self.time_scale)


#: kind -> constructor taking a FaultSpec; ``target`` is a switch tier
#: ("tor"/"spine"/...) except for tor_port_failure, where it is a host name.
_FAULT_KINDS: Dict[str, Callable[["FaultSpec"], FailureScenario]] = {
    "tor_port_failure": lambda fs: tor_port_failure(fs.target, int(fs.param)),
    "switch_failure": lambda fs: switch_failure(
        fs.target, fs.index, link_down=bool(fs.param)
    ),
    "switch_reboot": lambda fs: switch_reboot(fs.target, int(fs.param), fs.index),
    "switch_blackhole": lambda fs: switch_blackhole(fs.target, fs.param, fs.index),
    "random_drop": lambda fs: random_drop(fs.target, fs.param, fs.index),
}

FAULT_KINDS = tuple(sorted(_FAULT_KINDS))


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure injection, declaratively.

    ``param`` is kind-specific: blackhole/drop fraction, reboot downtime
    (ns), port index for ``tor_port_failure``, link_down flag (0/1) for
    ``switch_failure``.
    """

    kind: str
    target: str = "tor"
    param: float = 0.5
    index: int = 0
    start_ns: int = 10 * MS
    end_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.start_ns < 0:
            raise ValueError(f"fault cannot start before t=0: {self.start_ns}")
        if self.end_ns is not None and self.end_ns <= self.start_ns:
            raise ValueError("fault must end after it starts")

    def build(self) -> FailureScenario:
        return _FAULT_KINDS[self.kind](self)


@dataclass(frozen=True)
class UpgradeSpec:
    """A declarative rolling hot-upgrade drill (Figure 7's rollout).

    ``servers`` logical servers start on ``from_stack`` and are upgraded
    in ``waves`` contiguous groups along :data:`UPGRADE_ORDER` until all
    run ``to_stack``, under live paced load.  Each wave occupies one
    ``wave_window_ns`` measurement window; ``baseline_waves`` windows run
    before the first migration and ``settle_waves`` after the last, so the
    drill brackets the rollout with pure from-stack / to-stack readings.

    When an :class:`ExperimentSpec` carries an ``upgrade``, its
    ``workload`` field is ignored — the drill's fleet load is defined by
    ``io_gap_ns``/``io_size_bytes`` here (one open-loop paced writer per
    server).
    """

    from_stack: str = "kernel"
    to_stack: str = "luna"
    servers: int = 8
    waves: int = 4
    wave_window_ns: int = 5 * MS
    baseline_waves: int = 1
    settle_waves: int = 1
    #: Gap between consecutive server migrations inside one wave.
    stagger_ns: int = 200 * US
    #: Per-server paced-writer cadence and I/O size (the live load).
    io_gap_ns: int = 500 * US
    io_size_bytes: int = 4096

    def __post_init__(self) -> None:
        for stack in (self.from_stack, self.to_stack):
            if stack not in UPGRADE_ORDER:
                raise ValueError(
                    f"upgrade stacks must be in {UPGRADE_ORDER}, got {stack!r}"
                )
        if UPGRADE_ORDER.index(self.from_stack) >= UPGRADE_ORDER.index(self.to_stack):
            raise ValueError(
                f"upgrades only move forward along {UPGRADE_ORDER}: "
                f"{self.from_stack!r} -> {self.to_stack!r}"
            )
        if self.servers < 1:
            raise ValueError(f"need at least one server, got {self.servers}")
        if self.waves < 1 or self.waves > self.servers:
            raise ValueError(
                f"waves must be in [1, servers={self.servers}], got {self.waves}"
            )
        if self.wave_window_ns <= 0:
            raise ValueError(f"wave window must be positive: {self.wave_window_ns}")
        if self.baseline_waves < 0 or self.settle_waves < 0:
            raise ValueError("baseline/settle wave counts cannot be negative")
        if self.stagger_ns < 0 or self.io_gap_ns <= 0 or self.io_size_bytes <= 0:
            raise ValueError(f"invalid upgrade load parameters: {self}")

    def hops(self) -> List[Tuple[str, str]]:
        """Consecutive (from, to) stack pairs this upgrade rolls through."""
        lo = UPGRADE_ORDER.index(self.from_stack)
        hi = UPGRADE_ORDER.index(self.to_stack)
        return [
            (UPGRADE_ORDER[i], UPGRADE_ORDER[i + 1]) for i in range(lo, hi)
        ]

    @property
    def total_waves(self) -> int:
        """Measurement windows: baseline + one per wave per hop + settle."""
        return self.baseline_waves + len(self.hops()) * self.waves + self.settle_waves


@dataclass(frozen=True)
class TelemetrySpec:
    """Attach the `repro.telemetry` plane to an experiment point.

    The point then runs with a :class:`repro.telemetry.TelemetryPlane`
    scraping on ``interval_ns`` and diagnosing slow I/Os against
    ``slo_ns``, and its artifact grows a ``telemetry`` section (fleet
    sketch quantiles, slow-I/O attribution, alert history).  Everything
    the plane emits is derived from simulated time only, so telemetry-
    enabled points stay deterministic and content-addressable.
    """

    interval_ns: int = 1 * MS
    slo_ns: int = 500_000
    relative_accuracy: float = 0.01

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise ValueError(f"scrape interval must be positive: {self.interval_ns}")
        if self.slo_ns <= 0:
            raise ValueError(f"latency SLO must be positive: {self.slo_ns}")
        if not 0.0 < self.relative_accuracy < 1.0:
            raise ValueError(
                f"relative accuracy must be in (0, 1): {self.relative_accuracy}"
            )


#: Valid throttle policies / transfer modes for :class:`RebuildSpec`
#: (mirrors ``repro.rebuild.throttle.REBUILD_POLICIES`` without importing
#: the data plane into the spec layer).
REBUILD_POLICIES = ("static", "deadline", "reactive")
REBUILD_MODES = ("unicast", "swarm")


@dataclass(frozen=True)
class RebuildSpec:
    """Run a re-replication storm drill (`repro.rebuild`) at this point.

    The point provisions its VD with ``replicas`` copies, runs the fio
    foreground workload, kills one storage node at ``fail_at_ns``, and
    lets the failover orchestrator hand the failure to a
    :class:`~repro.rebuild.planner.RebuildPlanner` instead of the instant
    evacuation path.  The artifact grows a ``rebuild`` section with the
    recovery timeline and the foreground p99 measured *during* the storm
    — one (recovery-time, foreground-impact) observation per point.
    """

    policy: str = "static"
    mode: str = "unicast"
    #: Static cap, and the deadline/reactive policies' rate ceiling
    #: (gigabits/s, matching the profile idiom).
    rate_gbps: float = 8.0
    deadline_ms: int = 60
    target_p99_us: int = 500
    replicas: int = 3
    chunk_kb: int = 256
    fail_at_ns: int = 10 * MS
    #: Which storage server dies (index into the sorted server list,
    #: modulo fleet size).
    node_index: int = 0
    max_active_transfers: int = 4

    def __post_init__(self) -> None:
        if self.policy not in REBUILD_POLICIES:
            raise ValueError(
                f"policy must be one of {REBUILD_POLICIES}, got {self.policy!r}"
            )
        if self.mode not in REBUILD_MODES:
            raise ValueError(
                f"mode must be one of {REBUILD_MODES}, got {self.mode!r}"
            )
        if self.rate_gbps <= 0:
            raise ValueError(f"rate_gbps must be positive: {self.rate_gbps}")
        if self.deadline_ms <= 0 or self.target_p99_us <= 0:
            raise ValueError(f"invalid rebuild pacing targets: {self}")
        if self.replicas < 2:
            raise ValueError(f"rebuild drills need >= 2 replicas: {self.replicas}")
        if self.chunk_kb <= 0 or (self.chunk_kb * 1024) % 4096:
            raise ValueError(f"chunk_kb must be a positive multiple of 4: {self.chunk_kb}")
        if self.fail_at_ns < 0 or self.node_index < 0:
            raise ValueError(f"invalid rebuild fault schedule: {self}")
        if self.max_active_transfers < 1:
            raise ValueError(
                f"max_active_transfers must be >= 1: {self.max_active_transfers}"
            )


@dataclass(frozen=True)
class ExperimentSpec:
    """One named experiment: deployment x workload x faults x seeds."""

    deployment: DeploymentSpec = field(default_factory=DeploymentSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: Tuple[FaultSpec, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    name: str = "experiment"
    vd_size_mb: int = 256
    hang_threshold_ns: int = 1 * SECOND
    #: Absolute run bound; None derives one from the workload horizon.
    until_ns: Optional[int] = None
    #: When set, the point runs a control-plane rolling-upgrade drill
    #: (``repro.control``) instead of the plain workload.
    upgrade: Optional[UpgradeSpec] = None
    #: When set, the point runs under the `repro.telemetry` plane and its
    #: artifact grows a ``telemetry`` section.
    telemetry: Optional[TelemetrySpec] = None
    #: When set, the point runs a re-replication storm drill
    #: (``repro.rebuild``) and its artifact grows a ``rebuild`` section.
    rebuild: Optional[RebuildSpec] = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("spec needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds: {self.seeds}")
        if self.vd_size_mb <= 0:
            raise ValueError(f"vd_size_mb must be positive, got {self.vd_size_mb}")
        if self.upgrade is not None and self.telemetry is not None:
            # Upgrade drills run their own fleet loop (repro.control.drill)
            # which has no VD to watch; silently dropping the telemetry
            # request would be worse than refusing it.
            raise ValueError("upgrade drills do not support telemetry specs")
        if self.rebuild is not None:
            if self.upgrade is not None:
                raise ValueError("a point runs either a rebuild or an upgrade drill")
            if self.workload.mode != "fio":
                # The storm's foreground-impact measurement is defined
                # against the closed-loop fio load.
                raise ValueError("rebuild drills require a fio workload")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["workload"]["records"] = [list(r) for r in self.workload.records]
        return d

    def to_json(self) -> str:
        return canonical_json(self.to_dict()).decode("ascii")

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExperimentSpec":
        d = dict(d)
        w = dict(d.pop("workload"))
        w["block_sizes"] = tuple(w["block_sizes"])
        w["records"] = tuple(tuple(r) for r in w["records"])
        upgrade = d.pop("upgrade", None)
        telemetry = d.pop("telemetry", None)
        rebuild = d.pop("rebuild", None)
        return cls(
            deployment=DeploymentSpec(**d.pop("deployment")),
            workload=WorkloadSpec(**w),
            faults=tuple(FaultSpec(**f) for f in d.pop("faults")),
            seeds=tuple(d.pop("seeds")),
            upgrade=UpgradeSpec(**upgrade) if upgrade is not None else None,
            telemetry=TelemetrySpec(**telemetry) if telemetry is not None else None,
            rebuild=RebuildSpec(**rebuild) if rebuild is not None else None,
            **d,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    # -- content addressing ---------------------------------------------
    def _digest_material(self, seed: int) -> Dict[str, Any]:
        material = self.to_dict()
        # Presentation-only / per-point fields stay out of the key.
        material.pop("name")
        material.pop("seeds")
        material["seed"] = seed
        material["version"] = __version__
        material["schema"] = SCHEMA_VERSION
        return material

    def point_digest(self, seed: int) -> str:
        """Content address of the (spec, seed) point's result artifact."""
        if seed not in self.seeds:
            raise ValueError(f"seed {seed} not in {self.seeds}")
        return hashlib.sha256(
            canonical_json(self._digest_material(seed))
        ).hexdigest()

    def points(self) -> List[Tuple["ExperimentSpec", int, str]]:
        """All (spec, seed, digest) points of this experiment, seed order."""
        return [(self, seed, self.point_digest(seed)) for seed in self.seeds]

    def with_stack(self, stack: str) -> "ExperimentSpec":
        """Same experiment on another frontend stack, named accordingly."""
        return dataclasses.replace(
            self,
            deployment=dataclasses.replace(self.deployment, stack=stack),
            name=f"{self.name}/{stack}" if self.name else stack,
        )


def stack_sweep(base: ExperimentSpec, stacks: Sequence[str]) -> List[ExperimentSpec]:
    """One spec per stack, sharing base's workload, faults and seeds."""
    return [base.with_stack(stack) for stack in stacks]
