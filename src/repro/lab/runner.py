"""Parallel point execution: fan experiment points out to worker processes.

Every (spec, seed) point is a pure function of its spec, so points can run
in any order, in any process, and must produce byte-identical artifacts
either way — `tests/test_lab.py` holds the runner to that.  The execution
strategy is:

* ``jobs <= 1`` — run in-process, serially (the reference behaviour);
* ``jobs > 1`` — a :class:`repro.dist.executor.LocalPoolExecutor` (the
  shared executor plane, multiprocessing start method pinned to
  ``spawn``) with one simulation per worker task.  Workers receive the
  spec as canonical JSON (cheap to pickle, independent of import state)
  and return plain dict artifacts.
* any point whose worker crashes or errors is retried **once**, serially
  in the parent — a deterministic failure then reproduces with a clean
  traceback instead of a dead pool.

``run_sweep`` layers the content-addressed store on top: cached points
skip simulation entirely, fresh results are persisted as canonical JSON.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..dist import executor as dist_executor

from ..ebs import EbsDeployment, VirtualDisk
from ..faults import IoHangMonitor, TimedFault
from ..metrics.stats import LatencyStats
from ..sim import MS
from ..workloads import FioJob, FioSpec, IoRecord, replay
from .results import SweepResult
from .spec import ExperimentSpec, canonical_json
from .store import ResultStore
from .telemetry import (
    CACHED,
    FAILED,
    RETRIED,
    SIMULATED,
    PointEvent,
    ProgressFn,
    RunTelemetry,
)

#: Simulated-time slack past the workload horizon for in-flight I/Os.
DRAIN_NS = 100 * MS

#: Environment knob: default worker count for sweeps and benches.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial).

    Zero, negative and non-integer values are rejected here, with the
    offending value in the message — not silently clamped, and never
    handed onward for a worker pool to choke on.
    """
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if jobs < 1:
        raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


# ----------------------------------------------------------------------
# Point execution (pure: spec + seed -> artifact dict)
# ----------------------------------------------------------------------
def execute_point(
    spec: ExperimentSpec,
    seed: int,
    observe: Optional[Callable[..., None]] = None,
) -> Dict[str, Any]:
    """Simulate one point and return its JSON-ready result artifact.

    The artifact contains only values derived from the simulation (never
    wall-clock readings), so the same point always yields the same bytes
    under :func:`repro.lab.spec.canonical_json`.

    ``observe(deployment, vd)`` is called after the deployment and
    virtual disk are built but before any I/O is issued — the in-process
    hook `repro.scenario` records traces through.  Hooks are local
    closures, so observed points always run in the calling process
    (``run_sweep``'s worker path never passes one); drill points
    (upgrade/rebuild) run their own fleet loop and refuse the hook
    rather than silently never calling it.
    """
    if spec.upgrade is not None:
        if observe is not None:
            raise ValueError("upgrade drill points cannot be observed")
        # Control-plane drills replace the plain workload entirely.  Lazy
        # import: repro.control imports repro.lab.spec, so the module-level
        # direction must stay lab <- control.
        from ..control.drill import execute_upgrade_point

        return execute_upgrade_point(spec, seed)
    if spec.rebuild is not None:
        if observe is not None:
            raise ValueError("rebuild drill points cannot be observed")
        # Same lazy-import rule: lab <- rebuild only inside the dispatch.
        from ..rebuild.drill import execute_rebuild_point

        return execute_rebuild_point(spec, seed)
    dep = EbsDeployment(dataclasses.replace(spec.deployment, seed=seed))
    host = dep.compute_host_names()[0]
    vd = VirtualDisk(dep, "lab-vd0", host, spec.vd_size_mb * 1024 * 1024)
    monitor = IoHangMonitor(dep.sim, threshold_ns=spec.hang_threshold_ns)
    if observe is not None:
        observe(dep, vd)
    plane = None
    if spec.telemetry is not None:
        # Lazy import: repro.telemetry is optional equipment for a point,
        # and keeping it out of the worker's import path when unused keeps
        # the plain artifact bytes untouched by the new subsystem.
        from ..telemetry.plane import TelemetryPlane

        plane = TelemetryPlane(
            dep,
            interval_ns=spec.telemetry.interval_ns,
            slo_ns=spec.telemetry.slo_ns,
            relative_accuracy=spec.telemetry.relative_accuracy,
        )
        plane.watch_vd(vd)
        monitor.on_hang = plane.on_hang
    for fault in spec.faults:
        TimedFault(fault.build(), fault.start_ns, fault.end_ns).schedule(
            dep.sim, dep.topology
        )

    w = spec.workload
    # Hang checks fire one threshold after issue; only pay for that window
    # when a fault schedule can actually produce hangs.
    until = spec.until_ns
    if until is None:
        until = w.horizon_ns + DRAIN_NS
        if spec.faults:
            until += spec.hang_threshold_ns

    if plane is not None:
        plane.start(until_ns=until)

    latency = LatencyStats("lab")
    issued = completed = failed = bytes_moved = 0
    #: Measurement window for rate metrics: issue horizon for closed-loop
    #: fio, last completion for paced/replayed workloads (excludes the
    #: idle tail of the drain window either way).
    duration_ns = 0

    if w.mode == "fio":
        job = FioJob(
            dep.sim,
            vd,
            FioSpec(
                block_sizes=w.block_sizes,
                iodepth=w.iodepth,
                read_fraction=w.read_fraction,
                runtime_ns=w.runtime_ns,
                pattern=w.pattern,
                name="lab",
            ),
            on_issue=monitor.watch,
        )
        job.start()
        dep.run(until_ns=until)
        issued, completed, failed = job.issues, job.completed, job.failed
        bytes_moved, latency = job.bytes_moved, job.latency
        duration_ns = job.result().duration_ns
    elif w.mode == "isolated":
        span = vd.size_bytes - w.size_bytes
        if span < 0:
            raise ValueError(
                f"isolated I/O of {w.size_bytes}B exceeds VD of {vd.size_bytes}B"
            )

        def finish(io) -> None:
            nonlocal completed, failed, bytes_moved, duration_ns
            duration_ns = dep.sim.now
            if io.trace is not None and io.trace.ok:
                completed += 1
                bytes_moved += io.size_bytes
                latency.record(io.trace.total_ns)
            else:
                failed += 1

        def issue(i: int) -> None:
            offset = (i * w.size_bytes) % span if span > 0 else 0
            offset -= offset % 4096
            op = vd.write if w.kind == "write" else vd.read
            monitor.watch(op(offset, w.size_bytes, finish))

        for i in range(w.count):
            dep.sim.schedule(i * w.gap_ns, issue, i)
        issued = w.count
        dep.run(until_ns=until)
    else:  # trace
        records = [IoRecord(*row) for row in w.records]
        result = replay(
            dep.sim, vd, records, time_scale=w.time_scale, size_scale=w.size_scale,
            on_each=monitor.note_completion, on_issue=monitor.watch,
        )
        dep.run(until_ns=until)
        issued, completed, failed = result.issued, result.completed, result.failed
        latency = result.latency
        bytes_moved = result.issued_bytes
        duration_ns = min(dep.sim.now, w.horizon_ns + DRAIN_NS)

    ok_traces = dep.collector.completed()
    component_ns = {
        c: sum(t.components[c] for t in ok_traces) for c in ("sa", "fn", "bn", "ssd")
    }
    artifact = {
        "schema": 1,
        "digest": spec.point_digest(seed),
        "name": spec.name,
        "stack": spec.deployment.stack,
        "seed": seed,
        "workload_mode": w.mode,
        "issued": issued,
        "completed": completed,
        "failed": failed,
        "hangs": monitor.hangs,
        "watched": monitor.watched,
        "bytes_moved": bytes_moved,
        "duration_ns": duration_ns,
        "sim_ns": dep.sim.now,
        "events": dep.sim.events_processed,
        "latency_ns": list(latency.samples),
        "component_ns": component_ns,
        "component_count": len(ok_traces),
    }
    if plane is not None:
        artifact["telemetry"] = plane.summary()
    return artifact


def _simulate_point(spec_json: str, seed: int) -> Dict[str, Any]:
    """Worker entry point: rebuild the spec from JSON and execute."""
    return execute_point(ExperimentSpec.from_json(spec_json), seed)


# ----------------------------------------------------------------------
# Generic parallel map with crash retry
# ----------------------------------------------------------------------
def map_parallel(
    fn: Callable[..., Any],
    argslist: Sequence[Tuple],
    jobs: Optional[int] = None,
    on_result: Optional[Callable[[int, str, float, Any], None]] = None,
) -> List[Any]:
    """Run ``fn(*args)`` for every args tuple, ``jobs`` at a time.

    Results come back in input order.  ``on_result(index, status, wall_s,
    result)`` streams completions as they happen.  Tasks whose worker
    dies or raises are retried once, serially, in the calling process;
    a second failure propagates the real exception.  If a task cannot
    reach a worker at all (e.g. ``fn`` is not picklable under the spawn
    start method), it runs in the parent instead, so callers never need
    a platform case-split.

    Execution is delegated to the shared executor plane
    (:class:`repro.dist.executor.LocalPoolExecutor`); this wrapper keeps
    the lab's historical status vocabulary and serial fast path.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    n = len(argslist)
    results: List[Any] = [None] * n

    def run_serial(index: int, status: str) -> None:
        t0 = time.perf_counter()
        try:
            results[index] = fn(*argslist[index])
        except Exception as exc:
            if on_result is not None:
                on_result(index, FAILED, time.perf_counter() - t0, exc)
            raise
        if on_result is not None:
            on_result(index, status, time.perf_counter() - t0, results[index])

    if jobs <= 1 or n <= 1:
        for i in range(n):
            run_serial(i, SIMULATED)
        return results

    #: Executor statuses -> the lab's historical point vocabulary.
    status_map = {
        dist_executor.DONE: SIMULATED,
        dist_executor.RETRIED: RETRIED,
        dist_executor.FAILED: FAILED,
    }

    def relay(index: int, status: str, wall_s: float, result: Any) -> None:
        if on_result is not None:
            on_result(index, status_map[status], wall_s, result)

    pool = dist_executor.LocalPoolExecutor(min(jobs, n))
    try:
        results = pool.map(fn, argslist, on_result=relay)
    finally:
        pool.shutdown()
    return results


# ----------------------------------------------------------------------
# Sweeps: store-aware fan-out over experiment points
# ----------------------------------------------------------------------
def run_sweep(
    specs: Union[ExperimentSpec, Sequence[ExperimentSpec]],
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Resolve every point of every spec: cache, else simulate, persist.

    Returns a :class:`repro.lab.results.SweepResult` carrying the spec
    list, the per-point artifacts (in spec x seed order) and the run's
    :class:`~repro.lab.telemetry.RunTelemetry`.
    """
    if isinstance(specs, ExperimentSpec):
        specs = [specs]
    specs = list(specs)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))

    points = [point for spec in specs for point in spec.points()]
    telemetry = RunTelemetry(total=len(points), jobs=jobs)
    artifacts: Dict[str, Dict[str, Any]] = {}

    def label(spec: ExperimentSpec, seed: int) -> str:
        return f"{spec.name} seed={seed}"

    def emit(event: PointEvent) -> None:
        telemetry.note(event)
        if progress is not None:
            progress(event)

    todo: List[Tuple[int, ExperimentSpec, int, str]] = []
    for index, (spec, seed, digest) in enumerate(points):
        cached = store.get_artifact(digest) if (store is not None and not force) else None
        if cached is not None:
            artifacts[digest] = cached
            emit(PointEvent(index, len(points), label(spec, seed), CACHED))
        else:
            todo.append((index, spec, seed, digest))

    def on_result(pos: int, status: str, wall_s: float, result: Any) -> None:
        index, spec, seed, _digest = todo[pos]
        error = str(result) if status == FAILED else ""
        emit(PointEvent(index, len(points), label(spec, seed), status, wall_s, error))

    try:
        fresh = map_parallel(
            _simulate_point,
            [(spec.to_json(), seed) for _, spec, seed, _ in todo],
            jobs=jobs,
            on_result=on_result,
        )
    except Exception as exc:
        # The failing point has already been retried serially; surface it
        # with enough context to re-run by hand.
        telemetry.finish()
        raise RuntimeError(f"sweep failed after retry: {exc}") from exc

    for (index, spec, seed, digest), artifact in zip(todo, fresh):
        if store is not None:
            store.put(digest, canonical_json(artifact))
        artifacts[digest] = artifact

    telemetry.finish()
    ordered = [artifacts[digest] for _, _, digest in points]
    return SweepResult(specs=specs, points=points, artifacts=ordered, telemetry=telemetry)
