"""Content-addressed on-disk result store.

Artifacts are keyed by the sha256 digest of their point's spec material
(deployment + workload + faults + seed + package version — see
:meth:`repro.lab.spec.ExperimentSpec.point_digest`), so a cache entry can
never be served for a simulation that would produce different bytes: any
change to the spec or to the package version changes the key.  Payloads
are the canonical-JSON artifact bytes, written atomically (tmp + rename)
so a killed sweep never leaves a torn entry behind.

Layout (git- and CAS-style fan-out to keep directories small)::

    <root>/ab/abcdef...0123.json
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Iterator, Optional

#: Default store location, relative to the working directory: next to the
#: benchmark outputs so `benchmarks/out/` stays the one artifact tree.
DEFAULT_STORE_DIR = os.path.join("benchmarks", "out", "lab")

_HEX = set("0123456789abcdef")


class ResultStore:
    """Digest-addressed artifact cache with hit/miss telemetry."""

    def __init__(self, root: str = DEFAULT_STORE_DIR):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> str:
        if len(digest) < 8 or not set(digest) <= _HEX:
            raise ValueError(f"not a hex digest: {digest!r}")
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    def get(self, digest: str) -> Optional[bytes]:
        """Raw artifact bytes for a digest, or None on a miss."""
        try:
            with open(self.path_for(digest), "rb") as handle:
                payload = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def get_artifact(self, digest: str) -> Optional[Dict[str, Any]]:
        payload = self.get(digest)
        return None if payload is None else json.loads(payload)

    def put(self, digest: str, payload: bytes) -> str:
        """Atomically persist one artifact; returns its path."""
        path = self.path_for(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def has(self, digest: str) -> bool:
        return os.path.exists(self.path_for(digest))

    # ------------------------------------------------------------------
    def digests(self) -> Iterator[str]:
        """All digests currently stored (any order)."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for entry in sorted(os.listdir(shard_dir)):
                if entry.endswith(".json") and not entry.startswith("."):
                    yield entry[: -len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultStore {self.root!r} entries={len(self)} "
            f"hits={self.hits} misses={self.misses}>"
        )
