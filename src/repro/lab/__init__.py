"""The experiment lab: declarative specs, parallel execution, cached results.

The repo's deterministic :class:`~repro.ebs.EbsDeployment` makes every
experiment point — one (deployment, workload, faults, seed) tuple — a pure
function of its spec.  This package turns that property into throughput,
the way SimBricks-style orchestration layers do for modular simulators:

* :mod:`repro.lab.spec` — hashable :class:`ExperimentSpec` (deployment x
  workload x fault schedule x seeds) with canonical JSON and per-point
  content digests;
* :mod:`repro.lab.runner` — process-pool fan-out, one simulation per
  worker, crash retry, proven byte-identical to serial execution;
* :mod:`repro.lab.store` — content-addressed on-disk artifact cache so
  re-running a sweep only simulates changed points;
* :mod:`repro.lab.results` — cross-seed aggregation (pooled latency
  distributions, component breakdowns, replicate mean ± 95% CI);
* :mod:`repro.lab.telemetry` — streamed per-point progress + run counters;
* :mod:`repro.lab.cli` — the ``python -m repro sweep`` subcommand.

Quick start::

    from repro.lab import ExperimentSpec, WorkloadSpec, run_sweep, stack_sweep

    base = ExperimentSpec(workload=WorkloadSpec(iodepth=16), seeds=(0, 1, 2, 3))
    result = run_sweep(stack_sweep(base, ["luna", "solar"]), jobs=4)
    for agg in result.aggregates():
        print(agg.name, agg.latency.summary_us())
"""

from .results import SpecAggregate, SweepResult, aggregate
from .runner import (
    DRAIN_NS,
    JOBS_ENV,
    default_jobs,
    execute_point,
    map_parallel,
    run_sweep,
)
from .spec import (
    FAULT_KINDS,
    ExperimentSpec,
    FaultSpec,
    WorkloadSpec,
    canonical_json,
    stack_sweep,
)
from .store import DEFAULT_STORE_DIR, ResultStore
from .telemetry import PointEvent, RunTelemetry, printer

__all__ = [
    "ExperimentSpec",
    "WorkloadSpec",
    "FaultSpec",
    "FAULT_KINDS",
    "stack_sweep",
    "canonical_json",
    "run_sweep",
    "execute_point",
    "map_parallel",
    "default_jobs",
    "JOBS_ENV",
    "DRAIN_NS",
    "ResultStore",
    "DEFAULT_STORE_DIR",
    "SweepResult",
    "SpecAggregate",
    "aggregate",
    "RunTelemetry",
    "PointEvent",
    "printer",
]
