"""Sweep run telemetry: per-point progress events and whole-run counters.

The runner is silent by itself; callers (the CLI, tests, benches) attach a
progress callback and receive one :class:`PointEvent` as each point
resolves — from the cache, from a worker process, or from the serial
retry path.  The counters double as the observable contract the tests
assert on ("a cache hit skips simulation").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

#: How a point was satisfied.
CACHED = "cached"
SIMULATED = "simulated"
RETRIED = "retried"  # simulated, but only after a worker crash/failure
FAILED = "failed"

ProgressFn = Callable[["PointEvent"], None]


@dataclass(frozen=True)
class PointEvent:
    """One point's resolution, streamed as it happens."""

    index: int  # position in the sweep's point list
    total: int
    label: str  # e.g. "table2/luna seed=91"
    status: str  # CACHED | SIMULATED | RETRIED | FAILED
    wall_s: float = 0.0
    error: str = ""

    def render(self) -> str:
        timing = f" {self.wall_s:.2f}s" if self.status != CACHED else ""
        suffix = f": {self.error}" if self.error else ""
        return f"[{self.index + 1}/{self.total}] {self.label} {self.status}{timing}{suffix}"


@dataclass
class RunTelemetry:
    """Aggregated counters for one sweep invocation."""

    total: int = 0
    cache_hits: int = 0
    simulated: int = 0
    retries: int = 0
    failures: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    events: List[PointEvent] = field(default_factory=list)
    _t0: float = field(default_factory=time.perf_counter, repr=False)

    def note(self, event: PointEvent) -> None:
        self.events.append(event)
        if event.status == CACHED:
            self.cache_hits += 1
        elif event.status == SIMULATED:
            self.simulated += 1
        elif event.status == RETRIED:
            self.simulated += 1
            self.retries += 1
        elif event.status == FAILED:
            self.failures += 1
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown point status {event.status!r}")

    def finish(self) -> None:
        self.wall_s = time.perf_counter() - self._t0

    @property
    def resolved(self) -> int:
        return self.cache_hits + self.simulated

    def summary(self) -> str:
        parts = [
            f"{self.total} points",
            f"{self.simulated} simulated",
            f"{self.cache_hits} cached",
        ]
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.failures:
            parts.append(f"{self.failures} FAILED")
        parts.append(f"jobs={self.jobs}")
        parts.append(f"wall {self.wall_s:.2f}s")
        return ", ".join(parts)

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "failures": self.failures,
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 3),
        }


def printer(stream=None) -> ProgressFn:
    """A progress callback that prints each event as it arrives."""

    def emit(event: PointEvent) -> None:
        print(event.render(), file=stream, flush=True)

    return emit
