"""The ``python -m repro sweep`` subcommand.

Turns command-line flags into an :class:`ExperimentSpec` per stack, fans
the (stack x seed) points through the parallel runner with the
content-addressed store underneath, and prints per-point progress plus an
aggregated table.  Typical usage::

    python -m repro sweep --stacks solar,luna --seeds 0-3 --jobs 4
    python -m repro sweep --fault switch_blackhole:spine:0.5@10 --stacks luna
    REPRO_JOBS=8 python -m repro sweep --force

Re-running an identical sweep is served from ``benchmarks/out/lab`` (or
``--store DIR``) without simulating anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Sequence

from ..ebs import DeploymentSpec, STACKS
from ..sim import MS
from .results import SpecAggregate
from .runner import default_jobs, run_sweep
from .spec import FAULT_KINDS, ExperimentSpec, FaultSpec, WorkloadSpec, stack_sweep
from .store import DEFAULT_STORE_DIR, ResultStore
from .telemetry import printer

#: Shorthand fault names accepted on the command line.
_FAULT_ALIASES = {
    "blackhole": "switch_blackhole",
    "drop": "random_drop",
    "reboot": "switch_reboot",
    "failure": "switch_failure",
    "port": "tor_port_failure",
}


def parse_seeds(text: str) -> List[int]:
    """``"0-3"`` or ``"1,5,9"`` (mixes allowed: ``"0-2,7"``)."""
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part[1:]:  # allow a leading minus sign
            lo_text, hi_text = part.rsplit("-", 1)
            lo, hi = int(lo_text), int(hi_text)
            if hi < lo:
                raise ValueError(f"descending seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return seeds


def parse_fault(text: str) -> FaultSpec:
    """``kind:target:param@start_ms[-end_ms]`` (times in milliseconds)."""
    spec_part, _, when = text.partition("@")
    fields = spec_part.split(":")
    if not 1 <= len(fields) <= 4:
        raise ValueError(f"bad fault {text!r}")
    kind = _FAULT_ALIASES.get(fields[0], fields[0])
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {fields[0]!r}; one of {FAULT_KINDS} "
            f"(or shorthand {tuple(_FAULT_ALIASES)})"
        )
    kwargs = {"kind": kind}
    if len(fields) > 1 and fields[1]:
        kwargs["target"] = fields[1]
    if len(fields) > 2 and fields[2]:
        kwargs["param"] = float(fields[2])
    if len(fields) > 3 and fields[3]:
        kwargs["index"] = int(fields[3])
    if when:
        start_text, _, end_text = when.partition("-")
        kwargs["start_ns"] = int(float(start_text) * MS)
        if end_text:
            kwargs["end_ns"] = int(float(end_text) * MS)
    return FaultSpec(**kwargs)


def add_sweep_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    p = sub.add_parser(
        "sweep",
        help="parallel (stack x seed) experiment sweep with result caching",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--stacks", default="solar,luna",
                   help="comma list of stacks (default: solar,luna)")
    p.add_argument("--seeds", default="0-3",
                   help="seed list/range, e.g. 0-3 or 1,5,9 (default: 0-3)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: $REPRO_JOBS or 1)")
    p.add_argument("--workload", choices=("fio", "isolated"), default="fio")
    p.add_argument("--iodepth", type=int, default=16)
    p.add_argument("--runtime-ms", type=float, default=12.0,
                   help="fio issue window in simulated ms (default: 12)")
    p.add_argument("--block-sizes-kb", default="4,16",
                   help="comma list of block sizes in KB (default: 4,16)")
    p.add_argument("--read-fraction", type=float, default=0.3)
    p.add_argument("--pattern", choices=("random", "sequential", "zipfian"),
                   default="random")
    p.add_argument("--count", type=int, default=200,
                   help="isolated mode: number of paced I/Os")
    p.add_argument("--size-kb", type=int, default=4,
                   help="isolated mode: I/O size in KB")
    p.add_argument("--fault", action="append", default=[], metavar="SPEC",
                   help="kind:target:param@start_ms[-end_ms]; repeatable "
                        "(e.g. blackhole:spine:0.5@10)")
    p.add_argument("--vd-size-mb", type=int, default=256)
    p.add_argument("--name", default="sweep")
    p.add_argument("--store", default=DEFAULT_STORE_DIR,
                   help=f"result store directory (default: {DEFAULT_STORE_DIR})")
    p.add_argument("--no-store", action="store_true",
                   help="do not read or write the result store")
    p.add_argument("--force", action="store_true",
                   help="re-simulate even when cached results exist")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit a machine-readable JSON summary")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress lines")
    return p


def build_specs(args: argparse.Namespace) -> List[ExperimentSpec]:
    stacks = [s.strip() for s in args.stacks.split(",") if s.strip()]
    for stack in stacks:
        if stack not in STACKS:
            raise ValueError(f"unknown stack {stack!r}; one of {STACKS}")
    if args.workload == "fio":
        workload = WorkloadSpec(
            mode="fio",
            block_sizes=tuple(
                int(float(kb) * 1024) for kb in args.block_sizes_kb.split(",")
            ),
            iodepth=args.iodepth,
            read_fraction=args.read_fraction,
            runtime_ns=int(args.runtime_ms * MS),
            pattern=args.pattern,
        )
    else:
        workload = WorkloadSpec(
            mode="isolated", count=args.count, size_bytes=args.size_kb * 1024
        )
    base = ExperimentSpec(
        deployment=DeploymentSpec(
            compute_racks=1, compute_hosts_per_rack=2,
            storage_racks=2, storage_hosts_per_rack=4,
        ),
        workload=workload,
        faults=tuple(parse_fault(f) for f in args.fault),
        seeds=tuple(parse_seeds(args.seeds)),
        name=args.name,
        vd_size_mb=args.vd_size_mb,
    )
    return stack_sweep(base, stacks)


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def cmd_sweep(args: argparse.Namespace) -> int:
    try:
        specs = build_specs(args)
        jobs = args.jobs if args.jobs is not None else default_jobs()
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    store = None if args.no_store else ResultStore(args.store)
    progress = None if (args.quiet or args.as_json) else printer()
    try:
        result = run_sweep(
            specs,
            jobs=jobs,
            store=store,
            force=args.force,
            progress=progress,
        )
    except RuntimeError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 1

    aggregates = result.aggregates()
    if args.as_json:
        print(json.dumps({
            "telemetry": result.telemetry.as_dict(),
            "store": store.root if store else None,
            "digests": result.digests(),
            "experiments": [
                {
                    "name": agg.name,
                    "stack": agg.stack,
                    "seeds": list(agg.seeds),
                    "completed": agg.completed,
                    "failed": agg.failed,
                    "hangs": agg.hangs,
                    "mean_us": round(agg.mean_us_ci[0], 2),
                    "ci95_us": round(agg.mean_us_ci[1], 2),
                    "p50_us": round(agg.latency.p(50) / 1000, 2),
                    "p99_us": round(agg.latency.p(99) / 1000, 2),
                    "iops": round(agg.iops, 1),
                    "components_us": {
                        k: round(v, 2) for k, v in agg.component_means_us.items()
                    },
                }
                for agg in aggregates
            ],
        }, indent=2, sort_keys=True))
    else:
        print()
        print(_format_table(
            SpecAggregate.ROW_HEADERS, [agg.row() for agg in aggregates]
        ))
        print()
        print(result.telemetry.summary())
        if store is not None:
            print(f"artifacts: {store.root} ({store.writes} written, "
                  f"{store.hits} cache hits)")
    return 0
