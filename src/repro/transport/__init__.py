"""Frontend-network transport stacks: kernel TCP, LUNA, RDMA, raw UDP."""

from .base import RpcExchange, RpcHandler, RpcTransport, TransportError
from .kernel_tcp import KernelTcpTransport, kernel_tcp_config
from .luna import LunaTransport, luna_config
from .rdma import RdmaTransport, rdma_config
from .stream import Message, StreamConfig, StreamConnection, StreamTransport
from .udp import DatagramSocket

__all__ = [
    "RpcTransport",
    "RpcExchange",
    "RpcHandler",
    "TransportError",
    "StreamTransport",
    "StreamConnection",
    "StreamConfig",
    "Message",
    "KernelTcpTransport",
    "kernel_tcp_config",
    "LunaTransport",
    "luna_config",
    "RdmaTransport",
    "rdma_config",
    "DatagramSocket",
]
