"""Kernel TCP stack model — the legacy baseline (§2.3, §3.1).

Characteristics captured (calibrated against Table 1 and Figure 6):

* large fixed stack traversal latency (syscall, interrupt, softirq,
  socket locking) on every message in both directions;
* high per-packet *and* per-byte CPU cost (two copies), limiting a core
  to roughly 12 Gbps of 4KB RPC traffic;
* Linux's 200ms minimum RTO with exponential backoff — the mechanism
  that turns a silent path blackhole into a multi-second I/O hang;
* standard 1500B MTU segmentation with TSO/GSO-sized CPU charging.
"""

from __future__ import annotations

from ..host.cpu import CpuComplex
from ..net.endpoint import Endpoint
from ..profiles import Profiles
from ..sim.engine import Simulator
from .stream import StreamConfig, StreamTransport


def kernel_tcp_config(profiles: Profiles) -> StreamConfig:
    p = profiles.kernel_tcp
    net = profiles.network
    return StreamConfig(
        proto="tcp",
        mss=net.standard_mtu_bytes - 52,
        tso_bytes=16 * 1024,
        header_overhead=net.header_overhead_bytes,
        stack_latency_ns=p.stack_latency_ns,
        per_packet_cpu_ns=p.per_packet_cpu_ns,
        per_byte_cpu_ns=p.per_byte_cpu_ns,
        min_rto_ns=p.min_rto_ns,
        max_rto_ns=p.max_rto_ns,
        init_cwnd=p.init_cwnd_packets,
    )


class KernelTcpTransport(StreamTransport):
    """The kernel TCP RPC transport bound to one host."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        cpu: CpuComplex,
        profiles: Profiles,
    ):
        super().__init__(sim, endpoint, cpu, kernel_tcp_config(profiles))
