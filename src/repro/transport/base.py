"""Common RPC transport interface.

The SA speaks "storage RPC" (Figure 1) to block servers over whichever FN
stack a deployment uses.  Every stack implements the same client/server
contract:

* client: ``call(server, payload, request_bytes, response_hint, on_done)``;
* server: ``register_handler(fn)`` where ``fn(payload, rpc, respond)``
  eventually calls ``respond(response_bytes, response_payload)``.

``payload`` is the EBS-level object (a block write, a read request...).
Packets carry object references to their exchange — a standard simulation
shortcut; all *timing* still comes from real packet traversal of the
fabric, and all *loss* from real drops.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

_rpc_ids = itertools.count(1)

#: Called when an RPC finishes: (exchange, ok).
RpcCallback = Callable[["RpcExchange", bool], None]
#: Server handler: (payload, exchange, respond).
RpcHandler = Callable[[Any, "RpcExchange", Callable[[int, Any], None]], None]


@dataclass
class RpcExchange:
    """One request/response exchange, shared by client and server sides."""

    client: str
    server: str
    payload: Any
    request_bytes: int
    response_hint: int  # expected response size (client-side bookkeeping)
    on_done: RpcCallback
    rpc_id: int = field(default_factory=lambda: next(_rpc_ids))
    issued_ns: int = 0
    #: Set when the request message is fully delivered to the server.
    request_delivered_ns: Optional[int] = None
    #: Set when the server calls respond().
    responded_ns: Optional[int] = None
    completed_ns: Optional[int] = None
    response_payload: Any = None
    response_bytes: int = 0
    ok: bool = False
    error: str = ""
    #: Server-side annotations (storage_ns, ssd_ns, ...) for trace splitting.
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def rpc_latency_ns(self) -> int:
        if self.completed_ns is None:
            raise ValueError(f"rpc {self.rpc_id} not complete")
        return self.completed_ns - self.issued_ns

    @property
    def server_time_ns(self) -> int:
        """Time the exchange spent inside the server handler."""
        if self.request_delivered_ns is None or self.responded_ns is None:
            return 0
        return self.responded_ns - self.request_delivered_ns

    @property
    def network_time_ns(self) -> int:
        """RPC latency minus server handler time: the FN component."""
        return self.rpc_latency_ns - self.server_time_ns


class TransportError(RuntimeError):
    """Raised on transport misuse (unknown server, double respond, ...)."""


class RpcTransport:
    """Base class with the server-registry plumbing shared by all stacks."""

    #: Packet proto tag; subclasses override ("tcp", "luna", "rdma", "solar").
    proto = "rpc"

    def __init__(self, name: str):
        self.name = name
        self._handler: Optional[RpcHandler] = None
        self.rpcs_sent = 0
        self.rpcs_completed = 0
        self.rpcs_failed = 0

    def register_handler(self, handler: RpcHandler) -> None:
        if self._handler is not None:
            raise TransportError(f"{self.name}: handler already registered")
        self._handler = handler

    def _dispatch(self, exchange: RpcExchange, respond: Callable[[int, Any], None]) -> None:
        if self._handler is None:
            raise TransportError(
                f"{self.name}: inbound RPC {exchange.rpc_id} but no handler registered"
            )
        self._handler(exchange.payload, exchange, respond)

    # -- client API (implemented by subclasses) -------------------------
    def call(
        self,
        server: str,
        payload: Any,
        request_bytes: int,
        response_hint: int,
        on_done: RpcCallback,
    ) -> RpcExchange:
        raise NotImplementedError
