"""Reliable byte-stream transport engine.

This is the packet-level machinery shared by the kernel-TCP and LUNA
models (and, with different constants, the RDMA RC model): segmentation
to MSS, cumulative ACKs, fast retransmit on duplicate ACKs, RTO with
exponential backoff, slow start + AIMD congestion control, and CPU cost
accounting per TSO-sized chunk.

The crucial *structural* property all stream stacks share — and the one
SOLAR abandons (§4.4) — is that each connection lives on **one fixed
5-tuple**: ECMP pins it to a single network path, so a blackhole on that
path stalls the connection until timers grind through retries.  Multi-path
escape is impossible without changing the connection's identity.

Simplifications (documented, and deliberately favourable to the
baselines): no 3-way handshake (production uses persistent connections),
pure ACKs are not CPU-charged, and retransmissions bypass the CPU charge.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional

from ..host.cpu import CpuComplex
from ..net.endpoint import Endpoint
from ..net.packet import Packet
from ..sim.engine import Simulator
from ..sim.events import Event
from .base import RpcCallback, RpcExchange, RpcTransport

_msg_ids = itertools.count(1)

ACK_BYTES = 64


@dataclass(frozen=True)
class StreamConfig:
    """Constants of one stream stack flavour."""

    proto: str
    mss: int
    tso_bytes: int
    header_overhead: int
    stack_latency_ns: int
    per_packet_cpu_ns: int
    per_byte_cpu_ns: float
    min_rto_ns: int
    max_rto_ns: int
    init_cwnd: int
    max_cwnd: int = 256
    connections_per_pair: int = 8
    dupack_threshold: int = 3
    max_retries: int = 120
    base_port: int = 10_000
    server_port: int = 5_000

    def __post_init__(self) -> None:
        if self.mss <= 0 or self.tso_bytes < self.mss:
            raise ValueError(f"bad segmentation config: mss={self.mss}, tso={self.tso_bytes}")


@dataclass(slots=True)
class Message:
    """One direction's application message (request or response)."""

    exchange: RpcExchange
    kind: str  # "req" | "resp"
    size: int
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    # --- sender state ---
    produced: int = 0  # bytes whose CPU cost has been paid
    next_offset: int = 0  # next new byte to put on the wire
    cum_acked: int = 0
    retries: int = 0
    failed: bool = False
    # --- receiver state ---
    received: Dict[int, int] = field(default_factory=dict)  # offset -> length
    cum_received: int = 0
    delivered: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"empty message for rpc {self.exchange.rpc_id}")


class _Side:
    """Per-direction sender state of one connection."""

    __slots__ = (
        "endpoint", "cpu", "transport", "queue", "current", "cwnd",
        "ssthresh", "rto_ns", "rto_event", "dupacks", "recover_until",
    )

    def __init__(self, endpoint: Endpoint, cpu: CpuComplex, transport: "StreamTransport"):
        self.endpoint = endpoint
        self.cpu = cpu
        self.transport = transport
        self.queue: Deque[Message] = deque()
        self.current: Optional[Message] = None
        self.cwnd: float = 0.0  # set from config at connection start
        self.ssthresh: float = 0.0
        self.rto_ns: int = 0
        self.rto_event: Optional[Event] = None
        self.dupacks = 0
        self.recover_until = -1


class StreamConnection:
    """A single bidirectional connection on a fixed 5-tuple."""

    def __init__(
        self,
        sim: Simulator,
        config: StreamConfig,
        client: "StreamTransport",
        server: "StreamTransport",
        sport: int,
    ):
        self.sim = sim
        self.config = config
        self.sport = sport
        self.dport = config.server_port
        self.sides: Dict[str, _Side] = {
            client.endpoint.name: _Side(client.endpoint, client.cpu, client),
            server.endpoint.name: _Side(server.endpoint, server.cpu, server),
        }
        for side in self.sides.values():
            side.cwnd = float(config.init_cwnd)
            side.ssthresh = float(config.max_cwnd)
            side.rto_ns = config.min_rto_ns
        self._client_name = client.endpoint.name
        self._server_name = server.endpoint.name

    def _peer(self, name: str) -> str:
        return self._server_name if name == self._client_name else self._client_name

    def _ports(self, sender: str) -> tuple[int, int]:
        """(sport, dport) seen from the sender — mirrored for the server
        so both directions hash consistently as one 'connection'."""
        if sender == self._client_name:
            return self.sport, self.dport
        return self.dport, self.sport

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_message(self, sender: str, message: Message) -> None:
        side = self.sides[sender]
        side.queue.append(message)
        self._pump(sender)

    def queued_messages(self, sender: str) -> int:
        side = self.sides[sender]
        return len(side.queue) + (1 if side.current else 0)

    def _pump(self, sender: str) -> None:
        side = self.sides[sender]
        if side.current is not None or not side.queue:
            return
        side.current = side.queue.popleft()
        side.dupacks = 0
        side.recover_until = -1
        # TX stack traversal, then start producing chunks.
        self.sim.schedule(self.config.stack_latency_ns, self._produce_chunk, sender)

    def _produce_chunk(self, sender: str) -> None:
        side = self.sides[sender]
        msg = side.current
        if msg is None or msg.failed:
            return
        if msg.produced >= msg.size:
            return
        chunk = min(self.config.tso_bytes, msg.size - msg.produced)
        cost = self.config.per_packet_cpu_ns + self.config.per_byte_cpu_ns * chunk
        core = side.transport.pick_core(self)
        core.submit(int(cost), self._chunk_ready, sender, chunk)

    def _chunk_ready(self, sender: str, chunk: int) -> None:
        side = self.sides[sender]
        msg = side.current
        if msg is None or msg.failed:
            return
        msg.produced += chunk
        self._try_send(sender)
        self._produce_chunk(sender)  # pipeline the next chunk's CPU

    def _try_send(self, sender: str) -> None:
        side = self.sides[sender]
        msg = side.current
        if msg is None or msg.failed:
            return
        window = int(side.cwnd) * self.config.mss
        while (
            msg.next_offset < msg.produced
            and msg.next_offset - msg.cum_acked < window
        ):
            length = min(self.config.mss, msg.size - msg.next_offset)
            self._emit(sender, msg, msg.next_offset, length)
            msg.next_offset += length
        if msg.next_offset > msg.cum_acked:
            self._arm_rto(sender)

    def _emit(self, sender: str, msg: Message, offset: int, length: int) -> None:
        side = self.sides[sender]
        delay = side.transport.emit_delay_ns(self)
        if delay > 0:
            self.sim.schedule(delay, self._emit_now, sender, msg, offset, length)
        else:
            self._emit_now(sender, msg, offset, length)

    def _emit_now(self, sender: str, msg: Message, offset: int, length: int) -> None:
        side = self.sides[sender]
        sport, dport = self._ports(sender)
        packet = Packet(
            src=sender,
            dst=self._peer(sender),
            sport=sport,
            dport=dport,
            proto=self.config.proto,
            size_bytes=length + self.config.header_overhead,
            headers={
                "stream": {
                    "conn": self,
                    "msg": msg,
                    "offset": offset,
                    "length": length,
                }
            },
        )
        side.endpoint.send(packet)

    # ------------------------------------------------------------------
    # Receiving data
    # ------------------------------------------------------------------
    def on_data(self, packet: Packet) -> None:
        header = packet.header("stream")
        msg: Message = header["msg"]
        receiver = packet.dst
        offset, length = header["offset"], header["length"]
        if offset not in msg.received:
            msg.received[offset] = length
            while msg.cum_received in msg.received:
                msg.cum_received += msg.received[msg.cum_received]
        self._send_ack(receiver, msg)
        if msg.cum_received >= msg.size and not msg.delivered:
            msg.delivered = True
            self._deliver(receiver, msg)

    def _send_ack(self, receiver: str, msg: Message) -> None:
        side = self.sides[receiver]
        sport, dport = self._ports(receiver)
        ack = Packet(
            src=receiver,
            dst=self._peer(receiver),
            sport=sport,
            dport=dport,
            proto=self.config.proto,
            size_bytes=ACK_BYTES,
            headers={"stream_ack": {"conn": self, "msg": msg, "cum": msg.cum_received}},
        )
        side.endpoint.send(ack)

    def _deliver(self, receiver: str, msg: Message) -> None:
        """Charge RX CPU + stack latency, then hand up to the transport."""
        side = self.sides[receiver]
        chunks = (msg.size + self.config.tso_bytes - 1) // self.config.tso_bytes
        cost = int(
            chunks * self.config.per_packet_cpu_ns
            + self.config.per_byte_cpu_ns * msg.size
        )
        core = side.transport.pick_core(self)
        done = core.submit(cost)
        self.sim.schedule_at(
            done + self.config.stack_latency_ns,
            side.transport._deliver_message,
            self,
            msg,
        )

    # ------------------------------------------------------------------
    # ACK processing / loss recovery
    # ------------------------------------------------------------------
    def on_ack(self, packet: Packet) -> None:
        header = packet.header("stream_ack")
        msg: Message = header["msg"]
        sender = packet.dst  # the ACK's destination is the data sender
        side = self.sides[sender]
        if side.current is not msg:
            return  # stale ACK for an already-completed message
        cum = header["cum"]
        if cum > msg.cum_acked:
            msg.cum_acked = cum
            side.dupacks = 0
            side.rto_ns = self.config.min_rto_ns
            msg.retries = 0
            self._grow_cwnd(side)
            if msg.cum_acked >= msg.size:
                self._sender_done(sender, msg)
                return
            self._arm_rto(sender)
            self._try_send(sender)
        else:
            side.dupacks += 1
            if (
                side.dupacks >= self.config.dupack_threshold
                and msg.cum_acked >= side.recover_until
            ):
                # Fast retransmit: resend the missing segment, halve cwnd.
                side.recover_until = msg.next_offset
                side.ssthresh = max(2.0, side.cwnd / 2)
                side.cwnd = side.ssthresh
                side.dupacks = 0
                length = min(self.config.mss, msg.size - msg.cum_acked)
                self._emit(sender, msg, msg.cum_acked, length)

    def _grow_cwnd(self, side: _Side) -> None:
        if side.cwnd < side.ssthresh:
            side.cwnd += 1.0  # slow start
        else:
            side.cwnd += 1.0 / side.cwnd  # congestion avoidance
        side.cwnd = min(side.cwnd, float(self.config.max_cwnd))

    def _sender_done(self, sender: str, msg: Message) -> None:
        side = self.sides[sender]
        self._cancel_rto(side)
        side.current = None
        self._pump(sender)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_rto(self, sender: str) -> None:
        side = self.sides[sender]
        self._cancel_rto(side)
        side.rto_event = self.sim.schedule(side.rto_ns, self._on_rto, sender)

    def _cancel_rto(self, side: _Side) -> None:
        if side.rto_event is not None:
            side.rto_event.cancel()
            side.rto_event = None

    def _on_rto(self, sender: str) -> None:
        side = self.sides[sender]
        side.rto_event = None
        msg = side.current
        if msg is None or msg.failed:
            return
        msg.retries += 1
        if msg.retries > self.config.max_retries:
            msg.failed = True
            side.current = None
            side.transport._message_failed(self, msg)
            self._pump(sender)
            return
        # Timeout: collapse the window, back off, resend from the hole.
        side.ssthresh = max(2.0, side.cwnd / 2)
        side.cwnd = 1.0
        side.rto_ns = min(side.rto_ns * 2, self.config.max_rto_ns)
        length = min(self.config.mss, msg.size - msg.cum_acked)
        self._emit(sender, msg, msg.cum_acked, length)
        self._arm_rto(sender)


class StreamTransport(RpcTransport):
    """Client+server endpoint of a stream stack on one host."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        cpu: CpuComplex,
        config: StreamConfig,
    ):
        super().__init__(f"{config.proto}@{endpoint.name}")
        self.sim = sim
        self.endpoint = endpoint
        self.cpu = cpu
        self.config = config
        self.proto = config.proto
        self._pools: Dict[str, list[StreamConnection]] = {}
        self._rr = itertools.count()
        endpoint.on_proto(config.proto, self._on_packet)

    # ------------------------------------------------------------------
    def emit_delay_ns(self, conn: StreamConnection) -> int:
        """Extra per-packet NIC delay hook (see the RDMA scalability
        penalty in :mod:`repro.transport.rdma`).  Default: none."""
        return 0

    def pick_core(self, conn: StreamConnection):
        """LUNA pins each connection to a core (share-nothing, §3.2);
        the kernel model steers to the least-loaded core (softirq-ish)."""
        if self.config.proto == "luna":
            return self.cpu.pinned(f"conn/{conn.sport}")
        return self.cpu.least_loaded()

    @property
    def active_connections(self) -> int:
        return sum(len(pool) for pool in self._pools.values())

    def _connection_to(self, server: "StreamTransport") -> StreamConnection:
        pool = self._pools.setdefault(server.endpoint.name, [])
        if len(pool) < self.config.connections_per_pair:
            conn = StreamConnection(
                self.sim, self.config, self, server,
                sport=self.config.base_port + len(pool),
            )
            pool.append(conn)
            return conn
        # Prefer the connection with the least queued work.
        start = next(self._rr) % len(pool)
        rotated = pool[start:] + pool[:start]
        return min(rotated, key=lambda c: c.queued_messages(self.endpoint.name))

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def call(
        self,
        server: "StreamTransport",
        payload: Any,
        request_bytes: int,
        response_hint: int,
        on_done: RpcCallback,
    ) -> RpcExchange:
        exchange = RpcExchange(
            client=self.endpoint.name,
            server=server.endpoint.name,
            payload=payload,
            request_bytes=request_bytes,
            response_hint=response_hint,
            on_done=on_done,
            issued_ns=self.sim.now,
        )
        self.rpcs_sent += 1
        conn = self._connection_to(server)
        conn.send_message(self.endpoint.name, Message(exchange, "req", request_bytes))
        return exchange

    # ------------------------------------------------------------------
    # Packet demux
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if "stream_ack" in packet.headers:
            packet.header("stream_ack")["conn"].on_ack(packet)
        else:
            packet.header("stream")["conn"].on_data(packet)

    # ------------------------------------------------------------------
    # Message completion hooks (called by connections)
    # ------------------------------------------------------------------
    def _deliver_message(self, conn: StreamConnection, msg: Message) -> None:
        exchange = msg.exchange
        if msg.kind == "req":
            exchange.request_delivered_ns = self.sim.now

            def respond(response_bytes: int, response_payload: Any) -> None:
                if exchange.responded_ns is not None:
                    raise RuntimeError(f"rpc {exchange.rpc_id} responded twice")
                exchange.responded_ns = self.sim.now
                exchange.response_bytes = response_bytes
                exchange.response_payload = response_payload
                conn.send_message(
                    self.endpoint.name, Message(exchange, "resp", response_bytes)
                )

            self._dispatch(exchange, respond)
        else:
            exchange.completed_ns = self.sim.now
            exchange.ok = True
            self.rpcs_completed += 1
            exchange.on_done(exchange, True)

    def _message_failed(self, conn: StreamConnection, msg: Message) -> None:
        exchange = msg.exchange
        exchange.completed_ns = self.sim.now
        exchange.ok = False
        exchange.error = f"{msg.kind} message exhausted retries"
        self.rpcs_failed += 1
        exchange.on_done(exchange, False)
