"""Plain datagram socket — the raw substrate SOLAR builds on (§4).

A :class:`DatagramSocket` is fire-and-forget: no connection, no ordering,
no retransmission.  Reliability is SOLAR's job, per-block (§4.4: "each
network packet is a self-contained storage data block").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..net.endpoint import Endpoint
from ..net.packet import Packet
from ..sim.engine import Simulator

PacketHandler = Callable[[Packet], None]


class DatagramSocket:
    """Unreliable datagram I/O on one endpoint for one protocol tag."""

    def __init__(self, sim: Simulator, endpoint: Endpoint, proto: str = "solar"):
        self.sim = sim
        self.endpoint = endpoint
        self.proto = proto
        self._port_handlers: Dict[int, PacketHandler] = {}
        self._default: Optional[PacketHandler] = None
        endpoint.on_proto(proto, self._demux)

    def bind(self, dport: int, handler: PacketHandler) -> None:
        if dport in self._port_handlers:
            raise ValueError(f"{self.endpoint.name}: port {dport} already bound")
        self._port_handlers[dport] = handler

    def bind_default(self, handler: PacketHandler) -> None:
        self._default = handler

    def send(
        self,
        dst: str,
        sport: int,
        dport: int,
        size_bytes: int,
        headers: Optional[Dict[str, Dict[str, Any]]] = None,
        payload: Optional[bytes] = None,
    ) -> Packet:
        """Build and emit one datagram; returns it (for tests/inspection)."""
        packet = Packet(
            src=self.endpoint.name,
            dst=dst,
            sport=sport,
            dport=dport,
            proto=self.proto,
            size_bytes=size_bytes,
            headers=headers or {},
            payload=payload,
        )
        self.endpoint.send(packet)
        return packet

    def _demux(self, packet: Packet) -> None:
        handler = self._port_handlers.get(packet.dport, self._default)
        if handler is None:
            # Unbound port: silently dropped, like a real UDP stack without
            # a listener (no ICMP in the fabric model).
            return
        handler(packet)
