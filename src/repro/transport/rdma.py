"""RoCEv2 RC (RDMA) model — the hardware comparator (§3.1, Figures 14/15).

The transport itself is nearly free: tiny fixed latency, zero per-packet
CPU, NIC-side segmentation at 4KB MTU.  What the paper holds against it
for the FN is captured structurally:

* **connection scalability** — RNIC on-chip caches thrash beyond ~5K QPs
  and "overall throughput went down quickly" (§3.1).  The model charges a
  growing per-packet NIC delay once the (real + hinted) connection count
  exceeds the cliff.  Experiments emulating a loaded storage node set
  :attr:`RdmaTransport.extra_connections_hint` instead of building
  thousands of live peers.
* **no SA offload** — RDMA only moves bytes; the SA still runs on the
  DPU CPU and the data still crosses the internal PCIe twice
  (Figure 10b).  Those costs are charged by the agent layer, not here.
"""

from __future__ import annotations

from ..host.cpu import CpuComplex
from ..net.endpoint import Endpoint
from ..profiles import Profiles, bytes_time_ns
from ..sim.engine import Simulator
from .stream import StreamConfig, StreamConnection, StreamTransport


def rdma_config(profiles: Profiles) -> StreamConfig:
    p = profiles.rdma
    net = profiles.network
    return StreamConfig(
        proto="rdma",
        mss=4096,
        tso_bytes=64 * 1024,
        header_overhead=net.header_overhead_bytes,
        stack_latency_ns=p.stack_latency_ns,
        per_packet_cpu_ns=p.per_packet_cpu_ns,
        per_byte_cpu_ns=0.0,
        min_rto_ns=p.min_rto_ns,
        max_rto_ns=p.max_rto_ns,
        init_cwnd=p.init_cwnd_packets,
    )


class RdmaTransport(StreamTransport):
    """RC-semantics RDMA transport with the connection-scalability cliff."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        cpu: CpuComplex,
        profiles: Profiles,
    ):
        super().__init__(sim, endpoint, cpu, rdma_config(profiles))
        self.connection_cliff = profiles.rdma.connection_cliff
        self.cliff_floor = profiles.rdma.cliff_floor
        #: Experiments may pretend this many additional QPs are active.
        self.extra_connections_hint = 0
        #: Serial-resource horizon modelling the QP-cache-thrashed NIC.
        self._nic_free_ns = 0

    def _throughput_factor(self) -> float:
        total = self.active_connections + self.extra_connections_hint
        if total <= self.connection_cliff:
            return 1.0
        # Throughput degrades with the QP-cache miss ratio, floored.
        return max(self.cliff_floor, self.connection_cliff / total)

    def emit_delay_ns(self, conn: StreamConnection) -> int:
        """Past the cliff the NIC behaves like a serial resource whose
        per-packet service time is wire/factor: packets queue behind each
        other inside the NIC before reaching the link."""
        factor = self._throughput_factor()
        if factor >= 1.0 or not self.endpoint.uplinks:
            return 0
        line_gbps = self.endpoint.uplinks[0].gbps
        wire = bytes_time_ns(self.config.mss, line_gbps)
        service = int(wire / factor)
        now = self.sim.now
        start = max(now, self._nic_free_ns)
        self._nic_free_ns = start + service
        # The link itself still charges `wire`; only the excess is added.
        return max(0, (start - now) + (service - wire))
