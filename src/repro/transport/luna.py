"""LUNA: the user-space TCP stack (§3).

LUNA keeps TCP's reliable byte-stream semantics but moves the whole stack
into user space with an mTCP-like run-to-completion model, extended with
(§3.2):

* zero-copy across SA and RPC (no per-byte CPU cost on the datapath);
* lock-free, share-nothing threading — each connection is pinned to one
  core (see :meth:`StreamTransport.pick_core`);
* NIC segmentation offload (TSO/GSO) — CPU is charged per burst, not per
  wire packet.

What LUNA does *not* change is the transport architecture: one connection
= one 5-tuple = one ECMP path, with timer-driven recovery.  That is the
§3.3 lesson ("LUNA has no option but to wait for the long recovery") that
motivates SOLAR's multi-path design.
"""

from __future__ import annotations

from ..host.cpu import CpuComplex
from ..net.endpoint import Endpoint
from ..profiles import Profiles
from ..sim.engine import Simulator
from .stream import StreamConfig, StreamTransport


def luna_config(profiles: Profiles, jumbo: bool = False) -> StreamConfig:
    """LUNA's stream constants.  ``jumbo=True`` reproduces the §4.7
    footnote experiment ("we also test LUNA with jumbo frame and the
    result is the same due to the inevitable CPU handover and states")."""
    p = profiles.luna
    net = profiles.network
    mss = (net.mtu_bytes if jumbo else net.standard_mtu_bytes) - 52
    return StreamConfig(
        proto="luna",
        mss=mss,
        tso_bytes=16 * 1024,
        header_overhead=net.header_overhead_bytes,
        stack_latency_ns=p.stack_latency_ns,
        per_packet_cpu_ns=p.per_packet_cpu_ns,
        per_byte_cpu_ns=p.per_byte_cpu_ns,
        min_rto_ns=p.min_rto_ns,
        max_rto_ns=p.max_rto_ns,
        init_cwnd=p.init_cwnd_packets,
    )


class LunaTransport(StreamTransport):
    """The LUNA RPC transport bound to one host."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        cpu: CpuComplex,
        profiles: Profiles,
        jumbo: bool = False,
    ):
        super().__init__(sim, endpoint, cpu, luna_config(profiles, jumbo))
