"""The SOLAR storage agent: a thin control shell around the offloaded
datapath (Figures 12/13).

Unlike :class:`repro.agent.sa_software.SoftwareSA`, nothing per-byte runs
here: the SA's role shrinks to NVMe/QoS admission, extent splitting (the
Block step, whose table also lives in hardware), kicking the per-extent
SOLAR RPCs, and final trace assembly.  All heavy lifting is inside
:class:`repro.core.solar.SolarClient` / the FPGA offload.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.solar import SolarClient, SolarRpc
from ..host.server import ComputeServer
from ..metrics.trace import IoTrace, TraceCollector
from ..profiles import BLOCK_SIZE, Profiles
from ..sim.engine import Simulator
from ..storage.block import DataBlock, split_into_blocks
from ..storage.qos import QosTable
from ..storage.segment_table import SegmentTable
from .base import IoRequest, StorageAgent


class SolarSA(StorageAgent):
    """Storage agent backed by the SOLAR stack."""

    def __init__(
        self,
        sim: Simulator,
        server: ComputeServer,
        client: SolarClient,
        segment_table: SegmentTable,
        qos_table: QosTable,
        profiles: Profiles,
        collector: Optional[TraceCollector] = None,
    ):
        self.sim = sim
        self.server = server
        self.client = client
        self.segment_table = segment_table
        self.qos_table = qos_table
        self.profiles = profiles
        self.collector = collector
        self.ios_submitted = 0
        self.ios_completed = 0
        self.ios_failed = 0

    # ------------------------------------------------------------------
    def submit(self, io: IoRequest) -> None:
        self.ios_submitted += 1
        if io.trace is None:
            io.trace = IoTrace(io.io_id, io.kind, io.size_bytes, self.sim.now)
        self.server.nvme.submit(io, self._after_nvme)

    def _after_nvme(self, io: IoRequest) -> None:
        delay = self.qos_table.admit(io.vd_id, self.sim.now, io.size_bytes)
        if delay > 0:
            self.sim.schedule(delay, self._dispatch, io)
        else:
            self._dispatch(io)

    # ------------------------------------------------------------------
    def _blocks_for(self, io: IoRequest, start_lba: int, count: int) -> List[DataBlock]:
        blocks = split_into_blocks(io.vd_id, start_lba * BLOCK_SIZE, count * BLOCK_SIZE)
        if io.data is None:
            return blocks
        rel = (start_lba - io.start_lba) * BLOCK_SIZE
        return [
            block.with_data(
                io.data[rel + i * BLOCK_SIZE : rel + i * BLOCK_SIZE + block.size_bytes]
                .ljust(block.size_bytes, b"\0")
            )
            for i, block in enumerate(blocks)
        ]

    def _dispatch(self, io: IoRequest) -> None:
        extents = self.segment_table.extents(io.vd_id, io.start_lba, io.num_blocks)
        state: Dict[str, object] = {
            "pending": len(extents),
            "ok": True,
            "critical": None,
        }
        for extent in extents:
            done = lambda rpc, ok, i=io, s=state: self._rpc_done(i, s, rpc, ok)
            if io.kind == "write":
                blocks = self._blocks_for(io, extent.start_lba, extent.num_blocks)
                self.client.submit_write(extent, blocks, done)
            else:
                self.client.submit_read(extent, done)

    def _rpc_done(self, io: IoRequest, state: Dict[str, object], rpc: SolarRpc, ok: bool) -> None:
        state["pending"] = int(state["pending"]) - 1  # type: ignore[arg-type]
        state["ok"] = bool(state["ok"]) and ok
        critical: Optional[SolarRpc] = state["critical"]  # type: ignore[assignment]
        if critical is None or rpc.completed_ns >= critical.completed_ns:
            state["critical"] = rpc
        if state["pending"] == 0:
            self._finish(io, state)

    def _finish(self, io: IoRequest, state: Dict[str, object]) -> None:
        rpc: SolarRpc = state["critical"]  # type: ignore[assignment]
        ok = bool(state["ok"])
        trace = io.trace
        if ok and rpc.first_sent_ns is not None:
            storage_ns = rpc.storage_ns
            ssd_ns = min(rpc.ssd_ns, storage_ns)
            fn_ns = max(0, (rpc.completed_ns - rpc.first_sent_ns) - storage_ns)
            trace.add("sa", max(0, rpc.first_sent_ns - trace.submit_ns))
            trace.add("fn", fn_ns)
            trace.add("bn", max(0, storage_ns - ssd_ns))
            trace.add("ssd", ssd_ns)
            trace.add("sa", max(0, self.sim.now - rpc.completed_ns))
            self.ios_completed += 1
        else:
            self.ios_failed += 1
        if not rpc.integrity_ok:
            trace.error = "integrity-mismatch"
        trace.complete(self.sim.now, ok, trace.error)
        if self.collector is not None:
            self.collector.record(trace)
        self.server.nvme.complete(io, lambda _io: io.on_complete(io))
