"""Storage-agent interface: the hypervisor function that turns guest I/O
into network transitions (§2.2, Figure 2)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..metrics.trace import IoTrace
from ..profiles import BLOCK_SIZE

_io_ids = itertools.count(1)


@dataclass
class IoRequest:
    """One guest I/O operation against a virtual disk."""

    kind: str  # "read" | "write"
    vd_id: str
    offset_bytes: int
    size_bytes: int
    on_complete: Callable[["IoRequest"], None]
    data: Optional[bytes] = None  # real payload for integrity experiments
    io_id: int = field(default_factory=lambda: next(_io_ids))
    trace: Optional[IoTrace] = None

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"bad I/O kind {self.kind!r}")
        if self.size_bytes <= 0:
            raise ValueError(f"non-positive I/O size: {self.size_bytes}")
        if self.offset_bytes % BLOCK_SIZE:
            raise ValueError(f"offset {self.offset_bytes} not block-aligned")
        if self.data is not None:
            if self.kind != "write":
                raise ValueError("payload only valid on writes")
            if len(self.data) != self.size_bytes:
                raise ValueError(
                    f"payload length {len(self.data)} != size {self.size_bytes}"
                )

    @property
    def start_lba(self) -> int:
        return self.offset_bytes // BLOCK_SIZE

    @property
    def num_blocks(self) -> int:
        return (self.size_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE


class StorageAgent:
    """Common interface of the software SA and the SOLAR SA."""

    #: I/O counters every SA maintains (subclasses set these in __init__);
    #: the class-level zeros make ``scrape_counters`` total on any agent.
    ios_submitted: int = 0
    ios_completed: int = 0
    ios_failed: int = 0

    def submit(self, io: IoRequest) -> None:
        raise NotImplementedError

    def scrape_counters(self) -> Dict[str, int]:
        """Monitoring scrape surface: this agent's I/O counters.

        The telemetry plane (`repro.telemetry`) turns these into
        per-node gauges; agents never push metrics themselves.
        """
        return {
            "ios_submitted": self.ios_submitted,
            "ios_completed": self.ios_completed,
            "ios_failed": self.ios_failed,
        }
