"""Storage agents: the hypervisor function converting guest I/O into
network transitions (software SA and SOLAR SA), plus the storage RPC
service on block servers."""

from .base import IoRequest, StorageAgent
from .rpc import (
    RPC_OVERHEAD_BYTES,
    StorageRpcPayload,
    StorageRpcResult,
    StorageRpcServer,
    WRITE_ACK_BYTES,
)
from .sa_software import SoftwareSA
from .sa_solar import SolarSA

__all__ = [
    "IoRequest",
    "StorageAgent",
    "SoftwareSA",
    "SolarSA",
    "StorageRpcPayload",
    "StorageRpcResult",
    "StorageRpcServer",
    "RPC_OVERHEAD_BYTES",
    "WRITE_ACK_BYTES",
]
