"""The software storage agent (Figure 2): the SA of the kernel-TCP, LUNA
and RDMA generations.

Everything on the data path runs on CPU: QoS admission, segment-table
lookups, per-block CRC, optional encryption, framing, and completion
processing.  §3.3's lesson — "SA is becoming the bottleneck ... it has to
perform heavy computations (e.g., CRC, Crypto) and per-I/O table lookups
in CPU" — falls out of these costs plus core queueing under load.

In bare-metal hosting the SA runs on the ALI-DPU's small CPU and the data
crosses the DPU's internal PCIe twice in each direction (Figure 10a/b);
both costs are charged here when the compute server carries a DPU.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from ..host.cpu import CpuComplex
from ..host.server import ComputeServer
from ..metrics.trace import IoTrace, TraceCollector
from ..profiles import BLOCK_SIZE, Profiles
from ..sim.engine import Simulator
from ..storage.block import DataBlock, split_into_blocks
from ..storage.crypto import BlockCipher
from ..storage.qos import QosTable
from ..storage.segment_table import SegmentTable
from ..transport.base import RpcExchange
from ..transport.stream import StreamTransport
from .base import IoRequest, StorageAgent
from .rpc import StorageRpcPayload


class SoftwareSA(StorageAgent):
    """SA running in software on the compute server's infrastructure CPU."""

    def __init__(
        self,
        sim: Simulator,
        server: ComputeServer,
        transport: StreamTransport,
        server_transports: Mapping[str, StreamTransport],
        segment_table: SegmentTable,
        qos_table: QosTable,
        profiles: Profiles,
        cipher: Optional[BlockCipher] = None,
        collector: Optional[TraceCollector] = None,
        cpu: Optional["CpuComplex"] = None,
    ):
        self.sim = sim
        self.server = server
        #: The CPU complex charged for SA work.  Shared with the FN stack
        #: (they compete for the same cores — Table 1's "consumed cores").
        self.cpu = cpu if cpu is not None else server.infra_cpu
        self.transport = transport
        self.server_transports = server_transports
        self.segment_table = segment_table
        self.qos_table = qos_table
        self.profiles = profiles
        self.cipher = cipher
        self.collector = collector
        self.ios_submitted = 0
        self.ios_completed = 0
        self.ios_failed = 0

    # ------------------------------------------------------------------
    def submit(self, io: IoRequest) -> None:
        self.ios_submitted += 1
        if io.trace is None:
            io.trace = IoTrace(io.io_id, io.kind, io.size_bytes, self.sim.now)
        self.server.nvme.submit(io, self._after_nvme)

    def _after_nvme(self, io: IoRequest) -> None:
        delay = self.qos_table.admit(io.vd_id, self.sim.now, io.size_bytes)
        if delay > 0:
            self.sim.schedule(delay, self._issue, io)
        else:
            self._issue(io)

    # ------------------------------------------------------------------
    def _issue_cost_ns(self, io: IoRequest) -> int:
        sa = self.profiles.sa
        cost = sa.per_io_ns
        if self.server.hosting == "vm":
            cost += sa.vm_virtio_ns * 6 // 10
        if io.kind == "write":
            cost += sa.per_block_ns * io.num_blocks
            cost += int(sa.crc_per_byte_ns * io.size_bytes)
            if sa.encrypt:
                cost += int(sa.crypto_per_byte_ns * io.size_bytes)
        return cost

    def _completion_cost_ns(self, io: IoRequest) -> int:
        sa = self.profiles.sa
        cost = sa.per_io_ns // 2
        if self.server.hosting == "vm":
            cost += sa.vm_virtio_ns * 4 // 10
        if io.kind == "read":
            cost += sa.per_block_ns * io.num_blocks
            cost += int(sa.crc_per_byte_ns * io.size_bytes)
            if sa.encrypt:
                cost += int(sa.crypto_per_byte_ns * io.size_bytes)
        return cost

    def _charge_pcie(self, size_bytes: int, then: Callable[[], None]) -> None:
        """Bare-metal: the datapath crosses the DPU's internal PCIe twice
        (Figure 10a); VM hosting pays nothing here."""
        dpu = self.server.dpu
        if dpu is None:
            then()
            return
        dpu.internal_pcie.transfer(
            size_bytes, lambda: dpu.internal_pcie.transfer(size_bytes, then)
        )

    def _issue(self, io: IoRequest) -> None:
        core = self.cpu.least_loaded()
        done = core.submit(self._issue_cost_ns(io))
        if io.kind == "write":
            self.sim.schedule_at(
                done, self._charge_pcie, io.size_bytes, lambda: self._send(io)
            )
        else:
            self.sim.schedule_at(done, self._send, io)

    # ------------------------------------------------------------------
    def _build_blocks(
        self, io: IoRequest, start_lba: int, count: int
    ) -> tuple[List[DataBlock], List[int]]:
        """Blocks (possibly carrying encrypted payload) and plaintext CRCs."""
        blocks = split_into_blocks(io.vd_id, start_lba * BLOCK_SIZE, count * BLOCK_SIZE)
        if io.data is None:
            return blocks, [b.crc for b in blocks]
        rel = (start_lba - io.start_lba) * BLOCK_SIZE
        out: List[DataBlock] = []
        crcs: List[int] = []
        for i, block in enumerate(blocks):
            chunk = io.data[rel + i * BLOCK_SIZE : rel + i * BLOCK_SIZE + block.size_bytes]
            chunk = chunk.ljust(block.size_bytes, b"\0")
            crcs.append(block.with_data(chunk).crc)
            if self.cipher is not None:
                chunk = self.cipher.encrypt(block.vd_id, block.lba, chunk)
            out.append(block.with_data(chunk))
        return out, crcs

    def _send(self, io: IoRequest) -> None:
        io.trace.mark("sa_sent", self.sim.now)
        extents = self.segment_table.extents(io.vd_id, io.start_lba, io.num_blocks)
        state: Dict[str, object] = {
            "pending": len(extents),
            "ok": True,
            "critical": None,
        }
        for extent in extents:
            blocks, crcs = self._build_blocks(io, extent.start_lba, extent.num_blocks)
            payload = StorageRpcPayload(io.kind, extent, blocks, crcs)
            server_transport = self.server_transports[extent.segment.block_server]
            self.transport.call(
                server_transport,
                payload,
                payload.request_bytes(),
                payload.response_bytes(),
                lambda exchange, ok, i=io, s=state: self._rpc_done(i, s, exchange, ok),
            )

    def _rpc_done(self, io: IoRequest, state: Dict[str, object], exchange: RpcExchange, ok: bool) -> None:
        state["pending"] = int(state["pending"]) - 1  # type: ignore[arg-type]
        state["ok"] = bool(state["ok"]) and ok
        critical: Optional[RpcExchange] = state["critical"]  # type: ignore[assignment]
        if critical is None or exchange.completed_ns >= critical.completed_ns:
            state["critical"] = exchange
        if state["pending"] == 0:
            self._complete(io, state)

    def _complete(self, io: IoRequest, state: Dict[str, object]) -> None:
        exchange: RpcExchange = state["critical"]  # type: ignore[assignment]
        ok = bool(state["ok"])

        def after_pcie() -> None:
            core = self.cpu.least_loaded()
            core.submit(self._completion_cost_ns(io), self._finish, io, exchange, ok)

        if io.kind == "read":
            self._charge_pcie(io.size_bytes, after_pcie)
        else:
            after_pcie()

    def _finish(self, io: IoRequest, exchange: RpcExchange, ok: bool) -> None:
        trace = io.trace
        sent_ns = trace.marks.get("sa_sent", trace.submit_ns)
        if ok:
            storage_ns = int(exchange.meta.get("storage_ns", 0))
            ssd_ns = min(int(exchange.meta.get("ssd_ns", 0)), storage_ns)
            trace.add("fn", max(0, exchange.network_time_ns))
            trace.add("bn", max(0, storage_ns - ssd_ns))
            trace.add("ssd", ssd_ns)
            trace.add("sa", max(0, sent_ns - trace.submit_ns))
            trace.add("sa", max(0, self.sim.now - exchange.completed_ns))
            self.ios_completed += 1
        else:
            self.ios_failed += 1
        trace.complete(self.sim.now, ok, "" if ok else exchange.error)
        if self.collector is not None:
            self.collector.record(trace)
        self.server.nvme.complete(io, lambda _io: io.on_complete(io))
