"""Storage RPC payloads and the block-server-side RPC service.

This is the "Storage RPC" box of Figure 1 for the stream stacks (kernel
TCP, LUNA, RDMA): the SA packs an extent's blocks into one RPC ("RPC may
combine multiple blocks in a transition", §2.2), and the block server's
service unpacks it, drives replication/reads, and responds with timing
metadata for trace attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..sim.engine import Simulator
from ..storage.block import DataBlock
from ..storage.block_server import BlockServer
from ..storage.chunk_server import ChunkReply
from ..storage.segment_table import Extent
from ..transport.base import RpcExchange, RpcTransport

#: Fixed RPC framing overhead on the wire (headers + extent descriptor).
RPC_OVERHEAD_BYTES = 160
WRITE_ACK_BYTES = 96


@dataclass
class StorageRpcPayload:
    """What the SA sends to a block server in one RPC."""

    kind: str  # "write" | "read"
    extent: Extent
    blocks: List[DataBlock]
    crcs: List[int] = field(default_factory=list)

    def request_bytes(self) -> int:
        if self.kind == "write":
            return RPC_OVERHEAD_BYTES + sum(b.size_bytes for b in self.blocks)
        return RPC_OVERHEAD_BYTES

    def response_bytes(self) -> int:
        if self.kind == "write":
            return WRITE_ACK_BYTES
        return RPC_OVERHEAD_BYTES + sum(b.size_bytes for b in self.blocks)


@dataclass
class StorageRpcResult:
    """Block-server response payload."""

    ok: bool
    blocks: List[ChunkReply] = field(default_factory=list)


class StorageRpcServer:
    """Serves storage RPCs arriving over a stream transport."""

    def __init__(self, sim: Simulator, transport: RpcTransport, block_server: BlockServer):
        self.sim = sim
        self.transport = transport
        self.block_server = block_server
        transport.register_handler(self._handle)
        self.writes = 0
        self.reads = 0

    # ------------------------------------------------------------------
    def _handle(self, payload: StorageRpcPayload, exchange: RpcExchange, respond) -> None:
        started_ns = self.sim.now
        if payload.kind == "write":
            self.writes += 1
            self._handle_write(payload, exchange, respond, started_ns)
        elif payload.kind == "read":
            self.reads += 1
            self._handle_read(payload, exchange, respond, started_ns)
        else:
            raise ValueError(f"unknown storage RPC kind {payload.kind!r}")

    def _handle_write(self, payload, exchange, respond, started_ns: int) -> None:
        state = {"pending": len(payload.blocks), "ok": True, "ssd_ns": 0}

        def one_done(ok: bool, replies: List[ChunkReply]) -> None:
            state["pending"] -= 1
            state["ok"] = state["ok"] and ok
            state["ssd_ns"] = max(
                state["ssd_ns"],
                max((r.service_ns for r in replies if isinstance(r, ChunkReply)), default=0),
            )
            if state["pending"] == 0:
                exchange.meta["storage_ns"] = self.sim.now - started_ns
                exchange.meta["ssd_ns"] = state["ssd_ns"]
                respond(WRITE_ACK_BYTES, StorageRpcResult(state["ok"]))

        crcs = payload.crcs or [b.crc for b in payload.blocks]
        for block, crc in zip(payload.blocks, crcs):
            self.block_server.handle_write(payload.extent.segment, block, crc, one_done)

    def _handle_read(self, payload, exchange, respond, started_ns: int) -> None:
        wanted = [
            DataBlock(payload.extent.segment.vd_id, payload.extent.start_lba + i)
            for i in range(payload.extent.num_blocks)
        ]
        state: Dict[str, object] = {"pending": len(wanted), "replies": []}

        def one_done(reply: ChunkReply) -> None:
            replies: List[ChunkReply] = state["replies"]  # type: ignore[assignment]
            replies.append(reply)
            state["pending"] = int(state["pending"]) - 1  # type: ignore[arg-type]
            if state["pending"] == 0:
                exchange.meta["storage_ns"] = self.sim.now - started_ns
                exchange.meta["ssd_ns"] = max(r.service_ns for r in replies)
                total = RPC_OVERHEAD_BYTES + sum(r.size_bytes for r in replies)
                respond(total, StorageRpcResult(True, replies))

        for block in wanted:
            self.block_server.handle_read(
                payload.extent.segment, block.vd_id, block.lba, block.size_bytes, one_done
            )
