"""SOLAR wire format: the packet *is* the block (§4.4-4.5).

A SOLAR datagram stacks, inside UDP:

    | RPC HDR | EBS HDR | payload (exactly one data block) | payload CRC |

The UDP source port is the path identifier (§4.5); the EBS header carries
the storage semantics (operation, VD, segment, LBA) that the hardware
pipeline parses *instead of* the CPU; the RPC header identifies the packet
within its (possibly multi-block) RPC.  Every packet is self-contained: a
receiver can process it with no reassembly state, in any arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Wire sizes of SOLAR's protocol headers (bytes).  The EBS+RPC headers
#: ride inside the generic L2-L4 overhead accounted by
#: ``NetworkProfile.header_overhead_bytes``.
RPC_HEADER_BYTES = 16
EBS_HEADER_BYTES = 40
CRC_TRAILER_BYTES = 4
ACK_PACKET_BYTES = 96  # headers + path condition + congestion feedback
READ_REQUEST_BYTES = 128  # headers + extent descriptor

#: SOLAR operation codes.
OP_WRITE_BLOCK = "write_block"
OP_WRITE_ACK = "write_ack"
OP_READ_REQUEST = "read_request"
OP_READ_BLOCK = "read_block"

VALID_OPS = (OP_WRITE_BLOCK, OP_WRITE_ACK, OP_READ_REQUEST, OP_READ_BLOCK)


@dataclass(frozen=True)
class EbsHeader:
    """Storage semantics embedded in the packet (Figure 12's 'EBS HDR')."""

    op: str
    vd_id: str
    segment_id: str
    lba: int
    block_bytes: int

    def __post_init__(self) -> None:
        if self.op not in VALID_OPS:
            raise ValueError(f"unknown EBS op {self.op!r}")
        if self.lba < 0 or self.block_bytes < 0:
            raise ValueError(f"bad EBS header: lba={self.lba}, bytes={self.block_bytes}")


@dataclass(frozen=True)
class RpcHeader:
    """Packet identity within its RPC (Figure 13's 'RPC ID | Pkt ID')."""

    rpc_id: int
    pkt_id: int
    total_pkts: int

    def __post_init__(self) -> None:
        if not 0 <= self.pkt_id < self.total_pkts:
            raise ValueError(
                f"pkt_id {self.pkt_id} out of range for {self.total_pkts} packets"
            )


def data_packet_bytes(block_bytes: int) -> int:
    """Wire payload size of a one-block data packet, excluding L2-L4."""
    return RPC_HEADER_BYTES + EBS_HEADER_BYTES + block_bytes + CRC_TRAILER_BYTES
