"""Explicit path probing with INT — the §4.5 roadmap item.

"There are indeed some cases in which the recovery is slow because
multiple paths go through the same failure points, and we plan to make
the path selection more explicit with INT probing."

A :class:`PathProber` periodically sends a tiny probe datagram down each
path of a :class:`~repro.core.multipath.MultipathManager`.  The server
echoes it, returning the forward path's INT records.  The prober then

* feeds each path's *probed queue depth* into selection (congested paths
  are deprioritized before they ever delay a data packet), and
* detects dead paths proactively: consecutive unanswered probes put the
  path on probation without burning data-packet timeouts.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..net.packet import Packet
from ..sim.engine import Simulator
from ..sim.events import Event
from ..transport.udp import DatagramSocket

PROBE_OP = "path_probe"
PROBE_ECHO_OP = "path_probe_echo"
PROBE_BYTES = 64

_probe_ids = itertools.count(1)


class PathProber:
    """Active prober for one (client, server) multipath set."""

    def __init__(
        self,
        sim: Simulator,
        socket: DatagramSocket,
        server: str,
        server_port: int,
        manager,
        interval_ns: int = 2_000_000,  # 2ms probe cadence
        lost_probe_limit: int = 3,
    ):
        self.sim = sim
        self.socket = socket
        self.server = server
        self.server_port = server_port
        self.manager = manager
        self.interval_ns = interval_ns
        self.lost_probe_limit = lost_probe_limit
        self.probes_sent = 0
        self.echoes_received = 0
        self.paths_failed_by_probe = 0
        self._outstanding: dict[int, tuple] = {}
        self._lost_streak: dict[int, int] = {}
        self._timer: Optional[Event] = None
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise RuntimeError("prober already running")
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        for path in self.manager.paths:
            self._probe_path(path)
        self._timer = self.sim.schedule(self.interval_ns, self._tick)

    def _probe_path(self, path) -> None:
        probe_id = next(_probe_ids)
        self.probes_sent += 1
        self._outstanding[probe_id] = (path, self.sim.now)
        self.socket.send(
            self.server,
            sport=path.path_id,
            dport=self.server_port,
            size_bytes=PROBE_BYTES,
            headers={"solar": {"op": PROBE_OP, "probe_id": probe_id,
                               "path_id": path.path_id, "prober": self}},
        )
        # A probe unanswered by the next tick counts as lost.
        self.sim.schedule(self.interval_ns, self._check_probe, probe_id)

    def _check_probe(self, probe_id: int) -> None:
        entry = self._outstanding.pop(probe_id, None)
        if entry is None:
            return  # echoed in time
        path, _sent = entry
        streak = self._lost_streak.get(path.path_id, 0) + 1
        self._lost_streak[path.path_id] = streak
        if streak >= self.lost_probe_limit and path.healthy(self.sim.now):
            # Proactive probation: no data packet had to time out.
            path.failed_until_ns = self.sim.now + self.manager.profile.path_probation_ns
            self.manager.path_shifts += 1
            self.paths_failed_by_probe += 1
            self._lost_streak[path.path_id] = 0

    # ------------------------------------------------------------------
    def on_echo(self, packet: Packet) -> None:
        header = packet.header("solar")
        entry = self._outstanding.pop(header["probe_id"], None)
        if entry is None:
            return  # late echo; already counted lost
        path, sent_ns = entry
        self.echoes_received += 1
        self._lost_streak[path.path_id] = 0
        rtt = self.sim.now - sent_ns
        path.srtt_ns = 0.875 * path.srtt_ns + 0.125 * rtt
        # Forward-path INT echoed by the server: worst queue defines the
        # path's probed congestion.
        records = header.get("int_echo", [])
        path.probed_queue_bytes = max((r.queue_bytes for r in records), default=0)
        # A healthy echo clears any pending probation early.
        if not path.healthy(self.sim.now):
            path.failed_until_ns = self.sim.now


def handle_probe(endpoint, packet: Packet) -> None:
    """Server-side probe echo: bounce the probe with its INT records."""
    header = packet.header("solar")
    echo = packet.reply_shell(PROBE_BYTES)
    echo.headers["solar"] = {
        "op": PROBE_ECHO_OP,
        "probe_id": header["probe_id"],
        "path_id": header["path_id"],
        "prober": header["prober"],
        "int_echo": list(packet.int_records),
    }
    endpoint.send(echo)
