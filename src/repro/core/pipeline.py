"""A P4-style match-action pipeline interpreter.

§4.6: "the data path of SA can be expressed with the P4 language and
executed on the P4-compatible pipeline."  This module makes that claim
executable: a :class:`Pipeline` is an ordered list of named stages, each
either a match-action step (table lookup keyed on header fields, applying
an action to the packet context) or a fixed-function step (CRC, SEC, DMA
descriptor generation).  The SOLAR SA datapath programs built in
:mod:`repro.core.dpu_offload` run on this interpreter.

Pipelines are *logic only*: they mutate a :class:`PipelineContext` and
take zero simulated time.  Timing (the fixed line-rate pipeline latency)
and faults are charged by the :class:`repro.host.fpga.FpgaDevice` that
hosts the pipeline; resources are declared per stage and summed into the
device budget (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..host.fpga import FpgaModuleSpec
from .tables import MatchActionTable


@dataclass
class PipelineContext:
    """Mutable per-packet state threaded through the stages."""

    fields: Dict[str, Any] = field(default_factory=dict)
    #: Set by a stage to drop the packet (with a reason) — remaining
    #: stages are skipped.
    dropped: Optional[str] = None
    #: Trace of stage names executed, for tests and debugging.
    executed: List[str] = field(default_factory=list)

    def require(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(
                f"pipeline context missing field {name!r}; present: "
                f"{sorted(self.fields)}"
            ) from None

    def drop(self, reason: str) -> None:
        self.dropped = reason


class Stage:
    """One pipeline stage: a callable plus a resource declaration."""

    def __init__(
        self,
        name: str,
        action: Callable[[PipelineContext], None],
        resources: Optional[FpgaModuleSpec] = None,
    ):
        self.name = name
        self.action = action
        self.resources = resources

    def process(self, ctx: PipelineContext) -> None:
        ctx.executed.append(self.name)
        self.action(ctx)


class MatchActionStage(Stage):
    """A stage that looks up a table and applies hit/miss actions."""

    def __init__(
        self,
        name: str,
        table: MatchActionTable,
        key_fn: Callable[[PipelineContext], Any],
        on_hit: Callable[[PipelineContext, Any], None],
        on_miss: Optional[Callable[[PipelineContext], None]] = None,
        resources: Optional[FpgaModuleSpec] = None,
    ):
        self.table = table
        self.key_fn = key_fn
        self.on_hit = on_hit
        self.on_miss = on_miss
        super().__init__(name, self._run, resources)

    def _run(self, ctx: PipelineContext) -> None:
        value = self.table.lookup(self.key_fn(ctx))
        if value is not None:
            self.on_hit(ctx, value)
        elif self.on_miss is not None:
            self.on_miss(ctx)
        else:
            ctx.drop(f"{self.name}: table miss")


class Pipeline:
    """An ordered stage list with short-circuit on drop."""

    def __init__(self, name: str, stages: List[Stage]):
        if not stages:
            raise ValueError(f"pipeline {name!r} has no stages")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"pipeline {name!r} has duplicate stage names: {names}")
        self.name = name
        self.stages = stages
        self.packets_in = 0
        self.packets_dropped = 0

    def process(self, ctx: PipelineContext) -> PipelineContext:
        self.packets_in += 1
        for stage in self.stages:
            if ctx.dropped is not None:
                break
            stage.process(ctx)
        if ctx.dropped is not None:
            self.packets_dropped += 1
        return ctx

    def resource_specs(self) -> List[FpgaModuleSpec]:
        return [s.resources for s in self.stages if s.resources is not None]

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"pipeline {self.name!r} has no stage {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pipeline {self.name!r} stages={[s.name for s in self.stages]}>"
