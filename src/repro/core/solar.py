"""SOLAR: the storage-oriented reliable UDP stack (§4).

One packet == one data block.  There are no connections, no receive
buffers, no reassembly: every data packet is self-contained, so the
receiver processes it at line rate in any order, and the sender's only
state is per-*path* congestion/RTT tracking plus per-outstanding-packet
timers — all in the DPU CPU's control plane, none in hardware (§4.4).

Client datapath (offload mode):

* WRITE (Figure 12): NVMe command → QoS/Block tables → per-block DMA
  fetch + CRC + SEC in the FPGA → PktGen with the CPU-chosen path (UDP
  source port) and rate → per-packet ACK with INT feedback → CPU CRC
  aggregation check → doorbell.
* READ (Figure 13): Addr-table entries installed at request time → each
  response block hits the FPGA, is CRC-checked, decrypted and DMA'd into
  guest memory without CPU involvement; headers/CRC metadata go to the
  CPU for the aggregate integrity check and congestion update.

Loss recovery: out-of-order ACK arrivals on a path, or a per-packet
timeout, trigger selective retransmission — on the best *other* path;
consecutive timeouts put a path on probation (§4.5), which is how SOLAR
routes around blackholes within milliseconds instead of minutes.

``offload=False`` models **SOLAR*** (§4.7): same protocol, but the
per-block datapath runs on the DPU CPU and crosses the internal PCIe
twice, like Figure 10(a).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..host.cpu import CpuComplex
from ..net.endpoint import Endpoint
from ..net.packet import Packet
from ..profiles import Profiles
from ..sim.engine import Simulator
from ..sim.events import Event
from ..storage.block import DataBlock
from ..storage.block_server import BlockServer
from ..storage.chunk_server import ChunkReply
from ..storage.crc import crc32
from ..storage.segment_table import Extent, Segment
from ..transport.udp import DatagramSocket
from .crc_agg import CrcAggregator
from .dpu_offload import ReadDatapathResult, SolarOffload, WriteDatapathResult
from .headers import (
    ACK_PACKET_BYTES,
    EbsHeader,
    OP_READ_BLOCK,
    OP_READ_REQUEST,
    OP_WRITE_ACK,
    OP_WRITE_BLOCK,
    READ_REQUEST_BYTES,
    RpcHeader,
    data_packet_bytes,
)
from .multipath import MultipathManager, PathState

_rpc_ids = itertools.count(1)

SERVER_PORT = 7100
#: How far ahead an ACK may arrive on a path before earlier outstanding
#: packets on that path are declared lost (out-of-order loss detection).
OOO_THRESHOLD = 3
#: Retransmission attempts before an RPC is abandoned (safety valve; EBS
#: effectively never gives up, this only bounds runaway simulations).
MAX_PKT_RETRIES = 200


@dataclass
class SolarPacket:
    """Client-side state of one outstanding block packet."""

    pkt_id: int
    block: DataBlock
    wire_payload: Optional[bytes] = None
    wire_crc: int = 0
    true_crc: int = 0
    acked: bool = False
    retries: int = 0
    sent_ns: int = 0
    path: Optional[PathState] = None
    path_seq: int = -1
    timer: Optional[Event] = None
    #: For READ: CRC the FPGA computed on the received block.
    fpga_crc: int = 0
    header_crc: int = 0


@dataclass
class SolarRpc:
    """One RPC: all blocks of one extent toward one block server."""

    kind: str  # "write" | "read"
    client: str
    server: str
    extent: Extent
    packets: List[SolarPacket]
    on_done: Callable[["SolarRpc", bool], None]
    rpc_id: int = field(default_factory=lambda: next(_rpc_ids))
    issued_ns: int = 0
    first_sent_ns: Optional[int] = None
    completed_ns: Optional[int] = None
    done_count: int = 0
    ok: bool = False
    integrity_ok: bool = True
    #: Server-side annotations from the critical (slowest) packet.
    storage_ns: int = 0
    ssd_ns: int = 0
    #: READ request retransmission timer.
    request_timer: Optional[Event] = None

    @property
    def segment(self) -> Segment:
        return self.extent.segment

    @property
    def total_pkts(self) -> int:
        return len(self.packets)

    @property
    def finished(self) -> bool:
        return self.completed_ns is not None


class SolarClient:
    """The SOLAR stack on one compute server's DPU."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        control_cpu: CpuComplex,
        profiles: Profiles,
        offload: Optional[SolarOffload],
        base_rtt_ns: int,
        num_paths: Optional[int] = None,
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.cpu = control_cpu
        self.profiles = profiles
        self.offload = offload
        self.base_rtt_ns = base_rtt_ns
        self.num_paths = num_paths
        #: Set by the deployment for SOLAR* so the software datapath can
        #: charge the internal-PCIe crossings (Figure 10a).
        self.dpu = None
        self.socket = DatagramSocket(sim, endpoint, "solar")
        self.socket.bind_default(self._on_packet)
        self.aggregator = CrcAggregator()
        #: When set (ns), every new path manager gets an INT prober with
        #: this cadence — the §4.5 "explicit path selection" extension.
        self.probe_interval_ns: Optional[int] = None
        self._probers: Dict[str, object] = {}
        self._paths: Dict[str, MultipathManager] = {}
        #: Packets waiting for a window to open, per server.
        self._pending: Dict[str, List[tuple[SolarRpc, SolarPacket]]] = {}
        self.rpcs_issued = 0
        self.rpcs_completed = 0
        self.integrity_events = 0
        self.retransmissions = 0
        block_bytes = max(
            data_packet_bytes(4096) + profiles.network.header_overhead_bytes, 1
        )
        if block_bytes > profiles.network.mtu_bytes:
            raise ValueError(
                "one-block-one-packet needs jumbo frames: "
                f"{block_bytes}B > MTU {profiles.network.mtu_bytes}B (§4.4)"
            )

    # ------------------------------------------------------------------
    def paths_to(self, server: str) -> MultipathManager:
        manager = self._paths.get(server)
        if manager is None:
            line_gbps = self.endpoint.uplinks[0].gbps if self.endpoint.uplinks else 25.0
            manager = MultipathManager(
                self.sim,
                self.profiles.solar,
                self.base_rtt_ns,
                self.profiles.network.mtu_bytes,
                line_gbps,
                num_paths=self.num_paths,
            )
            self._paths[server] = manager
            if self.probe_interval_ns is not None:
                from .probing import PathProber

                prober = PathProber(
                    self.sim, self.socket, server, SERVER_PORT, manager,
                    interval_ns=self.probe_interval_ns,
                )
                prober.start()
                self._probers[server] = prober
        return manager

    # ------------------------------------------------------------------
    # WRITE
    # ------------------------------------------------------------------
    def submit_write(
        self,
        extent: Extent,
        blocks: List[DataBlock],
        on_done: Callable[[SolarRpc, bool], None],
    ) -> SolarRpc:
        if len(blocks) != extent.num_blocks:
            raise ValueError(
                f"extent covers {extent.num_blocks} blocks, got {len(blocks)}"
            )
        rpc = SolarRpc(
            kind="write",
            client=self.endpoint.name,
            server=extent.segment.block_server,
            extent=extent,
            packets=[SolarPacket(i, b) for i, b in enumerate(blocks)],
            on_done=on_done,
            issued_ns=self.sim.now,
        )
        self.rpcs_issued += 1
        solar = self.profiles.solar
        critical = solar.cpu_issue_critical_ns + solar.per_packet_cpu_ns * max(
            0, rpc.total_pkts - 1
        )
        core = self.cpu.least_loaded()
        core.submit(critical, self._write_prepare_all, rpc)
        core.submit(solar.cpu_issue_async_ns)  # off the latency path
        return rpc

    def _write_prepare_all(self, rpc: SolarRpc) -> None:
        for pkt in rpc.packets:
            self._write_prepare(rpc, pkt)

    def _write_prepare(self, rpc: SolarRpc, pkt: SolarPacket) -> None:
        if self.offload is not None:
            self.offload.write_block_datapath(
                pkt.block, rpc.segment, lambda res, r=rpc, p=pkt: self._write_ready(r, p, res)
            )
        else:
            self._write_prepare_software(rpc, pkt)

    def _write_prepare_software(self, rpc: SolarRpc, pkt: SolarPacket) -> None:
        """SOLAR* (§4.7): per-block CRC/SEC on the DPU CPU, data crossing
        the internal PCIe twice (Figure 10a)."""
        sa = self.profiles.sa
        cost = sa.per_block_ns + int(sa.crc_per_byte_ns * pkt.block.size_bytes)
        if sa.encrypt:
            cost += int(sa.crypto_per_byte_ns * pkt.block.size_bytes)
        core = self.cpu.least_loaded()

        def after_cpu() -> None:
            result = WriteDatapathResult(pkt.block.data, pkt.block.crc, pkt.block.crc)
            self._write_ready(rpc, pkt, result)

        def after_pcie_in() -> None:
            # Second crossing: DPU memory -> NIC.
            dpu = getattr(self, "dpu", None)
            if dpu is not None:
                dpu.internal_pcie.transfer(pkt.block.size_bytes, after_cpu)
            else:
                after_cpu()

        dpu = getattr(self, "dpu", None)
        done = core.submit(cost)
        if dpu is not None:
            self.sim.schedule_at(
                done, dpu.internal_pcie.transfer, pkt.block.size_bytes, after_pcie_in
            )
        else:
            self.sim.schedule_at(done, after_cpu)

    def _write_ready(self, rpc: SolarRpc, pkt: SolarPacket, result: WriteDatapathResult) -> None:
        pkt.wire_payload = result.wire_payload
        pkt.wire_crc = result.wire_crc
        pkt.true_crc = result.true_crc
        self._dispatch(rpc, pkt)

    # ------------------------------------------------------------------
    # READ
    # ------------------------------------------------------------------
    def submit_read(
        self,
        extent: Extent,
        on_done: Callable[[SolarRpc, bool], None],
        guest_addr_base: int = 0,
    ) -> SolarRpc:
        blocks = [
            DataBlock(extent.segment.vd_id, extent.start_lba + i)
            for i in range(extent.num_blocks)
        ]
        rpc = SolarRpc(
            kind="read",
            client=self.endpoint.name,
            server=extent.segment.block_server,
            extent=extent,
            packets=[SolarPacket(i, b) for i, b in enumerate(blocks)],
            on_done=on_done,
            issued_ns=self.sim.now,
        )
        self.rpcs_issued += 1
        if self.offload is not None:
            from .tables import AddrEntry

            for pkt in rpc.packets:
                self.offload.addr_table.install(
                    AddrEntry(
                        rpc.rpc_id,
                        pkt.pkt_id,
                        guest_addr_base + pkt.pkt_id * pkt.block.size_bytes,
                        pkt.block.size_bytes,
                        pkt.block.vd_id,
                        pkt.block.lba,
                    )
                )
        solar = self.profiles.solar
        core = self.cpu.least_loaded()
        core.submit(solar.cpu_issue_critical_ns, self._send_read_request, rpc, None)
        core.submit(solar.cpu_issue_async_ns)  # off the latency path
        return rpc

    def _send_read_request(self, rpc: SolarRpc, only_pkts: Optional[List[int]]) -> None:
        if rpc.finished:
            return
        manager = self.paths_to(rpc.server)
        path = manager.pick(READ_REQUEST_BYTES)
        if path is None:
            path = min(manager.paths, key=lambda p: p.srtt_ns)
        wanted = only_pkts if only_pkts is not None else [p.pkt_id for p in rpc.packets]
        if rpc.first_sent_ns is None:
            rpc.first_sent_ns = self.sim.now
        rpc.request_sent_ns = self.sim.now  # type: ignore[attr-defined]
        self.socket.send(
            rpc.server,
            sport=path.path_id,
            dport=SERVER_PORT,
            size_bytes=READ_REQUEST_BYTES + self.profiles.network.header_overhead_bytes,
            headers={
                "solar": {
                    "op": OP_READ_REQUEST,
                    "rpc": rpc,
                    "pkt_ids": wanted,
                    "path_id": path.path_id,
                }
            },
        )
        manager.on_sent(path, READ_REQUEST_BYTES)
        self._arm_read_timer(rpc, path)

    def _arm_read_timer(self, rpc: SolarRpc, path: PathState) -> None:
        if rpc.request_timer is not None:
            rpc.request_timer.cancel()
        rpc.request_timer = self.sim.schedule(path.rto_ns, self._on_read_timeout, rpc, path)

    def _on_read_timeout(self, rpc: SolarRpc, path: PathState) -> None:
        rpc.request_timer = None
        if rpc.finished:
            return
        missing = [p.pkt_id for p in rpc.packets if not p.acked]
        if not missing:
            return
        manager = self.paths_to(rpc.server)
        manager.on_timeout(path, READ_REQUEST_BYTES)
        self.retransmissions += 1
        total_retries = sum(p.retries for p in rpc.packets) + len(missing)
        for pkt in rpc.packets:
            if not pkt.acked:
                pkt.retries += 1
        if total_retries > MAX_PKT_RETRIES * rpc.total_pkts:
            self._complete_rpc(rpc, ok=False)
            return
        self._send_read_request(rpc, missing)

    # ------------------------------------------------------------------
    # Packet dispatch (WRITE data packets)
    # ------------------------------------------------------------------
    def _dispatch(self, rpc: SolarRpc, pkt: SolarPacket) -> None:
        if rpc.finished or pkt.acked:
            return
        manager = self.paths_to(rpc.server)
        size = data_packet_bytes(pkt.block.size_bytes)
        path = manager.pick(size)
        if path is None:
            self._pending.setdefault(rpc.server, []).append((rpc, pkt))
            return
        self._send_on_path(rpc, pkt, path, manager)

    def _send_on_path(
        self, rpc: SolarRpc, pkt: SolarPacket, path: PathState, manager: MultipathManager
    ) -> None:
        size = data_packet_bytes(pkt.block.size_bytes)
        pkt.path = path
        pkt.path_seq = path.take_seq()
        pkt.sent_ns = self.sim.now
        path.outstanding[pkt.path_seq] = (rpc, pkt)
        if rpc.first_sent_ns is None:
            rpc.first_sent_ns = self.sim.now
        ebs = EbsHeader(
            OP_WRITE_BLOCK,
            pkt.block.vd_id,
            rpc.segment.segment_id,
            pkt.block.lba,
            pkt.block.size_bytes,
        )
        self.socket.send(
            rpc.server,
            sport=path.path_id,
            dport=SERVER_PORT,
            size_bytes=size + self.profiles.network.header_overhead_bytes,
            headers={
                "solar": {
                    "op": OP_WRITE_BLOCK,
                    "rpc": rpc,
                    "hdr": RpcHeader(rpc.rpc_id, pkt.pkt_id, rpc.total_pkts),
                    "ebs": ebs,
                    "crc": pkt.wire_crc,
                    "path_id": path.path_id,
                    "path_seq": pkt.path_seq,
                }
            },
            payload=pkt.wire_payload,
        )
        manager.on_sent(path, size)
        if pkt.timer is not None:
            pkt.timer.cancel()
        pkt.timer = self.sim.schedule(path.rto_ns, self._on_pkt_timeout, rpc, pkt)

    def _drain_pending(self, server: str) -> None:
        queue = self._pending.get(server)
        if not queue:
            return
        manager = self.paths_to(server)
        still_blocked: List[tuple[SolarRpc, SolarPacket]] = []
        for rpc, pkt in queue:
            if rpc.finished or pkt.acked:
                continue
            size = data_packet_bytes(pkt.block.size_bytes)
            path = manager.pick(size)
            if path is None:
                still_blocked.append((rpc, pkt))
            else:
                self._send_on_path(rpc, pkt, path, manager)
        self._pending[server] = still_blocked

    # ------------------------------------------------------------------
    # Timeout / retransmission (WRITE)
    # ------------------------------------------------------------------
    def _on_pkt_timeout(self, rpc: SolarRpc, pkt: SolarPacket) -> None:
        pkt.timer = None
        if pkt.acked or rpc.finished:
            return
        manager = self.paths_to(rpc.server)
        assert pkt.path is not None
        pkt.path.outstanding.pop(pkt.path_seq, None)
        manager.on_timeout(pkt.path, data_packet_bytes(pkt.block.size_bytes))
        pkt.retries += 1
        self.retransmissions += 1
        if pkt.retries > MAX_PKT_RETRIES:
            self._complete_rpc(rpc, ok=False)
            return
        new_path = manager.best_alternative(pkt.path, data_packet_bytes(pkt.block.size_bytes))
        self._send_on_path(rpc, pkt, new_path, manager)

    def _check_ooo_loss(self, path: PathState, acked_seq: int, server: str) -> None:
        """Out-of-order loss detection: an ACK for seq N implies packets
        sent earlier on the same path should have been acked; anything
        lagging more than OOO_THRESHOLD behind is retransmitted now."""
        stale = [
            seq for seq in path.outstanding if seq < acked_seq - OOO_THRESHOLD
        ]
        for seq in stale:
            rpc, pkt = path.outstanding.pop(seq)
            if pkt.acked or rpc.finished:
                continue
            if pkt.timer is not None:
                pkt.timer.cancel()
                pkt.timer = None
            pkt.retries += 1
            self.retransmissions += 1
            manager = self.paths_to(server)
            path.inflight_bytes = max(
                0, path.inflight_bytes - data_packet_bytes(pkt.block.size_bytes)
            )
            new_path = manager.best_alternative(path, data_packet_bytes(pkt.block.size_bytes))
            self._send_on_path(rpc, pkt, new_path, manager)

    # ------------------------------------------------------------------
    # Inbound packets
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        header = packet.header("solar")
        op = header["op"]
        if op == OP_WRITE_ACK:
            self._on_write_ack(packet, header)
        elif op == OP_READ_BLOCK:
            self._on_read_block(packet, header)
        elif op == "path_probe_echo":
            header["prober"].on_echo(packet)
        # Anything else addressed at a client is silently ignored, like a
        # real UDP stack receiving stray datagrams.

    def _on_write_ack(self, packet: Packet, header: dict) -> None:
        rpc: SolarRpc = header["rpc"]
        pkt = rpc.packets[header["pkt_id"]]
        if pkt.acked or rpc.finished:
            return
        pkt.acked = True
        if pkt.timer is not None:
            pkt.timer.cancel()
            pkt.timer = None
        manager = self.paths_to(rpc.server)
        # The ACK names the path by the port it was sent on; if the path
        # was rotated meanwhile, fall back to the packet's path object.
        try:
            path = manager.path_by_id(header["path_id"])
        except KeyError:
            path = pkt.path if pkt.path is not None else manager.paths[0]
        path.outstanding.pop(header["path_seq"], None)
        manager.on_ack(
            path,
            header["sent_ns"],
            data_packet_bytes(pkt.block.size_bytes),
            header.get("int_echo", []),
            header["path_seq"],
        )
        self._check_ooo_loss(path, header["path_seq"], rpc.server)
        rpc.storage_ns = max(rpc.storage_ns, header.get("storage_ns", 0))
        rpc.ssd_ns = max(rpc.ssd_ns, header.get("ssd_ns", 0))
        rpc.done_count += 1
        # Per-ACK control-plane work (CC + path update).
        self.cpu.least_loaded().submit(self.profiles.solar.per_packet_cpu_ns)
        if rpc.done_count >= rpc.total_pkts:
            self._finalize_write(rpc)
        self._drain_pending(rpc.server)

    def _finalize_write(self, rpc: SolarRpc) -> None:
        report = self.aggregator.check(
            [p.wire_crc for p in rpc.packets], [p.true_crc for p in rpc.packets]
        )
        rpc.integrity_ok = report.ok
        if not report.ok:
            self.integrity_events += 1
        self._charge_completion(rpc)

    def _charge_completion(self, rpc: SolarRpc) -> None:
        solar = self.profiles.solar
        critical = solar.cpu_complete_critical_ns + self.aggregator.check_cost_ns(
            rpc.total_pkts
        )
        core = self.cpu.least_loaded()
        core.submit(critical, self._complete_rpc, rpc, True)
        core.submit(solar.cpu_complete_async_ns)  # off the latency path

    def _on_read_block(self, packet: Packet, header: dict) -> None:
        rpc: SolarRpc = header["rpc"]
        pkt = rpc.packets[header["pkt_id"]]
        if pkt.acked or rpc.finished:
            return
        manager = self.paths_to(rpc.server)
        try:
            path = manager.path_by_id(header["path_id"])
        except KeyError:
            path = min(manager.paths, key=lambda p: p.srtt_ns)  # rotated away
        manager.on_ack(
            path,
            header["sent_ns"],
            READ_REQUEST_BYTES if pkt.pkt_id == 0 else 0,
            packet.int_records,
            path.highest_acked_seq + 1,
        )
        rpc.storage_ns = max(rpc.storage_ns, header.get("storage_ns", 0))
        rpc.ssd_ns = max(rpc.ssd_ns, header.get("ssd_ns", 0))
        if self.offload is not None:
            self.offload.read_block_datapath(
                rpc.rpc_id,
                pkt.pkt_id,
                packet.payload,
                header["crc"],
                lambda res, r=rpc, p=pkt: self._read_block_done(r, p, res),
            )
        else:
            self._read_block_software(rpc, pkt, packet.payload, header["crc"])

    def _read_block_software(
        self, rpc: SolarRpc, pkt: SolarPacket, payload: Optional[bytes], header_crc: int
    ) -> None:
        """SOLAR*: CRC + decrypt on the DPU CPU, double PCIe crossing."""
        sa = self.profiles.sa
        cost = sa.per_block_ns + int(sa.crc_per_byte_ns * pkt.block.size_bytes)
        if sa.encrypt:
            cost += int(sa.crypto_per_byte_ns * pkt.block.size_bytes)
        fpga_crc = crc32(payload) if payload is not None else header_crc
        result = ReadDatapathResult(True, None, fpga_crc, header_crc)
        core = self.cpu.least_loaded()
        done = core.submit(cost)
        dpu = self.dpu
        if dpu is not None:
            # Figure 10(a): NIC -> DPU memory, then DPU memory -> host —
            # two internal-PCIe crossings on the read path too.
            def second_crossing(r=rpc, p=pkt, res=result) -> None:
                dpu.internal_pcie.transfer(
                    p.block.size_bytes,
                    lambda: self._read_block_done(r, p, res),
                )

            self.sim.schedule_at(
                done, dpu.internal_pcie.transfer, pkt.block.size_bytes,
                second_crossing,
            )
        else:
            self.sim.schedule_at(done, self._read_block_done, rpc, pkt, result)

    def _read_block_done(self, rpc: SolarRpc, pkt: SolarPacket, result: ReadDatapathResult) -> None:
        if pkt.acked or rpc.finished:
            return
        if not result.ok:
            return  # addr miss (stale duplicate) — drop silently
        pkt.acked = True
        pkt.fpga_crc = result.fpga_crc
        pkt.header_crc = result.header_crc
        rpc.done_count += 1
        self.cpu.least_loaded().submit(self.profiles.solar.per_packet_cpu_ns)
        if rpc.done_count >= rpc.total_pkts:
            if rpc.request_timer is not None:
                rpc.request_timer.cancel()
                rpc.request_timer = None
            self._finalize_read(rpc)

    def _finalize_read(self, rpc: SolarRpc) -> None:
        report = self.aggregator.check(
            [p.fpga_crc for p in rpc.packets], [p.header_crc for p in rpc.packets]
        )
        rpc.integrity_ok = report.ok
        if not report.ok:
            self.integrity_events += 1
        self._charge_completion(rpc)

    # ------------------------------------------------------------------
    def _complete_rpc(self, rpc: SolarRpc, ok: bool) -> None:
        if rpc.finished:
            return
        rpc.completed_ns = self.sim.now
        rpc.ok = ok
        self.rpcs_completed += 1
        for pkt in rpc.packets:
            if pkt.timer is not None:
                pkt.timer.cancel()
                pkt.timer = None
        if rpc.request_timer is not None:
            rpc.request_timer.cancel()
            rpc.request_timer = None
        rpc.on_done(rpc, ok)


class SolarServer:
    """The SOLAR receiver on a block server.

    Storage-side servers are ordinary servers (the offload story is about
    the *compute* side); they process SOLAR datagrams in a user-space
    run-to-completion loop, charged per packet like LUNA's datapath.
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        cpu: CpuComplex,
        block_server: BlockServer,
        profiles: Profiles,
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.cpu = cpu
        self.block_server = block_server
        self.profiles = profiles
        self.socket = DatagramSocket(sim, endpoint, "solar")
        self.socket.bind(SERVER_PORT, self._on_packet)
        self.write_blocks = 0
        self.read_requests = 0

    def _on_packet(self, packet: Packet) -> None:
        header = packet.header("solar")
        op = header["op"]
        cost = self.profiles.luna.per_packet_cpu_ns
        if op == OP_WRITE_BLOCK:
            self.cpu.least_loaded().submit(cost, self._handle_write, packet, header)
        elif op == OP_READ_REQUEST:
            self.cpu.least_loaded().submit(cost, self._handle_read, packet, header)
        elif op == "path_probe":
            from .probing import handle_probe

            handle_probe(self.endpoint, packet)

    # ------------------------------------------------------------------
    def _handle_write(self, packet: Packet, header: dict) -> None:
        self.write_blocks += 1
        rpc: SolarRpc = header["rpc"]
        ebs: EbsHeader = header["ebs"]
        pkt = rpc.packets[header["hdr"].pkt_id]
        received_ns = self.sim.now
        block = pkt.block if packet.payload is None else pkt.block.with_data(packet.payload)
        self.block_server.handle_write(
            rpc.segment,
            block,
            header["crc"],
            lambda ok, replies: self._ack_write(
                packet, header, ebs, received_ns, ok, replies
            ),
        )

    def _ack_write(
        self,
        packet: Packet,
        header: dict,
        ebs: EbsHeader,
        received_ns: int,
        ok: bool,
        replies: List[ChunkReply],
    ) -> None:
        ssd_ns = max((r.service_ns for r in replies if isinstance(r, ChunkReply)), default=0)
        ack = packet.reply_shell(ACK_PACKET_BYTES)
        ack.headers["solar"] = {
            "op": OP_WRITE_ACK,
            "rpc": header["rpc"],
            "pkt_id": header["hdr"].pkt_id,
            "path_id": header["path_id"],
            "path_seq": header["path_seq"],
            "sent_ns": packet.created_ns,
            "ok": ok,
            "storage_ns": self.sim.now - received_ns,
            "ssd_ns": ssd_ns,
            #: HPCC echo: the data packet's INT records ride back (§4.5).
            "int_echo": list(packet.int_records),
        }
        self.endpoint.send(ack)

    # ------------------------------------------------------------------
    def _handle_read(self, packet: Packet, header: dict) -> None:
        self.read_requests += 1
        rpc: SolarRpc = header["rpc"]
        received_ns = self.sim.now
        for pkt_id in header["pkt_ids"]:
            pkt = rpc.packets[pkt_id]
            self.block_server.handle_read(
                rpc.segment,
                pkt.block.vd_id,
                pkt.block.lba,
                pkt.block.size_bytes,
                lambda reply, p=pkt: self._send_read_block(
                    packet, header, p, received_ns, reply
                ),
            )

    def _send_read_block(
        self,
        request: Packet,
        header: dict,
        pkt: SolarPacket,
        received_ns: int,
        reply: ChunkReply,
    ) -> None:
        rpc: SolarRpc = header["rpc"]
        size = data_packet_bytes(pkt.block.size_bytes)
        response = request.reply_shell(
            size + self.profiles.network.header_overhead_bytes
        )
        response.payload = reply.data
        response.headers["solar"] = {
            "op": OP_READ_BLOCK,
            "rpc": rpc,
            "pkt_id": pkt.pkt_id,
            "path_id": header["path_id"],
            "crc": reply.crc if reply.crc is not None else 0,
            "sent_ns": request.created_ns,
            "storage_ns": self.sim.now - received_ns,
            "ssd_ns": reply.service_ns,
        }
        self.endpoint.send(response)
