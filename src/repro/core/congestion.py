"""HPCC-style INT-driven congestion control, one instance per path.

§4.5: "the CPU will get the acknowledgments with the path condition (i.e.,
timeout, RTT) and congestion feedbacks (i.e., INT) for path selection and
congestion control for each RPC independently."  §4.8: "we use a per-packet
ACK to perform a fine-grained congestion control algorithm (e.g., HPCC)".

This is HPCC's core update rule [Li et al., SIGCOMM'19], lightly adapted:
every ACK echoes the data packet's per-hop INT records (queue depth +
cumulative tx bytes + timestamp); the sender estimates each hop's
utilization

    U_hop = qlen / (B * T_base)  +  txRate / B

and drives its window toward ``eta`` (95%) of the bottleneck:

    W = W_c / (U_max / eta) + W_ai        (multiplicative + additive)

with W_c updated once per RTT (HPCC's "reference window" rule).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..net.packet import IntRecord


class HpccCongestionControl:
    """Per-path window controller fed by INT echoes."""

    def __init__(
        self,
        base_rtt_ns: int,
        mtu_bytes: int,
        line_gbps: float,
        eta: float = 0.95,
        additive_increase_bytes: Optional[int] = None,
        max_stages: int = 5,
    ):
        if base_rtt_ns <= 0 or mtu_bytes <= 0 or line_gbps <= 0:
            raise ValueError("base_rtt, mtu and line rate must be positive")
        self.base_rtt_ns = base_rtt_ns
        self.mtu_bytes = mtu_bytes
        self.line_gbps = line_gbps
        self.eta = eta
        #: bandwidth-delay product: the window that exactly fills the path.
        self.bdp_bytes = int(line_gbps * base_rtt_ns / 8)  # Gbps*ns/8 = bytes
        self.max_window = max(self.bdp_bytes * 4, mtu_bytes * 8)
        self.wai = (
            additive_increase_bytes
            if additive_increase_bytes is not None
            else max(1, self.bdp_bytes // max_stages // 8)
        )
        self.window_bytes = float(max(self.bdp_bytes, mtu_bytes))
        self._wc = self.window_bytes  # reference window, updated per RTT
        self._last_update_ns = 0
        #: previous INT record per switch, for rate estimation.
        self._last_int: Dict[str, IntRecord] = {}
        self.acks_seen = 0
        self.timeouts_seen = 0

    # ------------------------------------------------------------------
    def _hop_utilization(self, record: IntRecord) -> Optional[float]:
        prev = self._last_int.get(record.switch)
        self._last_int[record.switch] = record
        link_bytes_per_ns = record.link_gbps / 8.0
        u_queue = record.queue_bytes / (link_bytes_per_ns * self.base_rtt_ns)
        if prev is None or record.timestamp_ns <= prev.timestamp_ns:
            return u_queue if prev is not None else None
        tx_rate = (record.tx_bytes - prev.tx_bytes) / (
            record.timestamp_ns - prev.timestamp_ns
        )
        return u_queue + tx_rate / link_bytes_per_ns

    def on_ack(self, int_records: List[IntRecord], now_ns: int) -> float:
        """Process one ACK's INT echo; returns the new window (bytes)."""
        self.acks_seen += 1
        utilizations = [u for u in map(self._hop_utilization, int_records) if u is not None]
        if not utilizations:
            # No usable telemetry yet (first ACK per hop): gentle additive growth.
            self.window_bytes = min(self.window_bytes + self.wai, self.max_window)
            return self.window_bytes
        u_max = max(utilizations)
        target = self._wc / max(u_max / self.eta, 0.01) + self.wai
        self.window_bytes = float(min(max(target, self.mtu_bytes), self.max_window))
        if now_ns - self._last_update_ns >= self.base_rtt_ns:
            self._wc = self.window_bytes
            self._last_update_ns = now_ns
        return self.window_bytes

    def on_timeout(self) -> float:
        """Multiplicative decrease on loss-by-timeout."""
        self.timeouts_seen += 1
        self.window_bytes = max(self.mtu_bytes, self.window_bytes / 2)
        self._wc = self.window_bytes
        return self.window_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HPCC w={self.window_bytes / 1024:.1f}KB bdp={self.bdp_bytes / 1024:.1f}KB "
            f"acks={self.acks_seen}>"
        )
