"""SOLAR — the paper's primary contribution.

Subpackages:

* :mod:`~repro.core.headers` — the one-block-one-packet wire format;
* :mod:`~repro.core.tables` / :mod:`~repro.core.pipeline` — the P4-style
  match-action datapath (§4.6);
* :mod:`~repro.core.dpu_offload` — the SA datapath bound to the ALI-DPU
  FPGA, with Table 3's resource budget;
* :mod:`~repro.core.multipath` — per-path state, selection, failure
  inference (§4.5);
* :mod:`~repro.core.congestion` — HPCC-style INT-driven CC (§4.8);
* :mod:`~repro.core.crc_agg` — the software CRC aggregation check (§4.5);
* :mod:`~repro.core.solar` — the client/server protocol engine.
"""

from .congestion import HpccCongestionControl
from .crc_agg import CrcAggregator, IntegrityReport, aggregate_payload_check, xor_aggregate
from .dpu_offload import (
    ReadDatapathResult,
    SolarOffload,
    WriteDatapathResult,
    table3_specs,
)
from .headers import (
    ACK_PACKET_BYTES,
    EbsHeader,
    OP_READ_BLOCK,
    OP_READ_REQUEST,
    OP_WRITE_ACK,
    OP_WRITE_BLOCK,
    READ_REQUEST_BYTES,
    RpcHeader,
    data_packet_bytes,
)
from .multipath import MultipathManager, PathState, PATH_PORT_BASE
from .probing import PathProber, handle_probe
from .pipeline import MatchActionStage, Pipeline, PipelineContext, Stage
from .solar import SERVER_PORT, SolarClient, SolarPacket, SolarRpc, SolarServer
from .tables import AddrEntry, AddrTable, MatchActionTable, TableFullError

__all__ = [
    "SolarClient",
    "SolarServer",
    "SolarRpc",
    "SolarPacket",
    "SERVER_PORT",
    "SolarOffload",
    "WriteDatapathResult",
    "ReadDatapathResult",
    "table3_specs",
    "MultipathManager",
    "PathState",
    "PATH_PORT_BASE",
    "PathProber",
    "handle_probe",
    "HpccCongestionControl",
    "CrcAggregator",
    "IntegrityReport",
    "xor_aggregate",
    "aggregate_payload_check",
    "Pipeline",
    "Stage",
    "MatchActionStage",
    "PipelineContext",
    "MatchActionTable",
    "AddrTable",
    "AddrEntry",
    "TableFullError",
    "EbsHeader",
    "RpcHeader",
    "data_packet_bytes",
    "OP_WRITE_BLOCK",
    "OP_WRITE_ACK",
    "OP_READ_REQUEST",
    "OP_READ_BLOCK",
    "ACK_PACKET_BYTES",
    "READ_REQUEST_BYTES",
]
