"""Match-action tables of the SOLAR hardware datapath (Figures 12/13).

§4.5 calls QoS and Block "two typical match-action table checking steps",
and §4.6's claim is that the whole SA datapath "can be expressed with the
P4 language".  These classes are the table half of that claim: bounded
exact-match tables with miss policies and occupancy accounting (BRAM is
the scarce resource — Table 3).  The pipeline half lives in
:mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class TableFullError(RuntimeError):
    """A hardware table ran out of entries (BRAM exhausted)."""


class MatchActionTable(Generic[K, V]):
    """A bounded exact-match table with hit/miss statistics."""

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise ValueError(f"table {name!r} needs positive capacity")
        self.name = name
        self.capacity = capacity
        self._entries: Dict[K, V] = {}
        self.hits = 0
        self.misses = 0
        self.peak_occupancy = 0

    def insert(self, key: K, value: V) -> None:
        if key not in self._entries and len(self._entries) >= self.capacity:
            raise TableFullError(
                f"table {self.name!r} full ({self.capacity} entries)"
            )
        self._entries[key] = value
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))

    def lookup(self, key: K) -> Optional[V]:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def remove(self, key: K) -> Optional[V]:
        return self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MatchActionTable {self.name!r} {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )


@dataclass(frozen=True)
class AddrEntry:
    """Addr-table row (Figure 13): where an incoming READ block lands.

    Populated by the RPC module when the READ request is issued, consumed
    by the FPGA when the response block arrives, "and removes it after the
    reply arrives" — the only per-request hardware state SOLAR keeps.
    """

    rpc_id: int
    pkt_id: int
    guest_addr: int
    length: int
    vd_id: str
    lba: int
    expected_crc: Optional[int] = None


class AddrTable(MatchActionTable[Tuple[int, int], AddrEntry]):
    """(RPC ID, Pkt ID) -> guest memory placement, for READ responses."""

    def __init__(self, capacity: int = 16_384):
        super().__init__("Addr", capacity)

    def install(self, entry: AddrEntry) -> None:
        key = (entry.rpc_id, entry.pkt_id)
        if key in self:
            raise ValueError(f"Addr entry {key} installed twice")
        self.insert(key, entry)

    def consume(self, rpc_id: int, pkt_id: int) -> Optional[AddrEntry]:
        """Look up and remove in one step (line-rate processing: the entry
        'is cleaned afterward without interrupting the CPU')."""
        entry = self.lookup((rpc_id, pkt_id))
        if entry is not None:
            self.remove((rpc_id, pkt_id))
        return entry
