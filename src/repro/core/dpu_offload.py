"""SOLAR's SA datapath bound to the ALI-DPU FPGA (Figures 12/13).

This module assembles the hardware half of SOLAR:

* the match-action tables (QoS, Block, Addr) sized for the FPGA's BRAM,
  with Table 3's resource declarations;
* the egress (WRITE) and ingress (READ-response) pipeline programs,
  expressed on the P4-style interpreter of :mod:`repro.core.pipeline`;
* the per-block datapath operations — DMA to/from guest memory, CRC
  computation, optional SEC encryption — with hooks for FPGA fault
  injection (§4.4's bit-flip reality).

CPU never touches payload bytes here; it only receives headers and CRC
metadata (the Figure 13 note: "the hardware sends the headers and
metadata of the packet to the CPU for the final data integrity check").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Tuple

from ..host.dpu import AliDpu
from ..host.fpga import FpgaModuleSpec
from ..profiles import Profiles
from ..sim.engine import Simulator
from ..storage.block import DataBlock
from ..storage.crc import crc32
from ..storage.crypto import BlockCipher
from ..storage.segment_table import BLOCKS_PER_SEGMENT, Segment
from .pipeline import MatchActionStage, Pipeline, PipelineContext, Stage
from .tables import AddrEntry, AddrTable, MatchActionTable

#: Default hardware table capacities (entries).
ADDR_CAPACITY = 16_384
BLOCK_CACHE_CAPACITY = 32_768
QOS_CAPACITY = 4_096


def table3_specs(
    addr_capacity: int = ADDR_CAPACITY,
    block_capacity: int = BLOCK_CACHE_CAPACITY,
    qos_capacity: int = QOS_CAPACITY,
) -> dict[str, FpgaModuleSpec]:
    """Table 3's LUT/BRAM utilization, scaled by table sizing.

    The paper's reported numbers (Addr 5.1/8.1, Block 0.2/8.6, QoS
    0.1/0.4, SEC 2.8/0.9, CRC 0.3/0.0) correspond to the default
    capacities; BRAM scales linearly with entry count, LUT stays fixed
    (matching logic doesn't grow with depth).
    """
    return {
        "Addr": FpgaModuleSpec("Addr", 5.1, 8.1 * addr_capacity / ADDR_CAPACITY),
        "Block": FpgaModuleSpec("Block", 0.2, 8.6 * block_capacity / BLOCK_CACHE_CAPACITY),
        "QoS": FpgaModuleSpec("QoS", 0.1, 0.4 * qos_capacity / QOS_CAPACITY),
        "SEC": FpgaModuleSpec("SEC", 2.8, 0.9),
        "CRC": FpgaModuleSpec("CRC", 0.3, 0.0),
    }


class FaultInjector(Protocol):
    """Fault hooks the offload consults at the two vulnerable points."""

    def corrupt_payload(self, payload: bytes, stage: str) -> bytes: ...

    def corrupt_crc(self, crc: int, stage: str) -> int: ...


@dataclass
class WriteDatapathResult:
    """What the FPGA hands to the packet generator for one WRITE block."""

    wire_payload: Optional[bytes]  # possibly encrypted, possibly corrupted
    wire_crc: int  # the CRC the FPGA computed (what goes in the header)
    true_crc: int  # ground truth from the guest payload (for experiments)


@dataclass
class ReadDatapathResult:
    """Outcome of the ingress pipeline for one READ-response block."""

    ok: bool
    entry: Optional[AddrEntry]
    fpga_crc: int  # CRC the FPGA computed over the received payload
    header_crc: int  # CRC claimed in the packet's EBS header
    reason: str = ""


class SolarOffload:
    """The SOLAR hardware datapath on one ALI-DPU."""

    def __init__(
        self,
        sim: Simulator,
        dpu: AliDpu,
        profiles: Profiles,
        cipher: Optional[BlockCipher] = None,
        fault_injector: Optional[FaultInjector] = None,
        addr_capacity: int = ADDR_CAPACITY,
    ):
        self.sim = sim
        self.dpu = dpu
        self.profiles = profiles
        self.cipher = cipher
        self.fault_injector = fault_injector
        self.addr_table = AddrTable(addr_capacity)
        self.block_table: MatchActionTable[Tuple[str, int], Segment] = MatchActionTable(
            "Block", BLOCK_CACHE_CAPACITY
        )
        self.qos_table: MatchActionTable[str, bool] = MatchActionTable("QoS", QOS_CAPACITY)
        self._specs = table3_specs(addr_capacity=addr_capacity)
        for spec in self._specs.values():
            dpu.fpga.register_module(spec)
        self.egress = self._build_egress()
        self.ingress = self._build_ingress()
        self.addr_misses = 0
        self.crc_rejects = 0

    # ------------------------------------------------------------------
    # Pipeline programs (the P4-expressible SA datapath, §4.6)
    # ------------------------------------------------------------------
    def _build_egress(self) -> Pipeline:
        def qos_hit(ctx: PipelineContext, _value: bool) -> None:
            ctx.fields["qos_ok"] = True

        def block_hit(ctx: PipelineContext, segment: Segment) -> None:
            ctx.fields["segment"] = segment

        def crc_stage(ctx: PipelineContext) -> None:
            ctx.fields["crc_done"] = True

        def sec_stage(ctx: PipelineContext) -> None:
            ctx.fields["sec_done"] = self.cipher is not None

        def pktgen(ctx: PipelineContext) -> None:
            ctx.fields["pkt_ready"] = True

        return Pipeline(
            "solar-egress",
            [
                MatchActionStage(
                    "QoS", self.qos_table, lambda c: c.require("vd_id"), qos_hit,
                    resources=self._specs["QoS"],
                ),
                MatchActionStage(
                    "Block",
                    self.block_table,
                    lambda c: (c.require("vd_id"), c.require("segment_index")),
                    block_hit,
                    resources=self._specs["Block"],
                ),
                Stage("CRC", crc_stage, resources=self._specs["CRC"]),
                Stage("SEC", sec_stage, resources=self._specs["SEC"]),
                Stage("PktGen", pktgen),
            ],
        )

    def _build_ingress(self) -> Pipeline:
        def addr_hit(ctx: PipelineContext, entry: AddrEntry) -> None:
            ctx.fields["addr_entry"] = entry

        def crc_check(ctx: PipelineContext) -> None:
            ctx.fields["crc_checked"] = True

        def sec_stage(ctx: PipelineContext) -> None:
            ctx.fields["sec_done"] = self.cipher is not None

        def dma_stage(ctx: PipelineContext) -> None:
            ctx.fields["dma_issued"] = True

        return Pipeline(
            "solar-ingress",
            [
                MatchActionStage(
                    "Addr",
                    self.addr_table,
                    lambda c: (c.require("rpc_id"), c.require("pkt_id")),
                    addr_hit,
                    resources=self._specs["Addr"],
                ),
                Stage("CRC", crc_check),
                Stage("SEC", sec_stage),
                Stage("DMA", dma_stage),
            ],
        )

    # ------------------------------------------------------------------
    # Control-plane table population
    # ------------------------------------------------------------------
    def install_vd(self, vd_id: str, segments: list[Segment]) -> None:
        """Populate the QoS and Block tables for a provisioned VD."""
        self.qos_table.insert(vd_id, True)
        for index, segment in enumerate(segments):
            self.block_table.insert((vd_id, index), segment)

    # ------------------------------------------------------------------
    # WRITE datapath: guest memory -> wire (Figure 12)
    # ------------------------------------------------------------------
    def write_block_datapath(
        self,
        block: DataBlock,
        segment: Segment,
        on_ready: Callable[[WriteDatapathResult], None],
    ) -> None:
        """DMA-fetch a block, run the egress pipeline, CRC + SEC it."""
        ctx = PipelineContext(
            fields={
                "vd_id": block.vd_id,
                "segment_index": segment.start_lba // BLOCKS_PER_SEGMENT,
            }
        )
        # The logical pipeline runs (validates expressibility + counts
        # table hits); physics below: DMA time then pipeline latency.
        self._run_egress_logic(ctx, block)
        self.dpu.dma.read_from_guest(
            block.size_bytes, self._egress_after_dma, block, on_ready
        )

    def _run_egress_logic(self, ctx: PipelineContext, block: DataBlock) -> None:
        # QoS/Block entries are keyed by (vd, segment index); install_vd
        # must have run.  A miss here is a control-plane bug: fail loudly.
        self.egress.process(ctx)
        if ctx.dropped is not None:
            raise RuntimeError(
                f"egress pipeline dropped block {block!r}: {ctx.dropped}"
            )

    def _egress_after_dma(self, block: DataBlock, on_ready) -> None:
        true_crc = block.crc
        payload = block.data
        wire_crc = true_crc
        if payload is not None:
            if self.fault_injector is not None:
                payload = self.fault_injector.corrupt_payload(payload, "egress-crc")
            wire_crc = crc32(payload)
            if self.cipher is not None:
                payload = self.cipher.encrypt(block.vd_id, block.lba, payload)
        if self.fault_injector is not None:
            wire_crc = self.fault_injector.corrupt_crc(wire_crc, "egress-crc")
        result = WriteDatapathResult(payload, wire_crc, true_crc)
        self.dpu.fpga.process(on_ready, result)

    # ------------------------------------------------------------------
    # READ datapath: wire -> guest memory (Figure 13)
    # ------------------------------------------------------------------
    def read_block_datapath(
        self,
        rpc_id: int,
        pkt_id: int,
        payload: Optional[bytes],
        header_crc: int,
        on_done: Callable[[ReadDatapathResult], None],
    ) -> None:
        """Addr lookup, CRC check, decrypt, DMA into guest memory."""
        ctx = PipelineContext(fields={"rpc_id": rpc_id, "pkt_id": pkt_id})
        self.ingress.process(ctx)
        entry = ctx.fields.get("addr_entry")
        if entry is not None:
            # "its entry is cleaned afterward without interrupting the CPU"
            # (Figure 13) — duplicates then miss and are dropped.
            self.addr_table.remove((rpc_id, pkt_id))
        if entry is None:
            self.addr_misses += 1
            self.dpu.fpga.process(
                on_done,
                ReadDatapathResult(False, None, 0, header_crc, "addr-miss"),
            )
            return
        fpga_crc = header_crc
        if payload is not None:
            if self.cipher is not None:
                payload = self.cipher.decrypt(entry.vd_id, entry.lba, payload)
            if self.fault_injector is not None:
                payload = self.fault_injector.corrupt_payload(payload, "ingress-crc")
            fpga_crc = crc32(payload)
        if self.fault_injector is not None:
            fpga_crc = self.fault_injector.corrupt_crc(fpga_crc, "ingress-crc")
        if fpga_crc != header_crc:
            self.crc_rejects += 1
        # DMA the block into guest memory, then report to the CPU.
        result = ReadDatapathResult(True, entry, fpga_crc, header_crc)
        self.dpu.dma.write_to_guest(entry.length, self._ingress_after_dma, result, on_done)

    def _ingress_after_dma(self, result: ReadDatapathResult, on_done) -> None:
        self.dpu.fpga.process(on_done, result)

    # ------------------------------------------------------------------
    def resource_report(self):
        """Per-module LUT/BRAM utilization — the Table 3 reproduction."""
        return self.dpu.fpga.resource_report()
