"""Multi-path transport state (§4.5 'Multi-path transport').

SOLAR keeps several (default 4) persistent paths toward each block server.
A path is just a UDP source port: ECMP's consistent hashing maps each port
to a stable route through the fabric, so changing ports changes paths
without any network cooperation.  Per path, SOLAR tracks the congestion
window (HPCC), smoothed RTT, in-flight bytes and a consecutive-timeout
counter; packets favour the path with the lowest average RTT, and
consecutive timeouts put a path on probation ("infers a path failure and
shifts traffic to other paths accordingly").

Because SOLAR keeps *no per-connection state in hardware*, all of this
lives in the DPU-CPU control plane and multiplying paths does not touch
the FPGA's resource budget — the scalability argument of §4.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..net.packet import IntRecord
from ..profiles import SolarProfile
from ..sim.engine import Simulator
from .congestion import HpccCongestionControl

#: Base of the UDP source-port range used as path identifiers.
PATH_PORT_BASE = 40_000


@dataclass
class PathState:
    """One persistent path toward one block server."""

    path_id: int  # the UDP source port
    cc: HpccCongestionControl
    srtt_ns: float
    rto_ns: int
    inflight_bytes: int = 0
    consecutive_timeouts: int = 0
    failed_until_ns: int = 0
    packets_sent: int = 0
    packets_acked: int = 0
    timeouts: int = 0
    next_seq: int = 0
    highest_acked_seq: int = -1
    #: Outstanding per-path sequence numbers -> opaque packet state, used
    #: for out-of-order loss detection ("Packet loss is detected via
    #: out-of-order arrivals or timeout happened in the same path", §4.5).
    outstanding: dict = field(default_factory=dict)
    #: Worst queue depth observed by the most recent INT probe on this
    #: path (0 until probing runs) — see :mod:`repro.core.probing`.
    probed_queue_bytes: int = 0

    def healthy(self, now_ns: int) -> bool:
        return now_ns >= self.failed_until_ns

    def window_open(self, size_bytes: int) -> bool:
        return self.inflight_bytes + size_bytes <= self.cc.window_bytes

    def take_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq


class MultipathManager:
    """Path set and selection policy for one (client, block server) pair."""

    def __init__(
        self,
        sim: Simulator,
        profile: SolarProfile,
        base_rtt_ns: int,
        mtu_bytes: int,
        line_gbps: float,
        num_paths: Optional[int] = None,
    ):
        self.sim = sim
        self.profile = profile
        self.base_rtt_ns = base_rtt_ns
        self.line_gbps = line_gbps
        count = num_paths if num_paths is not None else profile.num_paths
        if count < 1:
            raise ValueError(f"need at least one path, got {count}")
        self.mtu_bytes = mtu_bytes
        self.paths: List[PathState] = [
            PathState(
                path_id=PATH_PORT_BASE + i,
                cc=HpccCongestionControl(base_rtt_ns, mtu_bytes, line_gbps),
                srtt_ns=float(base_rtt_ns),
                rto_ns=profile.min_rto_ns,
            )
            for i in range(count)
        ]
        self._next_port = PATH_PORT_BASE + count
        self.path_shifts = 0
        self.path_rotations = 0

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def pick(self, size_bytes: int) -> Optional[PathState]:
        """Choose a path for a packet: healthy + window room, lowest RTT.

        Returns None when every healthy path's window is full (the caller
        queues the packet until an ACK opens a window).  If *all* paths are
        on probation, the least-recently-failed one is used anyway — there
        is nothing better to try, and probing it is how we discover
        recovery.
        """
        healthy = [p for p in self.paths if p.healthy(self.sim.now)]
        if not healthy:
            return min(self.paths, key=lambda p: p.failed_until_ns)
        open_paths = [p for p in healthy if p.window_open(size_bytes)]
        if not open_paths:
            return None
        return min(open_paths, key=self._path_cost)

    def _path_cost(self, path: PathState) -> float:
        """Expected delay of a path: smoothed RTT plus the drain time of
        whatever queue the last INT probe saw on it (0 without probing)."""
        drain_ns = path.probed_queue_bytes * 8 / self.line_gbps  # bytes -> ns
        return path.srtt_ns + drain_ns

    def best_alternative(self, avoid: PathState, size_bytes: int) -> PathState:
        """Path for a retransmission: prefer anything but ``avoid``."""
        candidates = [
            p for p in self.paths if p is not avoid and p.healthy(self.sim.now)
        ]
        if candidates:
            return min(candidates, key=self._path_cost)
        return avoid

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def on_ack(
        self,
        path: PathState,
        sent_ns: int,
        size_bytes: int,
        int_records: List[IntRecord],
        seq: int,
    ) -> None:
        rtt = self.sim.now - sent_ns
        path.srtt_ns = 0.875 * path.srtt_ns + 0.125 * rtt
        path.rto_ns = max(
            self.profile.min_rto_ns, min(int(path.srtt_ns * 4), self.profile.max_rto_ns)
        )
        path.inflight_bytes = max(0, path.inflight_bytes - size_bytes)
        path.consecutive_timeouts = 0
        path.packets_acked += 1
        if seq > path.highest_acked_seq:
            path.highest_acked_seq = seq
        path.cc.on_ack(int_records, self.sim.now)

    def on_timeout(self, path: PathState, size_bytes: int) -> bool:
        """Record a timeout; returns True if the path was declared failed."""
        path.inflight_bytes = max(0, path.inflight_bytes - size_bytes)
        path.timeouts += 1
        path.consecutive_timeouts += 1
        path.cc.on_timeout()
        path.rto_ns = min(path.rto_ns * 2, self.profile.max_rto_ns)
        if path.consecutive_timeouts >= self.profile.path_failure_timeouts:
            if path.healthy(self.sim.now):
                self.path_shifts += 1
            if self.profile.rotate_failed_paths:
                self._rotate(path)
            else:
                path.failed_until_ns = self.sim.now + self.profile.path_probation_ns
            path.consecutive_timeouts = 0
            return True
        return False

    def _rotate(self, path: PathState) -> None:
        """Re-key a failed path onto a fresh UDP source port.

        A 'persistent path' is just a port number; when consecutive
        timeouts condemn one, picking a new port re-rolls the ECMP hash at
        every hop — the cheapest possible way to escape a failure point
        that *all* current paths happen to share (the slow-recovery case
        §4.5 admits).  The path restarts with fresh CC/RTT state and a
        brief backoff so a cascade of rotations cannot spin hot.
        """
        self.path_rotations += 1
        path.path_id = self._next_port
        self._next_port += 1
        path.cc = HpccCongestionControl(
            self.base_rtt_ns, self.mtu_bytes, self.line_gbps
        )
        path.srtt_ns = float(self.base_rtt_ns)
        # Carry some backoff across rotations (a re-rolled port is just as
        # dead during a full outage, so retry pressure must stay bounded),
        # but cap it low enough that probing a *healthy* re-roll never
        # stalls recovery past the sub-second goal.  A healthy rotation
        # re-floors the RTO on its first ACK.
        path.rto_ns = min(max(path.rto_ns, self.profile.min_rto_ns),
                          8 * self.profile.min_rto_ns)
        path.inflight_bytes = 0
        path.outstanding.clear()
        path.next_seq = 0
        path.highest_acked_seq = -1
        path.probed_queue_bytes = 0
        path.failed_until_ns = self.sim.now + self.profile.min_rto_ns

    def on_sent(self, path: PathState, size_bytes: int) -> None:
        path.inflight_bytes += size_bytes
        path.packets_sent += 1

    # ------------------------------------------------------------------
    def path_by_id(self, path_id: int) -> PathState:
        for path in self.paths:
            if path.path_id == path_id:
                return path
        raise KeyError(f"unknown path id {path_id}")

    def healthy_count(self) -> int:
        return sum(1 for p in self.paths if p.healthy(self.sim.now))
