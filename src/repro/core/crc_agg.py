"""Software CRC aggregation — SOLAR's defence against FPGA errors (§4.5).

The problem: CRC32 is computed in the FPGA, but the FPGA itself is the
largest source of corruption events (37%, Figure 11) — a bit flip can
corrupt data, table entries or "distort the execution logic", so a
hardware self-check cannot be trusted.  Recomputing every block's CRC on
the CPU would defeat the offload.

SOLAR's answer: the CPU verifies only an *aggregate* of the per-block CRC
values.  CRC32 is linear over GF(2) — ``CRC(A ^ B) = CRC(A) ^ CRC(B)`` in
the raw (init-0, no final XOR) form — so the XOR of per-block CRCs is
itself a checksum of the whole group, and comparing two 32-bit aggregates
costs a handful of XOR instructions per I/O regardless of data volume.
An FPGA fault that corrupts any block's data or CRC value changes the
aggregate with probability 1 - 2^-32.

Two aggregate forms are provided:

* :func:`xor_aggregate` / :meth:`CrcAggregator.check` — the XOR-fold used
  per I/O on the ACK/completion path;
* :meth:`CrcAggregator.check_segment` — the segment-level form, folding
  per-block CRCs into the CRC of the whole segment via GF(2) matrix
  combination (no payload bytes touched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..storage.crc import crc32, crc32_of_concat, crc32_raw, xor_bytes


def xor_aggregate(crcs: Iterable[int]) -> int:
    """XOR-fold a set of 32-bit CRC values."""
    agg = 0
    for crc in crcs:
        agg ^= crc & 0xFFFFFFFF
    return agg


def aggregate_payload_check(blocks: Sequence[bytes], raw_crcs: Sequence[int]) -> bool:
    """The textbook identity: CRC_raw(XOR of blocks) == XOR of raw CRCs.

    Demonstrates (and tests) the §4.5 divide-and-conquer property on real
    payload bytes.  All blocks must have equal length.
    """
    if len(blocks) != len(raw_crcs):
        raise ValueError("blocks/crcs length mismatch")
    if not blocks:
        return True
    length = len(blocks[0])
    if any(len(b) != length for b in blocks):
        raise ValueError("aggregate_payload_check requires equal-length blocks")
    folded = blocks[0]
    for block in blocks[1:]:
        folded = xor_bytes(folded, block)
    return crc32_raw(folded) == xor_aggregate(raw_crcs)


@dataclass
class IntegrityReport:
    """Outcome of a software aggregation check over one I/O."""

    ok: bool
    checked_blocks: int
    #: Indices localized as corrupted (only populated after localize()).
    corrupted_indices: List[int] = field(default_factory=list)


class CrcAggregator:
    """The CPU-side integrity checker of the SOLAR control plane."""

    #: Fixed CPU cost of one aggregate check, plus a tiny per-block term —
    #: this is the "lightweight check" the CPU pays instead of full CRCs.
    BASE_COST_NS = 200
    PER_BLOCK_COST_NS = 30
    #: Full software CRC cost per byte, paid only on mismatch localization.
    RECOMPUTE_PER_BYTE_NS = 0.35

    def __init__(self) -> None:
        self.checks = 0
        self.mismatches = 0

    # ------------------------------------------------------------------
    def check(
        self, fpga_crcs: Sequence[int], expected_crcs: Sequence[int]
    ) -> IntegrityReport:
        """Compare the XOR-aggregates of hardware and expected CRCs."""
        if len(fpga_crcs) != len(expected_crcs):
            raise ValueError(
                f"CRC count mismatch: {len(fpga_crcs)} vs {len(expected_crcs)}"
            )
        self.checks += 1
        ok = xor_aggregate(fpga_crcs) == xor_aggregate(expected_crcs)
        if not ok:
            self.mismatches += 1
        return IntegrityReport(ok=ok, checked_blocks=len(fpga_crcs))

    def check_segment(
        self,
        block_crcs: Sequence[int],
        block_len: int,
        expected_segment_crc: int,
    ) -> bool:
        """Verify per-block CRCs against a stored segment-level CRC by
        GF(2) combination (the literal "segment level CRC" check)."""
        self.checks += 1
        ok = crc32_of_concat(block_crcs, block_len) == expected_segment_crc
        if not ok:
            self.mismatches += 1
        return ok

    # ------------------------------------------------------------------
    def localize(
        self,
        blocks: Sequence[Optional[bytes]],
        fpga_crcs: Sequence[int],
    ) -> List[int]:
        """After an aggregate mismatch, recompute per-block CRCs in
        software to find the corrupted blocks (the expensive path, taken
        only on the rare mismatch)."""
        bad = []
        for index, (data, claimed) in enumerate(zip(blocks, fpga_crcs)):
            if data is None:
                continue
            if crc32(data) != claimed:
                bad.append(index)
        return bad

    # ------------------------------------------------------------------
    def check_cost_ns(self, num_blocks: int) -> int:
        return self.BASE_COST_NS + self.PER_BLOCK_COST_NS * num_blocks

    def recompute_cost_ns(self, total_bytes: int) -> int:
        return int(self.RECOMPUTE_PER_BYTE_NS * total_bytes)
