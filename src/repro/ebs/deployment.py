"""Full EBS deployments: compute cluster + FN fabric + storage cluster,
wired for one frontend stack.

An :class:`EbsDeployment` assembles, from one spec:

* a Clos FN topology with a compute pod and a storage pod (§2.1);
* compute servers (VM or bare-metal hosting) with their SA + FN stack;
* storage servers, each colocating a block server and a chunk server,
  joined by the BN (RDMA for LUNA/SOLAR eras, kernel TCP for the kernel
  era — Figure 6's caption);
* global segment/QoS tables and a trace collector.

Five stack flavours reproduce the paper's comparisons: ``kernel``,
``luna``, ``rdma``, ``solar`` and ``solar_star`` (SOLAR with datapath
offload disabled, §4.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..agent.base import IoRequest, StorageAgent
from ..agent.rpc import StorageRpcServer
from ..agent.sa_software import SoftwareSA
from ..agent.sa_solar import SolarSA
from ..core.dpu_offload import SolarOffload
from ..core.solar import SolarClient, SolarServer
from ..host.cpu import CpuComplex
from ..host.server import ComputeServer, StorageServer
from ..metrics.trace import TraceCollector
from ..net.topology import ClosTopology, PodSpec
from ..profiles import DEFAULT, Profiles, bytes_time_ns
from ..sim.engine import Simulator
from ..storage.block_server import BlockServer
from ..storage.bn import BackendNetwork
from ..storage.chunk_server import ChunkServer
from ..storage.crypto import BlockCipher
from ..storage.qos import QosSpec, QosTable
from ..storage.segment_table import SegmentTable
from ..transport.kernel_tcp import KernelTcpTransport
from ..transport.luna import LunaTransport
from ..transport.rdma import RdmaTransport
from ..transport.stream import StreamTransport

STACKS = ("kernel", "luna", "rdma", "solar", "solar_star")

#: Generous default service level so QoS queueing never pollutes latency
#: measurements (Figure 6 excludes policy-based queueing delays).
GENEROUS_QOS = QosSpec(iops_limit=2_000_000, bandwidth_bps=400e9)


@dataclass(frozen=True)
class DeploymentSpec:
    """Shape and configuration of one EBS deployment."""

    stack: str = "solar"
    hosting: Optional[str] = None  # default: stack-appropriate
    compute_racks: int = 2
    compute_hosts_per_rack: int = 4
    storage_racks: int = 2
    storage_hosts_per_rack: int = 4
    spines_per_pod: int = 2
    bn_mode: Optional[str] = None  # default: "kernel" for kernel, else "rdma"
    #: Cores available to the FN stack + SA (None = all infra cores).
    stack_cores: Optional[int] = None
    solar_paths: Optional[int] = None
    #: INT-probe cadence (ns) for SOLAR path selection; None disables the
    #: §4.5 "explicit path selection" extension (the paper's deployed
    #: system relies on timeouts alone).
    solar_probing_ns: Optional[int] = None
    luna_jumbo: bool = False
    encrypt_payloads: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.stack not in STACKS:
            raise ValueError(f"stack must be one of {STACKS}, got {self.stack!r}")

    @property
    def effective_hosting(self) -> str:
        if self.hosting is not None:
            return self.hosting
        # SOLAR only exists on DPUs; kernel/LUNA default to the VM era.
        return "bare_metal" if self.stack.startswith("solar") or self.stack == "rdma" else "vm"

    @property
    def effective_bn(self) -> str:
        if self.bn_mode is not None:
            return self.bn_mode
        return "kernel" if self.stack == "kernel" else "rdma"


class EbsDeployment:
    """A runnable EBS installation under one FN stack."""

    def __init__(
        self,
        spec: DeploymentSpec,
        profiles: Profiles = DEFAULT,
        sim: Optional[Simulator] = None,
    ):
        self.spec = spec
        self.profiles = profiles.with_overrides(sa={"encrypt": spec.encrypt_payloads})
        #: Passing ``sim`` lets several deployments share one clock — the
        #: control plane (repro.control) runs per-stack installations side
        #: by side inside a single simulation.
        self.sim = Simulator(seed=spec.seed) if sim is None else sim
        self.collector = TraceCollector()
        self.segment_table = SegmentTable()
        self.qos_table = QosTable()
        self.cipher = BlockCipher(b"ebs-fleet-key") if spec.encrypt_payloads else None
        self.topology = ClosTopology(
            self.sim,
            self.profiles.network,
            [
                PodSpec(
                    "cp",
                    spec.compute_racks,
                    spec.compute_hosts_per_rack,
                    spines=spec.spines_per_pod,
                    role="compute",
                ),
                PodSpec(
                    "sp",
                    spec.storage_racks,
                    spec.storage_hosts_per_rack,
                    spines=spec.spines_per_pod,
                    role="storage",
                ),
            ],
        )
        self.bn = BackendNetwork(self.sim, self.profiles, spec.effective_bn)
        self.compute_servers: Dict[str, ComputeServer] = {}
        self.storage_servers: Dict[str, StorageServer] = {}
        self.chunk_servers: Dict[str, ChunkServer] = {}
        self.block_servers: Dict[str, BlockServer] = {}
        self.agents: Dict[str, StorageAgent] = {}
        self.client_transports: Dict[str, StreamTransport] = {}
        self.server_transports: Dict[str, StreamTransport] = {}
        self.solar_clients: Dict[str, SolarClient] = {}
        self.solar_offloads: Dict[str, SolarOffload] = {}
        self.solar_servers: Dict[str, SolarServer] = {}
        self._build_storage()
        self._build_compute()
        self._vds: Dict[str, List] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_storage(self) -> None:
        for endpoint in self.topology.hosts_in_pod("sp"):
            server = StorageServer(self.sim, endpoint, role="block")
            self.storage_servers[endpoint.name] = server
            self.chunk_servers[endpoint.name] = ChunkServer(
                self.sim, server, self.profiles.ssd
            )
        for name, server in self.storage_servers.items():
            self.block_servers[name] = BlockServer(
                self.sim, server, self.bn, self.chunk_servers, self.profiles.ssd
            )
        for name, server in self.storage_servers.items():
            if self.spec.stack.startswith("solar"):
                self.solar_servers[name] = SolarServer(
                    self.sim,
                    server.endpoint,
                    server.cpu,
                    self.block_servers[name],
                    self.profiles,
                )
            else:
                transport = self._make_stream_transport(server.endpoint, server.cpu)
                self.server_transports[name] = transport
                StorageRpcServer(self.sim, transport, self.block_servers[name])

    def _make_stream_transport(self, endpoint, cpu: CpuComplex) -> StreamTransport:
        stack = self.spec.stack
        if stack == "kernel":
            return KernelTcpTransport(self.sim, endpoint, cpu, self.profiles)
        if stack == "luna":
            return LunaTransport(
                self.sim, endpoint, cpu, self.profiles, jumbo=self.spec.luna_jumbo
            )
        if stack == "rdma":
            return RdmaTransport(self.sim, endpoint, cpu, self.profiles)
        raise ValueError(f"no stream transport for stack {stack!r}")

    def _stack_cpu(self, server: ComputeServer) -> CpuComplex:
        if self.spec.stack_cores is None:
            return server.infra_cpu
        base = server.infra_cpu
        cores = min(self.spec.stack_cores, len(base))
        return CpuComplex(
            self.sim, f"{server.name}/stack-cpu", cores, base.cores[0].ghz
        )

    def base_rtt_ns(self, compute_host: str, storage_host: str) -> int:
        """Fabric base RTT estimate for HPCC/path init (no queueing)."""
        net = self.profiles.network
        hops = self.topology.path_hops(compute_host, storage_host)
        one_way = hops * (net.switch_forward_ns + net.link_propagation_ns) + net.link_propagation_ns
        wire = bytes_time_ns(4096 + net.header_overhead_bytes, net.access_gbps)
        return 2 * one_way + wire

    def _build_compute(self) -> None:
        storage_names = sorted(self.storage_servers)
        for endpoint in self.topology.hosts_in_pod("cp"):
            server = ComputeServer(
                self.sim, endpoint, self.profiles, hosting=self.spec.effective_hosting
            )
            self.compute_servers[endpoint.name] = server
            cpu = self._stack_cpu(server)
            if self.spec.stack.startswith("solar"):
                offload: Optional[SolarOffload] = None
                if self.spec.stack == "solar":
                    assert server.dpu is not None, "SOLAR requires bare-metal DPU"
                    offload = SolarOffload(
                        self.sim, server.dpu, self.profiles, cipher=self.cipher
                    )
                    self.solar_offloads[endpoint.name] = offload
                client = SolarClient(
                    self.sim,
                    endpoint,
                    cpu,
                    self.profiles,
                    offload,
                    base_rtt_ns=self.base_rtt_ns(endpoint.name, storage_names[0]),
                    num_paths=self.spec.solar_paths,
                )
                client.dpu = server.dpu
                client.probe_interval_ns = self.spec.solar_probing_ns
                self.solar_clients[endpoint.name] = client
                self.agents[endpoint.name] = SolarSA(
                    self.sim,
                    server,
                    client,
                    self.segment_table,
                    self.qos_table,
                    self.profiles,
                    collector=self.collector,
                )
            else:
                transport = self._make_stream_transport(endpoint, cpu)
                self.client_transports[endpoint.name] = transport
                self.agents[endpoint.name] = SoftwareSA(
                    self.sim,
                    server,
                    transport,
                    self.server_transports,
                    self.segment_table,
                    self.qos_table,
                    self.profiles,
                    cipher=self.cipher,
                    collector=self.collector,
                    cpu=cpu,  # SA and stack compete for the same cores
                )

    # ------------------------------------------------------------------
    # Provisioning and I/O
    # ------------------------------------------------------------------
    def provision_vd(
        self, vd_id: str, size_bytes: int, qos: QosSpec = GENEROUS_QOS,
        replicas: int = 3,
    ) -> None:
        storage_names = sorted(self.storage_servers)
        segments = self.segment_table.provision(
            vd_id, size_bytes, storage_names, storage_names, replicas=replicas
        )
        self.qos_table.install(vd_id, qos)
        for offload in self.solar_offloads.values():
            offload.install_vd(vd_id, segments)

    def has_vd(self, vd_id: str) -> bool:
        """Whether ``vd_id`` is provisioned on this deployment."""
        return vd_id in self.segment_table

    def refresh_vd(self, vd_id: str) -> None:
        """Re-push a VD's (possibly reassigned) segments to the datapath.

        The software stacks look segments up per I/O, but SOLAR's offload
        caches them in hardware tables — after the control plane moves
        segments (failover, rebalance) those tables must be re-installed.
        """
        segments = self.segment_table.segments_of(vd_id)
        for offload in self.solar_offloads.values():
            offload.install_vd(vd_id, segments)

    def compute_host_names(self) -> List[str]:
        return sorted(self.compute_servers)

    def agent_for(self, host_name: str) -> StorageAgent:
        try:
            return self.agents[host_name]
        except KeyError:
            raise KeyError(
                f"{host_name!r} is not a compute host; options: "
                f"{self.compute_host_names()}"
            ) from None

    def submit_io(
        self,
        host_name: str,
        kind: str,
        vd_id: str,
        offset_bytes: int,
        size_bytes: int,
        on_complete: Callable[[IoRequest], None],
        data: Optional[bytes] = None,
    ) -> IoRequest:
        io = IoRequest(kind, vd_id, offset_bytes, size_bytes, on_complete, data=data)
        self.agent_for(host_name).submit(io)
        return io

    def run(self, until_ns: Optional[int] = None) -> int:
        return self.sim.run(until=until_ns)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_telemetry(self, plane) -> None:
        """Expose this deployment's scrape surface to a telemetry plane.

        Two hooks, both pull-based so the data path never blocks on
        monitoring: every completed trace streams to the plane's online
        diagnosis engine, and each storage agent's I/O counters become
        per-node gauges (``StorageAgent.scrape_counters``).  VDs opt in
        individually via ``plane.watch_vd`` — they are created after the
        deployment, by the workload.
        """
        self.collector.subscribe(plane.on_trace)
        for name in sorted(self.agents):
            plane.register_agent(name, self.agents[name])
