"""Integrated EBS for edge/private clouds — the §4.8 discussion item.

"In edge or private clouds where the network scale is limited but
bare-metal hosting and high-performance are still needed, we can consider
merging the SA and the block server into DPU and implement them in the
hardware P4-capable pipeline."

This module implements that design on top of the existing SOLAR machinery:

* chunk servers speak SOLAR directly — each runs a :class:`SolarServer`
  whose backing "block server" (:class:`LocalChunkBackend`) writes/reads
  its *own* chunk store with no BN hop and no fan-out;
* the compute DPU absorbs the block server's job: the
  :class:`EdgeReplicator` fans every block out to all replica chunk
  servers itself (one SOLAR RPC per replica) and acks the guest when the
  write quorum completes.

Compared to the standard deployment this removes one network transition
and one server hop per I/O — the "high network communication overhead" of
compute-storage separation that §4.8 calls out for small clusters.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional

from ..agent.base import IoRequest, StorageAgent
from ..core.solar import SolarClient, SolarRpc
from ..host.server import ComputeServer
from ..metrics.trace import IoTrace, TraceCollector
from ..profiles import BLOCK_SIZE, Profiles
from ..sim.engine import Simulator
from ..storage.block import DataBlock, split_into_blocks
from ..storage.chunk_server import ChunkReply, ChunkRequest, ChunkServer
from ..storage.qos import QosTable
from ..storage.segment_table import Extent, Segment, SegmentTable


class LocalChunkBackend:
    """Adapts one chunk server to the block-server interface SolarServer
    expects — minus the BN and minus replication (the client replicates)."""

    def __init__(self, sim: Simulator, chunk: ChunkServer):
        self.sim = sim
        self.chunk = chunk

    def handle_write(
        self,
        segment: Segment,
        block: DataBlock,
        crc: int,
        on_done: Callable[[bool, List[ChunkReply]], None],
    ) -> None:
        request = ChunkRequest(
            "write", segment.segment_id, block.vd_id, block.lba,
            block.size_bytes, data=block.data, crc=crc,
        )
        self.chunk.handle(request, lambda reply, _size: on_done(reply.ok, [reply]))

    def handle_read(
        self,
        segment: Segment,
        vd_id: str,
        lba: int,
        size_bytes: int,
        on_done: Callable[[ChunkReply], None],
    ) -> None:
        request = ChunkRequest("read", segment.segment_id, vd_id, lba, size_bytes)
        self.chunk.handle(request, lambda reply, _size: on_done(reply))


class EdgeReplicator(StorageAgent):
    """SA + block server merged on the compute DPU (§4.8).

    WRITE: one SOLAR RPC per (extent, replica); the I/O completes when
    every replica of every extent acks — the write quorum that a block
    server would otherwise coordinate.  READ: one RPC to the primary.
    """

    def __init__(
        self,
        sim: Simulator,
        server: ComputeServer,
        client: SolarClient,
        segment_table: SegmentTable,
        qos_table: QosTable,
        profiles: Profiles,
        collector: Optional[TraceCollector] = None,
    ):
        self.sim = sim
        self.server = server
        self.client = client
        self.segment_table = segment_table
        self.qos_table = qos_table
        self.profiles = profiles
        self.collector = collector
        self.ios_submitted = 0
        self.ios_completed = 0
        self.ios_failed = 0

    # ------------------------------------------------------------------
    def submit(self, io: IoRequest) -> None:
        self.ios_submitted += 1
        if io.trace is None:
            io.trace = IoTrace(io.io_id, io.kind, io.size_bytes, self.sim.now)
        self.server.nvme.submit(io, self._after_nvme)

    def _after_nvme(self, io: IoRequest) -> None:
        delay = self.qos_table.admit(io.vd_id, self.sim.now, io.size_bytes)
        self.sim.schedule(delay, self._dispatch, io)

    def _blocks_for(self, io: IoRequest, extent: Extent) -> List[DataBlock]:
        blocks = split_into_blocks(
            io.vd_id, extent.start_lba * BLOCK_SIZE, extent.num_blocks * BLOCK_SIZE
        )
        if io.data is None:
            return blocks
        rel = (extent.start_lba - io.start_lba) * BLOCK_SIZE
        return [
            b.with_data(io.data[rel + i * BLOCK_SIZE:
                                rel + i * BLOCK_SIZE + b.size_bytes]
                        .ljust(b.size_bytes, b"\0"))
            for i, b in enumerate(blocks)
        ]

    def _dispatch(self, io: IoRequest) -> None:
        extents = self.segment_table.extents(io.vd_id, io.start_lba, io.num_blocks)
        rpcs: List[tuple] = []
        for extent in extents:
            if io.kind == "write":
                # One RPC per replica: the DPU *is* the block server now.
                for replica in extent.segment.replicas:
                    target_seg = dc_replace(
                        extent.segment, block_server=replica, replicas=(replica,)
                    )
                    rpcs.append((dc_replace(extent, segment=target_seg), extent))
            else:
                primary = extent.segment.replicas[0]
                target_seg = dc_replace(
                    extent.segment, block_server=primary, replicas=(primary,)
                )
                rpcs.append((dc_replace(extent, segment=target_seg), extent))
        state = {"pending": len(rpcs), "ok": True, "critical": None}
        for target_extent, source_extent in rpcs:
            done = lambda rpc, ok, i=io, s=state: self._rpc_done(i, s, rpc, ok)
            if io.kind == "write":
                self.client.submit_write(
                    target_extent, self._blocks_for(io, source_extent), done
                )
            else:
                self.client.submit_read(target_extent, done)

    def _rpc_done(self, io: IoRequest, state: Dict, rpc: SolarRpc, ok: bool) -> None:
        state["pending"] -= 1
        state["ok"] = state["ok"] and ok
        critical: Optional[SolarRpc] = state["critical"]
        if critical is None or rpc.completed_ns >= critical.completed_ns:
            state["critical"] = rpc
        if state["pending"] == 0:
            self._finish(io, state)

    def _finish(self, io: IoRequest, state: Dict) -> None:
        rpc: SolarRpc = state["critical"]
        ok = bool(state["ok"])
        trace = io.trace
        if ok and rpc.first_sent_ns is not None:
            storage_ns = rpc.storage_ns
            ssd_ns = min(rpc.ssd_ns, storage_ns)
            trace.add("sa", max(0, rpc.first_sent_ns - trace.submit_ns))
            trace.add("fn", max(0, (rpc.completed_ns - rpc.first_sent_ns) - storage_ns))
            # No BN exists in the integrated design; storage time beyond
            # the SSD is chunk-server processing, attributed to SSD like
            # Figure 6 does ("SSD includes the processing time in chunk
            # servers").
            trace.add("ssd", storage_ns)
            trace.add("sa", max(0, self.sim.now - rpc.completed_ns))
            self.ios_completed += 1
        else:
            self.ios_failed += 1
        trace.complete(self.sim.now, ok)
        if self.collector is not None:
            self.collector.record(trace)
        self.server.nvme.complete(io, lambda _io: io.on_complete(io))


def convert_to_edge(deployment) -> None:
    """Rewire a standard SOLAR deployment into the integrated design.

    Storage hosts keep their chunk servers but lose the block-server hop:
    their SolarServer is re-backed by a :class:`LocalChunkBackend`.
    Compute hosts swap their :class:`~repro.agent.sa_solar.SolarSA` for an
    :class:`EdgeReplicator` (same SolarClient underneath).
    """
    if not deployment.solar_servers:
        raise ValueError("edge conversion requires a SOLAR deployment")
    for name, solar_server in deployment.solar_servers.items():
        solar_server.block_server = LocalChunkBackend(
            deployment.sim, deployment.chunk_servers[name]
        )
    for host, client in deployment.solar_clients.items():
        deployment.agents[host] = EdgeReplicator(
            deployment.sim,
            deployment.compute_servers[host],
            client,
            deployment.segment_table,
            deployment.qos_table,
            deployment.profiles,
            collector=deployment.collector,
        )
