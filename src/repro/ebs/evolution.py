"""Fleet-evolution model for Figure 7.

Figure 7 plots the fleet-wide average I/O latency and per-server IOPS,
quarter by quarter, as LUNA and then SOLAR roll out.  The fleet average at
any quarter is a mix of the per-stack steady-state numbers weighted by
rollout fractions; the rollout curves follow the deployment milestones the
paper gives (LUNA released 2019, fully deployed by 2021 Q1; SOLAR at scale
from 2020 and "deployed ... since 2020" over ~100K servers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

QUARTERS = [
    "19Q1", "19Q2", "19Q3", "19Q4",
    "20Q1", "20Q2", "20Q3", "20Q4",
    "21Q1", "21Q2", "21Q3", "21Q4",
]

#: Fraction of the fleet on each stack per quarter (rows sum to 1).
#: LUNA ramps 2019→2021Q1 ("by the time it was fully deployed (2021 Q1)");
#: SOLAR ramps from 2020 ("deployed in our production ... since 2020").
DEFAULT_ROLLOUT: Dict[str, Dict[str, float]] = {
    "19Q1": {"kernel": 0.95, "luna": 0.05, "solar": 0.00},
    "19Q2": {"kernel": 0.80, "luna": 0.20, "solar": 0.00},
    "19Q3": {"kernel": 0.60, "luna": 0.40, "solar": 0.00},
    "19Q4": {"kernel": 0.45, "luna": 0.55, "solar": 0.00},
    "20Q1": {"kernel": 0.30, "luna": 0.70, "solar": 0.00},
    "20Q2": {"kernel": 0.20, "luna": 0.78, "solar": 0.02},
    "20Q3": {"kernel": 0.12, "luna": 0.80, "solar": 0.08},
    "20Q4": {"kernel": 0.05, "luna": 0.80, "solar": 0.15},
    "21Q1": {"kernel": 0.00, "luna": 0.75, "solar": 0.25},
    "21Q2": {"kernel": 0.00, "luna": 0.65, "solar": 0.35},
    "21Q3": {"kernel": 0.00, "luna": 0.55, "solar": 0.45},
    "21Q4": {"kernel": 0.00, "luna": 0.45, "solar": 0.55},
}


@dataclass(frozen=True)
class StackSteadyState:
    """Per-stack steady-state metrics feeding the fleet mix."""

    avg_latency_us: float
    iops_per_server: float


@dataclass
class EvolutionPoint:
    quarter: str
    avg_latency_us: float
    iops_per_server: float
    latency_vs_19q1: float  # normalized as in Figure 7
    iops_vs_21q4: float


def fleet_evolution(
    per_stack: Dict[str, StackSteadyState],
    rollout: Dict[str, Dict[str, float]] = DEFAULT_ROLLOUT,
) -> List[EvolutionPoint]:
    """Blend per-stack measurements through the rollout schedule.

    IOPS additionally carries the demand growth that lower latency
    unlocks: guests issue deeper queues as I/O gets faster, so per-server
    IOPS scales inversely with the blended latency (the paper attributes
    the 220% IOPS scale-up to the network stacks).
    """
    missing = {s for q in rollout.values() for s in q} - set(per_stack)
    if missing:
        raise KeyError(f"per_stack missing stacks: {sorted(missing)}")
    points: List[EvolutionPoint] = []
    for quarter in QUARTERS:
        mix = rollout[quarter]
        total = sum(mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"rollout for {quarter} sums to {total}, expected 1")
        latency = sum(per_stack[s].avg_latency_us * f for s, f in mix.items())
        iops = sum(per_stack[s].iops_per_server * f for s, f in mix.items())
        points.append(EvolutionPoint(quarter, latency, iops, 0.0, 0.0))
    lat0 = points[0].avg_latency_us
    iops_last = points[-1].iops_per_server
    for p in points:
        p.latency_vs_19q1 = p.avg_latency_us / lat0
        p.iops_vs_21q4 = p.iops_per_server / iops_last
    return points
