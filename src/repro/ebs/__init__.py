"""EBS service assembly: deployments, virtual disks, fleet evolution."""

from .deployment import (
    DeploymentSpec,
    EbsDeployment,
    GENEROUS_QOS,
    STACKS,
)
from .evolution import (
    DEFAULT_ROLLOUT,
    EvolutionPoint,
    QUARTERS,
    StackSteadyState,
    fleet_evolution,
)
from .virtual_disk import VirtualDisk

__all__ = [
    "DeploymentSpec",
    "EbsDeployment",
    "VirtualDisk",
    "GENEROUS_QOS",
    "STACKS",
    "fleet_evolution",
    "StackSteadyState",
    "EvolutionPoint",
    "DEFAULT_ROLLOUT",
    "QUARTERS",
]
