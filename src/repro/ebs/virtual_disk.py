"""Virtual disk facade: the guest-visible device (§2.1).

Beyond plain read/write submission, the VD tracks its in-flight I/Os and
exposes the control-plane hooks the paper's operational machinery needs
(§5, Table 2): ``pause`` stops admission, ``when_drained`` fires once all
in-flight I/Os have completed, and ``detach`` retires the device after a
live migration has re-attached it elsewhere (`repro.control.migration`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..agent.base import IoRequest
from ..profiles import BLOCK_SIZE
from .deployment import EbsDeployment, GENEROUS_QOS
from ..storage.qos import QosSpec


class VdStateError(RuntimeError):
    """I/O submitted against a paused or detached virtual disk."""


class VirtualDisk:
    """One VD attached to one compute host of a deployment."""

    def __init__(
        self,
        deployment: EbsDeployment,
        vd_id: str,
        host_name: str,
        size_bytes: int,
        qos: QosSpec = GENEROUS_QOS,
        provision: bool = True,
        replicas: int = 3,
    ):
        self.deployment = deployment
        self.vd_id = vd_id
        self.host_name = host_name
        self.size_bytes = size_bytes
        if provision:
            deployment.provision_vd(vd_id, size_bytes, qos, replicas=replicas)
        self.reads = 0
        self.writes = 0
        #: In-flight I/Os by io_id — the connection-draining state the
        #: control plane inspects during migration and hot upgrade.
        self.inflight: Dict[int, IoRequest] = {}
        self.paused = False
        self.detached = False
        self._drain_waiters: List[Callable[[], None]] = []
        #: Completion observers (telemetry scrape hook): every finished
        #: I/O is shown to each observer before the guest callback runs.
        self._observers: List[Callable[[IoRequest], None]] = []

    def subscribe(self, observer: Callable[[IoRequest], None]) -> None:
        """Observe every completed I/O of this VD (per-VD telemetry)."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # Control-plane hooks
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop admitting guest I/O.  In-flight I/Os keep running."""
        self.paused = True

    def resume(self) -> None:
        if self.detached:
            raise VdStateError(f"VD {self.vd_id!r} is detached")
        self.paused = False

    def detach(self) -> None:
        """Retire this attachment for good (post-migration source side)."""
        self.paused = True
        self.detached = True

    def when_drained(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once no I/O is in flight (maybe immediately)."""
        if not self.inflight:
            self.deployment.sim.call_soon(callback)
        else:
            self._drain_waiters.append(callback)

    def _finish(self, io: IoRequest, on_complete: Callable[[IoRequest], None]) -> None:
        self.inflight.pop(io.io_id, None)
        for observer in self._observers:
            observer(io)
        on_complete(io)
        if not self.inflight and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for waiter in waiters:
                self.deployment.sim.call_soon(waiter)

    # ------------------------------------------------------------------
    # Guest I/O
    # ------------------------------------------------------------------
    def _check_range(self, offset: int, size: int) -> None:
        if self.detached:
            raise VdStateError(f"VD {self.vd_id!r} is detached")
        if self.paused:
            raise VdStateError(f"VD {self.vd_id!r} is paused for migration")
        if offset < 0 or size <= 0 or offset + size > self.size_bytes:
            raise ValueError(
                f"I/O [{offset}, {offset + size}) outside VD of {self.size_bytes}B"
            )
        if offset % BLOCK_SIZE:
            raise ValueError(f"offset {offset} not {BLOCK_SIZE}-aligned")

    def write(
        self,
        offset: int,
        size: int,
        on_complete: Callable[[IoRequest], None],
        data: Optional[bytes] = None,
    ) -> IoRequest:
        self._check_range(offset, size)
        self.writes += 1
        io = self.deployment.submit_io(
            self.host_name, "write", self.vd_id, offset, size,
            lambda done: self._finish(done, on_complete), data=data,
        )
        self.inflight[io.io_id] = io
        return io

    def read(
        self, offset: int, size: int, on_complete: Callable[[IoRequest], None]
    ) -> IoRequest:
        self._check_range(offset, size)
        self.reads += 1
        io = self.deployment.submit_io(
            self.host_name, "read", self.vd_id, offset, size,
            lambda done: self._finish(done, on_complete),
        )
        self.inflight[io.io_id] = io
        return io
