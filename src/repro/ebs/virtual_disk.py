"""Virtual disk facade: the guest-visible device (§2.1)."""

from __future__ import annotations

from typing import Callable, Optional

from ..agent.base import IoRequest
from ..profiles import BLOCK_SIZE
from .deployment import EbsDeployment, GENEROUS_QOS
from ..storage.qos import QosSpec


class VirtualDisk:
    """One VD attached to one compute host of a deployment."""

    def __init__(
        self,
        deployment: EbsDeployment,
        vd_id: str,
        host_name: str,
        size_bytes: int,
        qos: QosSpec = GENEROUS_QOS,
        provision: bool = True,
    ):
        self.deployment = deployment
        self.vd_id = vd_id
        self.host_name = host_name
        self.size_bytes = size_bytes
        if provision:
            deployment.provision_vd(vd_id, size_bytes, qos)
        self.reads = 0
        self.writes = 0

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size <= 0 or offset + size > self.size_bytes:
            raise ValueError(
                f"I/O [{offset}, {offset + size}) outside VD of {self.size_bytes}B"
            )
        if offset % BLOCK_SIZE:
            raise ValueError(f"offset {offset} not {BLOCK_SIZE}-aligned")

    def write(
        self,
        offset: int,
        size: int,
        on_complete: Callable[[IoRequest], None],
        data: Optional[bytes] = None,
    ) -> IoRequest:
        self._check_range(offset, size)
        self.writes += 1
        return self.deployment.submit_io(
            self.host_name, "write", self.vd_id, offset, size, on_complete, data=data
        )

    def read(
        self, offset: int, size: int, on_complete: Callable[[IoRequest], None]
    ) -> IoRequest:
        self._check_range(offset, size)
        self.reads += 1
        return self.deployment.submit_io(
            self.host_name, "read", self.vd_id, offset, size, on_complete
        )
