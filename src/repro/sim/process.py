"""Generator-based simulation processes.

Protocol state machines read far more naturally as sequential code than as
callback chains.  A :class:`Process` drives a Python generator whose
``yield`` statements suspend it:

* ``yield 500`` — sleep 500 nanoseconds (any non-negative int/float);
* ``yield Delay(us=3)`` — sleep with explicit units;
* ``yield signal`` — wait for a :class:`repro.sim.events.Signal` to fire,
  resuming with the signal's payload as the value of the yield expression;
* ``yield other_process`` — wait for another process to finish, resuming
  with its return value.

A process finishes when its generator returns (the return value is stored
on :attr:`Process.result` and its completion signal fires) or raises.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .engine import Simulator
from .events import Delay, Event, Signal


class ProcessFailed(RuntimeError):
    """Raised when joining a process whose generator raised an exception."""


class Process:
    """Drives a generator as a cooperatively scheduled simulation process."""

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.generator = generator
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finished = Signal(f"{self.name}.finished")
        self._pending_event: Optional[Event] = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, delay_ns: int = 0) -> "Process":
        """Begin executing the process after an optional delay."""
        if self._started:
            raise RuntimeError(f"process {self.name!r} already started")
        self._started = True
        self._pending_event = self.sim.schedule(delay_ns, self._step, None, False)
        return self

    def interrupt(self) -> None:
        """Kill the process: its generator is closed and it never completes.

        The completion signal still fires (with payload None) so joiners do
        not hang, but :attr:`result` stays None and :attr:`done` reports
        True with :attr:`interrupted` set.
        """
        if self.done:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self.generator.close()
        self.error = None
        self.interrupted = True
        if not self.finished.fired:
            self.finished.fire(None)

    interrupted = False

    @property
    def done(self) -> bool:
        return self.finished.fired

    # ------------------------------------------------------------------
    # Internal stepping
    # ------------------------------------------------------------------
    def _resume_soon(self, value: Any) -> None:
        """Called by Signal.fire: resume this process at the current instant."""
        self._pending_event = self.sim.call_soon(self._step, value, False)

    def _step(self, value: Any, is_error: bool) -> None:
        self._pending_event = None
        try:
            if is_error:
                yielded = self.generator.throw(value)
            else:
                yielded = self.generator.send(value)
        except StopIteration as stop:
            self.result = stop.value
            self.finished.fire(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - must record any failure
            self.error = exc
            self.finished.fire(None)
            raise
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Delay):
            self._pending_event = self.sim.schedule(yielded.ns, self._step, None, False)
        elif isinstance(yielded, (int, float)):
            self._pending_event = self.sim.schedule(int(yielded), self._step, None, False)
        elif isinstance(yielded, Signal):
            if yielded.fired:
                self._pending_event = self.sim.call_soon(self._step, yielded.value, False)
            else:
                yielded.add_waiter(self)
        elif isinstance(yielded, Process):
            if yielded.done:
                self._join_now(yielded)
            else:
                yielded.finished.add_waiter(_Joiner(self, yielded))
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _join_now(self, other: "Process") -> None:
        if other.error is not None:
            err = ProcessFailed(f"joined process {other.name!r} failed: {other.error!r}")
            err.__cause__ = other.error
            self._pending_event = self.sim.call_soon(self._step, err, True)
        else:
            self._pending_event = self.sim.call_soon(self._step, other.result, False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("running" if self._started else "new")
        return f"<Process {self.name!r} {state}>"


class _Joiner:
    """Adapter that lets a Process wait on another Process's finish signal."""

    __slots__ = ("waiter", "target")

    def __init__(self, waiter: Process, target: Process):
        self.waiter = waiter
        self.target = target

    def _resume_soon(self, _value: Any) -> None:
        self.waiter._join_now(self.target)


def spawn(sim: Simulator, generator: Generator, name: str = "", delay_ns: int = 0) -> Process:
    """Create and immediately start a :class:`Process`."""
    return Process(sim, generator, name=name).start(delay_ns)
