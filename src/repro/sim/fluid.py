"""Hybrid-fidelity simulation: fluid flows with detail windows.

The packet-level simulator is exact but pays one event per packet per
hop — fine for 30 ms of two hosts, prohibitive for fleet-scale horizons
(ROADMAP item 1).  This module adds the SimBricks-style fidelity split:
**steady-state flows become analytic rate aggregates** (a
:class:`FluidFlow` synthesizes I/O completions by sampling a calibrated
latency distribution, costing zero simulator events), while the
simulation **drops to per-I/O detail** around the intervals where
transient behaviour actually matters — faults, upgrades, rebuilds, and
SLO-window boundaries (periodic recalibration).

The pieces:

* :class:`FidelityController` — owns the detail/fluid timeline: a warmup
  calibration window, periodic recalibration windows at SLO boundaries,
  and guard windows requested around injected events
  (:meth:`FidelityController.request_detail` / :meth:`around`).
* :class:`LatencyReservoir` — per ``(kind, size)`` reservoir of detailed
  I/O outcomes (total latency + SA/FN/BN/SSD component breakdown),
  filled during detail segments, sampled during fluid segments.
* :class:`FluidFlow` — the analytic aggregate of one open-loop
  production flow: Poisson arrivals at a target rate with the production
  size/kind mix, each completion drawn from the reservoir.
* :class:`HybridRun` — drives one deployment through the segment
  timeline: real :class:`~repro.workloads.production.ProductionWorkload`
  load inside detail segments (traces feed the reservoir), fluid
  synthesis across everything else.

Fidelity contract: fluid-mode latency summaries must match detailed mode
within tolerance (pinned by ``tests/test_fluid.py`` and
``benchmarks/bench_hybrid_fidelity.py``: p50 within 10%, p95 within 20%
on the Figure 6 component breakdowns), and everything synthesized is
flagged (``synthetic`` mark) so downstream analysis can tell the modes
apart.  Determinism is preserved: synthesis draws from named RNG streams
of the same simulator, so a fixed seed yields byte-identical hybrid
artifacts.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..metrics.trace import COMPONENTS, IoTrace
from .engine import Simulator

MS = 1_000_000

#: Default guard added on both sides of a requested detail event.
DEFAULT_GUARD_NS = 2 * MS


@dataclass(frozen=True)
class DetailWindow:
    """One interval that must run at per-I/O fidelity."""

    start_ns: int
    end_ns: int
    reason: str = "detail"

    def __post_init__(self) -> None:
        if self.end_ns <= self.start_ns:
            raise ValueError(f"empty detail window [{self.start_ns}, {self.end_ns})")


@dataclass(frozen=True)
class Segment:
    """One piece of the hybrid timeline."""

    start_ns: int
    end_ns: int
    mode: str  # "detail" | "fluid"
    reason: str = ""

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class FidelityController:
    """Decides where the detailed/fluid boundary lies on the timeline.

    Three sources of detail windows:

    * **calibration** — ``[0, calibration_ns)`` always runs detailed, so
      the latency reservoir is populated before any fluid synthesis;
    * **SLO boundaries** — every ``slo_window_ns`` a recalibration
      window of ``recal_ns`` runs detailed, so slow drift (diurnal load,
      creeping congestion) is re-measured at each reporting boundary;
    * **requested** — faults, upgrades, and rebuilds register guard
      windows via :meth:`request_detail`/:meth:`around`; transients
      around those instants are simulated exactly, never synthesized.
    """

    def __init__(
        self,
        calibration_ns: int = 8 * MS,
        slo_window_ns: Optional[int] = 100 * MS,
        recal_ns: int = 2 * MS,
        guard_ns: int = DEFAULT_GUARD_NS,
    ):
        if calibration_ns <= 0:
            raise ValueError("calibration window must be positive")
        if slo_window_ns is not None and slo_window_ns <= recal_ns:
            raise ValueError("SLO window must exceed the recalibration window")
        self.calibration_ns = calibration_ns
        self.slo_window_ns = slo_window_ns
        self.recal_ns = recal_ns
        self.guard_ns = guard_ns
        self._requested: List[DetailWindow] = []

    # ------------------------------------------------------------------
    def request_detail(self, start_ns: int, end_ns: int, reason: str = "requested") -> None:
        """Force per-I/O fidelity across ``[start_ns, end_ns)``."""
        insort(
            self._requested,
            DetailWindow(max(0, start_ns), end_ns, reason),
            key=lambda w: w.start_ns,
        )

    def around(self, event_ns: int, reason: str = "event") -> None:
        """Guard-window helper: detail around one injected instant."""
        self.request_detail(event_ns - self.guard_ns, event_ns + self.guard_ns, reason)

    # ------------------------------------------------------------------
    def windows(self, horizon_ns: int) -> List[DetailWindow]:
        """All detail windows over ``[0, horizon_ns)``, merged and sorted."""
        raw: List[DetailWindow] = [
            DetailWindow(0, min(self.calibration_ns, horizon_ns), "calibration")
        ]
        if self.slo_window_ns is not None:
            boundary = self.slo_window_ns
            while boundary < horizon_ns:
                raw.append(
                    DetailWindow(
                        boundary, min(boundary + self.recal_ns, horizon_ns), "slo-recal"
                    )
                )
                boundary += self.slo_window_ns
        raw.extend(
            DetailWindow(w.start_ns, min(w.end_ns, horizon_ns), w.reason)
            for w in self._requested
            if w.start_ns < horizon_ns
        )
        raw.sort(key=lambda w: (w.start_ns, w.end_ns))
        merged: List[DetailWindow] = []
        for w in raw:
            if merged and w.start_ns <= merged[-1].end_ns:
                last = merged[-1]
                if w.end_ns > last.end_ns:
                    reason = last.reason if last.reason == w.reason else f"{last.reason}+{w.reason}"
                    merged[-1] = DetailWindow(last.start_ns, w.end_ns, reason)
            else:
                merged.append(w)
        return merged

    def segments(self, horizon_ns: int) -> List[Segment]:
        """Partition ``[0, horizon_ns)`` into alternating segments."""
        segments: List[Segment] = []
        cursor = 0
        for w in self.windows(horizon_ns):
            if w.start_ns > cursor:
                segments.append(Segment(cursor, w.start_ns, "fluid"))
            segments.append(Segment(w.start_ns, w.end_ns, "detail", w.reason))
            cursor = w.end_ns
        if cursor < horizon_ns:
            segments.append(Segment(cursor, horizon_ns, "fluid"))
        return segments


class LatencyReservoir:
    """Per ``(kind, size)`` calibration samples of detailed I/O outcomes.

    Samples are ``(total_ns, components)`` pairs captured from completed
    :class:`IoTrace` objects during detail segments.  Fluid synthesis
    draws uniformly from the class reservoir; a class never seen in
    detail falls back to the nearest-size class of the same kind (size
    scales latency smoothly — wire and SSD transfer time — so nearest
    size is the least-wrong stand-in).

    Recalibration is generational: each detail segment opens a new
    generation (:meth:`new_generation`), and a class samples from the
    *current* generation once it holds at least ``min_recent`` entries
    there.  That lets fluid synthesis track slow drift — warmup
    transients, diurnal load — instead of forever replaying the first
    calibration window's distribution.  Thin classes (and the window
    right after a sparse guard segment) keep the accumulated history.
    """

    def __init__(self, max_per_class: int = 4096, min_recent: int = 32):
        self.max_per_class = max_per_class
        self.min_recent = min_recent
        self._classes: Dict[Tuple[str, int], List[Tuple[int, Tuple[int, ...]]]] = {}
        self._recent: Dict[Tuple[str, int], List[Tuple[int, Tuple[int, ...]]]] = {}

    def new_generation(self) -> None:
        """Start a fresh recalibration generation (at a detail segment)."""
        self._recent = {}

    def add(self, trace: IoTrace) -> None:
        if not trace.ok:
            return  # failures are a detail-mode phenomenon; never replayed
        key = (trace.kind, trace.size_bytes)
        sample = (trace.total_ns, tuple(trace.components[c] for c in COMPONENTS))
        samples = self._classes.setdefault(key, [])
        if len(samples) < self.max_per_class:
            samples.append(sample)
        recent = self._recent.setdefault(key, [])
        if len(recent) < self.max_per_class:
            recent.append(sample)

    def count(self, kind: str, size_bytes: int) -> int:
        return len(self._classes.get((kind, size_bytes), ()))

    def classes(self) -> List[Tuple[str, int]]:
        return sorted(self._classes)

    def _resolve(self, kind: str, size_bytes: int) -> List[Tuple[int, Tuple[int, ...]]]:
        recent = self._recent.get((kind, size_bytes))
        if recent and len(recent) >= self.min_recent:
            return recent
        samples = self._classes.get((kind, size_bytes))
        if samples:
            return samples
        candidates = [
            (abs(size - size_bytes), size)
            for (k, size) in self._classes
            if k == kind
        ]
        if not candidates:
            raise LookupError(
                f"no calibration samples for kind={kind!r} (reservoir empty)"
            )
        return self._classes[(kind, min(candidates)[1])]

    def sample(self, kind: str, size_bytes: int, rng) -> Tuple[int, Tuple[int, ...]]:
        samples = self._resolve(kind, size_bytes)
        return samples[rng.randrange(len(samples))]


class FluidFlow:
    """Analytic aggregate of one steady open-loop production flow.

    Mirrors :class:`~repro.workloads.production.ProductionWorkload`'s
    arrival law (Poisson at ``target_iops``, production size/kind mix)
    but synthesizes completions directly from the latency reservoir —
    zero simulator events, zero packets.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        target_iops: float,
        reservoir: LatencyReservoir,
        sizes=None,
        read_fraction: Optional[float] = None,
    ):
        if target_iops <= 0:
            raise ValueError(f"target IOPS must be positive: {target_iops}")
        from ..workloads.distributions import READ_FRACTION, SizeDistribution

        self.sim = sim
        self.name = name
        self.target_iops = target_iops
        self.reservoir = reservoir
        self.sizes = sizes or SizeDistribution()
        self.read_fraction = READ_FRACTION if read_fraction is None else read_fraction
        self._rng = sim.rng.stream(f"fluid/{name}")
        self.synthesized = 0

    def synthesize(self, start_ns: int, end_ns: int, collector) -> int:
        """Emit synthetic completions across ``[start_ns, end_ns)``.

        Arrivals walk the same exponential-gap law as the detailed
        workload; each I/O's latency and component breakdown are drawn
        from the calibration reservoir.  Traces carry a ``synthetic``
        mark so analysis can separate modes.  Returns the count.
        """
        rng = self._rng
        expovariate = rng.expovariate
        sample = self.reservoir.sample
        count = 0
        t = start_ns + int(expovariate(self.target_iops) * 1e9)
        while t < end_ns:
            size = self.sizes.sample(rng)
            kind = "read" if rng.random() < self.read_fraction else "write"
            total_ns, comps = sample(kind, size, rng)
            trace = IoTrace(
                # Negative ids flag synthetic traces; offsetting by the
                # collector's length keeps them unique across flows.
                io_id=-(len(collector.traces) + 1),
                kind=kind,
                size_bytes=size,
                submit_ns=t,
                components=dict(zip(COMPONENTS, comps)),
            )
            trace.mark("synthetic", t)
            trace.complete(t + total_ns)
            collector.record(trace)
            count += 1
            t += int(expovariate(self.target_iops) * 1e9)
        self.synthesized += count
        return count


@dataclass
class HybridResult:
    """What a :class:`HybridRun` did, segment by segment."""

    horizon_ns: int
    segments: List[Segment]
    detailed_ios: int
    synthesized_ios: int
    events_processed: int
    detail_ns: int = 0
    fluid_ns: int = 0
    per_segment: List[Dict] = field(default_factory=list)

    @property
    def detail_fraction(self) -> float:
        return self.detail_ns / max(1, self.horizon_ns)


class HybridRun:
    """Drive one deployment through the fidelity timeline.

    ``flows`` maps a flow name to ``(vd, target_iops)``: inside detail
    segments each flow runs as a real open-loop
    :class:`~repro.workloads.production.ProductionWorkload` against its
    VD (packets, CPU queueing, SSDs — everything); across fluid segments
    each flow is a :class:`FluidFlow` synthesizing from the reservoir
    that those detail segments calibrated.
    """

    def __init__(
        self,
        deployment,
        fidelity: Optional[FidelityController] = None,
        read_fraction: Optional[float] = None,
        sizes=None,
    ):
        from ..workloads.distributions import READ_FRACTION

        self.deployment = deployment
        self.sim: Simulator = deployment.sim
        self.fidelity = fidelity or FidelityController()
        self.reservoir = LatencyReservoir()
        self.read_fraction = READ_FRACTION if read_fraction is None else read_fraction
        self.sizes = sizes
        self._flows: List[Tuple[str, object, float]] = []  # (name, vd, iops)
        self._fluid: Dict[str, FluidFlow] = {}

    def add_flow(self, name: str, vd, target_iops: float) -> None:
        self._flows.append((name, vd, target_iops))
        self._fluid[name] = FluidFlow(
            self.sim,
            name,
            target_iops,
            self.reservoir,
            sizes=self.sizes,
            read_fraction=self.read_fraction,
        )

    # ------------------------------------------------------------------
    def _run_detail_segment(self, segment: Segment) -> Dict:
        from ..workloads.production import ProductionWorkload

        collector = self.deployment.collector
        mark = len(collector.traces)
        workloads = []
        for name, vd, iops in self._flows:
            wl = ProductionWorkload(
                self.sim,
                vd,
                iops,
                segment.duration_ns,
                sizes=self.sizes,
                read_fraction=self.read_fraction,
                name=f"hybrid/{name}/{segment.start_ns}",
            )
            wl.start()
            workloads.append(wl)
        self.sim.run(until=segment.end_ns)
        # Each detail segment recalibrates: fluid synthesis after this
        # point should reflect the distribution measured *here*, not the
        # first calibration window's (see LatencyReservoir generations).
        self.reservoir.new_generation()
        completed = 0
        for trace in collector.traces[mark:]:
            self.reservoir.add(trace)
            completed += 1
        return {
            "mode": "detail",
            "reason": segment.reason,
            "start_ns": segment.start_ns,
            "end_ns": segment.end_ns,
            "ios": completed,
            "failed": sum(w.failed for w in workloads),
        }

    def _run_fluid_segment(self, segment: Segment) -> Dict:
        collector = self.deployment.collector
        synthesized = 0
        for name, _vd, _iops in self._flows:
            synthesized += self._fluid[name].synthesize(
                segment.start_ns, segment.end_ns, collector
            )
        # Advance the clock through the segment: background machinery
        # (telemetry scrapes, probes) still runs, but no per-packet load.
        self.sim.run(until=segment.end_ns)
        return {
            "mode": "fluid",
            "reason": segment.reason,
            "start_ns": segment.start_ns,
            "end_ns": segment.end_ns,
            "ios": synthesized,
        }

    def run(self, horizon_ns: int, drain_ns: int = 20 * MS) -> HybridResult:
        """Run the hybrid timeline over ``[now, now + horizon_ns)``.

        ``drain_ns`` gives the last detail segment's in-flight I/Os time
        to complete (fluid synthesis needs no drain).
        """
        if self.sim.now != 0:
            raise RuntimeError("HybridRun must drive the simulation from t=0")
        if not self._flows:
            raise RuntimeError("no flows added (add_flow)")
        segments = self.fidelity.segments(horizon_ns)
        result = HybridResult(
            horizon_ns=horizon_ns,
            segments=segments,
            detailed_ios=0,
            synthesized_ios=0,
            events_processed=0,
        )
        for segment in segments:
            if segment.mode == "detail":
                info = self._run_detail_segment(segment)
                result.detailed_ios += info["ios"]
                result.detail_ns += segment.duration_ns
            else:
                info = self._run_fluid_segment(segment)
                result.synthesized_ios += info["ios"]
                result.fluid_ns += segment.duration_ns
            result.per_segment.append(info)
        if drain_ns:
            self.sim.run(until=horizon_ns + drain_ns)
        result.events_processed = self.sim.events_processed
        return result
