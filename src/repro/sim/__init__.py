"""Discrete-event simulation kernel (integer-nanosecond clock).

Public surface:

* :class:`Simulator` — the event loop and virtual clock;
* :class:`Process` / :func:`spawn` — generator-based cooperative processes;
* :class:`Signal`, :class:`Delay`, :class:`Event` — coordination primitives;
* :class:`RngRegistry` — deterministic named randomness streams;
* time constants ``NS``, ``US``, ``MS``, ``SECOND`` and helpers.
"""

from .engine import SimulationError, Simulator
from .events import (
    Delay,
    Event,
    MS,
    NS,
    SECOND,
    Signal,
    US,
    format_ns,
    ns_from_seconds,
    seconds_from_ns,
)
from .process import Process, ProcessFailed, spawn
from .rng import RngRegistry, derive_seed

__all__ = [
    "Simulator",
    "SimulationError",
    "Process",
    "ProcessFailed",
    "spawn",
    "Signal",
    "Delay",
    "Event",
    "RngRegistry",
    "derive_seed",
    "NS",
    "US",
    "MS",
    "SECOND",
    "format_ns",
    "ns_from_seconds",
    "seconds_from_ns",
]
