"""Discrete-event simulation kernel (integer-nanosecond clock).

Public surface:

* :class:`Simulator` — the event loop and virtual clock;
* :class:`Process` / :func:`spawn` — generator-based cooperative processes;
* :class:`Signal`, :class:`Delay`, :class:`Event` — coordination primitives;
* :class:`RngRegistry` — deterministic named randomness streams;
* hybrid fidelity — :class:`FidelityController`, :class:`FluidFlow`,
  :class:`HybridRun` (see :mod:`repro.sim.fluid`);
* time constants ``NS``, ``US``, ``MS``, ``SECOND`` and helpers.
"""

from .engine import SimulationError, Simulator
from .fluid import (
    FidelityController,
    FluidFlow,
    HybridResult,
    HybridRun,
    LatencyReservoir,
)
from .events import (
    Delay,
    Event,
    MS,
    NS,
    SECOND,
    Signal,
    US,
    format_ns,
    ns_from_seconds,
    seconds_from_ns,
)
from .process import Process, ProcessFailed, spawn
from .rng import RngRegistry, derive_seed

__all__ = [
    "Simulator",
    "SimulationError",
    "FidelityController",
    "FluidFlow",
    "HybridResult",
    "HybridRun",
    "LatencyReservoir",
    "Process",
    "ProcessFailed",
    "spawn",
    "Signal",
    "Delay",
    "Event",
    "RngRegistry",
    "derive_seed",
    "NS",
    "US",
    "MS",
    "SECOND",
    "format_ns",
    "ns_from_seconds",
    "seconds_from_ns",
]
