"""Event primitives for the discrete-event simulation kernel.

The simulator's clock is an integer count of nanoseconds.  Integer time
makes event ordering exact and reproducible: two events scheduled for the
same instant are delivered in the order they were scheduled (FIFO tie
breaking via a monotonically increasing sequence number), and no
floating-point accumulation error can reorder them.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

#: Convenience time constants (all in integer nanoseconds).
NS = 1
US = 1_000
MS = 1_000_000
SECOND = 1_000_000_000


def ns_from_seconds(seconds: float) -> int:
    """Convert a float second count to integer nanoseconds (rounded)."""
    return int(round(seconds * SECOND))


def seconds_from_ns(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / SECOND


class Event:
    """A scheduled callback.

    Events are created by :meth:`repro.sim.engine.Simulator.schedule` and
    should not be instantiated directly.  An event may be cancelled before
    it fires; cancelled events stay in the scheduler but are skipped when
    popped (lazy deletion), which keeps cancellation O(1).  The scheduler
    keeps live/ghost counters (via ``_sched``) so cancel-heavy workloads
    trigger compaction instead of growing the structure without bound.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sched")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sched = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sched = self._sched
            if sched is not None:
                self._sched = None
                sched.note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time}ns {name} {state}>"


class Signal:
    """A one-shot waitable condition for generator processes.

    A process may ``yield signal`` to suspend until some other part of the
    system calls :meth:`fire`.  Multiple processes may wait on the same
    signal; all are resumed (in wait order) when it fires.  Firing delivers
    an optional payload value, which becomes the value of the ``yield``
    expression in each waiter.

    Signals are one-shot: once fired, any later ``yield signal`` resumes
    immediately with the stored payload.
    """

    __slots__ = ("name", "fired", "value", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list = []

    def add_waiter(self, process) -> None:
        self._waiters.append(process)

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking every waiting process.

        The wake-ups are delivered through the simulator at the current
        instant (each waiter's resume is scheduled with zero delay), so the
        caller's stack does not nest arbitrarily deep.
        """
        if self.fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume_soon(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"<Signal {self.name!r} {state}>"


class Delay:
    """Explicit delay request for generator processes.

    ``yield Delay(us=3)`` suspends the process for 3 microseconds.  Plain
    non-negative integers yielded from a process are treated as nanosecond
    delays, so ``Delay`` is only needed when the unit keyword form reads
    better.
    """

    __slots__ = ("ns",)

    def __init__(self, ns: int = 0, *, us: float = 0, ms: float = 0, s: float = 0):
        total = ns + us * US + ms * MS + s * SECOND
        if total < 0 or not math.isfinite(total):
            raise ValueError(f"invalid delay: {total!r}")
        self.ns = int(round(total))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delay({self.ns}ns)"


def format_ns(ns: Optional[int]) -> str:
    """Render a nanosecond count as a human-friendly string."""
    if ns is None:
        return "∞"
    if ns >= SECOND:
        return f"{ns / SECOND:.3f}s"
    if ns >= MS:
        return f"{ns / MS:.3f}ms"
    if ns >= US:
        return f"{ns / US:.3f}us"
    return f"{ns}ns"
