"""The discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock and the event scheduler.
Everything in the reproduction — links, switches, CPUs, SSDs, protocol
stacks — is driven by callbacks scheduled on a single simulator instance,
so a whole EBS deployment runs deterministically from one seed.

The scheduler is pluggable (see :mod:`repro.sim.sched`): a calendar
queue by default, a plain binary heap as the reference implementation.
Both deliver events in identical ``(time, seq)`` order, so the choice is
a pure throughput knob — artifacts are byte-identical either way.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

from .events import Event, format_ns
from .rng import RngRegistry
from .sched import make_scheduler

#: Environment override for the scheduler implementation (experiments /
#: cross-implementation determinism checks): ``REPRO_SCHEDULER=heap``.
SCHEDULER_ENV = "REPRO_SCHEDULER"


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator with an integer-ns clock.

    Typical usage::

        sim = Simulator(seed=42)
        sim.schedule(1000, lambda: print("one microsecond in"))
        sim.run()

    The simulator also hosts a registry of named deterministic RNG streams
    (see :class:`repro.sim.rng.RngRegistry`) so that components draw
    randomness from independent, reproducible streams.
    """

    def __init__(self, seed: int = 0, scheduler: Optional[str] = None):
        self.now: int = 0
        self.seed = seed
        self.rng = RngRegistry(seed)
        if scheduler is None:
            scheduler = os.environ.get(SCHEDULER_ENV, "calendar")
        self.scheduler_name = scheduler
        self._sched = make_scheduler(scheduler)
        # Pre-bound push methods: schedule() runs a few hundred thousand
        # times per simulated second, so one attribute chain matters.
        self._push = self._sched.push
        self._push_fire = self._sched.push_fire
        self._seq = 0
        self._running = False
        self._stopped = False
        #: Logical events processed.  Coalesced fast paths (e.g. a link's
        #: combined serialize+deliver completion, see ``repro.net.link``)
        #: credit the events they fold in via :meth:`credit_events`, so
        #: this counter — and every artifact embedding it — is invariant
        #: across fast-path and legacy event plumbing.
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ns`` after the current time."""
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        event = Event(self.now + delay_ns, self._seq, fn, args)
        self._seq += 1
        self._push(event)
        return event

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        time_ns = int(time_ns)
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at {format_ns(time_ns)}; now is {format_ns(self.now)}"
            )
        event = Event(time_ns, self._seq, fn, args)
        self._seq += 1
        self._push(event)
        return event

    def schedule_fire(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Like :meth:`schedule`, but fire-and-forget: no :class:`Event`
        is allocated and nothing is returned, so the timer cannot be
        cancelled.  Use for the per-packet/per-job completions that are
        never cancelled — the Event allocation is the largest per-event
        constant on the hot path.  Ordering is identical to
        :meth:`schedule` (same ``seq`` allocation)."""
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        self._push_fire(self.now + delay_ns, self._seq, fn, args)
        self._seq += 1

    def schedule_at_fire(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`schedule_fire`."""
        time_ns = int(time_ns)
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at {format_ns(time_ns)}; now is {format_ns(self.now)}"
            )
        self._push_fire(time_ns, self._seq, fn, args)
        self._seq += 1

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current instant (after pending events)."""
        event = Event(self.now, self._seq, fn, args)
        self._seq += 1
        self._push(event)
        return event

    def credit_events(self, count: int = 1) -> None:
        """Account for logical events folded into a coalesced callback.

        Fast paths that replace N legacy events with one physical event
        call this with ``N - 1`` so ``events_processed`` stays identical
        to the uncoalesced execution (artifacts embed the counter).
        """
        self.events_processed += count

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.  Returns False when drained."""
        event = self._sched.pop()
        if event is None:
            return False
        if event.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("scheduler yielded an event from the past")
        self.now = event.time
        self.events_processed += 1
        event.fn(*event.args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the scheduler drains, ``until`` is reached, or
        ``max_events`` have fired.

        ``until`` is an absolute time; the clock is advanced to ``until``
        even if the last event fires earlier (matching how a wall-clock
        experiment of fixed duration behaves).  Returns the number of
        events processed by this call (physical events — coalesced
        credits count only toward :attr:`events_processed`).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        # The loop itself lives in the scheduler (``drain``) so popping
        # needs no method dispatch per event.  Its ``until`` check reads
        # the *raw* head (ghosts included): a cancelled timer at the
        # head must not end a bounded run early, and conversely a live
        # event past ``until`` still fires when a ghost at or before
        # ``until`` heads the queue.  Both match the original
        # single-heap engine, which compared the raw heap head.
        try:
            processed = self._sched.drain(self, until, max_events)
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        return processed

    def run_for(self, duration_ns: int, **kwargs: Any) -> int:
        """Run for a relative duration from the current time."""
        return self.run(until=self.now + int(duration_ns), **kwargs)

    def run_window(self, horizon_ns: int, **kwargs: Any) -> int:
        """Advance to the absolute ``horizon_ns`` — the conservative
        lookahead-window stepping API used by the shard plane
        (:mod:`repro.dist`).

        Like :meth:`run` with ``until``, but barrier-exact: the horizon
        must not lie in the past, and the clock always lands *exactly*
        on it — never past it.  Plain ``run(until=...)`` can overshoot
        when a cancelled timer heads the queue (its raw-head ``until``
        check admits the next live event even past the bound, see
        :meth:`run`); a shard that overshot its barrier would reject the
        next window's inbound messages as scheduled in the past.  The
        stop-sentinel planted at the horizon closes that hole: the
        earliest live event is then never later than the horizon, so the
        ghost fast-path cannot skip past it.

        Events stamped exactly at the horizon fire in this window when
        scheduled before the call (the coordinator's delivery rule);
        ones scheduled *during* the window at exactly the horizon fire
        at the start of the next window — same outcome for every shard
        layout, which is the property the shard plane needs.  Returns
        the number of physical events processed (the sentinel included).
        """
        horizon_ns = int(horizon_ns)
        if horizon_ns < self.now:
            raise SimulationError(
                f"window horizon {format_ns(horizon_ns)} is in the past; "
                f"now is {format_ns(self.now)}"
            )
        self.schedule_at_fire(horizon_ns, self.stop)
        return self.run(until=horizon_ns, **kwargs)

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still scheduled (O(1))."""
        return self._sched.live

    def peek_time(self) -> Optional[int]:
        """Absolute time of the next pending event, or None if drained."""
        return self._sched.peek_time()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={format_ns(self.now)} pending={self.pending_events} "
            f"processed={self.events_processed} sched={self.scheduler_name}>"
        )
