"""The discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock and the event heap.  Everything
in the reproduction — links, switches, CPUs, SSDs, protocol stacks — is
driven by callbacks scheduled on a single simulator instance, so a whole
EBS deployment runs deterministically from one seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .events import Event, format_ns
from .rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator with an integer-ns clock.

    Typical usage::

        sim = Simulator(seed=42)
        sim.schedule(1000, lambda: print("one microsecond in"))
        sim.run()

    The simulator also hosts a registry of named deterministic RNG streams
    (see :class:`repro.sim.rng.RngRegistry`) so that components draw
    randomness from independent, reproducible streams.
    """

    def __init__(self, seed: int = 0):
        self.now: int = 0
        self.seed = seed
        self.rng = RngRegistry(seed)
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ns`` after the current time."""
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        return self.schedule_at(self.now + delay_ns, fn, *args)

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        time_ns = int(time_ns)
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at {format_ns(time_ns)}; now is {format_ns(self.now)}"
            )
        event = Event(time_ns, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current instant (after pending events)."""
        return self.schedule(0, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.  Returns False when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event heap yielded an event from the past")
            self.now = event.time
            self.events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        ``until`` is an absolute time; the clock is advanced to ``until``
        even if the last event fires earlier (matching how a wall-clock
        experiment of fixed duration behaves).  Returns the number of
        events processed by this call.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap and not self._stopped:
                if until is not None and self._heap[0].time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                if self.step():
                    processed += 1
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        return processed

    def run_for(self, duration_ns: int, **kwargs: Any) -> int:
        """Run for a relative duration from the current time."""
        return self.run(until=self.now + int(duration_ns), **kwargs)

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[int]:
        """Absolute time of the next pending event, or None if drained."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={format_ns(self.now)} pending={self.pending_events} "
            f"processed={self.events_processed}>"
        )
