"""Deterministic named random-number streams.

Simulations of networks are extremely sensitive to the consumption order of
a shared RNG: adding one extra draw in a switch model would perturb every
SSD latency sample afterwards.  To keep experiments reproducible and
composable, every component draws from its *own* stream, derived from the
master seed and a stable string name via BLAKE2 hashing.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a master seed and a name."""
    digest = hashlib.blake2b(
        name.encode("utf-8"),
        key=master_seed.to_bytes(8, "little", signed=False),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """Registry of named :class:`random.Random` streams under one seed.

    Streams are created lazily and cached: ``registry.stream("ssd/7")``
    always returns the same generator object for a given registry, and the
    same *sequence* for a given (seed, name) pair across runs.
    """

    def __init__(self, master_seed: int = 0):
        if master_seed < 0:
            master_seed &= 0xFFFFFFFFFFFFFFFF
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the named stream, creating it deterministically if new."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose master seed is derived from a name.

        Useful for running many independent trials: each trial forks its
        own registry so per-trial component streams never collide.
        """
        return RngRegistry(derive_seed(self.master_seed, f"fork/{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.master_seed} streams={len(self._streams)}>"
