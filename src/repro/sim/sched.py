"""Pluggable event schedulers for the simulation kernel.

Two implementations share one contract and — critically — one *ordering
law*: events fire in ``(time, seq)`` order, where ``seq`` is the global
creation sequence number.  Because both structures sort on exactly that
key, the heap and the calendar queue are observably identical: the same
workload pops the same events in the same order, so artifacts are
byte-identical across implementations (pinned by
``tests/test_scheduler_parity.py``).

* :class:`HeapScheduler` — a single binary heap of ``(time, seq, event)``
  tuples.  Tuple entries keep comparisons in C (no ``Event.__lt__``
  dispatch per sift step).

* :class:`CalendarScheduler` — a calendar queue / hashed timer wheel: the
  time axis is cut into fixed-width buckets (``2**bucket_bits`` ns) held
  in a dict keyed by bucket index, with a small int-heap of active bucket
  indices.  Each bucket is itself a little ``(time, seq, event)`` heap.
  Most scheduling in this simulator is short-horizon (wire times, switch
  forwarding, CPU costs — nanoseconds to microseconds), so pushes land in
  the current or a nearby bucket and per-bucket heaps stay tiny; far-out
  timers (RTOs, probes) spread across sparse buckets at no cost because
  empty buckets simply do not exist.

Entries come in two shapes, distinguished by the third tuple slot:

* ``(time, seq, event)`` — a cancellable :class:`Event` (``schedule`` /
  ``schedule_at`` / ``call_soon``);
* ``(time, seq, None, fn, args)`` — an **anonymous** fire-and-forget
  entry (``schedule_fire`` / ``schedule_at_fire``): no Event object is
  allocated at all.  Most events in a packet simulation (CPU-work
  completions, RPC hops, switch forwards, serialization finishes) are
  never cancelled, so skipping the allocation removes the single
  largest per-event constant.  Ordering is unaffected: ``seq`` is
  globally unique, so tuple comparison never reaches the third slot.

Both schedulers keep **live bookkeeping** instead of scanning:

* ``live`` — count of pending, not-cancelled events (``pending_events``
  used to be an O(n) recount; ``peek_time`` used to *sort the whole
  heap*);
* ``ghosts`` — cancelled events still buried in the structure (lazy
  deletion keeps :meth:`Event.cancel` O(1));
* automatic **compaction**: when ghosts outnumber live events (and exceed
  a floor), the structure is rebuilt without them, so cancel-heavy
  workloads (timeout/retry paths re-arming RTOs per message) cannot grow
  the heap without bound.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Optional

from .events import Event

#: Compaction floor: never bother rebuilding tiny structures.
COMPACT_MIN_GHOSTS = 512

#: Calendar bucket width exponent: 2**13 ns = 8.192 us per bucket.
DEFAULT_BUCKET_BITS = 13


class HeapScheduler:
    """Binary heap of ``(time, seq, event)`` tuples with lazy deletion."""

    name = "heap"

    __slots__ = ("_heap", "live", "ghosts", "compactions")

    def __init__(self) -> None:
        self._heap: list = []
        self.live = 0
        self.ghosts = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    def push(self, event: Event) -> None:
        event._sched = self
        heappush(self._heap, (event.time, event.seq, event))
        self.live += 1

    def push_fire(self, time: int, seq: int, fn, args) -> None:
        """Queue an anonymous fire-and-forget entry (no Event object)."""
        heappush(self._heap, (time, seq, None, fn, args))
        self.live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the next pending event, skipping ghosts.

        Anonymous entries are materialized into an Event on the way out
        (:meth:`Simulator.step` is the only pop-based driver; the hot
        path is :meth:`drain`, which fires them without allocating).
        """
        heap = self._heap
        while heap:
            entry = heappop(heap)
            event = entry[2]
            if event is None:
                self.live -= 1
                return Event(entry[0], entry[1], entry[3], entry[4])
            if event.cancelled:
                self.ghosts -= 1
                continue
            event._sched = None
            self.live -= 1
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event (purges ghost heads)."""
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event is not None and event.cancelled:
                heappop(heap)
                self.ghosts -= 1
                continue
            return entry[0]
        return None

    def raw_head_time(self) -> Optional[int]:
        """Time of the head entry *including* cancelled ghosts.

        The run loop's ``until`` check uses this (not :meth:`peek_time`)
        so a cancelled timer at the head does not end a bounded run one
        event early — matching the original single-heap engine, whose
        ``until`` comparison read the raw heap head.
        """
        return self._heap[0][0] if self._heap else None

    def drain(self, sim, until: Optional[int], max_events: Optional[int]) -> int:
        """Inlined run loop (see :meth:`CalendarScheduler.drain`)."""
        heap = self._heap
        pop = heappop
        processed = 0
        while heap and not sim._stopped:
            if until is not None and heap[0][0] > until:
                break
            if max_events is not None and processed >= max_events:
                break
            entry = None
            while heap:
                candidate = pop(heap)
                event = candidate[2]
                if event is not None and event.cancelled:
                    self.ghosts -= 1
                    continue
                entry = candidate
                break
            if entry is None:
                break
            self.live -= 1
            sim.now = entry[0]
            sim.events_processed += 1
            processed += 1
            event = entry[2]
            if event is None:
                entry[3](*entry[4])
            else:
                event._sched = None
                event.fn(*event.args)
        return processed

    # ------------------------------------------------------------------
    def note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` for an event still queued here."""
        self.live -= 1
        self.ghosts += 1
        if self.ghosts > COMPACT_MIN_GHOSTS and self.ghosts > self.live:
            self.compact()

    def compact(self) -> None:
        """Rebuild the heap without cancelled ghosts.

        In place: :meth:`drain` holds a reference to the list across
        event callbacks (which may cancel enough to trigger compaction).
        """
        self._heap[:] = [
            entry for entry in self._heap
            if entry[2] is None or not entry[2].cancelled
        ]
        heapify(self._heap)
        self.ghosts = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.live

    @property
    def storage_size(self) -> int:
        """Entries physically held (live + ghosts) — bounded by compaction."""
        return len(self._heap)


class CalendarScheduler:
    """Calendar queue: dict of per-bucket heaps + int-heap of bucket ids.

    Ordering matches :class:`HeapScheduler` exactly: bucket index is
    ``time >> bucket_bits``, so the minimum active bucket contains the
    globally minimum ``(time, seq)`` entry; within a bucket the little
    heap orders entries by that same key.  Same-timestamp FIFO therefore
    holds across bucket boundaries by construction.
    """

    name = "calendar"

    __slots__ = ("bucket_bits", "_buckets", "_ids", "live", "ghosts", "compactions")

    def __init__(self, bucket_bits: int = DEFAULT_BUCKET_BITS) -> None:
        if not 0 < bucket_bits < 40:
            raise ValueError(f"unreasonable bucket_bits: {bucket_bits}")
        self.bucket_bits = bucket_bits
        self._buckets: dict = {}
        self._ids: list = []  # int-heap of active bucket indices
        self.live = 0
        self.ghosts = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    def push(self, event: Event) -> None:
        event._sched = self
        idx = event.time >> self.bucket_bits
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [(event.time, event.seq, event)]
            heappush(self._ids, idx)
        else:
            heappush(bucket, (event.time, event.seq, event))
        self.live += 1

    def push_fire(self, time: int, seq: int, fn, args) -> None:
        """Queue an anonymous fire-and-forget entry (no Event object)."""
        idx = time >> self.bucket_bits
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [(time, seq, None, fn, args)]
            heappush(self._ids, idx)
        else:
            heappush(bucket, (time, seq, None, fn, args))
        self.live += 1

    def pop(self) -> Optional[Event]:
        ids, buckets = self._ids, self._buckets
        while ids:
            idx = ids[0]
            bucket = buckets[idx]
            while bucket:
                entry = heappop(bucket)
                event = entry[2]
                if event is not None and event.cancelled:
                    self.ghosts -= 1
                    continue
                self.live -= 1
                if not bucket:
                    heappop(ids)
                    del buckets[idx]
                if event is None:
                    return Event(entry[0], entry[1], entry[3], entry[4])
                event._sched = None
                return event
            heappop(ids)
            del buckets[idx]
        return None

    def peek_time(self) -> Optional[int]:
        ids, buckets = self._ids, self._buckets
        while ids:
            idx = ids[0]
            bucket = buckets[idx]
            while bucket:
                entry = bucket[0]
                event = entry[2]
                if event is not None and event.cancelled:
                    heappop(bucket)
                    self.ghosts -= 1
                    continue
                return entry[0]
            heappop(ids)
            del buckets[idx]
        return None

    def raw_head_time(self) -> Optional[int]:
        """Head entry time including ghosts (see :class:`HeapScheduler`).

        Active buckets are never empty, so the head of the minimum
        bucket's little heap is the global minimum entry.
        """
        ids = self._ids
        return self._buckets[ids[0]][0][0] if ids else None

    def drain(self, sim, until: Optional[int], max_events: Optional[int]) -> int:
        """The simulator's run loop, inlined into the data structure.

        Semantically identical to repeated ``raw_head_time``/``pop`` (the
        ``until`` check reads the raw head, ghosts are skipped
        unconditionally once popping starts), but one Python frame per
        event instead of three.  ``compact`` rebuilds in place, so the
        local aliases below stay valid across event callbacks.
        """
        ids, buckets = self._ids, self._buckets
        pop = heappop
        processed = 0
        while ids and not sim._stopped:
            if until is not None and buckets[ids[0]][0][0] > until:
                break
            if max_events is not None and processed >= max_events:
                break
            entry = None
            while ids:
                idx = ids[0]
                bucket = buckets[idx]
                candidate = pop(bucket)
                if not bucket:
                    pop(ids)
                    del buckets[idx]
                event = candidate[2]
                if event is not None and event.cancelled:
                    self.ghosts -= 1
                    continue
                entry = candidate
                break
            if entry is None:
                break
            self.live -= 1
            sim.now = entry[0]
            sim.events_processed += 1
            processed += 1
            event = entry[2]
            if event is None:
                entry[3](*entry[4])
            else:
                event._sched = None
                event.fn(*event.args)
        return processed

    # ------------------------------------------------------------------
    def note_cancel(self) -> None:
        self.live -= 1
        self.ghosts += 1
        if self.ghosts > COMPACT_MIN_GHOSTS and self.ghosts > self.live:
            self.compact()

    def compact(self) -> None:
        entries = [
            entry
            for bucket in self._buckets.values()
            for entry in bucket
            if entry[2] is None or not entry[2].cancelled
        ]
        buckets: dict = {}
        bits = self.bucket_bits
        for entry in entries:
            buckets.setdefault(entry[0] >> bits, []).append(entry)
        for bucket in buckets.values():
            heapify(bucket)
        # In place: drain() aliases both containers across callbacks.
        self._buckets.clear()
        self._buckets.update(buckets)
        self._ids[:] = list(buckets)
        heapify(self._ids)
        self.ghosts = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.live

    @property
    def storage_size(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


SCHEDULERS = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}


def make_scheduler(name: str):
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; options: {sorted(SCHEDULERS)}"
        ) from None
