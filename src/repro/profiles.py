"""Calibrated service-time and resource constants.

Every physics constant used by the simulation lives here, annotated with the
paper evidence it is calibrated against.  Benchmarks and examples must not
hard-code latencies or bandwidths; they read (and may override) a
:class:`Profiles` instance, so each experiment's assumptions are auditable
in one place.

Citations refer to "From Luna to Solar" (SIGCOMM '22):

* Table 1a/1b — FN RPC latency and CPU cores for kernel TCP vs LUNA on
  2x25GE and 2x100GE (single 4KB RPC: 70.1us vs 13.1us incl. 8.3us base
  RTT on 2x25GE; 43.4us vs 12.4us on 2x100GE).
* Figure 6 — production 4KB latency breakdown across SA / FN / BN / SSD.
* Section 3 — ESSD targets 100us average I/O latency; SSD write cache makes
  chunk-server writes "tens of us", one to two orders faster than kernel TCP.
* Section 4.2 — ALI-DPU: 6-core infrastructure CPU, 2x25GE Ethernet, internal
  PCIe "far less than 100Gbps".
* Section 4.7 / Figure 14 — SOLAR: +78% single-core 64KB throughput and +46%
  single-core 4KB IOPS vs LUNA; PCIe goodput bottleneck for LUNA/RDMA/SOLAR*.
* Section 4.8 — SOLAR handles ~150K IOPS per CPU core.
* Table 3 — SOLAR FPGA LUT/BRAM budget per module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict

from .sim.events import MS

KB = 1024
MB = 1024 * 1024
GBPS = 1_000_000_000  # bits per second
BLOCK_SIZE = 4 * KB  # §2.2: atomic data block, consistent with SSD sector


@dataclass(frozen=True)
class NetworkProfile:
    """Fabric constants for the frontend network (FN)."""

    #: Per-hop propagation + switch pipeline delay.  Calibrated so that a
    #: 4-hop 4KB round trip on 25GE lands near the 8.3us base RTT that
    #: Table 1a reports under LUNA.
    link_propagation_ns: int = 500
    switch_forward_ns: int = 450
    #: Default access link rate (2x25GE per §4.2); per-port rate of one leg.
    access_gbps: float = 25.0
    fabric_gbps: float = 100.0
    #: Drop-tail output queue budget.  §3.1: AliCloud uses shallow-buffer
    #: switches in FN to save cost.
    queue_capacity_bytes: int = 512 * KB
    #: Jumbo frame MTU; §4.4 "a packet can be up to 9K bytes in a jumbo
    #: frame", SOLAR uses 4KB blocks inside jumbo frames.
    mtu_bytes: int = 9000
    standard_mtu_bytes: int = 1500
    #: Per-packet wire overhead: Ethernet + IP + UDP/TCP + EBS headers.
    header_overhead_bytes: int = 98
    #: §4.8: "a dedicated queue in the switch for SOLAR" — when True,
    #: every egress port runs two strict-priority drop-tail classes with
    #: SOLAR datagrams in the high class.  Off by default so baseline
    #: comparisons share identical queueing.
    priority_queues: bool = False


@dataclass(frozen=True)
class KernelTcpProfile:
    """Kernel TCP stack costs (Table 1, Figure 6 'Kernel' bars).

    The kernel stack pays syscalls, interrupts, softirq scheduling, socket
    locking and two copies per datum.  Those show up as (a) a large fixed
    per-RPC latency adder and (b) a high per-packet CPU cost that limits
    per-core throughput to O(10Gbps).
    """

    #: One-way stack traversal latency added per RPC message (TX + RX sides
    #: are charged separately).  Calibrated against Table 1a: single 4KB RPC
    #: 70.1us with an 8.3us network RTT leaves ~60us of stack time across
    #: the four stack traversals of a request/response pair.
    stack_latency_ns: int = 14_000
    #: CPU time consumed per TSO burst (softirq + socket + skb work).
    #: With the per-byte copy cost below, a 4KB RPC costs ~2.5us of CPU →
    #: ~13Gbps per core, matching Table 1a's four cores for 50Gbps.
    per_packet_cpu_ns: int = 2_000
    #: Extra CPU per byte for the two data copies.
    per_byte_cpu_ns: float = 0.12
    #: Minimum retransmission timeout (Linux default 200ms) — the origin of
    #: I/O hangs under blackholes (§3.3, Figure 8).
    min_rto_ns: int = 200 * MS
    max_rto_ns: int = 120_000 * MS
    init_cwnd_packets: int = 10


@dataclass(frozen=True)
class LunaProfile:
    """LUNA user-space TCP costs (§3.2, Table 1, Figure 6 'Luna' bars).

    Run-to-completion, zero-copy, lock-free/share-nothing: small fixed
    latency and ~5x better per-core packet budget than the kernel stack.
    """

    #: One-way user-space stack traversal per RPC message.  Table 1a:
    #: 13.1us single 4KB RPC minus 8.3us base RTT leaves ~4.8us over four
    #: traversals → ~1.2us each.
    stack_latency_ns: int = 1_200
    #: ~0.55us per 4KB packet → ~58Gbps per core; Table 1a shows one core
    #: saturating 50Gbps.
    per_packet_cpu_ns: int = 550
    #: Zero-copy: no per-byte copy cost on the datapath.
    per_byte_cpu_ns: float = 0.0
    #: LUNA still relies on timeouts + the single ECMP path of its 5-tuple;
    #: it cannot reroute around blackholes (§3.3).  Aggressive user-space
    #: RTO floor.
    min_rto_ns: int = 4 * MS
    max_rto_ns: int = 2_000 * MS
    init_cwnd_packets: int = 16


@dataclass(frozen=True)
class RdmaProfile:
    """RoCEv2 RC model (§3.1 scalability discussion, Figures 14/15).

    Near-zero CPU for the transport itself, tiny latency — but per-QP NIC
    cache pressure collapses throughput beyond ~5K connections, and in the
    DPU hosting mode the datapath still crosses the internal PCIe twice
    (Figure 10b).
    """

    stack_latency_ns: int = 900
    per_packet_cpu_ns: int = 0
    #: SA processing still runs on CPU (Figure 10b); the transport is free
    #: but the I/O path is not.
    connection_cliff: int = 5_000
    #: Throughput multiplier floor once connection count far exceeds the
    #: cliff (observed "went down quickly" §3.1).
    cliff_floor: float = 0.25
    min_rto_ns: int = 1 * MS
    max_rto_ns: int = 1_000 * MS
    init_cwnd_packets: int = 32


@dataclass(frozen=True)
class SolarProfile:
    """SOLAR stack constants (§4.4-4.8)."""

    #: FPGA pipeline latency per packet (parse + table lookups + CRC + SEC
    #: + DMA setup) — fixed, line-rate (§4.5).
    fpga_pipeline_ns: int = 1_000
    #: DPU-CPU control-plane cost per I/O (path selection, CC update, CRC
    #: aggregation check, doorbell).  §4.8: ~150K IOPS per core → ~6.2us of
    #: CPU per I/O.  Only the *critical* share gates the I/O's latency;
    #: the *async* share (stats, CC bookkeeping, table maintenance) runs
    #: after the send/doorbell and shows up as CPU load, not latency —
    #: which is how SOLAR cuts SA latency ~95% (Figure 6) while §4.7 still
    #: observes CPU-bound tails under intensive I/O.
    cpu_issue_critical_ns: int = 1_400
    cpu_issue_async_ns: int = 1_800
    cpu_complete_critical_ns: int = 1_200
    cpu_complete_async_ns: int = 1_800
    #: Per-packet control-plane CPU beyond the first block of an RPC
    #: (path selection + CC bookkeeping per outstanding block; §4.7 notes
    #: the CPU-bound tail "especially for WRITE" under intensive I/O).
    per_packet_cpu_ns: int = 800
    #: Number of persistent paths per block server (§4.5: "e.g., 4").
    num_paths: int = 4
    #: Consecutive timeouts on one path that infer a path failure (§4.5).
    path_failure_timeouts: int = 3
    #: Per-packet retransmission timeout floor: SOLAR detects loss per-path
    #: via out-of-order arrival or timeout; the floor is millisecond scale
    #: so failure recovery lands well inside one second (§3.3 goal).
    min_rto_ns: int = 1 * MS
    max_rto_ns: int = 64 * MS
    #: Initial per-path congestion window, in packets (one block each).
    init_cwnd_packets: int = 16
    #: Probation before a failed path is re-tried.
    path_probation_ns: int = 200 * MS
    #: Re-key a condemned path onto a fresh UDP source port (re-rolling
    #: its ECMP route) instead of merely benching it.  This is how the
    #: reproduction reaches Table 2's across-the-board zeros even when
    #: every initial path shares the failure point — the slow-recovery
    #: corner §4.5 admits and plans to fix with INT probing.
    rotate_failed_paths: bool = True


@dataclass(frozen=True)
class SsdProfile:
    """Chunk-server SSD model (§2.3, Figure 6 'SSD' component).

    Writes land in the SSD write cache without touching NAND ("tens of us",
    one to two orders faster than kernel TCP); reads usually pay NAND.
    LSM-tree + commit aggregation turn random writes sequential (§2.3 fn.1),
    so the write path has little positional variance.
    """

    write_cache_ns: int = 13_000
    write_cache_sigma: float = 0.18  # lognormal-ish spread
    nand_read_ns: int = 68_000
    nand_read_sigma: float = 0.22
    #: Probability a read hits the chunk server's DRAM/SLC cache.
    read_cache_hit_ratio: float = 0.12
    read_cache_ns: int = 9_000
    #: Chunk-server request processing CPU time (checksum, LSM lookup).
    chunk_cpu_ns: int = 4_000
    #: Block-server CPU time per request (aggregate + sequentialize ops,
    #: §2.2's "aggregate and sequentialize operations in a block server").
    block_server_cpu_ns: int = 2_500
    #: Sustained device bandwidth for streaming transfers.
    device_gbps: float = 24.0
    #: Internal NAND-channel parallelism: how many operations the device
    #: services concurrently (ESSD-class NVMe reaches ~1M IOPS, §3).
    channels: int = 16
    #: Commit-aggregation window (§2.3 fn.1: "turning random writes into
    #: sequential writes with log-structured merged-tree (LSM tree) and
    #: commit aggregation").  Writes arriving within one window are
    #: batched into a single sequential device commit.  0 disables
    #: batching (each write commits individually — the default, so
    #: latency calibration is unaffected unless an experiment opts in).
    commit_aggregation_ns: int = 0
    replicas: int = 3  # §2.2: three copies across chunk servers


@dataclass(frozen=True)
class SaProfile:
    """Software storage-agent costs (Figure 2 workflow, §3.3 'SA is becoming
    the bottleneck').

    The SA performs per-I/O QoS and segment-table lookups plus heavy CRC and
    crypto over the payload, all on CPU.  Under load its queueing makes it
    the dominant tail term (Figure 6b/6d 'SA' bars).
    """

    #: Fixed CPU per I/O: NVMe handling, QoS + segment-table lookups,
    #: completion/doorbell bookkeeping.
    per_io_ns: int = 5_000
    #: Per-4KB-block framing / buffer management.
    per_block_ns: int = 1_100
    #: CRC32 over the payload (hardware-assisted CRC on a 2.1GHz core).
    crc_per_byte_ns: float = 0.35
    #: Encryption pass over the payload (Figure 2: "optionally encrypted").
    crypto_per_byte_ns: float = 0.60
    #: Whether guest payloads are encrypted.  Production deployments
    #: (Figure 6) run with encryption; clean fio testbeds (Figure 14)
    #: typically do not.
    encrypt: bool = True
    #: Extra per-I/O latency of VM hosting (virtio queue kicks, VM exits).
    #: Charged only when the SA runs under the VM hypervisor (Figure 9a);
    #: bare-metal/DPU hosting avoids it.  Part of why the production SA
    #: bars of Figure 6 dwarf clean-testbed SA costs.
    vm_virtio_ns: int = 11_000


@dataclass(frozen=True)
class PcieProfile:
    """PCIe/DMA constants (§4.2: ALI-DPU internal PCIe "far less than
    100Gbps"; §4.8: network speed has caught up with PCIe)."""

    #: ALI-DPU internal interconnect effective goodput.
    dpu_internal_gbps: float = 38.0
    #: Host PCIe used by the DMA engine toward guest memory.
    host_gbps: float = 120.0
    dma_setup_ns: int = 700
    per_transfer_latency_ns: int = 900


@dataclass(frozen=True)
class DpuProfile:
    """ALI-DPU assembly (§4.2)."""

    cpu_cores: int = 6
    cpu_ghz: float = 2.1  # Figure 14 caption: 2.1 GHz cores
    ethernet_ports: int = 2
    ethernet_gbps: float = 25.0
    #: Total FPGA resources available to all hypervisor functions; SOLAR
    #: must fit in a small slice (Table 3 totals 8.5% LUT / 18.2% BRAM).
    fpga_total_luts: int = 1_200_000
    fpga_total_bram_kb: int = 75_000
    #: Mean time between injected FPGA bit-flip faults under the fault
    #: model (used only by fault-injection experiments, not normal runs).
    bitflip_rate_per_gb: float = 0.0


@dataclass(frozen=True)
class Profiles:
    """Bundle of every calibrated constant set, with override helpers."""

    network: NetworkProfile = field(default_factory=NetworkProfile)
    kernel_tcp: KernelTcpProfile = field(default_factory=KernelTcpProfile)
    luna: LunaProfile = field(default_factory=LunaProfile)
    rdma: RdmaProfile = field(default_factory=RdmaProfile)
    solar: SolarProfile = field(default_factory=SolarProfile)
    ssd: SsdProfile = field(default_factory=SsdProfile)
    sa: SaProfile = field(default_factory=SaProfile)
    pcie: PcieProfile = field(default_factory=PcieProfile)
    dpu: DpuProfile = field(default_factory=DpuProfile)

    def with_overrides(self, **sections) -> "Profiles":
        """Return a copy with whole sections or per-field dicts replaced.

        ``profiles.with_overrides(network={"access_gbps": 100.0})`` replaces
        one field; passing a profile instance replaces the whole section.
        """
        updates: Dict[str, object] = {}
        for name, value in sections.items():
            current = getattr(self, name)  # raises AttributeError if bogus
            if isinstance(value, dict):
                updates[name] = replace(current, **value)
            else:
                updates[name] = value
        return replace(self, **updates)


DEFAULT = Profiles()


@lru_cache(maxsize=None)
def bytes_time_ns(size_bytes: int, gbps: float) -> int:
    """Wire/serialization time for ``size_bytes`` at ``gbps`` (integer ns).

    Memoized: a simulation draws sizes from a handful of message shapes
    and rates from the profile tables, so the domain is tiny while the
    call count is one-per-packet-per-hop.
    """
    if gbps <= 0:
        raise ValueError(f"non-positive bandwidth: {gbps}")
    return int(round(size_bytes * 8 / (gbps * GBPS) * 1e9))
