"""Clos fabric builder for the EBS frontend network.

The FN (§2.1) spans compute and storage clusters — and possibly multiple
data centers in a region — so the builder produces a four-tier hierarchy:

    host ── ToR(pair) ── spine(per pod) ── core(per DC) ── DC router

* every host is dual-homed to its rack's ToR pair (§3.3);
* each pod (PoD, §2.1) is a two-layer Clos of ToRs and spines;
* cores interconnect the pods of one data center;
* DC routers interconnect data centers (only built when needed).

Forwarding is classic up/down ECMP; the topology owns the membership maps
and supplies each switch's next-hop candidate function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..profiles import NetworkProfile
from ..sim.engine import Simulator
from .endpoint import Endpoint
from .link import Link
from .packet import Packet
from .switch import Switch


@dataclass(frozen=True)
class PodSpec:
    """One pod's shape.  ``role`` tags it compute or storage for callers."""

    name: str
    racks: int
    hosts_per_rack: int
    spines: int = 2
    tors_per_rack: int = 2
    role: str = "compute"
    dc: str = "dc0"

    def __post_init__(self) -> None:
        if min(self.racks, self.hosts_per_rack, self.spines, self.tors_per_rack) < 1:
            raise ValueError(f"degenerate pod spec: {self}")


@dataclass
class ClosTopology:
    sim: Simulator
    profile: NetworkProfile
    pods: List[PodSpec]
    cores_per_dc: int = 2
    dc_routers: int = 2

    hosts: Dict[str, Endpoint] = field(default_factory=dict)
    switches: Dict[str, Switch] = field(default_factory=dict)
    links: List[Link] = field(default_factory=list)

    _host_loc: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    _rack_hosts: Dict[Tuple[str, int], List[str]] = field(default_factory=dict)
    _rack_tors: Dict[Tuple[str, int], List[str]] = field(default_factory=dict)
    _pod_spines: Dict[str, List[str]] = field(default_factory=dict)
    _pod_dc: Dict[str, str] = field(default_factory=dict)
    _dc_cores: Dict[str, List[str]] = field(default_factory=dict)
    _dcr_names: List[str] = field(default_factory=list)
    _switch_pod: Dict[str, str] = field(default_factory=dict)
    _switch_dc: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_switch(self, name: str, tier: str, pod: str = "", dc: str = "") -> Switch:
        switch = Switch(self.sim, name, tier, self.profile, self._next_hops)
        self.switches[name] = switch
        if pod:
            self._switch_pod[name] = pod
        if dc:
            self._switch_dc[name] = dc
        return switch

    def _wire(self, a, b, gbps: float) -> Link:
        link = Link(
            self.sim,
            a,
            b,
            gbps,
            self.profile.link_propagation_ns,
            self.profile.queue_capacity_bytes,
            priority=self.profile.priority_queues,
        )
        self.links.append(link)
        for node, channel in ((a, link.ab), (b, link.ba)):
            if isinstance(node, Switch):
                node.connect(link.other(node).name, channel)
            else:
                node.add_uplink(channel)
        return link

    def _build(self) -> None:
        dcs = sorted({pod.dc for pod in self.pods})
        multi_dc = len(dcs) > 1
        for dc in dcs:
            self._dc_cores[dc] = [
                self._new_switch(f"{dc}/core{i}", "core", dc=dc).name
                for i in range(self.cores_per_dc)
            ]
        if multi_dc:
            self._dcr_names = [
                self._new_switch(f"dcr{i}", "dc_router").name
                for i in range(self.dc_routers)
            ]
            for dc in dcs:
                for core in self._dc_cores[dc]:
                    for dcr in self._dcr_names:
                        self._wire(self.switches[core], self.switches[dcr],
                                   self.profile.fabric_gbps)

        for pod in self.pods:
            self._pod_dc[pod.name] = pod.dc
            spines = [
                self._new_switch(f"{pod.name}/spine{i}", "spine", pod.name, pod.dc)
                for i in range(pod.spines)
            ]
            self._pod_spines[pod.name] = [s.name for s in spines]
            for spine in spines:
                for core in self._dc_cores[pod.dc]:
                    self._wire(spine, self.switches[core], self.profile.fabric_gbps)
            for rack in range(pod.racks):
                key = (pod.name, rack)
                tors = [
                    self._new_switch(f"{pod.name}/r{rack}/tor{j}", "tor", pod.name, pod.dc)
                    for j in range(pod.tors_per_rack)
                ]
                self._rack_tors[key] = [t.name for t in tors]
                for tor in tors:
                    for spine in spines:
                        self._wire(tor, spine, self.profile.fabric_gbps)
                self._rack_hosts[key] = []
                for h in range(pod.hosts_per_rack):
                    host = Endpoint(self.sim, f"{pod.name}/r{rack}/h{h}")
                    self.hosts[host.name] = host
                    self._host_loc[host.name] = key
                    self._rack_hosts[key].append(host.name)
                    for tor in tors:
                        self._wire(host, tor, self.profile.access_gbps)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _next_hops(self, switch: Switch, packet: Packet) -> List[str]:
        loc = self._host_loc.get(packet.dst)
        if loc is None:
            return []
        dpod, drack = loc
        ddc = self._pod_dc[dpod]
        tier = switch.tier
        if tier == "tor":
            pod = self._switch_pod[switch.name]
            if (dpod, drack) == (pod, self._tor_rack(switch.name)):
                return [packet.dst]
            return self._pod_spines[pod]
        if tier == "spine":
            pod = self._switch_pod[switch.name]
            if dpod == pod:
                # A ToR whose host-facing port died withdraws the host
                # route (loss-of-light -> /32 withdrawal), so spines only
                # consider ToRs that can still reach the destination.
                tors = self._rack_tors[(dpod, drack)]
                reachable = [
                    t for t in tors
                    if packet.dst in self.switches[t].ports
                    and self.switches[t].ports[packet.dst].up
                ]
                return reachable or tors
            return self._dc_cores[self._switch_dc[switch.name]]
        if tier == "core":
            dc = self._switch_dc[switch.name]
            if ddc == dc:
                return self._pod_spines[dpod]
            return self._dcr_names
        if tier == "dc_router":
            return self._dc_cores[ddc]
        raise RuntimeError(f"unknown switch tier {tier!r}")

    @staticmethod
    def _tor_rack(tor_name: str) -> int:
        # "<pod>/r<rack>/tor<j>"
        return int(tor_name.split("/")[1][1:])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def hosts_in_pod(self, pod_name: str) -> List[Endpoint]:
        return [
            self.hosts[name]
            for (pod, _rack), names in sorted(self._rack_hosts.items())
            if pod == pod_name
            for name in names
        ]

    def pods_by_role(self, role: str) -> List[PodSpec]:
        return [pod for pod in self.pods if pod.role == role]

    def switches_by_tier(self, tier: str) -> List[Switch]:
        return [s for name, s in sorted(self.switches.items()) if s.tier == tier]

    def tor_of_host(self, host_name: str, index: int = 0) -> Switch:
        pod, rack = self._host_loc[host_name]
        return self.switches[self._rack_tors[(pod, rack)][index]]

    def path_hops(self, src: str, dst: str) -> int:
        """Number of switch hops on a (representative) src→dst path."""
        spod, srack = self._host_loc[src]
        dpod, drack = self._host_loc[dst]
        if (spod, srack) == (dpod, drack):
            return 1  # ToR only
        if spod == dpod:
            return 3  # ToR, spine, ToR
        if self._pod_dc[spod] == self._pod_dc[dpod]:
            return 5  # ToR, spine, core, spine, ToR
        return 7  # + DC routers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClosTopology pods={len(self.pods)} hosts={len(self.hosts)} "
            f"switches={len(self.switches)}>"
        )
