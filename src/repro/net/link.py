"""Point-to-point links.

A :class:`Link` is a full-duplex cable built from two independent
:class:`Channel` directions.  Each channel models:

* store-and-forward serialization at the configured line rate;
* fixed propagation delay;
* a drop-tail egress queue (the *sender's* output buffer) that fills when
  the line is busy.

Receivers are any object with ``receive(packet, ingress)`` where ``ingress``
is the channel the packet arrived on.

Fast path
---------

Moving one packet across a channel historically cost two simulator
events: a serialization-finish at ``t_f = start + wire`` and a delivery
at ``t_d = t_f + propagation``.  On an uncontended line nothing observes
the instant ``t_f`` — the finish event existed only to bump tx counters
and poll an empty queue — so the fast path folds both into a single
*combined* event at ``t_d`` and lazily settles the tx statistics (they
are re-derived on read for any observer that looks between ``t_f`` and
``t_d``).  The folded finish is accounted to
:meth:`repro.sim.engine.Simulator.credit_events`, keeping
``events_processed`` — and every artifact embedding it — identical to
the two-event execution.  When the line *is* contended (another frame is
queued behind the one in flight), the finish event is materialized at
exactly ``t_f`` so the next serialization starts on time, reproducing
the legacy event-for-event behaviour.

Set ``REPRO_LINK_FASTPATH=0`` to force the legacy two-event path
(cross-checked by ``tests/test_net.py``).
"""

from __future__ import annotations

import os
from collections import deque
from typing import List, Optional, Protocol, Tuple

from ..profiles import bytes_time_ns
from ..sim.engine import Simulator
from .packet import Packet
from .queue import DropTailQueue

#: Environment escape hatch: set to ``0`` to disable event coalescing.
FASTPATH_ENV = "REPRO_LINK_FASTPATH"

#: Monotonic generation counter for link-state-derived caches (switch
#: route candidates, endpoint live-uplink lists).  Bumped on every
#: channel up/down transition and on (re)wiring; caches stamp the value
#: they were built at and rebuild when it moved.  A single process-wide
#: counter over-invalidates across simulators, which is harmless — the
#: caches are pure functions of current link state.
LINK_STATE_EPOCH = [0]


class Receiver(Protocol):
    name: str

    def receive(self, packet: Packet, ingress: "Channel") -> None: ...


class _InFlight:
    """A frame between serialization start and delivery.

    ``materialized`` — a real finish event exists at ``finish_ns``
    (scheduled because another frame queued up behind this one, or the
    line was already contended when it started).  ``up_at_finish`` is
    recorded by that event; un-materialized frames reconstruct the
    channel state at ``finish_ns`` from the up/down transition log.
    """

    __slots__ = (
        "packet", "finish_ns", "materialized", "finished", "up_at_finish", "combined",
    )

    def __init__(self, packet: Packet, finish_ns: int):
        self.packet = packet
        self.finish_ns = finish_ns
        self.materialized = False
        self.finished = False
        self.up_at_finish = True
        self.combined = None


class Channel:
    """One direction of a link: sender-side queue + wire."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        src: "Receiver",
        dst: "Receiver",
        gbps: float,
        propagation_ns: int,
        queue_capacity_bytes: int,
        priority: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.src = src
        self.dst = dst
        self.gbps = gbps
        self.propagation_ns = propagation_ns
        if priority:
            from .queue import PriorityQueue

            self.queue = PriorityQueue(queue_capacity_bytes, name=f"{name}.q")
        else:
            self.queue = DropTailQueue(queue_capacity_bytes, name=f"{name}.q")
        self._up = True
        self._fastpath = os.environ.get(FASTPATH_ENV, "1") != "0"
        self._transmitting = False
        self._tx_packets = 0
        self._tx_bytes = 0
        #: Frames serialized (logically) but with stats not yet settled.
        self._pending: "deque[_InFlight]" = deque()
        #: The frame currently on the wire (fast path's busy test).
        self._tail: Optional[_InFlight] = None
        #: Combined events outstanding; the transition log lives while > 0.
        self._outstanding = 0
        #: (time, up) transitions while frames are in flight, so a
        #: combined event can evaluate "was the line up at my t_f?".
        self._up_log: List[Tuple[int, bool]] = []
        #: tx_bytes at the previous INT stamp, for utilization hints.
        self.tx_bytes_window_start = 0
        self.window_start_ns = 0

    # ------------------------------------------------------------------
    # Lazily settled tx statistics
    # ------------------------------------------------------------------
    def _settle(self, now: int) -> None:
        pending = self._pending
        while pending and pending[0].finish_ns <= now:
            rec = pending.popleft()
            self._tx_packets += 1
            self._tx_bytes += rec.packet.size_bytes

    @property
    def tx_packets(self) -> int:
        self._settle(self.sim.now)
        return self._tx_packets

    @property
    def tx_bytes(self) -> int:
        self._settle(self.sim.now)
        return self._tx_bytes

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Queue a packet for transmission.  Returns False if dropped.

        A downed channel silently drops (fail-stop port/cable failure);
        the sender has no signal other than missing ACKs, matching how a
        real fabric fails (§3.3).
        """
        if not self.up:
            return False
        if not self.queue.offer(packet):
            return False
        if not self._fastpath:
            if not self._transmitting:
                self._start_next()
            return True
        tail = self._tail
        # Busy iff the tail frame is still serializing.  The tie case
        # (now == finish_ns with a materialized finish event not yet
        # fired this instant) must count as busy, or a same-ns send
        # would start an overlapping serialization.
        if tail is not None and (
            tail.finish_ns > self.sim.now
            or (tail.materialized and not tail.finished)
        ):
            # Line busy: the new frame starts when the current one
            # finishes, so that instant must exist as a real event.
            if not tail.materialized:
                tail.materialized = True
                self.sim.schedule_at_fire(tail.finish_ns, self._finish_fast, tail)
            return True
        # Line idle (hence the queue was empty): serialize immediately.
        self._begin(self.queue.poll())
        return True

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def _begin(self, packet: Packet) -> None:
        wire_ns = bytes_time_ns(packet.size_bytes, self.gbps)
        rec = _InFlight(packet, self.sim.now + wire_ns)
        rec.combined = self.sim.schedule(
            wire_ns + self.propagation_ns, self._deliver_fast, rec
        )
        self._tail = rec
        self._pending.append(rec)
        self._outstanding += 1
        if len(self.queue):
            rec.materialized = True
            self.sim.schedule_fire(wire_ns, self._finish_fast, rec)

    def _finish_fast(self, rec: _InFlight) -> None:
        # Fires at rec.finish_ns, only for materialized (contended)
        # frames — mirrors the legacy finish event exactly.
        rec.finished = True
        rec.up_at_finish = self.up
        if not self.up:
            rec.combined.cancel()
            self._retire(rec)
        packet = self.queue.poll()
        if packet is not None:
            self._begin(packet)

    def _deliver_fast(self, rec: _InFlight) -> None:
        if rec.materialized:
            up_at_finish = rec.up_at_finish
        else:
            up_at_finish = self._up_at(rec.finish_ns)
            if up_at_finish:
                # The folded serialization-finish: keep events_processed
                # identical to the two-event execution.
                self.sim.credit_events(1)
        self._retire(rec)
        if up_at_finish and self.up:
            self.dst.receive(rec.packet, self)

    def _up_at(self, time_ns: int) -> bool:
        state = True
        for when, up in self._up_log:
            if when <= time_ns:
                state = up
        return state

    def _retire(self, rec: _InFlight) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            if self._up_log:
                self._up_log.clear()
            self._tail = None
            # Everything in flight has been delivered, so every pending
            # stats record has finish_ns <= now: settle them all, keeping
            # ``_pending`` bounded even if the tx counters of this channel
            # are never read (only reads settle otherwise).
            if self._pending:
                self._settle(self.sim.now)
        elif self._tail is rec:
            self._tail = None

    # ------------------------------------------------------------------
    # Legacy two-event path (REPRO_LINK_FASTPATH=0)
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        packet = self.queue.poll()
        if packet is None:
            self._transmitting = False
            return
        self._transmitting = True
        wire_ns = bytes_time_ns(packet.size_bytes, self.gbps)
        self.sim.schedule(wire_ns, self._finish_serialize, packet)

    def _finish_serialize(self, packet: Packet) -> None:
        self._tx_packets += 1
        self._tx_bytes += packet.size_bytes
        if self.up:
            self.sim.schedule(self.propagation_ns, self._deliver, packet)
        self._start_next()

    def _deliver(self, packet: Packet) -> None:
        if self.up:
            self.dst.receive(packet, self)

    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        # A property so that direct writes (fault injection shorthand in
        # tests: ``channel.up = False``) keep the cache epoch and the
        # in-flight transition log coherent, same as :meth:`set_up`.
        if value != self._up:
            LINK_STATE_EPOCH[0] += 1
            if self._outstanding:
                self._up_log.append((self.sim.now, value))
        self._up = value

    def set_up(self, up: bool) -> None:
        """Administratively enable/disable the channel.

        Going down flushes the queue (those frames are lost, as on a real
        port failure).
        """
        if self._up and not up:
            self.queue.clear()
        self.up = up

    def queue_delay_estimate_ns(self) -> int:
        """Serialization time of everything currently queued."""
        return bytes_time_ns(self.queue.bytes, self.gbps)

    def take_tx_window(self, now_ns: int) -> tuple[int, int]:
        """Return (bytes, window_ns) transmitted since the previous call."""
        tx_bytes = self.tx_bytes
        delta = tx_bytes - self.tx_bytes_window_start
        window = now_ns - self.window_start_ns
        self.tx_bytes_window_start = tx_bytes
        self.window_start_ns = now_ns
        return delta, window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return f"<Channel {self.name} {self.gbps}G {state}>"


class Link:
    """Full-duplex link: two mirrored channels."""

    def __init__(
        self,
        sim: Simulator,
        a: "Receiver",
        b: "Receiver",
        gbps: float,
        propagation_ns: int,
        queue_capacity_bytes: int,
        priority: bool = False,
    ):
        self.a = a
        self.b = b
        self.ab = Channel(
            sim, f"{a.name}->{b.name}", a, b, gbps, propagation_ns,
            queue_capacity_bytes, priority,
        )
        self.ba = Channel(
            sim, f"{b.name}->{a.name}", b, a, gbps, propagation_ns,
            queue_capacity_bytes, priority,
        )

    def channel_from(self, node: "Receiver") -> Channel:
        if node is self.a:
            return self.ab
        if node is self.b:
            return self.ba
        raise ValueError(f"{node.name} is not an endpoint of this link")

    def other(self, node: "Receiver") -> "Receiver":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node.name} is not an endpoint of this link")

    def set_up(self, up: bool) -> None:
        self.ab.set_up(up)
        self.ba.set_up(up)
