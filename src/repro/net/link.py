"""Point-to-point links.

A :class:`Link` is a full-duplex cable built from two independent
:class:`Channel` directions.  Each channel models:

* store-and-forward serialization at the configured line rate;
* fixed propagation delay;
* a drop-tail egress queue (the *sender's* output buffer) that fills when
  the line is busy.

Receivers are any object with ``receive(packet, ingress)`` where ``ingress``
is the channel the packet arrived on.
"""

from __future__ import annotations

from typing import Protocol

from ..profiles import bytes_time_ns
from ..sim.engine import Simulator
from .packet import Packet
from .queue import DropTailQueue


class Receiver(Protocol):
    name: str

    def receive(self, packet: Packet, ingress: "Channel") -> None: ...


class Channel:
    """One direction of a link: sender-side queue + wire."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        src: "Receiver",
        dst: "Receiver",
        gbps: float,
        propagation_ns: int,
        queue_capacity_bytes: int,
        priority: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.src = src
        self.dst = dst
        self.gbps = gbps
        self.propagation_ns = propagation_ns
        if priority:
            from .queue import PriorityQueue

            self.queue = PriorityQueue(queue_capacity_bytes, name=f"{name}.q")
        else:
            self.queue = DropTailQueue(queue_capacity_bytes, name=f"{name}.q")
        self.up = True
        self._transmitting = False
        self.tx_packets = 0
        self.tx_bytes = 0
        #: tx_bytes at the previous INT stamp, for utilization hints.
        self.tx_bytes_window_start = 0
        self.window_start_ns = 0

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Queue a packet for transmission.  Returns False if dropped.

        A downed channel silently drops (fail-stop port/cable failure);
        the sender has no signal other than missing ACKs, matching how a
        real fabric fails (§3.3).
        """
        if not self.up:
            return False
        if not self.queue.offer(packet):
            return False
        if not self._transmitting:
            self._start_next()
        return True

    def _start_next(self) -> None:
        packet = self.queue.poll()
        if packet is None:
            self._transmitting = False
            return
        self._transmitting = True
        wire_ns = bytes_time_ns(packet.size_bytes, self.gbps)
        self.sim.schedule(wire_ns, self._finish_serialize, packet)

    def _finish_serialize(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += packet.size_bytes
        if self.up:
            self.sim.schedule(self.propagation_ns, self._deliver, packet)
        self._start_next()

    def _deliver(self, packet: Packet) -> None:
        if self.up:
            self.dst.receive(packet, self)

    # ------------------------------------------------------------------
    def set_up(self, up: bool) -> None:
        """Administratively enable/disable the channel.

        Going down flushes the queue (those frames are lost, as on a real
        port failure).
        """
        if self.up and not up:
            self.queue.clear()
        self.up = up

    def queue_delay_estimate_ns(self) -> int:
        """Serialization time of everything currently queued."""
        return bytes_time_ns(self.queue.bytes, self.gbps)

    def take_tx_window(self, now_ns: int) -> tuple[int, int]:
        """Return (bytes, window_ns) transmitted since the previous call."""
        delta = self.tx_bytes - self.tx_bytes_window_start
        window = now_ns - self.window_start_ns
        self.tx_bytes_window_start = self.tx_bytes
        self.window_start_ns = now_ns
        return delta, window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return f"<Channel {self.name} {self.gbps}G {state}>"


class Link:
    """Full-duplex link: two mirrored channels."""

    def __init__(
        self,
        sim: Simulator,
        a: "Receiver",
        b: "Receiver",
        gbps: float,
        propagation_ns: int,
        queue_capacity_bytes: int,
        priority: bool = False,
    ):
        self.a = a
        self.b = b
        self.ab = Channel(
            sim, f"{a.name}->{b.name}", a, b, gbps, propagation_ns,
            queue_capacity_bytes, priority,
        )
        self.ba = Channel(
            sim, f"{b.name}->{a.name}", b, a, gbps, propagation_ns,
            queue_capacity_bytes, priority,
        )

    def channel_from(self, node: "Receiver") -> Channel:
        if node is self.a:
            return self.ab
        if node is self.b:
            return self.ba
        raise ValueError(f"{node.name} is not an endpoint of this link")

    def other(self, node: "Receiver") -> "Receiver":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node.name} is not an endpoint of this link")

    def set_up(self, up: bool) -> None:
        self.ab.set_up(up)
        self.ba.set_up(up)
