"""Host network attachment.

An :class:`Endpoint` is a server's set of NIC ports.  Production compute
servers are dual-homed ("even with the ToR switch, we connect each server
to a pair of it", §3.3), so an endpoint may hold several channels and
spreads flows across them by consistent hash — exactly like one more ECMP
stage.  Received packets are demultiplexed to registered protocol handlers
by protocol name, falling back to a default handler.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.engine import Simulator
from .ecmp import pick
from .link import LINK_STATE_EPOCH, Channel
from .packet import Packet

PacketHandler = Callable[[Packet], None]


class Endpoint:
    """A host's attachment to the fabric (one or more NIC ports)."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.uplinks: List[Channel] = []
        self._live_epoch = -1
        self._live_uplinks: List[Channel] = []
        self._handlers: Dict[str, PacketHandler] = {}
        self._default_handler: Optional[PacketHandler] = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_dropped = 0

    # ------------------------------------------------------------------
    def add_uplink(self, channel: Channel) -> None:
        self.uplinks.append(channel)
        LINK_STATE_EPOCH[0] += 1

    def on_proto(self, proto: str, handler: PacketHandler) -> None:
        """Register a handler for packets of a given ``proto``."""
        self._handlers[proto] = handler

    def on_default(self, handler: PacketHandler) -> None:
        self._default_handler = handler

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Emit a packet through one healthy uplink (flow-hashed)."""
        epoch = LINK_STATE_EPOCH[0]
        if epoch != self._live_epoch:
            self._live_uplinks = [ch for ch in self.uplinks if ch.up]
            self._live_epoch = epoch
        live = self._live_uplinks
        if not live:
            self.tx_dropped += 1
            return False
        packet.created_ns = packet.created_ns or self.sim.now
        channel = pick(packet.flow, live, salt=self.name)
        ok = channel.send(packet)
        if ok:
            self.tx_packets += 1
            self.tx_bytes += packet.size_bytes
        else:
            self.tx_dropped += 1
        return ok

    def receive(self, packet: Packet, ingress: Channel) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.size_bytes
        handler = self._handlers.get(packet.proto, self._default_handler)
        if handler is None:
            raise RuntimeError(
                f"endpoint {self.name} received {packet.proto!r} packet but has "
                f"no handler (registered: {sorted(self._handlers)})"
            )
        handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Endpoint {self.name} uplinks={len(self.uplinks)}>"
