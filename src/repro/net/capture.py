"""Packet capture: tcpdump for the simulated fabric.

A :class:`PacketCapture` taps endpoints (RX side) and records structured
events with timestamps, so protocol behaviour can be inspected and
asserted the way one would read a pcap: filter by flow/proto/port, count
retransmissions, dump a human-readable trace.

Captures are pure observers — they never mutate or delay packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.engine import Simulator
from .endpoint import Endpoint
from .packet import Packet


@dataclass(frozen=True)
class CaptureRecord:
    """One observed packet delivery."""

    t_ns: int
    at: str  # endpoint name where observed
    src: str
    dst: str
    sport: int
    dport: int
    proto: str
    size_bytes: int
    pkt_id: int
    layers: tuple  # header layer names present

    def __str__(self) -> str:
        return (f"{self.t_ns / 1000:12.3f}us  {self.at:14s} "
                f"{self.src}:{self.sport} > {self.dst}:{self.dport} "
                f"{self.proto} len={self.size_bytes} [{','.join(self.layers)}]")


class PacketCapture:
    """Records every packet delivered to the tapped endpoints."""

    def __init__(self, sim: Simulator, max_records: int = 1_000_000):
        if max_records < 1:
            raise ValueError("capture needs room for at least one record")
        self.sim = sim
        self.max_records = max_records
        self.records: List[CaptureRecord] = []
        self.truncated = False
        self._taps = 0

    # ------------------------------------------------------------------
    def tap(self, endpoint: Endpoint) -> None:
        """Attach to an endpoint's receive path (all protocols)."""
        self._taps += 1
        original_receive = endpoint.receive

        def tapped(packet: Packet, ingress) -> None:
            self._record(endpoint.name, packet)
            original_receive(packet, ingress)

        endpoint.receive = tapped  # type: ignore[method-assign]

    def _record(self, at: str, packet: Packet) -> None:
        if len(self.records) >= self.max_records:
            self.truncated = True
            return
        self.records.append(
            CaptureRecord(
                self.sim.now, at, packet.src, packet.dst, packet.sport,
                packet.dport, packet.proto, packet.size_bytes, packet.pkt_id,
                tuple(sorted(packet.headers)),
            )
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def filter(
        self,
        proto: Optional[str] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        sport: Optional[int] = None,
        dport: Optional[int] = None,
        predicate: Optional[Callable[[CaptureRecord], bool]] = None,
    ) -> List[CaptureRecord]:
        """Subset of records matching every given criterion."""
        out = []
        for record in self.records:
            if proto is not None and record.proto != proto:
                continue
            if src is not None and record.src != src:
                continue
            if dst is not None and record.dst != dst:
                continue
            if sport is not None and record.sport != sport:
                continue
            if dport is not None and record.dport != dport:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def flows(self) -> dict:
        """Per-flow packet and byte counts."""
        stats: dict = {}
        for record in self.records:
            key = (record.src, record.dst, record.sport, record.dport, record.proto)
            packets, size = stats.get(key, (0, 0))
            stats[key] = (packets + 1, size + record.size_bytes)
        return stats

    def duplicates(self) -> List[int]:
        """pkt_ids seen more than once (a packet delivered at 2+ taps, or
        genuinely retransmitted objects share ids only if re-sent whole)."""
        seen: dict = {}
        for record in self.records:
            seen[record.pkt_id] = seen.get(record.pkt_id, 0) + 1
        return sorted(pid for pid, count in seen.items() if count > 1)

    def dump(self, limit: int = 50) -> str:
        lines = [str(r) for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more")
        if self.truncated:
            lines.append("[capture truncated at max_records]")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)
