"""FN-fabric boundaries: where a shard's simulation ends and another's
begins.

The shard plane (:mod:`repro.dist`) cuts a fleet at deployment
granularity; traffic that crosses the cut — rebuild storms spilling onto
another deployment's BN, live migrations landing their I/O load
elsewhere, fabric incidents propagating fleet-wide — travels as
timestamped :class:`ShardMessage` records instead of simulated packets.

The correctness rule is the conservative-lookahead contract: a message
exported at simulated time ``t`` may not be delivered before
``t + crossing_ns``, where ``crossing_ns`` is at least the coordinator's
lookahead window.  That bound is what lets every shard advance one full
window without waiting on its peers — nothing a peer does inside the
current window can affect this shard before the *next* window boundary.
:class:`FabricBoundary` enforces the bound at export time, so a protocol
violation is an immediate error in the producing shard rather than a
nondeterminism three artifacts later.

Message ordering is total and layout-independent: ``(deliver_at_ns,
src, seq)`` — timestamp, then origin deployment, then per-origin export
sequence.  Every shard count delivers the same messages in the same
order at the same barriers, which is the keystone of the subsystem's
byte-identical-across-shard-counts guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = ["ShardMessage", "FabricBoundary", "message_sort_key"]


@dataclass(frozen=True)
class ShardMessage:
    """One timestamped unit of cross-shard traffic."""

    #: Absolute simulated delivery time at the destination.
    deliver_at_ns: int
    #: Origin deployment index (fleet-wide numbering).
    src: int
    #: Per-origin export sequence number (tie-break within one ns).
    seq: int
    #: Destination deployment index.
    dst: int
    #: Traffic kind — ``rebuild`` | ``migration`` | ``incident``.
    kind: str
    #: Kind-specific parameters (JSON-able scalars only).
    payload: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "deliver_at_ns": self.deliver_at_ns,
            "src": self.src,
            "seq": self.seq,
            "dst": self.dst,
            "kind": self.kind,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ShardMessage":
        return cls(
            deliver_at_ns=int(d["deliver_at_ns"]),
            src=int(d["src"]),
            seq=int(d["seq"]),
            dst=int(d["dst"]),
            kind=str(d["kind"]),
            payload=dict(d["payload"]),
        )


def message_sort_key(msg: ShardMessage) -> Tuple[int, int, int]:
    """The total delivery order — identical for every shard layout."""
    return (msg.deliver_at_ns, msg.src, msg.seq)


class FabricBoundary:
    """Outbound message edge of one deployment simulation.

    Created with the deployment's fleet-wide index and the fabric's
    minimum crossing latency; handlers inside the deployment call
    :meth:`export` as cross-shard traffic is generated, and the shard
    worker drains the buffer at each window barrier.
    """

    def __init__(self, sim, src: int, crossing_ns: int):
        if crossing_ns <= 0:
            raise ValueError(f"crossing_ns must be positive: {crossing_ns}")
        self._sim = sim
        self.src = src
        self.crossing_ns = crossing_ns
        self._seq = 0
        self._out: List[ShardMessage] = []
        #: Lifetime export counter (survives drains; lands in artifacts).
        self.exported = 0

    def export(
        self,
        kind: str,
        dst: int,
        payload: Dict[str, Any],
        deliver_at_ns: int | None = None,
    ) -> ShardMessage:
        """Queue a message for delivery at ``deliver_at_ns`` (default:
        now + the minimum crossing latency).

        Raises ``ValueError`` when the requested delivery time violates
        the lookahead contract — that is a programming error in the
        caller, and letting it through would silently break determinism
        across shard counts.
        """
        earliest = self._sim.now + self.crossing_ns
        if deliver_at_ns is None:
            deliver_at_ns = earliest
        elif deliver_at_ns < earliest:
            raise ValueError(
                f"cross-shard delivery at {deliver_at_ns}ns violates the "
                f"lookahead contract (now={self._sim.now}ns + "
                f"crossing={self.crossing_ns}ns = {earliest}ns minimum)"
            )
        msg = ShardMessage(int(deliver_at_ns), self.src, self._seq, dst, kind, payload)
        self._seq += 1
        self.exported += 1
        self._out.append(msg)
        return msg

    def drain(self) -> List[ShardMessage]:
        """Take everything exported since the last drain (barrier hook)."""
        out, self._out = self._out, []
        return out
