"""Store-and-forward switch model with ECMP, INT, and failure modes.

Failure modes (the Table 2 / Figure 8 scenarios):

* **fail-stop** (``set_up(False)``): the whole switch drops everything —
  routing around it happens naturally because neighbors' ECMP candidate
  sets exclude downed channels once the failure detector marks them;
* **port failure**: an individual channel goes down (handled by
  :class:`repro.net.link.Channel`);
* **blackhole**: the switch silently drops a *subset* of flows chosen by
  consistent hash — the paper's hardest case ("the traffic blackhole on a
  subset of traffic is hard to detect and mitigate via network
  operations", §4.7);
* **reboot**: fail-stop for a duration, then recovery.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..profiles import NetworkProfile
from ..sim.engine import Simulator
from .ecmp import flow_hash, pick
from .link import LINK_STATE_EPOCH, Channel
from .packet import IntRecord, Packet


class Switch:
    """A single switch; forwarding policy is delegated to the topology."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tier: str,
        profile: NetworkProfile,
        next_hops: Optional[Callable[["Switch", Packet], List[str]]] = None,
    ):
        self.sim = sim
        self.name = name
        self.tier = tier
        self.profile = profile
        #: neighbor name -> egress channel toward that neighbor.
        self.ports: Dict[str, Channel] = {}
        self._next_hops = next_hops
        self.up = True
        self.blackhole_fraction = 0.0
        self.blackhole_salt = ""
        self.drop_rate = 0.0
        self._drop_rng = sim.rng.stream(f"switch/{name}/drop")
        #: dst -> (epoch, up-filtered candidate names); rebuilt when any
        #: link state changes.  Routing is a pure function of (switch,
        #: dst, link state), so this is exact, not approximate.
        self._route_cache: Dict[str, tuple] = {}
        self.rx_packets = 0
        self.forwarded = 0
        self.dropped_no_route = 0
        self.dropped_blackhole = 0
        self.dropped_down = 0
        self.dropped_ttl = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, neighbor_name: str, egress: Channel) -> None:
        self.ports[neighbor_name] = egress
        LINK_STATE_EPOCH[0] += 1

    def set_route_fn(self, fn: Callable[["Switch", Packet], List[str]]) -> None:
        """Install the routing function.

        ``fn`` must depend only on the switch, ``packet.dst``, and
        current link state — its results are cached per destination and
        invalidated on link-state changes (see ``_route_cache``).
        """
        self._next_hops = fn
        self._route_cache.clear()

    # ------------------------------------------------------------------
    # Failure controls
    # ------------------------------------------------------------------
    def set_up(self, up: bool) -> None:
        self.up = up

    def set_blackhole(self, fraction: float, salt: str = "bh") -> None:
        """Silently drop ``fraction`` of flows (consistent per flow)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"blackhole fraction out of range: {fraction}")
        self.blackhole_fraction = fraction
        self.blackhole_salt = salt

    def set_drop_rate(self, rate: float) -> None:
        """Drop packets uniformly at random (Table 2's 'packet drop rate'
        scenario — e.g. a failing line card corrupting frames)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drop rate out of range: {rate}")
        self.drop_rate = rate

    def reboot(self, downtime_ns: int) -> None:
        """Fail-stop now, come back after ``downtime_ns``."""
        self.set_up(False)
        self.sim.schedule(downtime_ns, self.set_up, True)

    def _blackholes(self, packet: Packet) -> bool:
        if self.blackhole_fraction <= 0.0:
            return False
        h = flow_hash(packet.flow, f"{self.name}|{self.blackhole_salt}")
        return (h / 0xFFFFFFFF) < self.blackhole_fraction

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, ingress: Channel) -> None:
        self.rx_packets += 1
        if not self.up:
            self.dropped_down += 1
            return
        if self._blackholes(packet):
            self.dropped_blackhole += 1
            return
        if self.drop_rate > 0.0 and self._drop_rng.random() < self.drop_rate:
            self.dropped_blackhole += 1
            return
        if packet.ttl <= 0:
            self.dropped_ttl += 1
            return
        packet.ttl -= 1
        self.sim.schedule_fire(self.profile.switch_forward_ns, self._forward, packet)

    def _forward(self, packet: Packet) -> None:
        if not self.up:
            self.dropped_down += 1
            return
        epoch = LINK_STATE_EPOCH[0]
        cached = self._route_cache.get(packet.dst)
        if cached is not None and cached[0] == epoch:
            candidates = cached[1]
        else:
            if self._next_hops is None:
                raise RuntimeError(f"switch {self.name} has no routing function")
            candidates = [
                name
                for name in self._next_hops(self, packet)
                if name in self.ports and self.ports[name].up
            ]
            self._route_cache[packet.dst] = (epoch, candidates)
        if not candidates:
            self.dropped_no_route += 1
            return
        egress = self.ports[pick(packet.flow, candidates, salt=self.name)]
        self._stamp_int(packet, egress)
        self.forwarded += 1
        egress.send(packet)

    def _stamp_int(self, packet: Packet, egress: Channel) -> None:
        """Append an HPCC-style telemetry record (§4.8 per-packet INT)."""
        packet.int_records.append(
            IntRecord(
                switch=self.name,
                timestamp_ns=self.sim.now,
                queue_bytes=egress.queue.bytes,
                tx_bytes=egress.tx_bytes,
                link_gbps=egress.gbps,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        if self.blackhole_fraction:
            state += f" blackhole={self.blackhole_fraction:.0%}"
        return f"<Switch {self.name} ({self.tier}) {state}>"
