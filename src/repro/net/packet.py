"""Network packet representation.

A :class:`Packet` is the unit moved by links and switches.  It carries:

* the 5-tuple used for ECMP hashing (``src``, ``dst``, ``sport``, ``dport``,
  ``proto``);
* a wire size (headers included) used for serialization/queueing physics;
* a stack of protocol headers (plain mappings keyed by layer name) so the
  transport stacks and SOLAR's pipeline can parse storage semantics out of
  the packet, exactly as §4.4's network/storage fusion requires;
* an optional real ``payload`` (bytes) — integrity experiments flow real
  bytes end to end so CRC arithmetic is genuine, while pure performance
  experiments may leave the payload as ``None`` and carry only a size;
* in-band network telemetry (INT) records appended by switches (§4.5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

_packet_ids = itertools.count(1)

FiveTuple = Tuple[str, str, int, int, str]


@dataclass(slots=True)
class IntRecord:
    """One switch's in-band telemetry stamp (HPCC-style, §4.8)."""

    switch: str
    timestamp_ns: int
    queue_bytes: int
    tx_bytes: int
    link_gbps: float

    def utilization_hint(self, window_ns: int) -> float:
        """Rough link utilization implied by tx_bytes over a window."""
        if window_ns <= 0:
            return 0.0
        capacity_bytes = self.link_gbps * 1e9 / 8 * (window_ns / 1e9)
        if capacity_bytes <= 0:
            return 0.0
        return min(1.0, self.tx_bytes / capacity_bytes)


@dataclass(slots=True)
class Packet:
    """A self-describing simulated packet.

    Slotted: the simulator creates one of these per message per hop, so
    the per-instance ``__dict__`` was measurable in both memory and
    attribute-access time.  Free-form bookkeeping belongs in ``meta``.
    """

    src: str
    dst: str
    sport: int
    dport: int
    proto: str
    size_bytes: int
    headers: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    payload: Optional[bytes] = None
    created_ns: int = 0
    ttl: int = 32
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    int_records: List[IntRecord] = field(default_factory=list)
    #: Free-form simulation bookkeeping (send timestamps, retry counts...).
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")
        if self.payload is not None and len(self.payload) > self.size_bytes:
            raise ValueError(
                f"payload ({len(self.payload)}B) larger than wire size "
                f"({self.size_bytes}B)"
            )

    @property
    def flow(self) -> FiveTuple:
        """The 5-tuple ECMP hashes on.  SOLAR varies ``sport`` per path
        (§4.5: 'use different UDP ports as path IDs')."""
        return (self.src, self.dst, self.sport, self.dport, self.proto)

    def header(self, layer: str) -> Dict[str, Any]:
        """Return the named header, raising KeyError with context if absent."""
        try:
            return self.headers[layer]
        except KeyError:
            raise KeyError(
                f"packet {self.pkt_id} has no {layer!r} header; "
                f"layers present: {sorted(self.headers)}"
            ) from None

    def reply_shell(self, size_bytes: int, proto: Optional[str] = None) -> "Packet":
        """Build a response packet with src/dst and ports mirrored."""
        return Packet(
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            proto=proto or self.proto,
            size_bytes=size_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.pkt_id} {self.proto} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} {self.size_bytes}B>"
        )
