"""Egress queues: drop-tail FIFO, plus the two-class priority variant.

§3.1: AliCloud's FN deliberately uses shallow-buffer switches and accepts
loss (the stacks must be loss-tolerant), so the base model is a
byte-budget drop-tail FIFO with occupancy statistics for INT.

§4.8 adds: "we use a per-packet ACK to perform a fine-grained congestion
control algorithm ... with a **dedicated queue in the switch for SOLAR**"
— modelled by :class:`PriorityQueue`: two drop-tail classes with strict
priority, SOLAR traffic in the high class.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .packet import Packet

#: Protocols served from the dedicated (high-priority) class.
PRIORITY_PROTOS = frozenset({"solar"})


class DropTailQueue:
    """FIFO of packets bounded by total byte occupancy."""

    def __init__(self, capacity_bytes: int, name: str = ""):
        if capacity_bytes <= 0:
            raise ValueError(f"queue capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._items: Deque[Packet] = deque()
        self.bytes = 0
        self.enqueued = 0
        self.dropped = 0
        self.peak_bytes = 0

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, packet: Packet) -> bool:
        """Enqueue if the byte budget allows; return False (drop) otherwise."""
        if self.bytes + packet.size_bytes > self.capacity_bytes:
            self.dropped += 1
            return False
        self._items.append(packet)
        self.bytes += packet.size_bytes
        self.enqueued += 1
        if self.bytes > self.peak_bytes:
            self.peak_bytes = self.bytes
        return True

    def poll(self) -> Optional[Packet]:
        """Dequeue the head packet, or None when empty."""
        if not self._items:
            return None
        packet = self._items.popleft()
        self.bytes -= packet.size_bytes
        return packet

    def clear(self) -> int:
        """Drop everything queued (e.g. on switch power-cycle); returns count."""
        count = len(self._items)
        self.dropped += count
        self._items.clear()
        self.bytes = 0
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DropTailQueue {self.name!r} {len(self._items)}pkts "
            f"{self.bytes}/{self.capacity_bytes}B drops={self.dropped}>"
        )


class PriorityQueue:
    """Two strict-priority drop-tail classes sharing one port (§4.8).

    SOLAR's storage datagrams ride the dedicated high class; everything
    else (including SOLAR's bulk competitors) shares the low class.  Each
    class has half the port's byte budget, so a misbehaving class cannot
    starve the other of *buffer* — only of service order.

    Drop-in compatible with :class:`DropTailQueue` (same offer/poll/clear
    surface, aggregate statistics).
    """

    def __init__(self, capacity_bytes: int, name: str = "",
                 priority_protos: frozenset = PRIORITY_PROTOS):
        if capacity_bytes <= 1:
            raise ValueError(f"queue capacity too small: {capacity_bytes}")
        self.name = name
        self.priority_protos = priority_protos
        self.capacity_bytes = capacity_bytes
        self.high = DropTailQueue(capacity_bytes // 2, name=f"{name}.hi")
        self.low = DropTailQueue(capacity_bytes - capacity_bytes // 2,
                                 name=f"{name}.lo")

    def _class_of(self, packet: Packet) -> DropTailQueue:
        return self.high if packet.proto in self.priority_protos else self.low

    def offer(self, packet: Packet) -> bool:
        return self._class_of(packet).offer(packet)

    def poll(self) -> Optional[Packet]:
        packet = self.high.poll()
        if packet is not None:
            return packet
        return self.low.poll()

    def clear(self) -> int:
        return self.high.clear() + self.low.clear()

    def __len__(self) -> int:
        return len(self.high) + len(self.low)

    # Aggregate statistics, for INT and telemetry parity with DropTailQueue.
    @property
    def bytes(self) -> int:
        return self.high.bytes + self.low.bytes

    @property
    def dropped(self) -> int:
        return self.high.dropped + self.low.dropped

    @property
    def enqueued(self) -> int:
        return self.high.enqueued + self.low.enqueued

    @property
    def peak_bytes(self) -> int:
        return self.high.peak_bytes + self.low.peak_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PriorityQueue {self.name!r} hi={len(self.high)} "
                f"lo={len(self.low)} drops={self.dropped}>")
