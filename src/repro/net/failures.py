"""Named network-failure scenarios.

These are the failure injections behind Table 2 ("Number of I/Os with no
response in one second or longer under failure scenarios") and Figure 8
(I/O hangs by failure location).  Each scenario targets a topology, can be
applied and reverted, and reports what it touched so experiments can log
their blast radius.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from ..sim.events import SECOND
from .topology import ClosTopology


@dataclass
class FailureScenario:
    """A revertible failure injection against one topology."""

    name: str
    apply_fn: Callable[[ClosTopology], List[str]]
    revert_fn: Callable[[ClosTopology], None]
    touched: List[str] = field(default_factory=list)
    applied: bool = False

    def apply(self, topology: ClosTopology) -> List[str]:
        if self.applied:
            raise RuntimeError(f"scenario {self.name!r} already applied")
        self.touched = self.apply_fn(topology)
        self.applied = True
        return self.touched

    def revert(self, topology: ClosTopology) -> None:
        if not self.applied:
            return
        self.revert_fn(topology)
        self.applied = False


def _pick_switch(topology: ClosTopology, tier: str, index: int):
    switches = topology.switches_by_tier(tier)
    if not switches:
        raise ValueError(f"topology has no {tier!r} switches")
    return switches[index % len(switches)]


def tor_port_failure(host_name: str, port_index: int = 0) -> FailureScenario:
    """One host NIC↔ToR cable dies.  Dual homing should absorb this
    completely for every stack (Table 2 row 1: both LUNA and SOLAR at 0)."""
    state: dict = {}

    def apply_fn(topology: ClosTopology) -> List[str]:
        host = topology.hosts[host_name]
        channel = host.uplinks[port_index % len(host.uplinks)]
        state["channel"] = channel
        # Take both directions of the cable down.
        for link in topology.links:
            if channel in (link.ab, link.ba):
                state["link"] = link
                link.set_up(False)
                return [link.ab.name, link.ba.name]
        raise RuntimeError("uplink channel not found among topology links")

    def revert_fn(_topology: ClosTopology) -> None:
        state["link"].set_up(True)

    return FailureScenario(f"tor-port-failure({host_name})", apply_fn, revert_fn)


def node_failure(host_name: str) -> FailureScenario:
    """Fail-stop of a whole host: every NIC↔ToR cable goes dark at once
    (power loss, kernel panic).  The host stops heartbeating — the clean
    detectable death of Table 2's "block server down" row — and every
    in-flight I/O it was serving hangs until failover re-routes it."""
    state: dict = {}

    def apply_fn(topology: ClosTopology) -> List[str]:
        host = topology.hosts[host_name]
        channels = set(host.uplinks)
        links = [
            link for link in topology.links
            if link.ab in channels or link.ba in channels
        ]
        if not links:
            raise RuntimeError(f"host {host_name!r} has no uplink links")
        state["links"] = links
        touched = []
        for link in links:
            link.set_up(False)
            touched.append(link.ab.name)
        return touched

    def revert_fn(_topology: ClosTopology) -> None:
        for link in state["links"]:
            link.set_up(True)

    return FailureScenario(f"node-failure({host_name})", apply_fn, revert_fn)


def switch_failure(tier: str, index: int = 0, link_down: bool = False) -> FailureScenario:
    """Fail-stop of a whole switch at the given tier.

    ``link_down=True`` models a crash that drops the switch's links:
    neighbors detect loss-of-light and ECMP excludes it within the
    forwarding plane ("'fail-stop' failures on a device or port can be
    quickly converged via ECMP routing", §4.7).  ``link_down=False``
    models the nastier data-plane death with PHYs still up: peers keep
    hashing traffic into the corpse until transport-level timers react —
    which is what hung LUNA in Table 2's ToR-failure row.
    """
    state: dict = {}

    def apply_fn(topology: ClosTopology) -> List[str]:
        switch = _pick_switch(topology, tier, index)
        state["switch"] = switch
        switch.set_up(False)
        touched = [switch.name]
        if link_down:
            links = [
                link for link in topology.links
                if switch in (link.a, link.b)
            ]
            state["links"] = links
            for link in links:
                link.set_up(False)
                touched.append(link.ab.name)
        return touched

    def revert_fn(_topology: ClosTopology) -> None:
        state["switch"].set_up(True)
        for link in state.get("links", []):
            link.set_up(True)

    return FailureScenario(f"{tier}-switch-failure[{index}]", apply_fn, revert_fn)


def switch_reboot(tier: str, downtime_ns: int = 90 * SECOND, index: int = 0) -> FailureScenario:
    """Switch reboot / maintenance isolation (Table 2 row 5)."""
    state: dict = {}

    def apply_fn(topology: ClosTopology) -> List[str]:
        switch = _pick_switch(topology, tier, index)
        state["switch"] = switch
        switch.reboot(downtime_ns)
        return [switch.name]

    def revert_fn(_topology: ClosTopology) -> None:
        state["switch"].set_up(True)

    return FailureScenario(f"{tier}-reboot[{index}]", apply_fn, revert_fn)


def switch_blackhole(tier: str, fraction: float = 0.25, index: int = 0,
                     salt: str = "incident") -> FailureScenario:
    """Silent per-flow blackhole — the scenario that hung LUNA for minutes
    in the §3.3 core-switch line-card incident."""
    state: dict = {}

    def apply_fn(topology: ClosTopology) -> List[str]:
        switch = _pick_switch(topology, tier, index)
        state["switch"] = switch
        switch.set_blackhole(fraction, salt)
        return [switch.name]

    def revert_fn(_topology: ClosTopology) -> None:
        state["switch"].set_blackhole(0.0)

    return FailureScenario(
        f"{tier}-blackhole[{index}]@{fraction:.0%}", apply_fn, revert_fn
    )


def random_drop(tier: str, rate: float = 0.75, index: int = 0) -> FailureScenario:
    """Uniform random packet drops (Table 2: 'Packet drop rate=75%')."""
    state: dict = {}

    def apply_fn(topology: ClosTopology) -> List[str]:
        switch = _pick_switch(topology, tier, index)
        state["switch"] = switch
        switch.set_drop_rate(rate)
        return [switch.name]

    def revert_fn(_topology: ClosTopology) -> None:
        state["switch"].set_drop_rate(0.0)

    return FailureScenario(f"{tier}-drop@{rate:.0%}[{index}]", apply_fn, revert_fn)


def table2_scenarios(sample_host: str) -> List[FailureScenario]:
    """The seven failure scenarios of Table 2, in the paper's row order."""
    return [
        tor_port_failure(sample_host),
        # ToR death with host-facing PHYs still up (the LUNA-hanging case).
        switch_failure("tor"),
        # Spine crash with links down: ECMP converges, nobody hangs.
        switch_failure("spine", link_down=True),
        random_drop("tor", 0.75),
        switch_reboot("tor", downtime_ns=60 * SECOND),
        switch_blackhole("tor", 0.5),
        switch_blackhole("spine", 0.5),
    ]
