"""ECMP consistent hashing.

Switches pick among equal-cost next hops by hashing the packet's 5-tuple
with a per-switch salt.  The hash is *consistent*: the same flow always
takes the same next hop at the same switch, which is exactly why a LUNA
connection pinned to one 5-tuple cannot escape a blackhole (§3.3), and why
SOLAR can steer traffic just by changing the UDP source port (§4.5).
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import Sequence, TypeVar

from .packet import FiveTuple

T = TypeVar("T")


@lru_cache(maxsize=65536)
def flow_hash(flow: FiveTuple, salt: str = "") -> int:
    """Deterministic 32-bit hash of a 5-tuple (+ optional per-switch salt).

    Memoized: a closed-loop workload revisits the same few thousand
    (flow, salt) pairs once per packet per hop.
    """
    src, dst, sport, dport, proto = flow
    key = f"{salt}|{src}|{dst}|{sport}|{dport}|{proto}".encode("utf-8")
    return zlib.crc32(key) & 0xFFFFFFFF


def pick(flow: FiveTuple, candidates: Sequence[T], salt: str = "") -> T:
    """Pick one candidate for this flow; deterministic for a fixed set."""
    if not candidates:
        raise ValueError("ECMP pick from an empty candidate set")
    return candidates[flow_hash(flow, salt) % len(candidates)]
