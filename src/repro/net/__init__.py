"""Network substrate: packets, links, switches, ECMP, Clos topology,
in-band telemetry and failure scenarios."""

from .ecmp import flow_hash, pick
from .endpoint import Endpoint
from .fabric import FabricBoundary, ShardMessage
from .failures import (
    FailureScenario,
    random_drop,
    switch_blackhole,
    switch_failure,
    switch_reboot,
    table2_scenarios,
    tor_port_failure,
)
from .link import Channel, Link
from .packet import FiveTuple, IntRecord, Packet
from .queue import DropTailQueue
from .switch import Switch
from .topology import ClosTopology, PodSpec

__all__ = [
    "FabricBoundary",
    "ShardMessage",
    "Packet",
    "IntRecord",
    "FiveTuple",
    "DropTailQueue",
    "Channel",
    "Link",
    "Switch",
    "Endpoint",
    "ClosTopology",
    "PodSpec",
    "flow_hash",
    "pick",
    "FailureScenario",
    "tor_port_failure",
    "switch_failure",
    "switch_reboot",
    "switch_blackhole",
    "random_drop",
    "table2_scenarios",
]

from .capture import CaptureRecord, PacketCapture  # noqa: E402
from .queue import PriorityQueue  # noqa: E402

__all__ += ["PacketCapture", "CaptureRecord", "PriorityQueue"]
