"""CLI surface of the chaos harness: ``python -m repro chaos``.

Two modes:

* ``--replay FILE`` — load a digest-verified scenario and re-run it,
  invariants after every step, printing a canonical-JSON report.  The
  report is a pure function of the scenario, so two replays of the same
  file are byte-identical.  Exit status 3 signals an invariant violation
  (regression scenarios in CI rely on 0).
* hunt (default) — run the hypothesis state machine for ``--examples``
  random walks of ``--steps`` rules each.  On a violation, the shrunken
  minimal counterexample is saved to ``--save`` (or printed) as a
  replayable scenario file, and the exit status is 3.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..lab.spec import canonical_json

#: Exit status for "the harness found / reproduced an invariant violation"
#: (distinct from argparse's 2 for usage errors).
EXIT_VIOLATION = 3


def add_chaos_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "chaos",
        help="property-based chaos harness for the control plane",
        description=(
            "Drive the control plane (faults, migrations, upgrades, "
            "foreground I/O) through random or replayed action sequences, "
            "checking the invariant suite after every step."
        ),
    )
    parser.add_argument(
        "--replay", metavar="FILE",
        help="replay one scenario JSON file instead of hunting",
    )
    parser.add_argument(
        "--examples", type=int, default=10,
        help="hunt: number of random action sequences (default 10)",
    )
    parser.add_argument(
        "--steps", type=int, default=25,
        help="hunt: rules per sequence (default 25)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="harness seed baked into the chaos config (default 0)",
    )
    parser.add_argument(
        "--derandomize", action="store_true",
        help="hunt: fixed hypothesis randomness (CI smoke mode)",
    )
    parser.add_argument(
        "--save", metavar="FILE",
        help="hunt: write the shrunken failing scenario here",
    )
    parser.add_argument(
        "--rebuild-policy", default="",
        choices=("", "static", "deadline", "reactive"),
        help="hunt: route node failovers through the rebuild planner "
             "under this throttle policy (default: off — instant "
             "evacuation), enabling the trigger_rebuild / "
             "fail_rebuild_source rules",
    )


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.replay:
        return _replay(args)
    return _hunt(args)


def _replay(args: argparse.Namespace) -> int:
    from .harness import replay_scenario
    from .scenario import ChaosScenario

    try:
        scenario = ChaosScenario.load(args.replay)
    except (OSError, ValueError, KeyError) as exc:
        # Unreadable file, bad JSON/schema, or a digest mismatch: a usage
        # error (2), distinct from a reproduced violation (3).
        print(f"chaos: cannot load scenario {args.replay!r}: {exc}",
              file=sys.stderr)
        return 2
    report = replay_scenario(scenario)
    print(canonical_json(report).decode().rstrip("\n"))
    return EXIT_VIOLATION if report["violations"] else 0


def _hunt(args: argparse.Namespace) -> int:
    from .harness import ChaosConfig
    from .machine import hunt

    config = ChaosConfig(seed=args.seed, rebuild_policy=args.rebuild_policy)
    failure = hunt(
        config=config,
        max_examples=args.examples,
        stateful_step_count=args.steps,
        derandomize=args.derandomize,
    )
    if failure is None:
        print(canonical_json({
            "result": "ok",
            "examples": args.examples,
            "steps_per_example": args.steps,
            "seed": args.seed,
        }).decode().rstrip("\n"))
        return 0
    if args.save:
        failure.save(args.save)
        print(f"shrunken counterexample saved to {args.save} "
              f"(digest {failure.digest})", file=sys.stderr)
    else:
        print(json.dumps(failure.to_dict(), indent=2, sort_keys=True),
              file=sys.stderr)
    print(canonical_json({
        "result": "violation",
        "digest": failure.digest,
        "actions": len(failure.actions),
    }).decode().rstrip("\n"))
    return EXIT_VIOLATION
