"""repro.chaos — stateful property-based chaos testing of the control plane.

The operational promises the paper's §5 machinery makes (three live
replicas, no acked write lost, incidents auto-resolve, bounded migration
downtime, monitoring that agrees with itself) are exactly the kind of
claims single-scenario tests under-exercise: the bugs live in the
*interleavings* — a fault landing mid-drain, overlapping incidents on one
host, a VD provisioned while its target node is dead.  This package turns
those promises into an executable invariant suite and lets hypothesis
search the interleaving space:

* :mod:`~repro.chaos.harness` — the live cluster + fault levers + audit
  books, driven through one ``apply(rule, **args)`` entry point;
* :mod:`~repro.chaos.invariants` — the promise suite, checked after every
  applied action;
* :mod:`~repro.chaos.machine` — the hypothesis ``RuleBasedStateMachine``
  (import requires hypothesis);
* :mod:`~repro.chaos.scenario` — digest-verified replayable scenario
  files; shrunken counterexamples become named regression tests under
  ``tests/scenarios/``;
* :mod:`~repro.chaos.cli` — ``python -m repro chaos [--replay FILE]``.
"""

from .harness import ChaosConfig, ChaosHarness, block_payload, replay_scenario
from .invariants import InvariantSuite, InvariantViolation
from .scenario import ACTION_RULES, ChaosAction, ChaosScenario, scenario_digest

__all__ = [
    "ChaosConfig",
    "ChaosHarness",
    "block_payload",
    "replay_scenario",
    "InvariantSuite",
    "InvariantViolation",
    "ACTION_RULES",
    "ChaosAction",
    "ChaosScenario",
    "scenario_digest",
]
