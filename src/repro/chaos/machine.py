"""Stateful property-based chaos: hypothesis drives the live cluster.

:class:`ControlPlaneMachine` is a hypothesis ``RuleBasedStateMachine``
whose rules are the :class:`~repro.chaos.harness.ChaosHarness` actions:
inject/clear node and ToR faults, flip FPGA bits, start live migrations,
issue foreground I/O, advance the simulated clock.  The full
:class:`~repro.chaos.invariants.InvariantSuite` runs after **every** rule
(hypothesis's ``@invariant``), and the quiesced-cluster checks run at
teardown — so any interleaving of faults and control-plane operations
that breaks a promise is found, shrunk to a minimal action sequence, and
exported as a replayable :class:`~repro.chaos.scenario.ChaosScenario`.

The machine never talks to the cluster directly: every rule goes through
``harness.apply``, the same entry point the scenario replayer uses, so a
shrunken counterexample replays exactly what hypothesis executed.
"""

from __future__ import annotations

from typing import Optional, Type

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
    run_state_machine_as_test,
)

from .harness import ChaosConfig, ChaosHarness
from .invariants import InvariantViolation
from .scenario import ChaosScenario

#: The shrunken action log of the most recent invariant violation, set by
#: whichever machine instance tripped it last.  Hypothesis replays the
#: shrinking candidates through fresh machine instances and finishes with
#: the minimal failing run, so after a failed hunt this holds the minimal
#: counterexample — ready to export as a regression scenario.
LAST_FAILURE: Optional[ChaosScenario] = None

#: Bit-flip intensity levels the machine chooses between (permille).
BITFLIP_LEVELS = (0, 5, 20)


def _capture(harness: ChaosHarness) -> None:
    global LAST_FAILURE
    LAST_FAILURE = harness.scenario(
        "last-failure", description="auto-captured failing action sequence"
    )


class ControlPlaneMachine(RuleBasedStateMachine):
    """Rules = chaos actions; invariants = the full suite, every step."""

    #: Overridden by :func:`machine_for` to parameterize the harness.
    CONFIG = ChaosConfig()

    def __init__(self):
        super().__init__()
        self.harness = ChaosHarness(self.CONFIG)

    # -- helpers -------------------------------------------------------
    def _apply(self, rule_name: str, **args) -> None:
        self.harness.apply(rule_name, **args)

    def _stacks(self):
        return self.CONFIG.stacks

    # -- rules ---------------------------------------------------------
    @rule(ticks=st.integers(min_value=1, max_value=8))
    def advance_clock(self, ticks: int) -> None:
        self._apply("advance", ticks=ticks)

    @rule(server=st.integers(min_value=0, max_value=15))
    def foreground_write(self, server: int) -> None:
        self._apply("write", server=server)

    @rule(
        server=st.integers(min_value=0, max_value=15),
        block=st.integers(min_value=0, max_value=4095),
    )
    def foreground_read(self, server: int, block: int) -> None:
        self._apply("read", server=server, block=block)

    @rule(
        stack=st.sampled_from(ChaosConfig().stacks),
        node=st.integers(min_value=0, max_value=15),
    )
    def fail_node(self, stack: str, node: int) -> None:
        self._apply("fail_node", stack=stack, node=node)

    @precondition(lambda self: bool(self.harness._faults))
    @rule(
        stack=st.sampled_from(ChaosConfig().stacks),
        node=st.integers(min_value=0, max_value=15),
    )
    def clear_node(self, stack: str, node: int) -> None:
        self._apply("clear_node", stack=stack, node=node)

    @rule(
        stack=st.sampled_from(ChaosConfig().stacks),
        index=st.integers(min_value=0, max_value=7),
    )
    def fail_tor(self, stack: str, index: int) -> None:
        self._apply("fail_tor", stack=stack, index=index)

    @precondition(lambda self: bool(self.harness._faults))
    @rule(
        stack=st.sampled_from(ChaosConfig().stacks),
        index=st.integers(min_value=0, max_value=7),
    )
    def clear_tor(self, stack: str, index: int) -> None:
        self._apply("clear_tor", stack=stack, index=index)

    @rule(permille=st.sampled_from(BITFLIP_LEVELS))
    def set_bitflip(self, permille: int) -> None:
        self._apply("set_bitflip", permille=permille)

    @rule(server=st.integers(min_value=0, max_value=15))
    def start_migration(self, server: int) -> None:
        self._apply("migrate", server=server)

    @precondition(lambda self: bool(self.CONFIG.rebuild_policy))
    @rule(
        stack=st.sampled_from(ChaosConfig().stacks),
        node=st.integers(min_value=0, max_value=15),
    )
    def trigger_rebuild(self, stack: str, node: int) -> None:
        self._apply("trigger_rebuild", stack=stack, node=node)

    @precondition(lambda self: bool(self.CONFIG.rebuild_policy))
    @rule(
        stack=st.sampled_from(ChaosConfig().stacks),
        node=st.integers(min_value=0, max_value=15),
    )
    def fail_rebuild_source(self, stack: str, node: int) -> None:
        self._apply("fail_rebuild_source", stack=stack, node=node)

    # -- the suite, after every rule ------------------------------------
    @invariant()
    def control_plane_promises_hold(self) -> None:
        try:
            self.harness.verify()
        except InvariantViolation:
            _capture(self.harness)
            raise

    def teardown(self) -> None:
        try:
            self.harness.quiesce()
            self.harness.verify_final()
        except InvariantViolation:
            _capture(self.harness)
            raise


def machine_for(config: ChaosConfig) -> Type[ControlPlaneMachine]:
    """A machine class bound to ``config`` (hypothesis instantiates the
    class itself, so parameterization happens via subclassing)."""
    return type("ConfiguredControlPlaneMachine", (ControlPlaneMachine,), {
        "CONFIG": config,
    })


def hunt(
    config: Optional[ChaosConfig] = None,
    max_examples: int = 20,
    stateful_step_count: int = 30,
    derandomize: bool = False,
    database=None,
) -> Optional[ChaosScenario]:
    """Run a property hunt; return the shrunken failing scenario, if any.

    Returns ``None`` when every example passed.  On failure the shrunken
    counterexample (the minimal rule sequence hypothesis converged on) is
    returned instead of raising, so callers can save it as a regression
    scenario file.
    """
    global LAST_FAILURE
    LAST_FAILURE = None
    machine = machine_for(config) if config is not None else ControlPlaneMachine
    kwargs = dict(
        max_examples=max_examples,
        stateful_step_count=stateful_step_count,
        derandomize=derandomize,
        deadline=None,
    )
    if database is not None:
        kwargs["database"] = database
    hunt_settings = settings(**kwargs)
    try:
        run_state_machine_as_test(machine, settings=hunt_settings)
    except InvariantViolation:
        return LAST_FAILURE
    return None
