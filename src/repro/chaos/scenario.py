"""Chaos scenarios: serialized fault/action sequences with stable digests.

A :class:`ChaosScenario` is the replayable artifact of the chaos harness:
the harness configuration plus the exact ordered list of actions a run
(random walk or shrunken hypothesis counterexample) applied.  Everything
in it is JSON scalars and simulated time — no wall clock, no process
state — so one scenario replays byte-identically anywhere.

The digest is the sha256 of the canonical JSON of ``{config, actions}``
(same canonicalization `repro.lab` keys its result store by), so a
scenario file is self-verifying: editing the actions without updating the
digest is detected at load time, and two scenarios with the same digest
are the same experiment.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from ..lab.spec import canonical_json

#: Version of the unified scenario envelope.  Since v2, chaos
#: counterexamples and `repro.scenario` workload scenarios share one
#: envelope layout ({version, kind, name, digest, ...}), discriminated
#: by ``kind`` — chaos files carry ``kind: "chaos"``.  v1 files (the
#: pre-envelope chaos-only layout) still load; the digest function is
#: unchanged, so migrated files keep their digests and replay reports.
SCENARIO_VERSION = 2

#: Action names the harness can apply (see ChaosHarness._do_*).
ACTION_RULES = (
    "advance",
    "write",
    "read",
    "fail_node",
    "clear_node",
    "fail_tor",
    "clear_tor",
    "set_bitflip",
    "migrate",
    "trigger_rebuild",
    "fail_rebuild_source",
)


@dataclass(frozen=True)
class ChaosAction:
    """One applied harness action: a rule name plus scalar arguments."""

    rule: str
    args: Dict[str, Union[int, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rule not in ACTION_RULES:
            raise ValueError(f"unknown chaos rule {self.rule!r}; options: {ACTION_RULES}")
        for key, value in self.args.items():
            if not isinstance(value, (int, str)) or isinstance(value, bool):
                raise ValueError(
                    f"action arg {key}={value!r} must be an int or str "
                    "(scenario files hold only JSON scalars)"
                )

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.rule, "args": dict(sorted(self.args.items()))}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ChaosAction":
        return cls(rule=payload["rule"], args=dict(payload.get("args", {})))


def scenario_digest(config: Dict[str, Any], actions: Sequence[ChaosAction]) -> str:
    """Stable content digest of one scenario (config + action list)."""
    body = canonical_json(
        {"config": config, "actions": [action.to_dict() for action in actions]}
    )
    return hashlib.sha256(body).hexdigest()[:16]


@dataclass
class ChaosScenario:
    """A named, digest-verified, replayable chaos sequence."""

    name: str
    config: Dict[str, Any]
    actions: List[ChaosAction]
    description: str = ""
    digest: str = ""

    def __post_init__(self) -> None:
        expected = scenario_digest(self.config, self.actions)
        if not self.digest:
            self.digest = expected
        elif self.digest != expected:
            raise ValueError(
                f"scenario {self.name!r} digest mismatch: header says "
                f"{self.digest}, content hashes to {expected} — the file "
                "was edited without re-deriving its digest"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SCENARIO_VERSION,
            "kind": "chaos",
            "name": self.name,
            "description": self.description,
            "digest": self.digest,
            "config": self.config,
            "actions": [action.to_dict() for action in self.actions],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ChaosScenario":
        version = payload.get("version")
        if version == 1:
            # Pre-envelope layout: chaos-only, no ``kind`` discriminator.
            # The content digest is computed identically, so legacy files
            # replay byte-for-byte the same.
            pass
        elif version == SCENARIO_VERSION:
            kind = payload.get("kind")
            if kind != "chaos":
                raise ValueError(
                    f"not a chaos scenario (kind={kind!r}); "
                    "workload scenarios load via repro.scenario"
                )
        else:
            raise ValueError(
                f"unsupported scenario version {version!r} "
                f"(this build reads versions 1 and {SCENARIO_VERSION})"
            )
        return cls(
            name=payload["name"],
            config=dict(payload["config"]),
            actions=[ChaosAction.from_dict(a) for a in payload["actions"]],
            description=payload.get("description", ""),
            digest=payload.get("digest", ""),
        )

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChaosScenario":
        payload = json.loads(Path(path).read_text())
        return cls.from_dict(payload)
