"""The live chaos harness: one controlled cluster, fault levers, books.

:class:`ChaosHarness` stands up the full operational stack on one
simulator — a multi-stack :class:`~repro.control.cluster.ControlledCluster`,
a shared :class:`~repro.control.health.HealthMonitor`, per-stack
:class:`~repro.control.failover.FailoverOrchestrator`\\ s and
:class:`~repro.telemetry.plane.TelemetryPlane`\\ s, and a
:class:`~repro.faults.fpga_errors.BitFlipInjector` on every SOLAR
offload — then exposes a small vocabulary of *actions* (write, read,
fail/heal a node or ToR, flip FPGA bits, start a migration, advance the
clock) that both the hypothesis state machine and the scenario replayer
drive through one code path, :meth:`apply`.

Every applied action is logged, so any run — including the shrunken
counterexample of a failed property hunt — exports as a
:class:`~repro.chaos.scenario.ChaosScenario` and replays deterministically.
The bookkeeping the :class:`~repro.chaos.invariants.InvariantSuite` audits
(acked-write payloads, fault start times, offline hang tallies, migration
starts) lives here, parallel to — never inside — the control plane it is
checking.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..agent.base import IoRequest
from ..control.cluster import ControlledCluster, LogicalServer
from ..control.failover import FailoverOrchestrator, FailoverPolicy
from ..control.health import HealthMonitor, HealthPolicy, Incident
from ..control.migration import MigrationReport
from ..ebs.deployment import DeploymentSpec
from ..faults.fpga_errors import BitFlipInjector
from ..net.failures import FailureScenario, node_failure, switch_failure
from ..profiles import BLOCK_SIZE
from ..rebuild import RebuildExecutor, RebuildPlanner, make_policy
from ..rebuild.throttle import REBUILD_POLICIES
from ..sim.events import MS, US
from ..telemetry.plane import TelemetryPlane
from .invariants import InvariantSuite, InvariantViolation
from .scenario import ChaosAction, ChaosScenario


@dataclass(frozen=True)
class ChaosConfig:
    """Shape and timing constants of one chaos run.

    The defaults are deliberately small and fast: 6 storage hosts per
    stack (so two concurrent node deaths always leave a legal evacuation
    pool), 3 logical servers, short detection/reroute timers so a few
    hundred milliseconds of simulated time exercises the whole
    detect → evacuate → restore loop.  Everything is JSON scalars so a
    config round-trips through scenario files losslessly.
    """

    seed: int = 0
    stacks: Tuple[str, ...] = ("luna", "solar")
    servers: int = 3
    vd_size_bytes: int = 8 * 1024 * 1024
    io_size_bytes: int = BLOCK_SIZE
    compute_racks: int = 1
    compute_hosts_per_rack: int = 2
    storage_racks: int = 2
    storage_hosts_per_rack: int = 3
    #: One "advance" tick of simulated time.
    tick_ns: int = 5 * MS
    hang_threshold_ns: int = 20 * MS
    heartbeat_interval_ns: int = 5 * MS
    miss_threshold: int = 3
    reroute_delay_ns: int = 5 * MS
    scrape_interval_ns: int = 5 * MS
    slo_ns: int = 500 * US
    #: Migration drain bound; must sit inside the downtime budget.
    drain_timeout_ns: int = 30 * MS
    attach_latency_ns: int = 500 * US
    migration_budget_ns: int = 40 * MS
    #: Extra slack on top of detection + reroute before the replica
    #: invariant demands a dead node be fully drained.
    grace_slack_ns: int = 20 * MS
    #: Fault-free settling time the quiesce phase runs before the final
    #: (auto-resolution) checks.
    quiesce_ns: int = 150 * MS
    max_node_faults_per_stack: int = 2
    #: Rebuild-storm mode: "" keeps the legacy instant evacuation; a
    #: throttle policy name ("static"/"deadline"/"reactive") routes node
    #: failovers through the `repro.rebuild` planner instead, so lost
    #: replicas are re-copied as real backend-network traffic that the
    #: trigger_rebuild / fail_rebuild_source actions can then attack.
    rebuild_policy: str = ""
    rebuild_rate_gbps: int = 8
    rebuild_swarm: int = 1
    rebuild_chunk_kb: int = 64

    def __post_init__(self) -> None:
        if len(self.stacks) < 2:
            raise ValueError("chaos needs >= 2 stacks to migrate between")
        if self.rebuild_policy and self.rebuild_policy not in REBUILD_POLICIES:
            raise ValueError(
                f"rebuild_policy {self.rebuild_policy!r} must be '' (off) "
                f"or one of {REBUILD_POLICIES}"
            )
        if self.rebuild_rate_gbps <= 0 or self.rebuild_chunk_kb <= 0:
            raise ValueError("rebuild rate and chunk size must be positive")
        if self.drain_timeout_ns + self.attach_latency_ns > self.migration_budget_ns:
            raise ValueError(
                "drain timeout + attach latency must fit the migration "
                f"budget: {self.drain_timeout_ns} + {self.attach_latency_ns} "
                f"> {self.migration_budget_ns}"
            )

    @property
    def grace_ns(self) -> int:
        """How long a node may be dead before it must be evacuated."""
        return (
            self.heartbeat_interval_ns * self.miss_threshold
            + self.reroute_delay_ns
            + self.grace_slack_ns
        )

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["stacks"] = list(self.stacks)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ChaosConfig":
        payload = dict(payload)
        payload["stacks"] = tuple(payload.get("stacks", ("luna", "solar")))
        return cls(**payload)


def block_payload(vd_id: str, lba: int, seq: int) -> bytes:
    """Deterministic, write-unique 4KB payload (hash-expanded)."""
    seed = hashlib.blake2b(
        f"{vd_id}|{lba}|{seq}".encode(), digest_size=32
    ).digest()
    return (seed * (BLOCK_SIZE // len(seed) + 1))[:BLOCK_SIZE]


class ChaosHarness:
    """A controlled cluster plus fault levers plus audit books."""

    def __init__(self, config: ChaosConfig):
        self.config = config
        base = DeploymentSpec(
            compute_racks=config.compute_racks,
            compute_hosts_per_rack=config.compute_hosts_per_rack,
            storage_racks=config.storage_racks,
            storage_hosts_per_rack=config.storage_hosts_per_rack,
        )
        self.cluster = ControlledCluster(
            list(config.stacks),
            config.servers,
            seed=config.seed,
            deployment=base,
            vd_size_bytes=config.vd_size_bytes,
            io_size_bytes=config.io_size_bytes,
            hang_threshold_ns=config.hang_threshold_ns,
            attach_latency_ns=config.attach_latency_ns,
            drain_timeout_ns=config.drain_timeout_ns,
        )
        self.sim = self.cluster.sim
        self.monitor = HealthMonitor(
            self.sim,
            HealthPolicy(
                heartbeat_interval_ns=config.heartbeat_interval_ns,
                miss_threshold=config.miss_threshold,
            ),
        )
        # One orchestrator + telemetry plane per stack; deployments reuse
        # host names, so probes register under a per-stack prefix.
        self.orchestrators: Dict[str, FailoverOrchestrator] = {}
        self.planes: Dict[str, TelemetryPlane] = {}
        # Empty when rebuild_policy is "" (legacy instant evacuation).
        self.rebuild_executors: Dict[str, RebuildExecutor] = {}
        self.rebuild_planners: Dict[str, RebuildPlanner] = {}
        for stack in config.stacks:
            deployment = self.cluster.deployments[stack]
            planner = None
            if config.rebuild_policy:
                policy = make_policy(
                    config.rebuild_policy,
                    rate_bps=config.rebuild_rate_gbps * 1e9,
                )
                executor = RebuildExecutor(
                    deployment,
                    policy,
                    swarm=bool(config.rebuild_swarm),
                    chunk_bytes=config.rebuild_chunk_kb * 1024,
                )
                planner = RebuildPlanner(
                    deployment,
                    executor,
                    monitor=self.monitor,
                    node_prefix=f"{stack}/",
                )
                self.rebuild_executors[stack] = executor
                self.rebuild_planners[stack] = planner
            orchestrator = FailoverOrchestrator(
                deployment,
                self.monitor,
                FailoverPolicy(reroute_delay_ns=config.reroute_delay_ns),
                node_prefix=f"{stack}/",
                planner=planner,
            )
            orchestrator.watch_storage()
            self.orchestrators[stack] = orchestrator
            self.planes[stack] = TelemetryPlane(
                deployment,
                interval_ns=config.scrape_interval_ns,
                slo_ns=config.slo_ns,
                health=self.monitor,
            )
            if stack in self.rebuild_executors:
                self.planes[stack].watch_rebuild(self.rebuild_executors[stack])
                if config.rebuild_policy == "reactive":
                    # The reactive policy closes its loop over the plane's
                    # foreground p99 sketches, exactly as in the drill.
                    pol = self.rebuild_executors[stack].policy
                    self.planes[stack].scraper.subscribe(
                        lambda snap, pol=pol: pol.observe_window(
                            snap.get("fleet.latency.p99")
                        )
                    )
            self.planes[stack].start()
        self.monitor.start()
        # FPGA bit-flip lever, armed at rate 0 on every SOLAR offload.
        self.injector = BitFlipInjector(self.sim.rng.stream("chaos-bitflip"))
        for stack in config.stacks:
            for offload in self.cluster.deployments[stack].solar_offloads.values():
                offload.fault_injector = self.injector
        # Hang plumbing: threshold crossings flow to the right stack's
        # telemetry plane (online) and the harness ledger (offline).
        self.cluster.hang_monitor.on_hang = self._on_hang
        # Audit books.
        self.log: List[ChaosAction] = []
        self.suite = InvariantSuite(self)
        self._faults: Dict[Tuple[str, str, str], Tuple[FailureScenario, int]] = {}
        self._durable: Dict[Tuple[str, str, int], bytes] = {}
        self._pending: Dict[Tuple[str, str, int], int] = {}
        self._ios: Dict[int, IoRequest] = {}
        self._io_stack: Dict[int, str] = {}
        self.offline_hangs: Dict[str, int] = {}
        self._migration_started: Dict[int, int] = {}
        self.writes_issued = 0
        self.reads_issued = 0
        self.deferred_actions = 0
        self.quiesced = False

    # ------------------------------------------------------------------
    # Properties the invariant suite reads
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self.sim.now

    @property
    def grace_ns(self) -> int:
        return self.config.grace_ns

    def failed_nodes(self, stack: str) -> Dict[str, int]:
        """Currently-failed storage nodes of one stack: name -> fail time."""
        return {
            name: applied_ns
            for (kind, fault_stack, name), (_s, applied_ns) in self._faults.items()
            if kind == "node" and fault_stack == stack
        }

    def durable_writes(self):
        """Acked-clean writes in deterministic order: ((stack, vd, lba), bytes)."""
        for key in sorted(self._durable):
            yield key, self._durable[key]

    def write_pending(self, stack: str, vd_id: str, lba: int) -> bool:
        return self._pending.get((stack, vd_id, lba), 0) > 0

    def migrations_in_flight(self) -> Dict[int, int]:
        return dict(self._migration_started)

    def integrity_events(self) -> int:
        total = 0
        for stack in self.config.stacks:
            for client in self.cluster.deployments[stack].solar_clients.values():
                total += client.integrity_events
        return total

    def stuck_hang_io_ids(self) -> set:
        """Hung I/Os that genuinely never completed (cause never cleared)."""
        stuck = set()
        for io_id in self.monitor.open_hangs():
            io = self._ios.get(io_id)
            if io is None or io.trace is None or io.trace.complete_ns is None:
                stuck.add(io_id)
        return stuck

    def incident_io_id(self, incident: Incident) -> Optional[int]:
        for io_id, open_incident in self.monitor.open_hangs().items():
            if open_incident is incident:
                return io_id
        return None

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _on_hang(self, io: IoRequest) -> None:
        stack = self._io_stack.get(io.io_id, self.config.stacks[0])
        self.planes[stack].on_hang(io)
        self.offline_hangs[io.vd_id] = self.offline_hangs.get(io.vd_id, 0) + 1

    def _io_done(
        self,
        io: IoRequest,
        stack: str,
        vd_id: str,
        lba: int,
        payload: Optional[bytes],
    ) -> None:
        key = (stack, vd_id, lba)
        if self._pending.get(key, 0) > 0:
            self._pending[key] -= 1
        self.cluster.hang_monitor.note_completion(io)
        self.monitor.note_io_completed(io)
        trace = io.trace
        if (
            io.kind == "write"
            and payload is not None
            and trace is not None
            and trace.ok
            and not trace.error
        ):
            # Acked clean: from here on, these bytes must stay readable.
            self._durable[key] = payload

    # ------------------------------------------------------------------
    # Action dispatch (the one code path machine + replay share)
    # ------------------------------------------------------------------
    def apply(self, rule: str, **args) -> None:
        action = ChaosAction(rule, dict(args))
        self.log.append(action)
        getattr(self, f"_do_{rule}")(**args)

    def verify(self) -> None:
        self.suite.verify()

    def verify_final(self) -> None:
        self.suite.verify_final()

    # -- clock ----------------------------------------------------------
    def _do_advance(self, ticks: int) -> None:
        ticks = max(1, int(ticks))
        self.sim.run(until=self.sim.now + ticks * self.config.tick_ns)

    # -- foreground I/O -------------------------------------------------
    def _server(self, server: int) -> LogicalServer:
        return self.cluster.servers[server % len(self.cluster.servers)]

    def _do_write(self, server: int) -> None:
        srv = self._server(server)
        vd = srv.vd
        if vd.paused or vd.detached or srv.migrating:
            self.deferred_actions += 1
            return
        total_blocks = vd.size_bytes // BLOCK_SIZE
        seq = self.writes_issued
        lba = seq % total_blocks
        stack = srv.stack
        payload = block_payload(vd.vd_id, lba, seq)
        key = (stack, vd.vd_id, lba)
        self._pending[key] = self._pending.get(key, 0) + 1
        io = vd.write(
            lba * BLOCK_SIZE,
            BLOCK_SIZE,
            lambda done, s=stack, v=vd.vd_id, b=lba, p=payload: self._io_done(
                done, s, v, b, p
            ),
            data=payload,
        )
        self._ios[io.io_id] = io
        self._io_stack[io.io_id] = stack
        self.cluster.hang_monitor.watch(io)
        self.writes_issued += 1

    def _do_read(self, server: int, block: int) -> None:
        srv = self._server(server)
        vd = srv.vd
        if vd.paused or vd.detached or srv.migrating:
            self.deferred_actions += 1
            return
        total_blocks = vd.size_bytes // BLOCK_SIZE
        lba = block % total_blocks
        stack = srv.stack
        io = vd.read(
            lba * BLOCK_SIZE,
            BLOCK_SIZE,
            lambda done, s=stack, v=vd.vd_id, b=lba: self._io_done(
                done, s, v, b, None
            ),
        )
        self._ios[io.io_id] = io
        self._io_stack[io.io_id] = stack
        self.cluster.hang_monitor.watch(io)
        self.reads_issued += 1

    # -- node and switch faults ----------------------------------------
    def _storage_name(self, stack: str, node: int) -> str:
        names = sorted(self.cluster.deployments[stack].storage_servers)
        return names[node % len(names)]

    def _known_stack(self, stack: str) -> bool:
        if stack in self.config.stacks:
            return True
        self.deferred_actions += 1
        return False

    def _do_fail_node(self, stack: str, node: int) -> None:
        if not self._known_stack(stack):
            return
        name = self._storage_name(stack, node)
        key = ("node", stack, name)
        if key in self._faults:
            self.deferred_actions += 1
            return
        active = len(self.failed_nodes(stack))
        if active >= self.config.max_node_faults_per_stack:
            self.deferred_actions += 1
            return
        scenario = node_failure(name)
        scenario.apply(self.cluster.deployments[stack].topology)
        self._faults[key] = (scenario, self.sim.now)

    def _do_clear_node(self, stack: str, node: int) -> None:
        if not self._known_stack(stack):
            return
        name = self._storage_name(stack, node)
        key = ("node", stack, name)
        entry = self._faults.pop(key, None)
        if entry is None:
            self.deferred_actions += 1
            return
        entry[0].revert(self.cluster.deployments[stack].topology)

    def _do_fail_tor(self, stack: str, index: int) -> None:
        if not self._known_stack(stack):
            return
        topology = self.cluster.deployments[stack].topology
        tors = topology.switches_by_tier("tor")
        slot = str(index % len(tors))
        key = ("tor", stack, slot)
        if key in self._faults:
            self.deferred_actions += 1
            return
        # Data-plane death with PHYs up: heartbeats survive, I/Os hang —
        # the silent failure mode that motivates the hang monitor.
        scenario = switch_failure("tor", index % len(tors), link_down=False)
        scenario.apply(topology)
        self._faults[key] = (scenario, self.sim.now)

    def _do_clear_tor(self, stack: str, index: int) -> None:
        if not self._known_stack(stack):
            return
        topology = self.cluster.deployments[stack].topology
        tors = topology.switches_by_tier("tor")
        slot = str(index % len(tors))
        entry = self._faults.pop(("tor", stack, slot), None)
        if entry is None:
            self.deferred_actions += 1
            return
        entry[0].revert(topology)

    # -- rebuild storms -------------------------------------------------
    def _do_trigger_rebuild(self, stack: str, node: int) -> None:
        """Node kill routed through the rebuild planner: an alias of
        ``fail_node`` that only fires when rebuilds are enabled, so a
        scenario reads as what it actually exercises."""
        if not self._known_stack(stack):
            return
        if stack not in self.rebuild_planners:
            self.deferred_actions += 1
            return
        self._do_fail_node(stack, node)

    def _do_fail_rebuild_source(self, stack: str, node: int) -> None:
        """Kill a node that is actively *seeding* a rebuild, forcing the
        executor's source-loss path (reserve promotion in unicast, stream
        retirement in swarm, or a re-stall when no holder is left).  Books
        under the same ("node", ...) fault key, so ``clear_node`` heals it
        and the node-fault cap applies across both kill flavours."""
        if not self._known_stack(stack):
            return
        executor = self.rebuild_executors.get(stack)
        if executor is None:
            self.deferred_actions += 1
            return
        failed = set(self.failed_nodes(stack))
        sources = [s for s in executor.active_source_nodes() if s not in failed]
        if not sources or len(failed) >= self.config.max_node_faults_per_stack:
            self.deferred_actions += 1
            return
        name = sources[node % len(sources)]
        scenario = node_failure(name)
        scenario.apply(self.cluster.deployments[stack].topology)
        self._faults[("node", stack, name)] = (scenario, self.sim.now)

    # -- FPGA corruption ------------------------------------------------
    def _do_set_bitflip(self, permille: int) -> None:
        rate = min(max(int(permille), 0), 1000) / 1000.0
        self.injector.payload_flip_rate = rate
        self.injector.crc_flip_rate = rate

    # -- live migration -------------------------------------------------
    def _do_migrate(self, server: int) -> None:
        srv = self._server(server)
        if srv.migrating or srv.vd.detached:
            self.deferred_actions += 1
            return
        stacks = self.config.stacks
        to_stack = stacks[(stacks.index(srv.stack) + 1) % len(stacks)]
        self._migration_started[srv.index] = self.sim.now

        def done(s: LogicalServer, report: MigrationReport) -> None:
            self._migration_started.pop(s.index, None)

        def aborted(s: LogicalServer, report: MigrationReport) -> None:
            self._migration_started.pop(s.index, None)

        self.cluster.upgrade_server(srv, to_stack, on_done=done, on_abort=aborted)

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def quiesce(self) -> None:
        """Clear every fault, zero the injector, let the cluster settle.

        After this, every incident's cause has cleared — the state the
        final (auto-resolution) invariants are defined over.  Idempotent.
        """
        for key in sorted(self._faults):
            scenario, _applied_ns = self._faults[key]
            scenario.revert(self.cluster.deployments[key[1]].topology)
        self._faults.clear()
        self._do_set_bitflip(0)
        self.sim.run(until=self.sim.now + self.config.quiesce_ns)
        self.quiesced = True

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def scenario(self, name: str, description: str = "") -> ChaosScenario:
        """Freeze this run's applied actions as a replayable scenario."""
        return ChaosScenario(
            name=name,
            config=self.config.to_dict(),
            actions=list(self.log),
            description=description,
        )

    def report(self) -> Dict[str, Any]:
        """Deterministic run summary (canonical-JSON-safe, simulated time
        only): identical content for identical scenarios, byte for byte."""
        resolved = sum(1 for i in self.monitor.incidents if not i.open)
        return {
            "final_ns": self.sim.now,
            "actions": len(self.log),
            "deferred_actions": self.deferred_actions,
            "writes_issued": self.writes_issued,
            "reads_issued": self.reads_issued,
            "durable_blocks": len(self._durable),
            "hangs": self.cluster.hang_monitor.hangs,
            "incidents": len(self.monitor.incidents),
            "incidents_resolved": resolved,
            "evacuations": {
                stack: len(self.orchestrators[stack].records)
                for stack in self.config.stacks
            },
            "segments_moved": {
                stack: self.orchestrators[stack].segments_moved
                for stack in self.config.stacks
            },
            "migrations_completed": len(self.cluster.migration_reports),
            "migrations_aborted": len(self.cluster.aborted_migrations),
            "bitflips_injected": self.injector.total_injected,
            "integrity_events": self.integrity_events(),
            "rebuild_ledgers": {
                stack: self.rebuild_planners[stack].audit()
                for stack in self.config.stacks
                if stack in self.rebuild_planners
            },
            "rebuild_bytes": {
                stack: self.rebuild_executors[stack].bytes_done
                for stack in self.config.stacks
                if stack in self.rebuild_executors
            },
            "invariant_checks": self.suite.checks_run,
        }


def replay_scenario(scenario: ChaosScenario) -> Dict[str, Any]:
    """Re-run one scenario action by action, invariants after every step.

    Returns a deterministic report: the harness counters plus every
    invariant violation hit (the first per-step violation stops the
    action stream — post-violation state is not meaningful — but the
    final checks still run so regression output is complete).
    """
    config = ChaosConfig.from_dict(scenario.config)
    harness = ChaosHarness(config)
    violations: List[Dict[str, str]] = []
    steps_applied = 0
    for action in scenario.actions:
        harness.apply(action.rule, **action.args)
        steps_applied += 1
        try:
            harness.verify()
        except InvariantViolation as violation:
            violations.append(
                {"check": violation.check, "detail": violation.detail,
                 "after_step": steps_applied}
            )
            break
    if not violations:
        harness.quiesce()
        try:
            harness.verify_final()
        except InvariantViolation as violation:
            violations.append(
                {"check": violation.check, "detail": violation.detail,
                 "after_step": steps_applied}
            )
    report = harness.report()
    report["scenario"] = scenario.name
    report["digest"] = scenario.digest
    report["steps_applied"] = steps_applied
    report["violations"] = violations
    return report
