"""The chaos invariant suite: what must hold no matter what faults fly.

Each check encodes one promise the paper's operational story makes and
the control plane is supposed to keep (§2.2 replication, §4.4 CRC
integrity, §5 availability):

* **replica-policy** — every provisioned segment keeps three distinct
  live replicas; a storage node that has been dead longer than the
  detection + reroute grace window must be evacuated and hold nothing.
* **durability** — every write acknowledged clean (ok, no integrity
  error) is readable back from the fleet with exactly the bytes the
  guest wrote; FPGA bit flips may corrupt payloads, but then the CRC
  aggregation check must have flagged the write, never acked it clean.
* **detection-bounded** — software CRC can detect at most as many events
  as the injector actually flipped (no phantom detections).
* **incident-resolution** (final) — once every fault is cleared and the
  cluster has quiesced, every declared incident has auto-resolved; the
  only exemption is an I/O-hang incident whose I/O genuinely never
  completed (a known model limitation of non-retransmitting stacks).
* **migration-budget** — no migration, completed, aborted or still in
  flight, holds its VD unavailable longer than the downtime budget.
* **hang-parity** — the online `SlowIoDiagnoser` tallies (per node and
  total) equal the offline `IoHangMonitor` counts, the same books
  `benchmarks/bench_fig8_io_hangs.py` balances.
* **rebuild-ledger** — every rebuild transfer the planner ever started
  is, at all times, exactly one of: completed, re-planned after its
  destination died, in flight/queued, or parked as stalled.  Transfers
  never vanish from the books, no matter how sources and destinations
  die mid-copy.
* **rebuild-settled** (final) — once faults are cleared and the cluster
  has quiesced, no rebuild is still copying, queued or stalled, and the
  segment table owes no pending rebuild destinations.

Checks read only simulated state, so a violation is deterministic for a
given scenario and the shrunken sequence hypothesis reports replays
exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..control.health import IO_HANG
from ..sim.events import format_ns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .harness import ChaosHarness


class InvariantViolation(AssertionError):
    """One broken invariant, with the check's name for triage."""

    def __init__(self, check: str, message: str):
        super().__init__(f"[{check}] {message}")
        self.check = check
        self.detail = message


class InvariantSuite:
    """Runs the chaos checks against one :class:`ChaosHarness`."""

    #: Checks run after every applied action.
    STEP_CHECKS = (
        "check_replica_policy",
        "check_durability",
        "check_detection_bounded",
        "check_migration_budget",
        "check_hang_parity",
        "check_rebuild_ledger",
    )
    #: Additional checks that only make sense once the cluster quiesced.
    FINAL_CHECKS = ("check_incident_resolution", "check_rebuild_settled")

    def __init__(self, harness: "ChaosHarness"):
        self.harness = harness
        self.checks_run = 0

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Run every per-step check; raise on the first violation."""
        for name in self.STEP_CHECKS:
            getattr(self, name)()
            self.checks_run += 1

    def verify_final(self) -> None:
        """Run the full suite plus the quiesced-state checks."""
        self.verify()
        for name in self.FINAL_CHECKS:
            getattr(self, name)()
            self.checks_run += 1

    # ------------------------------------------------------------------
    def check_replica_policy(self) -> None:
        """3 distinct replicas per segment; expired dead nodes drained."""
        h = self.harness
        for stack, deployment in h.cluster.deployments.items():
            table = deployment.segment_table
            for vd_id in table.vd_ids():
                for seg in table.segments_of(vd_id):
                    if len(set(seg.replicas)) != len(seg.replicas) or len(seg.replicas) != 3:
                        raise InvariantViolation(
                            "replica-policy",
                            f"{stack}:{seg.segment_id} replicas {seg.replicas} "
                            "are not 3 distinct servers",
                        )
            for node, failed_ns in h.failed_nodes(stack).items():
                if h.now - failed_ns <= h.grace_ns:
                    continue  # inside the detection + reroute grace window
                if node not in table.evacuated:
                    raise InvariantViolation(
                        "replica-policy",
                        f"{stack}:{node} dead since {format_ns(failed_ns)} "
                        f"(grace {format_ns(h.grace_ns)} expired at "
                        f"{format_ns(h.now)}) but never evacuated",
                    )
                held = table.segments_on(node)
                if held:
                    raise InvariantViolation(
                        "replica-policy",
                        f"{stack}:{node} dead past the grace window still "
                        f"holds {len(held)} segment role(s), e.g. "
                        f"{held[0][2].segment_id}",
                    )

    def check_durability(self) -> None:
        """Every clean-acked write's bytes exist somewhere in the fleet."""
        h = self.harness
        for (stack, vd_id, lba), payload in h.durable_writes():
            if h.write_pending(stack, vd_id, lba):
                continue  # a newer write to this block is still in flight
            deployment = h.cluster.deployments[stack]
            seg = deployment.segment_table.lookup(vd_id, lba)
            key = (seg.segment_id, lba)
            copies = 0
            intact = 0
            for chunk in deployment.chunk_servers.values():
                stored = chunk.store.get(key)
                if stored is None:
                    continue
                copies += 1
                if stored[0] == payload:
                    intact += 1
            if intact == 0:
                raise InvariantViolation(
                    "durability",
                    f"acked write {stack}:{vd_id} lba={lba} has no intact "
                    f"copy ({copies} stored, all corrupt or missing) — an "
                    "acknowledged write was lost or silently corrupted",
                )

    def check_detection_bounded(self) -> None:
        """CRC detections never exceed actual injected bit flips."""
        h = self.harness
        detected = h.integrity_events()
        injected = h.injector.total_injected
        if detected > injected:
            raise InvariantViolation(
                "detection-bounded",
                f"{detected} integrity events detected but only {injected} "
                "bit flips injected — detection is inventing corruption",
            )

    def check_migration_budget(self) -> None:
        """No migration stalls its guest past the downtime budget."""
        h = self.harness
        budget = h.config.migration_budget_ns
        for report in h.cluster.migration_reports:
            if report.downtime_ns > budget:
                raise InvariantViolation(
                    "migration-budget",
                    f"migration of {report.vd_id} took "
                    f"{format_ns(report.downtime_ns)} "
                    f"(budget {format_ns(budget)})",
                )
        for report in h.cluster.aborted_migrations:
            stalled = report.aborted_ns - report.started_ns
            if stalled > budget:
                raise InvariantViolation(
                    "migration-budget",
                    f"aborted migration of {report.vd_id} held the guest "
                    f"{format_ns(stalled)} before rollback "
                    f"(budget {format_ns(budget)})",
                )
        for index, started_ns in h.migrations_in_flight().items():
            stalled = h.now - started_ns
            if stalled > budget:
                raise InvariantViolation(
                    "migration-budget",
                    f"srv{index} has been migrating for {format_ns(stalled)} "
                    f"with no completion or abort (budget "
                    f"{format_ns(budget)}) — the drain is wedged",
                )

    def check_hang_parity(self) -> None:
        """Online diagnoser tallies == offline hang-monitor counts."""
        h = self.harness
        online_total = sum(p.diagnoser.hangs for p in h.planes.values())
        offline_total = h.cluster.hang_monitor.hangs
        if online_total != offline_total:
            raise InvariantViolation(
                "hang-parity",
                f"online diagnosers saw {online_total} hang(s), offline "
                f"monitor counted {offline_total}",
            )
        online_nodes: Dict[str, int] = {}
        for plane in h.planes.values():
            for node, count in plane.diagnoser.hangs_by_node.items():
                online_nodes[node] = online_nodes.get(node, 0) + count
        if online_nodes != h.offline_hangs:
            raise InvariantViolation(
                "hang-parity",
                f"per-node hang tallies diverge: online {online_nodes} "
                f"vs offline {h.offline_hangs}",
            )

    def check_rebuild_ledger(self) -> None:
        """Started rebuilds are completed, re-planned, active or stalled."""
        h = self.harness
        for stack in sorted(h.rebuild_planners):
            ledger = h.rebuild_planners[stack].audit()
            accounted = (
                ledger["completed"]
                + ledger["requeued"]
                + ledger["active"]
                + ledger["stalled"]
            )
            if ledger["started"] != accounted:
                raise InvariantViolation(
                    "rebuild-ledger",
                    f"{stack}: {ledger['started']} rebuild transfer(s) "
                    f"started but only {accounted} accounted for ({ledger}) "
                    "— a rebuild was dropped without completing or being "
                    "re-planned",
                )

    def check_rebuild_settled(self) -> None:
        """Post-quiesce: no rebuild still copying, queued or stalled."""
        h = self.harness
        for stack in sorted(h.rebuild_planners):
            ledger = h.rebuild_planners[stack].audit()
            if ledger["active"] or ledger["stalled"]:
                raise InvariantViolation(
                    "rebuild-settled",
                    f"{stack}: rebuild storm still open after quiesce: "
                    f"{ledger}",
                )
            rebuilding = h.cluster.deployments[stack].segment_table.rebuilding
            if rebuilding:
                raise InvariantViolation(
                    "rebuild-settled",
                    f"{stack}: segment table still owes pending rebuild "
                    f"destination(s) after quiesce: {rebuilding}",
                )

    def check_incident_resolution(self) -> None:
        """Post-quiesce: every incident's cause cleared, so it resolved."""
        h = self.harness
        stuck = h.stuck_hang_io_ids()
        unresolved: List[str] = []
        for incident in h.monitor.open_incidents():
            if incident.kind == IO_HANG and h.incident_io_id(incident) in stuck:
                continue  # the hung I/O truly never completed
            unresolved.append(repr(incident))
        if unresolved:
            raise InvariantViolation(
                "incident-resolution",
                f"{len(unresolved)} incident(s) still open after all faults "
                f"cleared and the cluster quiesced: {unresolved[:5]}",
            )
